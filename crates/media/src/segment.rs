//! Image segmentation — the first daemon in the ingest pipeline.
//!
//! The paper does not name its segmentation algorithm, so we provide two
//! interchangeable ones that exercise the same downstream pipeline:
//! a fixed grid (fast, deterministic) and a greedy region-growing merge
//! over colour similarity (content-adaptive).

use crate::image::Image;

/// A segment: a rectangle of the source image plus its cropped pixels.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Left edge in source coordinates.
    pub x: usize,
    /// Top edge in source coordinates.
    pub y: usize,
    /// Width in pixels.
    pub w: usize,
    /// Height in pixels.
    pub h: usize,
    /// The cropped pixels.
    pub image: Image,
}

/// Split an image into an `n × n` grid of segments.
pub fn grid_segments(image: &Image, n: usize) -> Vec<Segment> {
    assert!(n > 0, "grid must have at least one cell");
    let mut out = Vec::with_capacity(n * n);
    let (iw, ih) = (image.width(), image.height());
    if iw == 0 || ih == 0 {
        return out;
    }
    for gy in 0..n {
        for gx in 0..n {
            let x0 = gx * iw / n;
            let y0 = gy * ih / n;
            let x1 = (gx + 1) * iw / n;
            let y1 = (gy + 1) * ih / n;
            if x1 > x0 && y1 > y0 {
                out.push(Segment {
                    x: x0,
                    y: y0,
                    w: x1 - x0,
                    h: y1 - y0,
                    image: image.crop(x0, y0, x1 - x0, y1 - y0),
                });
            }
        }
    }
    out
}

/// Region growing: start from a fine grid, greedily merge neighbouring
/// cells whose mean colours are within `threshold` (Euclidean RGB), and
/// emit one segment per merged region (bounding box).
pub fn region_grow_segments(image: &Image, threshold: f64) -> Vec<Segment> {
    const GRID: usize = 8;
    let cells = grid_segments(image, GRID);
    if cells.is_empty() {
        return Vec::new();
    }
    let means: Vec<[f64; 3]> = cells.iter().map(|s| s.image.mean_rgb()).collect();
    // union-find over grid cells
    let mut parent: Vec<usize> = (0..cells.len()).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let r = find(parent, parent[i]);
            parent[i] = r;
        }
        parent[i]
    }
    let idx = |gx: usize, gy: usize| gy * GRID + gx;
    let side = (cells.len() as f64).sqrt() as usize;
    for gy in 0..side {
        for gx in 0..side {
            let i = idx(gx, gy);
            for (nx, ny) in [(gx + 1, gy), (gx, gy + 1)] {
                if nx < side && ny < side {
                    let j = idx(nx, ny);
                    let d = color_dist(means[i], means[j]);
                    if d <= threshold {
                        let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                        if ri != rj {
                            parent[ri] = rj;
                        }
                    }
                }
            }
        }
    }
    // gather bounding boxes per root
    let mut boxes: std::collections::HashMap<usize, (usize, usize, usize, usize)> =
        std::collections::HashMap::new();
    for (i, cell) in cells.iter().enumerate() {
        let root = find(&mut parent, i);
        let e = boxes.entry(root).or_insert((cell.x, cell.y, cell.x + cell.w, cell.y + cell.h));
        e.0 = e.0.min(cell.x);
        e.1 = e.1.min(cell.y);
        e.2 = e.2.max(cell.x + cell.w);
        e.3 = e.3.max(cell.y + cell.h);
    }
    let mut roots: Vec<_> = boxes.into_iter().collect();
    roots.sort_by_key(|(root, _)| *root);
    roots
        .into_iter()
        .map(|(_, (x0, y0, x1, y1))| Segment {
            x: x0,
            y: y0,
            w: x1 - x0,
            h: y1 - y0,
            image: image.crop(x0, y0, x1 - x0, y1 - y0),
        })
        .collect()
}

fn color_dist(a: [f64; 3], b: [f64; 3]) -> f64 {
    ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_image_exactly() {
        let img = Image::filled(10, 10, [1, 2, 3]);
        let segs = grid_segments(&img, 3);
        assert_eq!(segs.len(), 9);
        let area: usize = segs.iter().map(|s| s.w * s.h).sum();
        assert_eq!(area, 100);
        // no overlap along x for first row
        assert_eq!(segs[0].x + segs[0].w, segs[1].x);
    }

    #[test]
    fn grid_on_tiny_image() {
        let img = Image::filled(2, 2, [0, 0, 0]);
        let segs = grid_segments(&img, 4); // more cells than pixels
        let area: usize = segs.iter().map(|s| s.w * s.h).sum();
        assert_eq!(area, 4);
        assert!(grid_segments(&Image::new(0, 0), 2).is_empty());
    }

    #[test]
    fn region_grow_merges_uniform_image_to_one_segment() {
        let img = Image::filled(32, 32, [100, 100, 100]);
        let segs = region_grow_segments(&img, 10.0);
        assert_eq!(segs.len(), 1);
        assert_eq!((segs[0].w, segs[0].h), (32, 32));
    }

    #[test]
    fn region_grow_separates_distinct_halves() {
        let mut img = Image::filled(32, 32, [255, 0, 0]);
        for y in 16..32 {
            for x in 0..32 {
                img.set(x, y, [0, 0, 255]);
            }
        }
        let segs = region_grow_segments(&img, 30.0);
        assert!(segs.len() >= 2, "expected ≥2 regions, got {}", segs.len());
    }

    #[test]
    fn segments_carry_their_pixels() {
        let mut img = Image::filled(8, 8, [0, 0, 0]);
        img.set(7, 7, [9, 9, 9]);
        let segs = grid_segments(&img, 2);
        let last = &segs[3];
        assert_eq!(last.image.get(last.w - 1, last.h - 1), [9, 9, 9]);
    }
}
