//! Four texture feature extractors — the MeasTex-suite substitution.
//!
//! The demo used "the four reference implementations of texture algorithms
//! provided by the MeasTex framework"; we implement four classical texture
//! analysers from scratch: a Gabor filter bank, grey-level co-occurrence
//! matrix statistics, Tamura features, and gradient/edge-density features.

use crate::image::Image;
use crate::vector::FeatureVector;
use crate::FeatureExtractor;

/// Gabor filter bank: energies of `orientations × frequencies` Gabor
/// responses (mean + std of the magnitude per filter).
#[derive(Debug, Clone)]
pub struct GaborBank {
    /// Filter orientations in radians.
    pub orientations: Vec<f64>,
    /// Spatial frequencies (cycles per pixel).
    pub frequencies: Vec<f64>,
    /// Gaussian envelope sigma.
    pub sigma: f64,
    /// Half-size of the kernel window.
    pub radius: usize,
}

impl Default for GaborBank {
    fn default() -> Self {
        GaborBank {
            orientations: vec![0.0, 0.785, 1.571, 2.356],
            frequencies: vec![0.1, 0.3],
            sigma: 2.0,
            radius: 3,
        }
    }
}

impl GaborBank {
    /// Response statistics (mean, std) of one Gabor filter over the image.
    fn filter_stats(&self, image: &Image, theta: f64, freq: f64) -> (f64, f64) {
        let r = self.radius as isize;
        let (sin_t, cos_t) = theta.sin_cos();
        // precompute the kernel (real part of the Gabor function)
        let mut kernel = Vec::with_capacity(((2 * r + 1) * (2 * r + 1)) as usize);
        for dy in -r..=r {
            for dx in -r..=r {
                let xr = dx as f64 * cos_t + dy as f64 * sin_t;
                let yr = -(dx as f64) * sin_t + dy as f64 * cos_t;
                let envelope = (-(xr * xr + yr * yr) / (2.0 * self.sigma * self.sigma)).exp();
                let carrier = (std::f64::consts::TAU * freq * xr).cos();
                kernel.push(envelope * carrier);
            }
        }
        // remove the DC component so flat regions produce zero response
        let dc = kernel.iter().sum::<f64>() / kernel.len() as f64;
        for k in &mut kernel {
            *k -= dc;
        }
        let (w, h) = (image.width(), image.height());
        if w == 0 || h == 0 {
            return (0.0, 0.0);
        }
        let mut responses = Vec::new();
        let step = (w.max(h) / 16).max(1); // sample grid for speed
        for y in (0..h).step_by(step) {
            for x in (0..w).step_by(step) {
                let mut acc = 0.0;
                let mut ki = 0;
                for dy in -r..=r {
                    for dx in -r..=r {
                        let sx = (x as isize + dx).clamp(0, w as isize - 1) as usize;
                        let sy = (y as isize + dy).clamp(0, h as isize - 1) as usize;
                        acc += kernel[ki] * image.luma(sx, sy) / 255.0;
                        ki += 1;
                    }
                }
                responses.push(acc.abs());
            }
        }
        mean_std(&responses)
    }
}

impl FeatureExtractor for GaborBank {
    fn space(&self) -> &'static str {
        "gabor"
    }

    fn dims(&self) -> usize {
        self.orientations.len() * self.frequencies.len() * 2
    }

    fn extract(&self, image: &Image) -> FeatureVector {
        let mut out = Vec::with_capacity(self.dims());
        for &theta in &self.orientations {
            for &freq in &self.frequencies {
                let (m, s) = self.filter_stats(image, theta, freq);
                out.push(m);
                out.push(s);
            }
        }
        FeatureVector::new(out)
    }
}

/// Grey-level co-occurrence matrix statistics at four offsets:
/// contrast, energy, homogeneity and entropy per offset.
#[derive(Debug, Clone)]
pub struct Glcm {
    /// Grey quantisation levels.
    pub levels: usize,
}

impl Default for Glcm {
    fn default() -> Self {
        Glcm { levels: 8 }
    }
}

impl Glcm {
    fn stats_for_offset(&self, image: &Image, dx: isize, dy: isize) -> [f64; 4] {
        let l = self.levels;
        let mut mat = vec![0f64; l * l];
        let (w, h) = (image.width() as isize, image.height() as isize);
        let mut total = 0f64;
        for y in 0..h {
            for x in 0..w {
                let (nx, ny) = (x + dx, y + dy);
                if nx < 0 || ny < 0 || nx >= w || ny >= h {
                    continue;
                }
                let a = (image.luma(x as usize, y as usize) / 256.0 * l as f64) as usize;
                let b = (image.luma(nx as usize, ny as usize) / 256.0 * l as f64) as usize;
                mat[a.min(l - 1) * l + b.min(l - 1)] += 1.0;
                total += 1.0;
            }
        }
        if total == 0.0 {
            return [0.0; 4];
        }
        let mut contrast = 0.0;
        let mut energy = 0.0;
        let mut homogeneity = 0.0;
        let mut entropy = 0.0;
        for i in 0..l {
            for j in 0..l {
                let p = mat[i * l + j] / total;
                if p == 0.0 {
                    continue;
                }
                let d = i as f64 - j as f64;
                contrast += d * d * p;
                energy += p * p;
                homogeneity += p / (1.0 + d.abs());
                entropy -= p * p.ln();
            }
        }
        [contrast, energy, homogeneity, entropy]
    }
}

impl FeatureExtractor for Glcm {
    fn space(&self) -> &'static str {
        "glcm"
    }

    fn dims(&self) -> usize {
        16 // 4 offsets × 4 statistics
    }

    fn extract(&self, image: &Image) -> FeatureVector {
        let offsets = [(1, 0), (0, 1), (1, 1), (1, -1)];
        let mut out = Vec::with_capacity(16);
        for (dx, dy) in offsets {
            out.extend_from_slice(&self.stats_for_offset(image, dx, dy));
        }
        FeatureVector::new(out)
    }
}

/// Tamura features: coarseness, contrast, and directionality.
#[derive(Debug, Clone, Copy)]
pub struct Tamura;

impl FeatureExtractor for Tamura {
    fn space(&self) -> &'static str {
        "tamura"
    }

    fn dims(&self) -> usize {
        3
    }

    fn extract(&self, image: &Image) -> FeatureVector {
        FeatureVector::new(vec![coarseness(image), tamura_contrast(image), directionality(image)])
    }
}

/// Tamura coarseness: the average best window size (powers of two) at
/// which local mean differences peak.
fn coarseness(image: &Image) -> f64 {
    let (w, h) = (image.width(), image.height());
    if w < 4 || h < 4 {
        return 0.0;
    }
    let step = (w.max(h) / 16).max(1);
    let mut total = 0.0;
    let mut count = 0.0;
    for y in (2..h - 2).step_by(step) {
        for x in (2..w - 2).step_by(step) {
            let mut best_k = 0usize;
            let mut best_e = -1.0;
            for k in 0..3usize {
                let half = 1usize << k;
                if x < half * 2 || y < half * 2 || x + half * 2 >= w || y + half * 2 >= h {
                    break;
                }
                let left = window_mean(image, x - 2 * half, y - half, half);
                let right = window_mean(image, x, y - half, half);
                let up = window_mean(image, x - half, y - 2 * half, half);
                let down = window_mean(image, x - half, y, half);
                let e = (left - right).abs().max((up - down).abs());
                if e > best_e {
                    best_e = e;
                    best_k = k;
                }
            }
            total += (1usize << best_k) as f64;
            count += 1.0;
        }
    }
    if count == 0.0 {
        0.0
    } else {
        total / count
    }
}

fn window_mean(image: &Image, x0: usize, y0: usize, size: usize) -> f64 {
    let size = size.max(1);
    let mut acc = 0.0;
    let mut n = 0.0;
    for y in y0..(y0 + 2 * size).min(image.height()) {
        for x in x0..(x0 + 2 * size).min(image.width()) {
            acc += image.luma(x, y);
            n += 1.0;
        }
    }
    if n == 0.0 {
        0.0
    } else {
        acc / n
    }
}

/// Tamura contrast: σ / kurtosis^(1/4) of the luminance distribution.
fn tamura_contrast(image: &Image) -> f64 {
    let lumas: Vec<f64> = (0..image.height())
        .flat_map(|y| (0..image.width()).map(move |x| (x, y)))
        .map(|(x, y)| image.luma(x, y))
        .collect();
    if lumas.is_empty() {
        return 0.0;
    }
    let (mean, std) = mean_std(&lumas);
    if std == 0.0 {
        return 0.0;
    }
    let n = lumas.len() as f64;
    let m4: f64 = lumas.iter().map(|l| (l - mean).powi(4)).sum::<f64>() / n;
    let kurtosis = m4 / std.powi(4);
    if kurtosis <= 0.0 {
        0.0
    } else {
        std / kurtosis.powf(0.25)
    }
}

/// Tamura directionality: peakedness of the gradient-direction histogram.
fn directionality(image: &Image) -> f64 {
    let (w, h) = (image.width(), image.height());
    if w < 3 || h < 3 {
        return 0.0;
    }
    const BINS: usize = 16;
    let mut hist = [0f64; BINS];
    let mut total = 0f64;
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let gx = image.luma(x + 1, y) - image.luma(x - 1, y);
            let gy = image.luma(x, y + 1) - image.luma(x, y - 1);
            let mag = (gx * gx + gy * gy).sqrt();
            if mag < 8.0 {
                continue; // flat region, no direction
            }
            let angle = gy.atan2(gx).rem_euclid(std::f64::consts::PI);
            let bin = ((angle / std::f64::consts::PI) * BINS as f64) as usize % BINS;
            hist[bin] += mag;
            total += mag;
        }
    }
    if total == 0.0 {
        return 0.0;
    }
    // peakedness = sum of squared normalised bin masses (1/BINS … 1)
    hist.iter().map(|&v| (v / total) * (v / total)).sum()
}

/// Edge-density features via Sobel gradients: density of strong edges,
/// mean gradient magnitude, and horizontal/vertical edge ratio.
#[derive(Debug, Clone, Copy)]
pub struct EdgeDensity;

impl FeatureExtractor for EdgeDensity {
    fn space(&self) -> &'static str {
        "edge"
    }

    fn dims(&self) -> usize {
        3
    }

    fn extract(&self, image: &Image) -> FeatureVector {
        let (w, h) = (image.width(), image.height());
        if w < 3 || h < 3 {
            return FeatureVector::new(vec![0.0, 0.0, 0.5]);
        }
        let mut strong = 0f64;
        let mut total_mag = 0f64;
        let mut horiz = 0f64;
        let mut vert = 0f64;
        let mut n = 0f64;
        for y in 1..h - 1 {
            for x in 1..w - 1 {
                let gx = image.luma(x + 1, y - 1)
                    + 2.0 * image.luma(x + 1, y)
                    + image.luma(x + 1, y + 1)
                    - image.luma(x - 1, y - 1)
                    - 2.0 * image.luma(x - 1, y)
                    - image.luma(x - 1, y + 1);
                let gy = image.luma(x - 1, y + 1)
                    + 2.0 * image.luma(x, y + 1)
                    + image.luma(x + 1, y + 1)
                    - image.luma(x - 1, y - 1)
                    - 2.0 * image.luma(x, y - 1)
                    - image.luma(x + 1, y - 1);
                let mag = (gx * gx + gy * gy).sqrt();
                total_mag += mag;
                if mag > 128.0 {
                    strong += 1.0;
                }
                horiz += gx.abs();
                vert += gy.abs();
                n += 1.0;
            }
        }
        let ratio = if horiz + vert == 0.0 { 0.5 } else { horiz / (horiz + vert) };
        FeatureVector::new(vec![strong / n, total_mag / (n * 1020.0), ratio])
    }
}

fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A vertical sinusoidal grating with the given frequency.
    fn grating(freq: f64, vertical: bool) -> Image {
        let mut img = Image::new(32, 32);
        for y in 0..32 {
            for x in 0..32 {
                let u = if vertical { x as f64 } else { y as f64 };
                let v = ((std::f64::consts::TAU * freq * u).sin() * 100.0 + 128.0) as u8;
                img.set(x, y, [v, v, v]);
            }
        }
        img
    }

    #[test]
    fn gabor_distinguishes_orientations() {
        let g = GaborBank::default();
        let vert = g.extract(&grating(0.3, true));
        let horiz = g.extract(&grating(0.3, false));
        assert!(vert.distance(&horiz) > 1e-3, "distance {}", vert.distance(&horiz));
    }

    #[test]
    fn gabor_flat_image_low_energy() {
        let g = GaborBank::default();
        let flat = g.extract(&Image::filled(32, 32, [128, 128, 128]));
        let textured = g.extract(&grating(0.3, true));
        let flat_e: f64 = flat.values().iter().sum();
        let tex_e: f64 = textured.values().iter().sum();
        assert!(tex_e > flat_e * 2.0, "{tex_e} vs {flat_e}");
    }

    #[test]
    fn glcm_contrast_higher_for_high_frequency() {
        let g = Glcm::default();
        let fine = g.extract(&grating(0.45, true));
        let coarse = g.extract(&grating(0.05, true));
        // contrast of the (1,0) offset is dimension 0
        assert!(fine.values()[0] > coarse.values()[0]);
    }

    #[test]
    fn glcm_energy_max_for_uniform() {
        let g = Glcm::default();
        let flat = g.extract(&Image::filled(16, 16, [60, 60, 60]));
        // uniform image: all co-occurrences in one cell → energy 1
        assert!((flat.values()[1] - 1.0).abs() < 1e-9);
        assert_eq!(flat.values()[0], 0.0); // zero contrast
    }

    #[test]
    fn tamura_contrast_orders_images() {
        let t = Tamura;
        let flat = t.extract(&Image::filled(32, 32, [128, 128, 128]));
        let tex = t.extract(&grating(0.2, true));
        assert!(tex.values()[1] > flat.values()[1]);
    }

    #[test]
    fn directionality_peaks_for_gratings() {
        let t = Tamura;
        let grate = t.extract(&grating(0.2, true));
        // random-ish blob image has low directionality
        let mut noisy = Image::new(32, 32);
        let mut state = 12345u64;
        for y in 0..32 {
            for x in 0..32 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let v = (state >> 33) as u8;
                noisy.set(x, y, [v, v, v]);
            }
        }
        let rnd = t.extract(&noisy);
        assert!(grate.values()[2] > rnd.values()[2]);
    }

    #[test]
    fn edge_density_detects_edges() {
        let e = EdgeDensity;
        let flat = e.extract(&Image::filled(16, 16, [10, 10, 10]));
        assert_eq!(flat.values()[0], 0.0);
        let mut img = Image::filled(16, 16, [0, 0, 0]);
        for y in 0..16 {
            for x in 8..16 {
                img.set(x, y, [255, 255, 255]);
            }
        }
        let edged = e.extract(&img);
        assert!(edged.values()[0] > 0.0);
        // vertical boundary → horizontal gradient dominates
        assert!(edged.values()[2] > 0.9);
    }

    #[test]
    fn tiny_images_do_not_panic() {
        for e in crate::standard_extractors() {
            let v = e.extract(&Image::filled(2, 2, [5, 5, 5]));
            assert_eq!(v.dims(), e.dims());
        }
    }
}
