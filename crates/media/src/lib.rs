//! # media — synthetic multimedia corpus and feature extraction
//!
//! The Mirror demo's digital library was "images collected by a simple web
//! robot", segmented and run through two colour-histogram daemons and the
//! four MeasTex texture reference algorithms. Neither the crawled images
//! nor MeasTex are available offline, so this crate provides the
//! substitutions documented in DESIGN.md:
//!
//! * [`robot`] — a *corpus simulator*: procedurally generated images whose
//!   visual content (palettes, oriented textures) is statistically
//!   correlated with generated text annotations through a set of themes;
//!   a configurable fraction of images is left un-annotated, which is what
//!   makes dual-coding retrieval interesting;
//! * [`image`] — a minimal owned RGB image type;
//! * [`segment`] — grid and region-growing segmentation;
//! * [`color`] — the two colour-histogram extractors (RGB cube, HSV);
//! * [`texture`] — four texture extractors standing in for the MeasTex
//!   reference implementations: Gabor filter-bank energies, grey-level
//!   co-occurrence (GLCM) statistics, Tamura coarseness/contrast, and
//!   edge-density features;
//! * [`vector`] — the feature-vector type shared with the clustering
//!   crate.
//!
//! Everything is deterministic given a seed.

#![warn(missing_docs)]

pub mod color;
pub mod image;
pub mod robot;
pub mod segment;
pub mod texture;
pub mod vector;

pub use image::Image;
pub use robot::{CrawledImage, RobotConfig, Theme, WebRobot};
pub use segment::{grid_segments, region_grow_segments, Segment};
pub use vector::FeatureVector;

/// A named feature extractor: the shape every feature daemon wraps.
pub trait FeatureExtractor: Send + Sync {
    /// The feature-space name (`rgb`, `hsv`, `gabor`, `glcm`, `tamura`,
    /// `edge`). Cluster names derive from it (`gabor_21`).
    fn space(&self) -> &'static str;
    /// Dimensionality of the produced vectors.
    fn dims(&self) -> usize;
    /// Extract a feature vector from an image region.
    fn extract(&self, image: &Image) -> FeatureVector;
}

/// All six standard extractors of the demo system (two colour + four
/// texture, the latter standing in for the MeasTex reference suite).
pub fn standard_extractors() -> Vec<Box<dyn FeatureExtractor>> {
    vec![
        Box::new(color::RgbHistogram::default()),
        Box::new(color::HsvHistogram::default()),
        Box::new(texture::GaborBank::default()),
        Box::new(texture::Glcm::default()),
        Box::new(texture::Tamura),
        Box::new(texture::EdgeDensity),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_extractor_suite_is_complete() {
        let ex = standard_extractors();
        let names: Vec<_> = ex.iter().map(|e| e.space()).collect();
        assert_eq!(names, vec!["rgb", "hsv", "gabor", "glcm", "tamura", "edge"]);
    }

    #[test]
    fn extractors_produce_declared_dims() {
        let img = Image::filled(16, 16, [100, 150, 200]);
        for e in standard_extractors() {
            let v = e.extract(&img);
            assert_eq!(v.dims(), e.dims(), "{}", e.space());
            assert!(v.values().iter().all(|x| x.is_finite()), "{}", e.space());
        }
    }
}
