//! A minimal owned RGB image.

/// An 8-bit RGB image with row-major pixel storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    width: usize,
    height: usize,
    pixels: Vec<[u8; 3]>,
}

impl Image {
    /// A black image of the given size.
    pub fn new(width: usize, height: usize) -> Image {
        Image { width, height, pixels: vec![[0, 0, 0]; width * height] }
    }

    /// An image filled with one colour.
    pub fn filled(width: usize, height: usize, rgb: [u8; 3]) -> Image {
        Image { width, height, pixels: vec![rgb; width * height] }
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel at `(x, y)`. Panics when out of bounds (kernel-internal use).
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> [u8; 3] {
        debug_assert!(x < self.width && y < self.height);
        self.pixels[y * self.width + x]
    }

    /// Set pixel `(x, y)`; out-of-bounds writes are ignored, which keeps
    /// procedural painters free of boundary bookkeeping.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, rgb: [u8; 3]) {
        if x < self.width && y < self.height {
            self.pixels[y * self.width + x] = rgb;
        }
    }

    /// Greyscale luminance at `(x, y)` (Rec. 601 weights), in `[0, 255]`.
    #[inline]
    pub fn luma(&self, x: usize, y: usize) -> f64 {
        let [r, g, b] = self.get(x, y);
        0.299 * r as f64 + 0.587 * g as f64 + 0.114 * b as f64
    }

    /// Crop a rectangle (clamped to the image bounds).
    pub fn crop(&self, x0: usize, y0: usize, w: usize, h: usize) -> Image {
        let x1 = (x0 + w).min(self.width);
        let y1 = (y0 + h).min(self.height);
        let (cw, ch) = (x1.saturating_sub(x0), y1.saturating_sub(y0));
        let mut out = Image::new(cw, ch);
        for y in 0..ch {
            for x in 0..cw {
                out.set(x, y, self.get(x0 + x, y0 + y));
            }
        }
        out
    }

    /// Mean colour of the image.
    pub fn mean_rgb(&self) -> [f64; 3] {
        if self.pixels.is_empty() {
            return [0.0; 3];
        }
        let mut acc = [0f64; 3];
        for p in &self.pixels {
            for c in 0..3 {
                acc[c] += p[c] as f64;
            }
        }
        let n = self.pixels.len() as f64;
        [acc[0] / n, acc[1] / n, acc[2] / n]
    }

    /// All pixels, row-major.
    pub fn pixels(&self) -> &[[u8; 3]] {
        &self.pixels
    }

    /// Serialise to a tiny binary blob (the media-server payload format):
    /// `w:u32 h:u32` followed by raw RGB bytes.
    pub fn to_blob(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.pixels.len() * 3);
        out.extend_from_slice(&(self.width as u32).to_le_bytes());
        out.extend_from_slice(&(self.height as u32).to_le_bytes());
        for p in &self.pixels {
            out.extend_from_slice(p);
        }
        out
    }

    /// Parse a blob produced by [`Image::to_blob`].
    pub fn from_blob(blob: &[u8]) -> Option<Image> {
        if blob.len() < 8 {
            return None;
        }
        let w = u32::from_le_bytes(blob[0..4].try_into().ok()?) as usize;
        let h = u32::from_le_bytes(blob[4..8].try_into().ok()?) as usize;
        let need = w.checked_mul(h)?.checked_mul(3)?;
        if blob.len() != 8 + need {
            return None;
        }
        let pixels = blob[8..].chunks_exact(3).map(|c| [c[0], c[1], c[2]]).collect();
        Some(Image { width: w, height: h, pixels })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_access() {
        let mut img = Image::new(4, 3);
        assert_eq!(img.get(0, 0), [0, 0, 0]);
        img.set(2, 1, [10, 20, 30]);
        assert_eq!(img.get(2, 1), [10, 20, 30]);
        img.set(99, 99, [1, 1, 1]); // ignored
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
    }

    #[test]
    fn luma_weights() {
        let img = Image::filled(1, 1, [255, 255, 255]);
        assert!((img.luma(0, 0) - 255.0).abs() < 1e-9);
        let red = Image::filled(1, 1, [255, 0, 0]);
        assert!((red.luma(0, 0) - 0.299 * 255.0).abs() < 1e-9);
    }

    #[test]
    fn crop_clamps() {
        let mut img = Image::new(4, 4);
        img.set(3, 3, [9, 9, 9]);
        let c = img.crop(2, 2, 10, 10);
        assert_eq!(c.width(), 2);
        assert_eq!(c.height(), 2);
        assert_eq!(c.get(1, 1), [9, 9, 9]);
    }

    #[test]
    fn mean_rgb_of_uniform_image() {
        let img = Image::filled(5, 5, [10, 20, 30]);
        assert_eq!(img.mean_rgb(), [10.0, 20.0, 30.0]);
        assert_eq!(Image::new(0, 0).mean_rgb(), [0.0; 3]);
    }

    #[test]
    fn blob_roundtrip() {
        let mut img = Image::new(3, 2);
        img.set(1, 1, [5, 6, 7]);
        let blob = img.to_blob();
        let back = Image::from_blob(&blob).unwrap();
        assert_eq!(back, img);
        assert!(Image::from_blob(&blob[..blob.len() - 1]).is_none());
        assert!(Image::from_blob(&[1, 2, 3]).is_none());
    }
}
