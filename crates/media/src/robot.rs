//! The web-robot corpus simulator.
//!
//! The demo paper crawled real images; offline we *simulate* the crawl.
//! The simulator's one job is to produce a corpus in which text and visual
//! content are statistically correlated, because that correlation is what
//! the association thesaurus mines and what dual-coding retrieval exploits.
//! Each image is drawn from a **theme** that fixes
//!
//! * a colour palette (drives the colour-histogram features),
//! * a texture orientation and frequency (drives the Gabor/GLCM/Tamura
//!   features), and
//! * an annotation vocabulary (drives the text channel).
//!
//! A configurable fraction of images is crawled without annotation — those
//! can only be found through the visual channel, which is the paper's
//! motivating scenario.

use crate::image::Image;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A content theme coupling visual appearance and vocabulary.
#[derive(Debug, Clone)]
pub struct Theme {
    /// Theme name (also the ground-truth relevance label).
    pub name: &'static str,
    /// Dominant palette (three RGB anchors).
    pub palette: [[u8; 3]; 3],
    /// Texture orientation in radians.
    pub orientation: f64,
    /// Texture spatial frequency (cycles per pixel).
    pub frequency: f64,
    /// Annotation vocabulary, most characteristic first.
    pub vocab: &'static [&'static str],
}

/// The built-in themes of the simulated library.
pub fn default_themes() -> Vec<Theme> {
    vec![
        Theme {
            name: "sunset",
            palette: [[235, 110, 40], [250, 180, 60], [120, 40, 80]],
            orientation: 0.0,
            frequency: 0.08,
            vocab: &["sunset", "orange", "horizon", "glow", "evening", "sky", "dusk", "warm"],
        },
        Theme {
            name: "forest",
            palette: [[30, 90, 40], [60, 130, 50], [20, 50, 25]],
            orientation: 1.57,
            frequency: 0.25,
            vocab: &["forest", "tree", "green", "leaf", "moss", "trail", "wood", "fern"],
        },
        Theme {
            name: "ocean",
            palette: [[25, 70, 160], [60, 130, 200], [230, 240, 250]],
            orientation: 0.0,
            frequency: 0.18,
            vocab: &["ocean", "wave", "blue", "water", "sea", "surf", "tide", "foam"],
        },
        Theme {
            name: "desert",
            palette: [[210, 170, 110], [235, 200, 140], [180, 130, 80]],
            orientation: 0.4,
            frequency: 0.05,
            vocab: &["desert", "sand", "dune", "arid", "camel", "dry", "heat", "oasis"],
        },
        Theme {
            name: "city",
            palette: [[90, 90, 100], [160, 160, 170], [40, 40, 55]],
            orientation: 1.57,
            frequency: 0.45,
            vocab: &["city", "building", "street", "skyline", "urban", "light", "tower", "night"],
        },
        Theme {
            name: "snow",
            palette: [[235, 240, 250], [200, 215, 235], [150, 170, 200]],
            orientation: 0.8,
            frequency: 0.12,
            vocab: &["snow", "white", "winter", "ice", "mountain", "cold", "frost", "peak"],
        },
    ]
}

/// One crawled item: a URL, the image, an optional annotation, and the
/// ground-truth theme (used only for evaluation, never by the system).
#[derive(Debug, Clone)]
pub struct CrawledImage {
    /// Source URL on the (simulated) web.
    pub url: String,
    /// The image itself.
    pub image: Image,
    /// Manual annotation; `None` for the un-annotated fraction.
    pub annotation: Option<String>,
    /// Ground-truth theme index (into the robot's theme list).
    pub theme: usize,
}

/// Configuration of the simulated crawl.
#[derive(Debug, Clone)]
pub struct RobotConfig {
    /// Number of images to crawl.
    pub n_images: usize,
    /// Image side length in pixels.
    pub image_size: usize,
    /// Fraction of images crawled *without* annotation.
    pub unannotated_fraction: f64,
    /// RNG seed — the whole corpus is deterministic given this.
    pub seed: u64,
}

impl Default for RobotConfig {
    fn default() -> Self {
        RobotConfig { n_images: 60, image_size: 32, unannotated_fraction: 0.3, seed: 42 }
    }
}

/// The corpus simulator.
pub struct WebRobot {
    themes: Vec<Theme>,
    config: RobotConfig,
}

impl WebRobot {
    /// A robot over the default themes.
    pub fn new(config: RobotConfig) -> WebRobot {
        WebRobot { themes: default_themes(), config }
    }

    /// A robot over custom themes.
    pub fn with_themes(themes: Vec<Theme>, config: RobotConfig) -> WebRobot {
        assert!(!themes.is_empty(), "need at least one theme");
        WebRobot { themes, config }
    }

    /// The theme list (for evaluation).
    pub fn themes(&self) -> &[Theme] {
        &self.themes
    }

    /// Run the crawl.
    ///
    /// Theme assignment is *stratified*: every theme appears ⌊n/t⌋ or
    /// ⌈n/t⌉ times in a seed-determined order. Independent per-image theme
    /// draws can starve a theme entirely on small corpora, which would
    /// leave its vocabulary unreachable and its ground-truth relevance set
    /// empty — stratification keeps every theme represented while the
    /// per-image content stays random.
    pub fn crawl(&self) -> Vec<CrawledImage> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut schedule: Vec<usize> =
            (0..self.config.n_images).map(|i| i % self.themes.len()).collect();
        // Fisher–Yates shuffle, driven by the corpus seed
        for i in (1..schedule.len()).rev() {
            let j = rng.gen_range(0..=i);
            schedule.swap(i, j);
        }
        schedule
            .into_iter()
            .enumerate()
            .map(|(i, theme_idx)| {
                let theme = &self.themes[theme_idx];
                let image = render_theme_image(theme, self.config.image_size, &mut rng);
                let annotation = if rng.gen::<f64>() < self.config.unannotated_fraction {
                    None
                } else {
                    Some(generate_annotation(theme, &mut rng))
                };
                CrawledImage {
                    url: format!("http://library.example/{}/{i}.png", theme.name),
                    image,
                    annotation,
                    theme: theme_idx,
                }
            })
            .collect()
    }
}

/// Paint a themed image: palette gradient + oriented grating + blobs +
/// pixel noise.
fn render_theme_image(theme: &Theme, size: usize, rng: &mut StdRng) -> Image {
    let mut img = Image::new(size, size);
    let phase: f64 = rng.gen::<f64>() * std::f64::consts::TAU;
    let (sin_o, cos_o) = theme.orientation.sin_cos();
    for y in 0..size {
        for x in 0..size {
            // vertical palette gradient between anchors 0 and 1
            let t = y as f64 / size.max(1) as f64;
            let base = lerp_rgb(theme.palette[0], theme.palette[1], t);
            // oriented sinusoidal grating modulates brightness
            let u = x as f64 * cos_o + y as f64 * sin_o;
            let grating = (std::f64::consts::TAU * theme.frequency * u + phase).sin() * 28.0;
            let noise = rng.gen_range(-10.0..10.0);
            let px = [
                clamp_u8(base[0] as f64 + grating + noise),
                clamp_u8(base[1] as f64 + grating + noise),
                clamp_u8(base[2] as f64 + grating + noise),
            ];
            img.set(x, y, px);
        }
    }
    // a few blobs of the accent colour
    for _ in 0..rng.gen_range(2..5) {
        let cx = rng.gen_range(0..size);
        let cy = rng.gen_range(0..size);
        let r = rng.gen_range(2..size.max(4) / 3);
        for y in cy.saturating_sub(r)..(cy + r).min(size) {
            for x in cx.saturating_sub(r)..(cx + r).min(size) {
                let dx = x as f64 - cx as f64;
                let dy = y as f64 - cy as f64;
                if dx * dx + dy * dy <= (r * r) as f64 {
                    img.set(x, y, theme.palette[2]);
                }
            }
        }
    }
    img
}

/// Sample an annotation: characteristic theme words plus global noise.
fn generate_annotation(theme: &Theme, rng: &mut StdRng) -> String {
    const FILLER: &[&str] =
        &["photo", "picture", "view", "beautiful", "image", "scene", "taken", "shot"];
    let n_theme_words = rng.gen_range(3..=5);
    let n_filler = rng.gen_range(1..=3);
    let mut words = Vec::with_capacity(n_theme_words + n_filler);
    for _ in 0..n_theme_words {
        // geometric-ish bias towards the most characteristic words
        let idx = (rng.gen::<f64>() * rng.gen::<f64>() * theme.vocab.len() as f64) as usize;
        words.push(theme.vocab[idx.min(theme.vocab.len() - 1)]);
    }
    for _ in 0..n_filler {
        words.push(FILLER[rng.gen_range(0..FILLER.len())]);
    }
    words.join(" ")
}

fn lerp_rgb(a: [u8; 3], b: [u8; 3], t: f64) -> [u8; 3] {
    [
        clamp_u8(a[0] as f64 + (b[0] as f64 - a[0] as f64) * t),
        clamp_u8(a[1] as f64 + (b[1] as f64 - a[1] as f64) * t),
        clamp_u8(a[2] as f64 + (b[2] as f64 - a[2] as f64) * t),
    ]
}

fn clamp_u8(v: f64) -> u8 {
    v.clamp(0.0, 255.0) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crawl_is_deterministic() {
        let cfg = RobotConfig { n_images: 10, ..Default::default() };
        let a = WebRobot::new(cfg.clone()).crawl();
        let b = WebRobot::new(cfg).crawl();
        assert_eq!(a.len(), 10);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.url, y.url);
            assert_eq!(x.annotation, y.annotation);
            assert_eq!(x.image, y.image);
            assert_eq!(x.theme, y.theme);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = WebRobot::new(RobotConfig { seed: 1, ..Default::default() }).crawl();
        let b = WebRobot::new(RobotConfig { seed: 2, ..Default::default() }).crawl();
        assert!(a.iter().zip(&b).any(|(x, y)| x.image != y.image));
    }

    #[test]
    fn unannotated_fraction_is_respected() {
        let cfg = RobotConfig { n_images: 200, unannotated_fraction: 0.3, ..Default::default() };
        let corpus = WebRobot::new(cfg).crawl();
        let missing = corpus.iter().filter(|c| c.annotation.is_none()).count();
        let frac = missing as f64 / 200.0;
        assert!((0.15..=0.45).contains(&frac), "fraction {frac}");
        // all-annotated and none-annotated configurations
        let all = WebRobot::new(RobotConfig {
            n_images: 20,
            unannotated_fraction: 0.0,
            ..Default::default()
        })
        .crawl();
        assert!(all.iter().all(|c| c.annotation.is_some()));
    }

    #[test]
    fn annotations_use_theme_vocabulary() {
        let robot = WebRobot::new(RobotConfig { n_images: 50, ..Default::default() });
        let corpus = robot.crawl();
        let themes = robot.themes();
        for c in corpus.iter().filter(|c| c.annotation.is_some()) {
            let ann = c.annotation.as_ref().unwrap();
            let vocab = themes[c.theme].vocab;
            let hits = ann.split(' ').filter(|w| vocab.contains(w)).count();
            assert!(hits >= 3, "annotation '{ann}' lacks theme words");
        }
    }

    #[test]
    fn themed_images_have_distinct_palettes() {
        let themes = default_themes();
        let mut rng = StdRng::seed_from_u64(7);
        let sunset = render_theme_image(&themes[0], 32, &mut rng);
        let forest = render_theme_image(&themes[1], 32, &mut rng);
        let s = sunset.mean_rgb();
        let f = forest.mean_rgb();
        // sunset is red-dominant, forest green-dominant
        assert!(s[0] > s[2], "sunset {s:?}");
        assert!(f[1] > f[0], "forest {f:?}");
    }

    #[test]
    fn urls_are_unique() {
        let corpus = WebRobot::new(RobotConfig::default()).crawl();
        let mut urls: Vec<_> = corpus.iter().map(|c| c.url.clone()).collect();
        urls.sort();
        urls.dedup();
        assert_eq!(urls.len(), corpus.len());
    }
}
