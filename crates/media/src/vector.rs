//! Feature vectors.

/// A dense feature vector in one feature space.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureVector {
    values: Vec<f64>,
}

impl FeatureVector {
    /// Wrap raw values.
    pub fn new(values: Vec<f64>) -> FeatureVector {
        FeatureVector { values }
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.values.len()
    }

    /// The raw values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Consume into the raw values.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Euclidean distance to another vector (must have equal dims).
    pub fn distance(&self, other: &FeatureVector) -> f64 {
        debug_assert_eq!(self.dims(), other.dims());
        self.values.iter().zip(&other.values).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
    }

    /// L1-normalise in place (histograms sum to 1; zero vectors stay zero).
    pub fn normalize_l1(&mut self) {
        let s: f64 = self.values.iter().map(|v| v.abs()).sum();
        if s > 0.0 {
            for v in &mut self.values {
                *v /= s;
            }
        }
    }

    /// Serialise as a compact string reference (`v:0.1,0.2,…`) — the form
    /// stored in `Atomic<Vector>` columns.
    pub fn to_ref(&self) -> String {
        let mut s = String::from("v:");
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{v:.6}"));
        }
        s
    }

    /// Parse a reference produced by [`FeatureVector::to_ref`].
    pub fn from_ref(s: &str) -> Option<FeatureVector> {
        let body = s.strip_prefix("v:")?;
        if body.is_empty() {
            return Some(FeatureVector::new(Vec::new()));
        }
        let values: Option<Vec<f64>> = body.split(',').map(|p| p.parse::<f64>().ok()).collect();
        Some(FeatureVector::new(values?))
    }
}

impl From<Vec<f64>> for FeatureVector {
    fn from(values: Vec<f64>) -> Self {
        FeatureVector::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_and_dims() {
        let a = FeatureVector::new(vec![0.0, 0.0]);
        let b = FeatureVector::new(vec![3.0, 4.0]);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.dims(), 2);
    }

    #[test]
    fn l1_normalisation() {
        let mut v = FeatureVector::new(vec![1.0, 3.0]);
        v.normalize_l1();
        assert_eq!(v.values(), &[0.25, 0.75]);
        let mut z = FeatureVector::new(vec![0.0, 0.0]);
        z.normalize_l1();
        assert_eq!(z.values(), &[0.0, 0.0]);
    }

    #[test]
    fn ref_roundtrip() {
        let v = FeatureVector::new(vec![0.125, -2.5]);
        let r = v.to_ref();
        assert!(r.starts_with("v:"));
        let back = FeatureVector::from_ref(&r).unwrap();
        assert!((back.values()[0] - 0.125).abs() < 1e-6);
        assert!((back.values()[1] + 2.5).abs() < 1e-6);
        assert!(FeatureVector::from_ref("nope").is_none());
        assert_eq!(FeatureVector::from_ref("v:").unwrap().dims(), 0);
    }
}
