//! The two colour-histogram feature daemons of the demo system.

use crate::image::Image;
use crate::vector::FeatureVector;
use crate::FeatureExtractor;

/// RGB cube histogram: each channel quantised into `bins` levels,
/// producing a `bins³`-dimensional L1-normalised histogram.
#[derive(Debug, Clone)]
pub struct RgbHistogram {
    /// Quantisation levels per channel.
    pub bins: usize,
}

impl Default for RgbHistogram {
    fn default() -> Self {
        RgbHistogram { bins: 4 }
    }
}

impl FeatureExtractor for RgbHistogram {
    fn space(&self) -> &'static str {
        "rgb"
    }

    fn dims(&self) -> usize {
        self.bins * self.bins * self.bins
    }

    fn extract(&self, image: &Image) -> FeatureVector {
        let b = self.bins;
        let mut hist = vec![0f64; b * b * b];
        for p in image.pixels() {
            let r = (p[0] as usize * b) / 256;
            let g = (p[1] as usize * b) / 256;
            let bl = (p[2] as usize * b) / 256;
            hist[(r * b + g) * b + bl] += 1.0;
        }
        let mut v = FeatureVector::new(hist);
        v.normalize_l1();
        v
    }
}

/// HSV histogram: hue × saturation × value quantised independently
/// (`8 × 3 × 3` by default), L1-normalised.
#[derive(Debug, Clone)]
pub struct HsvHistogram {
    /// Hue bins.
    pub hue_bins: usize,
    /// Saturation bins.
    pub sat_bins: usize,
    /// Value bins.
    pub val_bins: usize,
}

impl Default for HsvHistogram {
    fn default() -> Self {
        HsvHistogram { hue_bins: 8, sat_bins: 3, val_bins: 3 }
    }
}

impl FeatureExtractor for HsvHistogram {
    fn space(&self) -> &'static str {
        "hsv"
    }

    fn dims(&self) -> usize {
        self.hue_bins * self.sat_bins * self.val_bins
    }

    fn extract(&self, image: &Image) -> FeatureVector {
        let mut hist = vec![0f64; self.dims()];
        for p in image.pixels() {
            let (h, s, v) = rgb_to_hsv(*p);
            let hb = ((h / 360.0) * self.hue_bins as f64) as usize % self.hue_bins.max(1);
            let sb = (s * self.sat_bins as f64).min(self.sat_bins as f64 - 1.0) as usize;
            let vb = (v * self.val_bins as f64).min(self.val_bins as f64 - 1.0) as usize;
            hist[(hb * self.sat_bins + sb) * self.val_bins + vb] += 1.0;
        }
        let mut out = FeatureVector::new(hist);
        out.normalize_l1();
        out
    }
}

/// RGB → HSV with h ∈ [0, 360), s, v ∈ [0, 1].
pub fn rgb_to_hsv(rgb: [u8; 3]) -> (f64, f64, f64) {
    let r = rgb[0] as f64 / 255.0;
    let g = rgb[1] as f64 / 255.0;
    let b = rgb[2] as f64 / 255.0;
    let max = r.max(g).max(b);
    let min = r.min(g).min(b);
    let delta = max - min;
    let h = if delta == 0.0 {
        0.0
    } else if max == r {
        60.0 * (((g - b) / delta).rem_euclid(6.0))
    } else if max == g {
        60.0 * ((b - r) / delta + 2.0)
    } else {
        60.0 * ((r - g) / delta + 4.0)
    };
    let s = if max == 0.0 { 0.0 } else { delta / max };
    (h, s, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rgb_histogram_of_uniform_image_is_one_hot() {
        let img = Image::filled(8, 8, [255, 0, 0]);
        let v = RgbHistogram::default().extract(&img);
        let nonzero: Vec<_> = v.values().iter().filter(|&&x| x > 0.0).collect();
        assert_eq!(nonzero.len(), 1);
        assert!((v.values().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rgb_histogram_separates_colors() {
        let red = RgbHistogram::default().extract(&Image::filled(8, 8, [250, 10, 10]));
        let blue = RgbHistogram::default().extract(&Image::filled(8, 8, [10, 10, 250]));
        assert!(red.distance(&blue) > 0.5);
    }

    #[test]
    fn hsv_conversion_known_points() {
        let (h, s, v) = rgb_to_hsv([255, 0, 0]);
        assert!((h - 0.0).abs() < 1e-9 && (s - 1.0).abs() < 1e-9 && (v - 1.0).abs() < 1e-9);
        let (h, _, _) = rgb_to_hsv([0, 255, 0]);
        assert!((h - 120.0).abs() < 1e-9);
        let (h, _, _) = rgb_to_hsv([0, 0, 255]);
        assert!((h - 240.0).abs() < 1e-9);
        let (_, s, v) = rgb_to_hsv([0, 0, 0]);
        assert_eq!((s, v), (0.0, 0.0));
        let (h2, s2, _) = rgb_to_hsv([128, 128, 128]);
        assert_eq!((h2, s2), (0.0, 0.0)); // grey has no hue/saturation
    }

    #[test]
    fn hsv_histogram_close_hues_cluster() {
        let h = HsvHistogram::default();
        let orange1 = h.extract(&Image::filled(8, 8, [250, 120, 30]));
        let orange2 = h.extract(&Image::filled(8, 8, [245, 130, 40]));
        let green = h.extract(&Image::filled(8, 8, [40, 200, 60]));
        assert!(orange1.distance(&orange2) < orange1.distance(&green));
    }

    #[test]
    fn histograms_have_declared_dims() {
        let img = Image::filled(4, 4, [1, 2, 3]);
        let r = RgbHistogram { bins: 2 };
        assert_eq!(r.extract(&img).dims(), 8);
        let h = HsvHistogram { hue_bins: 4, sat_bins: 2, val_bins: 2 };
        assert_eq!(h.extract(&img).dims(), 16);
    }
}
