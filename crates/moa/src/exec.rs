//! The execution facade: parse → rewrite → flatten → execute.

use crate::expr::Expr;
use crate::flatten::{identity_plan, Compiler, Rep};
use crate::opt::{PassCtx, Pipeline, PlanHints};
use crate::params::QueryParams;
use crate::parser::parse_expr;
use crate::rewrite::{rewrite_logical, OptConfig};
use crate::{Env, MoaError, Result};
use monet::{ExecStats, Executor, Oid, Plan, Val};
use std::sync::Arc;

/// The result of a Moa query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// A set of object identifiers (result of `select[...](C)`).
    Oids(Vec<Oid>),
    /// `(oid, value)` pairs (result of `map[...](C)`); may contain several
    /// rows per oid for nested results.
    Pairs(Vec<(Oid, Val)>),
    /// A single scalar (whole-collection aggregates).
    Scalar(Val),
}

impl QueryOutput {
    /// The pairs, if this is a pair result.
    pub fn pairs(&self) -> Option<&[(Oid, Val)]> {
        match self {
            QueryOutput::Pairs(p) => Some(p),
            _ => None,
        }
    }

    /// The scalar, if this is a scalar result.
    pub fn scalar(&self) -> Option<&Val> {
        match self {
            QueryOutput::Scalar(v) => Some(v),
            _ => None,
        }
    }

    /// Number of result rows.
    pub fn len(&self) -> usize {
        match self {
            QueryOutput::Oids(v) => v.len(),
            QueryOutput::Pairs(v) => v.len(),
            QueryOutput::Scalar(_) => 1,
        }
    }

    /// True if the result holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A query engine bound to an environment.
pub struct MoaEngine {
    env: Arc<Env>,
    /// Optimiser configuration applied to every query.
    pub opt: OptConfig,
    /// The registered optimizer pass pipeline ([`Pipeline::standard`] by
    /// default); every query's physical plan runs through it.
    pub pipeline: Pipeline,
}

impl MoaEngine {
    /// Create an engine over an environment.
    pub fn new(env: Arc<Env>) -> Self {
        MoaEngine { env, opt: OptConfig::default(), pipeline: Pipeline::standard() }
    }

    /// Create an engine with explicit optimiser switches.
    pub fn with_opt(env: Arc<Env>, opt: OptConfig) -> Self {
        MoaEngine { env, opt, pipeline: Pipeline::standard() }
    }

    /// The underlying environment.
    pub fn env(&self) -> &Arc<Env> {
        &self.env
    }

    /// Run a textual Moa query.
    pub fn query(&self, src: &str) -> Result<QueryOutput> {
        let expr = parse_expr(src)?;
        self.query_expr(&expr)
    }

    /// Run a textual Moa query with request-scoped parameters: bindings are
    /// resolved from `params` (falling back to the environment), and a
    /// top-k budget fuses the plan into a streaming top-k operator when the
    /// shape allows — returning only the k best rows with nonzero belief
    /// mass (see [`QueryParams::with_top_k`]). Concurrent callers never
    /// touch the shared `Env` maps.
    pub fn query_with(&self, src: &str, params: &QueryParams) -> Result<QueryOutput> {
        let expr = parse_expr(src)?;
        Ok(self.query_expr_params(&expr, params)?.0)
    }

    /// Run a query given as an AST.
    pub fn query_expr(&self, expr: &Expr) -> Result<QueryOutput> {
        Ok(self.query_with_stats(expr)?.0)
    }

    /// Run a query and return execution statistics alongside the result.
    pub fn query_with_stats(&self, expr: &Expr) -> Result<(QueryOutput, ExecStats)> {
        self.query_expr_params(expr, &QueryParams::default())
    }

    /// Run an AST with request-scoped parameters, returning execution
    /// statistics alongside the result — the serving layer's entry point.
    pub fn query_expr_params(
        &self,
        expr: &Expr,
        params: &QueryParams,
    ) -> Result<(QueryOutput, ExecStats)> {
        let (rep, plan, hints) = self.compile_params(expr, params)?;
        let exec = self.executor(hints);
        let (bat, stats) = exec.run(&plan).map_err(MoaError::from)?;
        let out = match rep {
            Rep::Rows { .. } => {
                let mut oids = Vec::with_capacity(bat.count());
                for i in 0..bat.count() {
                    oids.push(bat.head().oid_at(i).map_err(MoaError::from)?);
                }
                QueryOutput::Oids(oids)
            }
            Rep::Vals { .. } => {
                let mut pairs = Vec::with_capacity(bat.count());
                for i in 0..bat.count() {
                    let (h, t) = bat.fetch(i).map_err(MoaError::from)?;
                    let oid = h
                        .as_oid()
                        .ok_or_else(|| MoaError::Type("non-oid head in value result".into()))?;
                    pairs.push((oid, t));
                }
                QueryOutput::Pairs(pairs)
            }
            Rep::Scalar { .. } => {
                let v = bat.fetch(0).map_err(MoaError::from)?.1;
                QueryOutput::Scalar(v)
            }
            other => {
                return Err(MoaError::Unsupported(format!(
                    "query evaluates to a binding, not data: {other:?}"
                )))
            }
        };
        Ok((out, stats))
    }

    /// EXPLAIN: the physical plan a query compiles to, after rewriting.
    pub fn explain(&self, src: &str) -> Result<String> {
        self.explain_with(src, &QueryParams::default())
    }

    /// EXPLAIN with request-scoped parameters — shows the fused top-k plan
    /// when a budget is set and the shape fuses, plus which optimizer
    /// passes changed the plan.
    pub fn explain_with(&self, src: &str, params: &QueryParams) -> Result<String> {
        let expr = parse_expr(src)?;
        let rewritten = rewrite_logical(&expr, &self.env, self.opt);
        let (_, plan, hints) = self.compile_rewritten(&rewritten, params)?;
        let passes = if hints.passes_fired.is_empty() {
            String::new()
        } else {
            format!("-- passes: {} --\n", hints.passes_fired.join(", "))
        };
        Ok(format!("-- logical --\n{rewritten}\n-- physical --\n{passes}{}", plan.explain()))
    }

    /// EXPLAIN ANALYZE with request-scoped parameters: compile, execute,
    /// and render the physical plan with the optimizer's *estimated*
    /// cardinality (`est≈N`) next to the *actual* rows each operator
    /// produced — the estimated-vs-actual view of the statistics-driven
    /// optimizer.
    pub fn explain_analyze(&self, src: &str, params: &QueryParams) -> Result<String> {
        let expr = parse_expr(src)?;
        let rewritten = rewrite_logical(&expr, &self.env, self.opt);
        let (_, plan, hints) = self.compile_rewritten(&rewritten, params)?;
        let passes = if hints.passes_fired.is_empty() {
            String::new()
        } else {
            format!("-- passes: {} --\n", hints.passes_fired.join(", "))
        };
        let exec = self.executor(hints);
        let text = exec.explain(&plan).map_err(MoaError::from)?;
        Ok(format!("-- logical --\n{rewritten}\n{passes}{text}"))
    }

    /// Build a kernel executor configured from the optimiser switches and a
    /// compiled plan's hints (estimates and per-node degree caps).
    fn executor(&self, hints: PlanHints) -> Executor<'_> {
        let mut exec = Executor::new(self.env.catalog(), self.env.ops());
        exec.memoize = self.opt.memoize;
        exec.degree = monet::fragment::resolve_degree(self.opt.parallelism);
        if self.opt.stats_driven {
            if !hints.est_rows.is_empty() {
                exec.est_rows = Some(Arc::new(hints.est_rows));
            }
            if !hints.degree_cap.is_empty() {
                exec.degree_hints = Some(Arc::new(hints.degree_cap));
            }
        }
        exec
    }

    /// Compile an AST to its final physical plan: logical rewrite, flatten
    /// (with request bindings), then the optimizer pass pipeline (peephole,
    /// statistics-driven reordering/placement, top-k fusion).
    fn compile_params(&self, expr: &Expr, params: &QueryParams) -> Result<(Rep, Plan, PlanHints)> {
        let rewritten = rewrite_logical(expr, &self.env, self.opt);
        self.compile_rewritten(&rewritten, params)
    }

    /// The post-logical-rewrite half of [`Self::compile_params`].
    fn compile_rewritten(
        &self,
        rewritten: &Expr,
        params: &QueryParams,
    ) -> Result<(Rep, Plan, PlanHints)> {
        let rep = Compiler::with_params(&self.env, params).compile(rewritten)?;
        let plan = self.rep_plan(&rep);
        let top_k = match (&rep, params.top_k()) {
            (Rep::Vals { multi: false, .. }, Some(k)) => Some(k),
            _ => None,
        };
        let ctx = PassCtx { cfg: self.opt, stats: self.env.stats(), ops: self.env.ops(), top_k };
        let (plan, hints) = self.pipeline.optimize(&plan, &ctx);
        Ok((rep, plan, hints))
    }

    fn rep_plan(&self, rep: &Rep) -> Plan {
        match rep {
            Rep::Rows { coll, domain } => identity_plan(coll, domain),
            Rep::Vals { plan, .. } => plan.clone(),
            Rep::Scalar { plan, .. } => plan.clone(),
            // bindings have no plan; callers reject them after execution
            Rep::Query(_) | Rep::Stats(_) => Plan::load("__binding__"),
            Rep::Lit(v) => Plan::Const(Arc::new(monet::Bat::dense(
                monet::Column::from_vals(std::slice::from_ref(v)).expect("literal column"),
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_define;
    use crate::value::MoaVal;

    fn engine() -> MoaEngine {
        let env = Env::new();
        let (n, ty) = parse_define(
            "define Lib as SET<TUPLE<
                Atomic<URL>: source, Atomic<int>: size, Atomic<float>: score >>;",
        )
        .unwrap();
        let rows: Vec<MoaVal> = (0..6)
            .map(|i| {
                MoaVal::Tuple(vec![
                    MoaVal::Str(format!("u{i}")),
                    MoaVal::Int(100 * (i + 1)),
                    MoaVal::Float(0.1 * (5 - i) as f64),
                ])
            })
            .collect();
        env.create_collection(n, ty, rows).unwrap();
        MoaEngine::new(Arc::new(env))
    }

    #[test]
    fn select_returns_oids() {
        let e = engine();
        let out = e.query("select[THIS.size >= 400](Lib)").unwrap();
        assert_eq!(out, QueryOutput::Oids(vec![3, 4, 5]));
    }

    #[test]
    fn map_returns_pairs() {
        let e = engine();
        let out = e.query("map[THIS.size](Lib)").unwrap();
        let pairs = out.pairs().unwrap();
        assert_eq!(pairs.len(), 6);
        assert_eq!(pairs[2], (2, Val::Int(300)));
    }

    #[test]
    fn count_returns_scalar() {
        let e = engine();
        let out = e.query("count(Lib)").unwrap();
        assert_eq!(out.scalar(), Some(&Val::Int(6)));
    }

    #[test]
    fn optimised_and_unoptimised_agree() {
        let env = {
            let e = engine();
            Arc::clone(e.env())
        };
        let q = "map[THIS.score * 2 * 3](select[THIS.size > 100](Lib))";
        let opt = MoaEngine::with_opt(Arc::clone(&env), OptConfig::default());
        let raw = MoaEngine::with_opt(env, OptConfig::none());
        let a = opt.query(q).unwrap();
        let b = raw.query(q).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn stats_report_fewer_ops_with_memoisation() {
        let e = engine();
        // same subexpression twice via or-predicate on the same attribute
        let q = "select[THIS.size > 100 or THIS.size > 100](Lib)";
        let expr = parse_expr(q).unwrap();
        let (_, stats) = e.query_with_stats(&expr).unwrap();
        assert!(stats.memo_hits > 0);
    }

    #[test]
    fn explain_shows_both_levels() {
        let e = engine();
        let text = e.explain("map[THIS.size](Lib)").unwrap();
        assert!(text.contains("-- logical --"));
        assert!(text.contains("load(Lib__size)"));
    }

    #[test]
    fn query_binding_alone_is_rejected() {
        let e = engine();
        e.env().bind_query("query", vec![("x".into(), 1.0)]);
        assert!(e.query("query").is_err());
    }
}
