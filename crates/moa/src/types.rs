//! The structure type system.
//!
//! Types are built from atomic base types by applying *structures*:
//! `TUPLE<…>`, `SET<…>`, `LIST<…>` from the Moa kernel, plus extension
//! structures registered by name (the paper's `CONTREP<Text>`). The atomic
//! domain names used in the Mirror demo (`URL`, `Text`, `Image`, `Vector`)
//! are distinct logical types that all map onto physical base types —
//! that translation is the data-independence seam.

use crate::{MoaError, Result};
use monet::MonetType;
use std::fmt;

/// Atomic (non-structured) logical types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomicType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// Plain string.
    Str,
    /// A URL referencing media on the media server.
    Url,
    /// Natural-language text.
    Text,
    /// An image (stored by reference; pixels live on the media server).
    Image,
    /// A feature vector (stored by reference into the feature store).
    Vector,
}

impl AtomicType {
    /// The physical base type this logical atom maps to.
    pub fn physical(self) -> MonetType {
        match self {
            AtomicType::Int => MonetType::Int,
            AtomicType::Float => MonetType::Float,
            AtomicType::Str
            | AtomicType::Url
            | AtomicType::Text
            | AtomicType::Image
            | AtomicType::Vector => MonetType::Str,
        }
    }

    /// Parse an atomic type name as it appears inside `Atomic<…>`.
    pub fn parse(name: &str) -> Result<AtomicType> {
        match name {
            "int" | "Int" | "integer" => Ok(AtomicType::Int),
            "float" | "Float" | "dbl" => Ok(AtomicType::Float),
            "str" | "Str" | "string" | "String" => Ok(AtomicType::Str),
            "URL" | "Url" => Ok(AtomicType::Url),
            "Text" | "text" => Ok(AtomicType::Text),
            "Image" | "image" => Ok(AtomicType::Image),
            "Vector" | "vector" => Ok(AtomicType::Vector),
            other => Err(MoaError::Type(format!("unknown atomic type '{other}'"))),
        }
    }
}

impl fmt::Display for AtomicType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AtomicType::Int => "int",
            AtomicType::Float => "float",
            AtomicType::Str => "str",
            AtomicType::Url => "URL",
            AtomicType::Text => "Text",
            AtomicType::Image => "Image",
            AtomicType::Vector => "Vector",
        };
        f.write_str(s)
    }
}

/// A Moa logical type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MoaType {
    /// `Atomic<T>`.
    Atomic(AtomicType),
    /// `TUPLE<t1: n1, …>` — named, ordered fields.
    Tuple(Vec<(String, MoaType)>),
    /// `SET<T>` — a multi-set.
    Set(Box<MoaType>),
    /// `LIST<T>` — an ordered collection (H.E. Blok's extension).
    List(Box<MoaType>),
    /// An extension structure, e.g. `CONTREP<Text>`.
    Ext {
        /// Registered structure name.
        name: String,
        /// The parameter type.
        param: Box<MoaType>,
    },
}

impl MoaType {
    /// Shorthand for `SET<TUPLE<fields>>` — the shape of every collection.
    pub fn set_of_tuple(fields: Vec<(&str, MoaType)>) -> MoaType {
        MoaType::Set(Box::new(MoaType::Tuple(
            fields.into_iter().map(|(n, t)| (n.to_string(), t)).collect(),
        )))
    }

    /// The element type if this is a `SET`/`LIST`.
    pub fn elem(&self) -> Option<&MoaType> {
        match self {
            MoaType::Set(t) | MoaType::List(t) => Some(t),
            _ => None,
        }
    }

    /// The fields if this is a `TUPLE`.
    pub fn fields(&self) -> Option<&[(String, MoaType)]> {
        match self {
            MoaType::Tuple(fs) => Some(fs),
            _ => None,
        }
    }

    /// Look up a tuple field type by name.
    pub fn field(&self, name: &str) -> Option<&MoaType> {
        self.fields()?.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// True for `Atomic` of a numeric base type.
    pub fn is_numeric(&self) -> bool {
        matches!(self, MoaType::Atomic(AtomicType::Int) | MoaType::Atomic(AtomicType::Float))
    }

    /// Depth of structure nesting (an `Atomic` has depth 0).
    pub fn depth(&self) -> usize {
        match self {
            MoaType::Atomic(_) => 0,
            MoaType::Tuple(fs) => 1 + fs.iter().map(|(_, t)| t.depth()).max().unwrap_or(0),
            MoaType::Set(t) | MoaType::List(t) => 1 + t.depth(),
            MoaType::Ext { param, .. } => 1 + param.depth(),
        }
    }
}

impl fmt::Display for MoaType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MoaType::Atomic(a) => write!(f, "Atomic<{a}>"),
            MoaType::Tuple(fields) => {
                write!(f, "TUPLE<")?;
                for (i, (n, t)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}: {n}")?;
                }
                write!(f, ">")
            }
            MoaType::Set(t) => write!(f, "SET<{t}>"),
            MoaType::List(t) => write!(f, "LIST<{t}>"),
            MoaType::Ext { name, param } => write!(f, "{name}<{param}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_physical_mapping() {
        assert_eq!(AtomicType::Int.physical(), MonetType::Int);
        assert_eq!(AtomicType::Url.physical(), MonetType::Str);
        assert_eq!(AtomicType::Vector.physical(), MonetType::Str);
    }

    #[test]
    fn atomic_parse() {
        assert_eq!(AtomicType::parse("URL").unwrap(), AtomicType::Url);
        assert_eq!(AtomicType::parse("Text").unwrap(), AtomicType::Text);
        assert!(AtomicType::parse("Widget").is_err());
    }

    #[test]
    fn display_roundtrip_shape() {
        let t = MoaType::set_of_tuple(vec![
            ("source", MoaType::Atomic(AtomicType::Url)),
            (
                "annotation",
                MoaType::Ext {
                    name: "CONTREP".into(),
                    param: Box::new(MoaType::Atomic(AtomicType::Text)),
                },
            ),
        ]);
        let s = t.to_string();
        assert_eq!(s, "SET<TUPLE<Atomic<URL>: source, CONTREP<Atomic<Text>>: annotation>>");
    }

    #[test]
    fn field_lookup_and_elem() {
        let t = MoaType::set_of_tuple(vec![("x", MoaType::Atomic(AtomicType::Int))]);
        let elem = t.elem().unwrap();
        assert_eq!(elem.field("x"), Some(&MoaType::Atomic(AtomicType::Int)));
        assert_eq!(elem.field("y"), None);
    }

    #[test]
    fn numeric_and_depth() {
        assert!(MoaType::Atomic(AtomicType::Float).is_numeric());
        assert!(!MoaType::Atomic(AtomicType::Text).is_numeric());
        let t = MoaType::set_of_tuple(vec![(
            "inner",
            MoaType::Set(Box::new(MoaType::Atomic(AtomicType::Float))),
        )]);
        assert_eq!(t.depth(), 3);
    }
}
