//! Structural extensibility — the open complex-object system.
//!
//! Moa is "more than just an implementation of NF² algebra": new structures
//! can be registered at run time, with three responsibilities:
//!
//! 1. **typing** — validate their parameter type;
//! 2. **flattening** — decompose a column of raw payloads into BATs in the
//!    kernel catalog (and register any physical operators they need);
//! 3. **compilation** — translate method calls appearing in Moa
//!    expressions (the paper's `getBL`) into physical plans.
//!
//! The kernel of Moa ships `TUPLE`, `SET` and `LIST`; the IR crate
//! registers `CONTREP` through this exact interface, and tests register toy
//! structures to prove the seam carries no IR-specific assumptions.

use crate::types::MoaType;
use crate::{MoaError, Result};
use monet::{Catalog, Oid, OpRegistry, Plan, Val};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Arguments handed to a structure method compilation.
#[derive(Default)]
pub struct CallArgs<'a> {
    /// Weighted query terms, when a bound query variable was passed.
    pub query: Option<&'a [(String, f64)]>,
    /// Name of the statistics binding, when passed (`stats`).
    pub stats: Option<&'a str>,
    /// Optional domain restriction: a plan producing `[oid, oid]` for the
    /// surviving parent objects. Structures should exploit it (e.g. rank
    /// only surviving documents) — this is what selection pushdown buys.
    pub domain: Option<&'a Plan>,
    /// Additional scalar arguments.
    pub extra: Vec<Val>,
}

/// A registered Moa structure.
pub trait Structure: Send + Sync {
    /// The structure's name as written in schemas (`CONTREP`).
    fn name(&self) -> &str;

    /// Validate the parameter type (`CONTREP<Text>` accepts `Text`).
    fn check_param(&self, param: &MoaType) -> Result<()>;

    /// Flatten a column of raw payloads (one `Option<String>` per object,
    /// `None` = absent) into BATs registered under `prefix` in `catalog`,
    /// and register any physical operators into `ops`. `param` is the
    /// structure's type parameter, letting one structure support several
    /// payload interpretations (e.g. `CONTREP<Text>` vs `CONTREP<Image>`).
    fn build(
        &self,
        values: &[Option<String>],
        param: &MoaType,
        catalog: &Catalog,
        ops: &OpRegistry,
        prefix: &str,
    ) -> Result<()>;

    /// Compile `method` over the flattened representation at `prefix` into
    /// a physical plan producing `[parent_oid, value]`.
    fn compile_call(&self, method: &str, prefix: &str, args: &CallArgs<'_>) -> Result<Plan>;

    /// The logical type of one element of `method`'s result set (e.g.
    /// `getBL` yields `SET<Atomic<float>>` per object, so this returns
    /// `Atomic<float>`).
    fn method_result_elem(&self, method: &str) -> Result<MoaType>;

    /// Object-at-a-time evaluation of `method` for a single object — the
    /// baseline execution model. Returns the member values of the result
    /// set for that object. Used by [`crate::naive::NaiveEngine`] only.
    fn eval_object(
        &self,
        prefix: &str,
        oid: Oid,
        method: &str,
        args: &CallArgs<'_>,
    ) -> Result<Vec<f64>>;
}

/// A thread-safe registry of structures.
#[derive(Default)]
pub struct StructRegistry {
    map: RwLock<HashMap<String, Arc<dyn Structure>>>,
}

impl StructRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a structure under its own name.
    pub fn register(&self, s: Arc<dyn Structure>) {
        self.map.write().insert(s.name().to_string(), s);
    }

    /// Look up a structure.
    pub fn get(&self, name: &str) -> Result<Arc<dyn Structure>> {
        self.map
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| MoaError::Unknown(format!("structure '{name}'")))
    }

    /// True if `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.map.read().contains_key(name)
    }

    /// Registered structure names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.map.read().keys().cloned().collect();
        v.sort();
        v
    }
}

impl std::fmt::Debug for StructRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StructRegistry").field("structures", &self.names()).finish()
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! A toy extension structure used by unit tests across the crate: it
    //! stores, per object, the *length in characters* of the payload, and
    //! exposes one method `getLen` returning a singleton set with that
    //! length. It proves that nothing in the compiler is CONTREP-specific.

    use super::*;
    use monet::{Bat, Column};

    /// Toy structure `LENREP<Text>`.
    pub struct LenRep;

    impl Structure for LenRep {
        fn name(&self) -> &str {
            "LENREP"
        }

        fn check_param(&self, param: &MoaType) -> Result<()> {
            if matches!(param, MoaType::Atomic(_)) {
                Ok(())
            } else {
                Err(MoaError::Type("LENREP needs an atomic parameter".into()))
            }
        }

        fn build(
            &self,
            values: &[Option<String>],
            _param: &MoaType,
            catalog: &Catalog,
            _ops: &OpRegistry,
            prefix: &str,
        ) -> Result<()> {
            let lens: Vec<i64> = values
                .iter()
                .map(|v| v.as_deref().map_or(0, |s| s.chars().count() as i64))
                .collect();
            catalog.register(format!("{prefix}__len"), Bat::dense(Column::Int(lens)));
            Ok(())
        }

        fn compile_call(&self, method: &str, prefix: &str, args: &CallArgs<'_>) -> Result<Plan> {
            if method != "getLen" {
                return Err(MoaError::Unknown(format!("LENREP method '{method}'")));
            }
            let load = Plan::load(format!("{prefix}__len"));
            Ok(match args.domain {
                Some(d) => Plan::Semijoin { left: Box::new(load), right: Box::new(d.clone()) },
                None => load,
            })
        }

        fn method_result_elem(&self, method: &str) -> Result<MoaType> {
            if method == "getLen" {
                Ok(MoaType::Atomic(crate::types::AtomicType::Int))
            } else {
                Err(MoaError::Unknown(format!("LENREP method '{method}'")))
            }
        }

        fn eval_object(
            &self,
            _prefix: &str,
            _oid: Oid,
            _method: &str,
            _args: &CallArgs<'_>,
        ) -> Result<Vec<f64>> {
            Err(MoaError::Unsupported("LENREP naive evaluation".into()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::LenRep;
    use super::*;
    use crate::types::AtomicType;

    #[test]
    fn registry_roundtrip() {
        let reg = StructRegistry::new();
        assert!(!reg.contains("LENREP"));
        reg.register(Arc::new(LenRep));
        assert!(reg.contains("LENREP"));
        assert_eq!(reg.names(), vec!["LENREP".to_string()]);
        let s = reg.get("LENREP").unwrap();
        assert!(s.check_param(&MoaType::Atomic(AtomicType::Text)).is_ok());
        assert!(s.check_param(&MoaType::Set(Box::new(MoaType::Atomic(AtomicType::Int)))).is_err());
    }

    #[test]
    fn unknown_structure_errors() {
        let reg = StructRegistry::new();
        assert!(matches!(reg.get("CONTREP"), Err(MoaError::Unknown(_))));
    }

    #[test]
    fn toy_structure_builds_bats() {
        let reg = StructRegistry::new();
        reg.register(Arc::new(LenRep));
        let cat = Catalog::new();
        let ops = OpRegistry::new();
        let s = reg.get("LENREP").unwrap();
        s.build(
            &[Some("abc".into()), None, Some("hello".into())],
            &MoaType::Atomic(AtomicType::Text),
            &cat,
            &ops,
            "C__notes",
        )
        .unwrap();
        let b = cat.get("C__notes__len").unwrap();
        assert_eq!(b.tail().int_slice().unwrap(), &[3, 0, 5]);
    }
}
