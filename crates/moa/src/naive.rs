//! The object-at-a-time baseline interpreter.
//!
//! Before \[BWK98\], object algebras were typically *interpreted*: the engine
//! walks the logical expression once per object, materialising intermediate
//! value trees. This module implements that execution model faithfully —
//! per-object dynamic dispatch, per-object hash lookups, no set-at-a-time
//! operators — so the scalability experiment (E1) can compare it against
//! the flattened pipeline on identical data and queries.
//!
//! The interpreter requires the environment to have been built with
//! `keep_raw = true`, so the logical rows are available as value trees.

use crate::expr::{ArithKind, CmpOp, Expr, Lit};
use crate::structure::CallArgs;
use crate::types::MoaType;
use crate::value::MoaVal;
use crate::{Env, MoaError, QueryOutput, Result};
use monet::{Oid, Val};

/// Object-at-a-time evaluator.
pub struct NaiveEngine<'e> {
    env: &'e Env,
}

/// Intermediate values during naive evaluation.
#[derive(Debug, Clone)]
enum NVal {
    Num(f64),
    Int(i64),
    Str(String),
    Set(Vec<NVal>),
    Bool(bool),
}

impl<'e> NaiveEngine<'e> {
    /// Create a naive engine over an environment (must keep raw rows).
    pub fn new(env: &'e Env) -> Self {
        NaiveEngine { env }
    }

    /// Evaluate a query by iterating the collection object by object.
    pub fn query(&self, src: &str) -> Result<QueryOutput> {
        let expr = crate::parser::parse_expr(src)?;
        self.query_expr(&expr)
    }

    /// Evaluate a parsed query.
    pub fn query_expr(&self, expr: &Expr) -> Result<QueryOutput> {
        match expr {
            Expr::Map { body, input } => {
                let (coll, oids) = self.eval_input(input)?;
                let rows = self
                    .env
                    .raw_rows(&coll)
                    .ok_or_else(|| MoaError::Unsupported("naive engine needs keep_raw".into()))?;
                let mut pairs = Vec::with_capacity(oids.len());
                for &oid in &oids {
                    let row = &rows[oid as usize];
                    // a chained map binds THIS to the inner map's per-object value
                    let this_val = self.eval_pipeline_value(input, &coll, oid, row)?;
                    let v = self.eval_body_with(body, &coll, oid, row, this_val.as_ref())?;
                    match v {
                        NVal::Set(items) => {
                            for it in items {
                                pairs.push((oid, nval_to_val(it)?));
                            }
                        }
                        other => pairs.push((oid, nval_to_val(other)?)),
                    }
                }
                Ok(QueryOutput::Pairs(pairs))
            }
            Expr::Select { .. } => {
                let (_, oids) = self.eval_input(expr)?;
                Ok(QueryOutput::Oids(oids))
            }
            Expr::Call { name, args } if name == "count" && args.len() == 1 => {
                let (_, oids) = self.eval_input(&args[0])?;
                Ok(QueryOutput::Scalar(Val::Int(oids.len() as i64)))
            }
            other => Err(MoaError::Unsupported(format!("naive evaluation of top-level {other}"))),
        }
    }

    /// Resolve a pipeline input to `(collection, surviving oids)` by
    /// filtering one object at a time.
    fn eval_input(&self, expr: &Expr) -> Result<(String, Vec<Oid>)> {
        match expr {
            Expr::Ident(name) => {
                let meta = self.env.collection(name)?;
                Ok((name.clone(), (0..meta.count as Oid).collect()))
            }
            Expr::Select { pred, input } => {
                let (coll, oids) = self.eval_input(input)?;
                let rows = self
                    .env
                    .raw_rows(&coll)
                    .ok_or_else(|| MoaError::Unsupported("naive engine needs keep_raw".into()))?;
                let mut out = Vec::new();
                for &oid in &oids {
                    let v = self.eval_body(pred, &coll, oid, &rows[oid as usize])?;
                    if matches!(v, NVal::Bool(true)) {
                        out.push(oid);
                    }
                }
                Ok((coll, out))
            }
            Expr::Map { input, .. } => {
                // iterating a mapped set re-uses the input's domain; the
                // caller re-evaluates the body per object (that is the
                // object-at-a-time cost model)
                self.eval_input(input)
            }
            other => Err(MoaError::Unsupported(format!("naive input {other}"))),
        }
    }

    /// The value `THIS` denotes after evaluating a (possibly chained)
    /// pipeline input for one object: `None` when the input is the
    /// collection itself (row context), `Some` when it is an inner `map`.
    fn eval_pipeline_value(
        &self,
        input: &Expr,
        coll: &str,
        oid: Oid,
        row: &MoaVal,
    ) -> Result<Option<NVal>> {
        match input {
            Expr::Map { body, input: deeper } => {
                let inner = self.eval_pipeline_value(deeper, coll, oid, row)?;
                Ok(Some(self.eval_body_with(body, coll, oid, row, inner.as_ref())?))
            }
            _ => Ok(None),
        }
    }

    /// Evaluate a body expression for one object (row context only).
    fn eval_body(&self, expr: &Expr, coll: &str, oid: Oid, row: &MoaVal) -> Result<NVal> {
        self.eval_body_with(expr, coll, oid, row, None)
    }

    /// Evaluate a body expression for one object, with `THIS` optionally
    /// bound to a mapped value.
    fn eval_body_with(
        &self,
        expr: &Expr,
        coll: &str,
        oid: Oid,
        row: &MoaVal,
        this_val: Option<&NVal>,
    ) -> Result<NVal> {
        match expr {
            Expr::Lit(Lit::Int(i)) => Ok(NVal::Int(*i)),
            Expr::Lit(Lit::Float(x)) => Ok(NVal::Num(*x)),
            Expr::Lit(Lit::Str(s)) => Ok(NVal::Str(s.clone())),
            Expr::This => this_val.cloned().ok_or_else(|| {
                MoaError::Unsupported("bare THIS at row level in naive engine".into())
            }),
            Expr::Attr(base, field) => {
                if matches!(**base, Expr::This) {
                    self.row_attr(coll, row, field)
                } else {
                    // nested: evaluate base to a set of tuples, project field
                    let b = self.eval_body_with(base, coll, oid, row, this_val)?;
                    match b {
                        NVal::Set(items) => Ok(NVal::Set(
                            items
                                .into_iter()
                                .map(|_| {
                                    Err(MoaError::Unsupported(
                                        "deep nested attribute in naive engine".into(),
                                    ))
                                })
                                .collect::<Result<Vec<_>>>()?,
                        )),
                        _ => Err(MoaError::Type("attribute of non-set".into())),
                    }
                }
            }
            Expr::Map { body, input } => {
                // map over a nested set of this object
                let inner = self.eval_nested_set(input, coll, oid, row)?;
                let mut out = Vec::with_capacity(inner.len());
                for item in inner {
                    out.push(self.eval_elem(body, &item)?);
                }
                Ok(NVal::Set(out))
            }
            Expr::Call { name, args } => match name.as_str() {
                "sum" | "count" | "min" | "max" | "avg" => {
                    let arg = self.eval_body_with(&args[0], coll, oid, row, this_val)?;
                    let NVal::Set(items) = arg else {
                        return Err(MoaError::Type(format!("{name}() of non-set")));
                    };
                    let nums: Vec<f64> = items
                        .iter()
                        .map(|v| match v {
                            NVal::Num(x) => Ok(*x),
                            NVal::Int(i) => Ok(*i as f64),
                            _ => Err(MoaError::Type("aggregate of non-number".into())),
                        })
                        .collect::<Result<Vec<_>>>()?;
                    Ok(match name.as_str() {
                        "sum" => NVal::Num(nums.iter().sum()),
                        "count" => NVal::Int(nums.len() as i64),
                        "min" => NVal::Num(nums.iter().copied().fold(f64::INFINITY, f64::min)),
                        "max" => NVal::Num(nums.iter().copied().fold(f64::NEG_INFINITY, f64::max)),
                        "avg" => NVal::Num(if nums.is_empty() {
                            0.0
                        } else {
                            nums.iter().sum::<f64>() / nums.len() as f64
                        }),
                        _ => unreachable!("matched above"),
                    })
                }
                "contains" => {
                    let a = self.eval_body_with(&args[0], coll, oid, row, this_val)?;
                    let b = self.eval_body_with(&args[1], coll, oid, row, this_val)?;
                    match (a, b) {
                        (NVal::Str(s), NVal::Str(p)) => Ok(NVal::Bool(s.contains(&p))),
                        _ => Err(MoaError::Type("contains() needs strings".into())),
                    }
                }
                // extension method, e.g. getBL: dispatched object-at-a-time
                method => self.eval_ext_method(method, args, coll, oid),
            },
            Expr::Cmp { op, left, right } => {
                let l = self.eval_body_with(left, coll, oid, row, this_val)?;
                let r = self.eval_body_with(right, coll, oid, row, this_val)?;
                Ok(NVal::Bool(compare(&l, &r, *op)?))
            }
            Expr::And(l, r) => {
                let a = self.eval_body_with(l, coll, oid, row, this_val)?;
                let b = self.eval_body_with(r, coll, oid, row, this_val)?;
                match (a, b) {
                    (NVal::Bool(x), NVal::Bool(y)) => Ok(NVal::Bool(x && y)),
                    _ => Err(MoaError::Type("and of non-booleans".into())),
                }
            }
            Expr::Or(l, r) => {
                let a = self.eval_body_with(l, coll, oid, row, this_val)?;
                let b = self.eval_body_with(r, coll, oid, row, this_val)?;
                match (a, b) {
                    (NVal::Bool(x), NVal::Bool(y)) => Ok(NVal::Bool(x || y)),
                    _ => Err(MoaError::Type("or of non-booleans".into())),
                }
            }
            Expr::Arith { op, left, right } => {
                let l = self.eval_body_with(left, coll, oid, row, this_val)?;
                let r = self.eval_body_with(right, coll, oid, row, this_val)?;
                arith(&l, &r, *op)
            }
            Expr::Ident(_) | Expr::Select { .. } => {
                Err(MoaError::Unsupported(format!("naive body expression {expr}")))
            }
        }
    }

    /// Evaluate the input of an inner `map` to the object's nested set.
    fn eval_nested_set(
        &self,
        input: &Expr,
        coll: &str,
        oid: Oid,
        row: &MoaVal,
    ) -> Result<Vec<MoaVal>> {
        match input {
            Expr::Attr(base, field) if matches!(**base, Expr::This) => {
                let elem = self.env.elem_type(coll)?;
                let idx = field_index(&elem, field)?;
                match row {
                    MoaVal::Tuple(vs) => match vs.get(idx) {
                        Some(MoaVal::Set(items)) | Some(MoaVal::List(items)) => Ok(items.clone()),
                        Some(MoaVal::Null) | None => Ok(Vec::new()),
                        Some(other) => {
                            Err(MoaError::Type(format!("field '{field}' is not a set: {other:?}")))
                        }
                    },
                    _ => Err(MoaError::Type("row is not a tuple".into())),
                }
            }
            other => {
                // e.g. map over the result of getBL: evaluate to a set
                let v = self.eval_body(other, coll, oid, row)?;
                match v {
                    NVal::Set(items) => Ok(items
                        .into_iter()
                        .map(|i| match i {
                            NVal::Num(x) => MoaVal::Float(x),
                            NVal::Int(x) => MoaVal::Int(x),
                            NVal::Str(s) => MoaVal::Str(s),
                            _ => MoaVal::Null,
                        })
                        .collect()),
                    _ => Err(MoaError::Type("map over non-set".into())),
                }
            }
        }
    }

    /// Evaluate a map body against one element of a nested set.
    fn eval_elem(&self, body: &Expr, item: &MoaVal) -> Result<NVal> {
        match body {
            Expr::This => moaval_to_nval(item),
            Expr::Attr(base, field) if matches!(**base, Expr::This) => match item {
                MoaVal::Tuple(_) => Err(MoaError::Unsupported(
                    "positional tuple projection needs schema context; use map[THIS.field](THIS.set) at row level".into(),
                )),
                _ => Err(MoaError::Type(format!("no field '{field}' on atom"))),
            },
            Expr::Lit(Lit::Int(i)) => Ok(NVal::Int(*i)),
            Expr::Lit(Lit::Float(x)) => Ok(NVal::Num(*x)),
            Expr::Arith { op, left, right } => {
                let l = self.eval_elem(left, item)?;
                let r = self.eval_elem(right, item)?;
                arith(&l, &r, *op)
            }
            other => Err(MoaError::Unsupported(format!(
                "naive element body {other}"
            ))),
        }
    }

    fn row_attr(&self, coll: &str, row: &MoaVal, field: &str) -> Result<NVal> {
        let elem = self.env.elem_type(coll)?;
        let idx = field_index(&elem, field)?;
        match row {
            MoaVal::Tuple(vs) => moaval_to_nval(vs.get(idx).unwrap_or(&MoaVal::Null)),
            _ => Err(MoaError::Type("row is not a tuple".into())),
        }
    }

    /// Dispatch an extension-structure method for one object — e.g.
    /// `getBL(THIS.annotation, query, stats)` evaluated document by
    /// document.
    fn eval_ext_method(&self, method: &str, args: &[Expr], coll: &str, oid: Oid) -> Result<NVal> {
        let Some(Expr::Attr(base, field)) = args.first() else {
            return Err(MoaError::Unknown(format!("function '{method}'")));
        };
        if !matches!(**base, Expr::This) {
            return Err(MoaError::Unknown(format!("function '{method}'")));
        }
        let elem = self.env.elem_type(coll)?;
        let fty = elem.field(field).ok_or_else(|| MoaError::Unknown(format!("field '{field}'")))?;
        let MoaType::Ext { name: sname, .. } = fty else {
            return Err(MoaError::Type(format!("'{field}' is not extension-typed")));
        };
        let s = self.env.structures().get(sname)?;
        // resolve query/stats bindings
        let mut query: Option<Vec<(String, f64)>> = None;
        let mut stats: Option<String> = None;
        for a in &args[1..] {
            if let Expr::Ident(n) = a {
                if let Some(terms) = self.env.query_binding(n) {
                    query = Some(terms);
                } else {
                    stats = Some(n.clone());
                }
            }
        }
        let call = CallArgs {
            query: query.as_deref(),
            stats: stats.as_deref(),
            domain: None,
            extra: Vec::new(),
        };
        let beliefs = s.eval_object(&format!("{coll}__{field}"), oid, method, &call)?;
        Ok(NVal::Set(beliefs.into_iter().map(NVal::Num).collect()))
    }
}

fn field_index(elem: &MoaType, field: &str) -> Result<usize> {
    elem.fields()
        .and_then(|fs| fs.iter().position(|(n, _)| n == field))
        .ok_or_else(|| MoaError::Unknown(format!("field '{field}'")))
}

fn moaval_to_nval(v: &MoaVal) -> Result<NVal> {
    Ok(match v {
        MoaVal::Int(i) => NVal::Int(*i),
        MoaVal::Float(x) => NVal::Num(*x),
        MoaVal::Str(s) => NVal::Str(s.clone()),
        MoaVal::Null => NVal::Str(String::new()),
        MoaVal::Set(items) | MoaVal::List(items) => {
            NVal::Set(items.iter().map(moaval_to_nval).collect::<Result<Vec<_>>>()?)
        }
        MoaVal::Tuple(_) => return Err(MoaError::Unsupported("tuple as naive value".into())),
    })
}

fn nval_to_val(v: NVal) -> Result<Val> {
    Ok(match v {
        NVal::Num(x) => Val::Float(x),
        NVal::Int(i) => Val::Int(i),
        NVal::Str(s) => Val::Str(s),
        NVal::Bool(b) => Val::Int(i64::from(b)),
        NVal::Set(_) => return Err(MoaError::Type("nested set in scalar position".into())),
    })
}

fn compare(l: &NVal, r: &NVal, op: CmpOp) -> Result<bool> {
    let ord = match (l, r) {
        (NVal::Str(a), NVal::Str(b)) => a.cmp(b),
        (a, b) => {
            let (x, y) = (num_of(a)?, num_of(b)?);
            x.total_cmp(&y)
        }
    };
    Ok(match op {
        CmpOp::Eq => ord.is_eq(),
        CmpOp::Ne => ord.is_ne(),
        CmpOp::Lt => ord.is_lt(),
        CmpOp::Le => ord.is_le(),
        CmpOp::Gt => ord.is_gt(),
        CmpOp::Ge => ord.is_ge(),
    })
}

fn num_of(v: &NVal) -> Result<f64> {
    match v {
        NVal::Num(x) => Ok(*x),
        NVal::Int(i) => Ok(*i as f64),
        _ => Err(MoaError::Type("expected a number".into())),
    }
}

fn arith(l: &NVal, r: &NVal, op: ArithKind) -> Result<NVal> {
    let (a, b) = (num_of(l)?, num_of(r)?);
    Ok(NVal::Num(match op {
        ArithKind::Add => a + b,
        ArithKind::Sub => a - b,
        ArithKind::Mul => a * b,
        ArithKind::Div => a / b,
    }))
}

/// Compare naive output with flattened output, normalising pair order —
/// helper for E1-style equivalence tests.
pub fn outputs_equivalent(a: &QueryOutput, b: &QueryOutput) -> bool {
    fn norm(o: &QueryOutput) -> Vec<(Oid, String)> {
        match o {
            QueryOutput::Oids(v) => v.iter().map(|&o| (o, String::new())).collect(),
            QueryOutput::Pairs(p) => {
                let mut v: Vec<(Oid, String)> = p
                    .iter()
                    .map(|(o, val)| {
                        let s = match val {
                            Val::Float(x) => format!("{:.9}", x),
                            other => other.to_string(),
                        };
                        (*o, s)
                    })
                    .collect();
                v.sort();
                v
            }
            QueryOutput::Scalar(v) => vec![(0, v.to_string())],
        }
    }
    norm(a) == norm(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::MoaEngine;
    use crate::parser::parse_define;
    use std::sync::Arc;

    fn env() -> Arc<Env> {
        let mut env = Env::new();
        env.keep_raw = true;
        let (n, ty) = parse_define(
            "define Lib as SET<TUPLE<
                Atomic<URL>: source, Atomic<int>: size, Atomic<float>: score,
                SET<Atomic<float>>: ws >>;",
        )
        .unwrap();
        let rows: Vec<MoaVal> = (0..5)
            .map(|i| {
                MoaVal::Tuple(vec![
                    MoaVal::Str(format!("u{i}")),
                    MoaVal::Int(10 * (i + 1)),
                    MoaVal::Float(0.1 * i as f64),
                    MoaVal::Set(vec![MoaVal::Float(0.5), MoaVal::Float(0.1 * i as f64)]),
                ])
            })
            .collect();
        env.create_collection(n, ty, rows).unwrap();
        Arc::new(env)
    }

    #[test]
    fn naive_select_matches_flattened() {
        let env = env();
        let q = "select[THIS.size > 20 and THIS.score < 0.35](Lib)";
        let naive = NaiveEngine::new(&env).query(q).unwrap();
        let flat = MoaEngine::new(Arc::clone(&env)).query(q).unwrap();
        assert!(outputs_equivalent(&naive, &flat), "{naive:?} vs {flat:?}");
    }

    #[test]
    fn naive_map_attr_matches_flattened() {
        let env = env();
        let q = "map[THIS.size](select[THIS.score >= 0.2](Lib))";
        let naive = NaiveEngine::new(&env).query(q).unwrap();
        let flat = MoaEngine::new(Arc::clone(&env)).query(q).unwrap();
        assert!(outputs_equivalent(&naive, &flat), "{naive:?} vs {flat:?}");
    }

    #[test]
    fn naive_nested_sum_matches_flattened() {
        let env = env();
        let q = "map[sum(map[THIS](THIS.ws))](Lib)";
        let naive = NaiveEngine::new(&env).query(q).unwrap();
        let flat = MoaEngine::new(Arc::clone(&env)).query(q).unwrap();
        assert!(outputs_equivalent(&naive, &flat), "{naive:?} vs {flat:?}");
    }

    #[test]
    fn naive_count_scalar() {
        let env = env();
        let out = NaiveEngine::new(&env).query("count(Lib)").unwrap();
        assert_eq!(out, QueryOutput::Scalar(Val::Int(5)));
    }

    #[test]
    fn naive_needs_raw_rows() {
        let env = Env::new(); // keep_raw = false
        let (n, ty) = parse_define("define L as SET<TUPLE<Atomic<int>: x>>;").unwrap();
        env.create_collection(n, ty, vec![MoaVal::Tuple(vec![MoaVal::Int(1)])]).unwrap();
        let naive = NaiveEngine::new(&env);
        assert!(naive.query("map[THIS.x](L)").is_err());
    }

    #[test]
    fn equivalence_helper_detects_mismatch() {
        let a = QueryOutput::Pairs(vec![(0, Val::Float(1.0))]);
        let b = QueryOutput::Pairs(vec![(0, Val::Float(2.0))]);
        assert!(!outputs_equivalent(&a, &b));
        let c = QueryOutput::Pairs(vec![(0, Val::Float(1.0 + 1e-12))]);
        assert!(outputs_equivalent(&a, &c)); // tolerant to fp noise
    }
}
