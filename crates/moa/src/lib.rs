//! # moa — the Moa object algebra
//!
//! Moa \[BWK98\] is the *logical* layer of the Mirror DBMS: an object data
//! model and query algebra built on **structural object-orientation**.
//! Structures — `TUPLE`, `SET`, `LIST`, and registered extensions such as
//! the IR crate's `CONTREP` — compose complex types out of the base types
//! inherited from the physical kernel (crate `mirror-monet`). The resulting
//! data model is NF², but *open*: new structures register themselves in a
//! [`structure::StructRegistry`] exactly like base-type extensibility in
//! object-relational systems.
//!
//! Data independence is realised by **flattening**: every logical
//! collection decomposes into binary associations (BATs) in the kernel
//! catalog, and every Moa expression compiles to a set-at-a-time BAT-algebra
//! plan ([`monet::Plan`]). This module provides:
//!
//! * the structure type system ([`types`]) and logical values ([`value`]);
//! * a parser ([`parser`]) for the paper's surface syntax
//!   (`define … as SET<TUPLE<…>>;`, `map[sum(THIS)](map[getBL(…)](Lib))`);
//! * the flattening compiler ([`flatten`]) from expressions to plans;
//! * an algebraic rewriter ([`rewrite`]) with toggleable optimisations
//!   (selection pushdown, peephole plan rewrites, CSE memoisation) used by
//!   the optimizer-ablation experiment;
//! * a deliberately naive **object-at-a-time interpreter** ([`naive`]) that
//!   serves as the baseline for the set-at-a-time scalability experiment;
//! * the execution facade ([`exec::MoaEngine`]).

#![warn(missing_docs)]

pub mod env;
pub mod exec;
pub mod expr;
pub mod flatten;
pub mod naive;
pub mod opt;
pub mod params;
pub mod parser;
pub mod rewrite;
pub mod structure;
pub mod types;
pub mod value;

pub use env::{Env, QueryBindingGuard};
pub use exec::{MoaEngine, QueryOutput};
pub use expr::{CmpOp, Expr};
pub use flatten::Rep;
pub use opt::{estimate, Pass, PassCtx, Pipeline, PlanHints, StatsCatalog};
pub use params::QueryParams;
pub use parser::{parse_define, parse_expr, parse_type};
pub use rewrite::{rewrite_topk, OptConfig};
pub use structure::{CallArgs, StructRegistry, Structure};
pub use types::{AtomicType, MoaType};
pub use value::MoaVal;

/// Errors raised by the logical layer.
#[derive(Debug, Clone, PartialEq)]
pub enum MoaError {
    /// Syntax error while parsing a definition or query.
    Parse(String),
    /// The expression or schema does not type-check.
    Type(String),
    /// A name (collection, binding, structure, field) is unknown.
    Unknown(String),
    /// The expression shape is not supported by the compiler.
    Unsupported(String),
    /// An error bubbled up from the physical kernel.
    Physical(monet::MonetError),
}

impl std::fmt::Display for MoaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MoaError::Parse(m) => write!(f, "parse error: {m}"),
            MoaError::Type(m) => write!(f, "type error: {m}"),
            MoaError::Unknown(m) => write!(f, "unknown name: {m}"),
            MoaError::Unsupported(m) => write!(f, "unsupported expression: {m}"),
            MoaError::Physical(e) => write!(f, "physical error: {e}"),
        }
    }
}

impl std::error::Error for MoaError {}

impl From<monet::MonetError> for MoaError {
    fn from(e: monet::MonetError) -> Self {
        MoaError::Physical(e)
    }
}

/// Result alias for the logical layer.
pub type Result<T> = std::result::Result<T, MoaError>;
