//! Request-scoped query parameters.
//!
//! The original facade bound query-term variables into the shared
//! [`crate::Env`] (`bind_query` … `unbind_query`) around every query —
//! which means every request takes a write lock on a shared map, leaks its
//! binding if the executor errors between the two calls, and races other
//! requests for names. [`QueryParams`] replaces that protocol for the
//! typed retrieval path: bindings ride along with the request through
//! [`crate::MoaEngine::query_with`] into the compiler, never touching the
//! environment, and vanish when the request does.
//!
//! `QueryParams` also carries the request's **top-k budget**: when set, the
//! engine tries to fuse the compiled ranking plan into a streaming top-k
//! operator ([`crate::rewrite::rewrite_topk`]); plans that do not match the
//! fusable shape execute unchanged and the caller truncates.

/// Per-request bindings and execution budget.
#[derive(Debug, Clone, Default)]
pub struct QueryParams {
    bindings: Vec<(String, Vec<(String, f64)>)>,
    top_k: Option<usize>,
}

impl QueryParams {
    /// No bindings, no budget — equivalent to the plain string API.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind a weighted query-term variable for this request only. Rebinding
    /// a name replaces the previous terms.
    pub fn bind(mut self, name: impl Into<String>, terms: Vec<(String, f64)>) -> Self {
        let name = name.into();
        if let Some(slot) = self.bindings.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = terms;
        } else {
            self.bindings.push((name, terms));
        }
        self
    }

    /// Set the top-k budget: the query only needs its k best rows. When
    /// the plan fuses ([`crate::rewrite::rewrite_topk`]), rows with zero
    /// belief mass (documents matching no query term, which the grouped
    /// sum would emit as `0.0`) are omitted and only the k best remaining
    /// rows are returned, in rank order.
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }

    /// Look up a binding.
    pub fn binding(&self, name: &str) -> Option<&[(String, f64)]> {
        self.bindings.iter().find(|(n, _)| n == name).map(|(_, t)| t.as_slice())
    }

    /// The top-k budget, if one is set.
    pub fn top_k(&self) -> Option<usize> {
        self.top_k
    }

    /// Names bound in this request, in binding order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.bindings.iter().map(|(n, _)| n.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_lookup() {
        let p = QueryParams::new()
            .bind("q", vec![("sunset".into(), 1.0)])
            .bind("v", vec![("gabor_3".into(), 0.5)]);
        assert_eq!(p.binding("q").unwrap()[0].0, "sunset");
        assert_eq!(p.binding("v").unwrap().len(), 1);
        assert!(p.binding("other").is_none());
        assert_eq!(p.names().collect::<Vec<_>>(), vec!["q", "v"]);
    }

    #[test]
    fn rebinding_replaces() {
        let p = QueryParams::new()
            .bind("q", vec![("a".into(), 1.0)])
            .bind("q", vec![("b".into(), 2.0)]);
        assert_eq!(p.binding("q").unwrap(), &[("b".to_string(), 2.0)]);
        assert_eq!(p.names().count(), 1);
    }

    #[test]
    fn top_k_budget() {
        assert_eq!(QueryParams::new().top_k(), None);
        assert_eq!(QueryParams::new().with_top_k(10).top_k(), Some(10));
    }
}
