//! Parser for the Moa surface syntax used throughout the paper:
//!
//! ```text
//! define TraditionalImgLib as
//!   SET< TUPLE< Atomic<URL>: source, CONTREP<Text>: annotation >>;
//!
//! map[sum(THIS)](
//!   map[getBL(THIS.annotation, query, stats)]( TraditionalImgLib ));
//! ```
//!
//! A hand-written lexer and recursive-descent parser; schema definitions
//! and query expressions have separate entry points so `<`/`>` can serve
//! as type brackets in one and comparisons in the other.

use crate::expr::{ArithKind, CmpOp, Expr, Lit};
use crate::types::{AtomicType, MoaType};
use crate::{MoaError, Result};

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    LAngle,
    RAngle,
    LParen,
    RParen,
    LBrack,
    RBrack,
    Comma,
    Colon,
    Semi,
    Dot,
    Eq,
    Ne,
    Le,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
}

fn lex(src: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                    out.push(Tok::Le);
                    i += 2;
                } else {
                    out.push(Tok::LAngle);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                    out.push(Tok::Ge);
                    i += 2;
                } else {
                    out.push(Tok::RAngle);
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                    out.push(Tok::Ne);
                    i += 2;
                } else {
                    return Err(MoaError::Parse("lone '!'".into()));
                }
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            '[' => {
                out.push(Tok::LBrack);
                i += 1;
            }
            ']' => {
                out.push(Tok::RBrack);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            ':' => {
                out.push(Tok::Colon);
                i += 1;
            }
            ';' => {
                out.push(Tok::Semi);
                i += 1;
            }
            '.' => {
                out.push(Tok::Dot);
                i += 1;
            }
            '=' => {
                out.push(Tok::Eq);
                i += 1;
            }
            '+' => {
                out.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                out.push(Tok::Minus);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '/' => {
                out.push(Tok::Slash);
                i += 1;
            }
            '"' | '\'' => {
                let quote = c;
                let mut s = String::new();
                i += 1;
                while i < bytes.len() && bytes[i] != quote {
                    s.push(bytes[i]);
                    i += 1;
                }
                if i == bytes.len() {
                    return Err(MoaError::Parse("unterminated string literal".into()));
                }
                i += 1; // closing quote
                out.push(Tok::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '.') {
                    // stop if the dot begins an attribute access like `1.x` — not valid anyway
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                if text.contains('.') {
                    let v = text
                        .parse::<f64>()
                        .map_err(|_| MoaError::Parse(format!("bad number '{text}'")))?;
                    out.push(Tok::Float(v));
                } else {
                    let v = text
                        .parse::<i64>()
                        .map_err(|_| MoaError::Parse(format!("bad number '{text}'")))?;
                    out.push(Tok::Int(v));
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                out.push(Tok::Ident(bytes[start..i].iter().collect()));
            }
            other => return Err(MoaError::Parse(format!("unexpected character '{other}'"))),
        }
    }
    Ok(out)
}

struct P {
    toks: Vec<Tok>,
    pos: usize,
}

impl P {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Result<Tok> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| MoaError::Parse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, t: &Tok) -> Result<()> {
        let got = self.next()?;
        if &got == t {
            Ok(())
        } else {
            Err(MoaError::Parse(format!("expected {t:?}, found {got:?}")))
        }
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(MoaError::Parse(format!("expected identifier, found {other:?}"))),
        }
    }

    // ---- types ----

    fn ty(&mut self) -> Result<MoaType> {
        let head = self.ident()?;
        match head.as_str() {
            "SET" => {
                self.expect(&Tok::LAngle)?;
                let inner = self.ty()?;
                self.expect(&Tok::RAngle)?;
                Ok(MoaType::Set(Box::new(inner)))
            }
            "LIST" => {
                self.expect(&Tok::LAngle)?;
                let inner = self.ty()?;
                self.expect(&Tok::RAngle)?;
                Ok(MoaType::List(Box::new(inner)))
            }
            "TUPLE" => {
                self.expect(&Tok::LAngle)?;
                let mut fields = Vec::new();
                loop {
                    let fty = self.ty()?;
                    self.expect(&Tok::Colon)?;
                    let name = self.ident()?;
                    fields.push((name, fty));
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::RAngle)?;
                Ok(MoaType::Tuple(fields))
            }
            "Atomic" => {
                self.expect(&Tok::LAngle)?;
                let name = self.ident()?;
                self.expect(&Tok::RAngle)?;
                Ok(MoaType::Atomic(AtomicType::parse(&name)?))
            }
            ext => {
                // extension structure, e.g. CONTREP<Text>
                if self.eat(&Tok::LAngle) {
                    // Allow both CONTREP<Text> (bare atom) and CONTREP<Atomic<Text>>.
                    let param = if let Some(Tok::Ident(n)) = self.peek() {
                        let n = n.clone();
                        if matches!(n.as_str(), "SET" | "LIST" | "TUPLE" | "Atomic") {
                            self.ty()?
                        } else if let Ok(atom) = AtomicType::parse(&n) {
                            self.pos += 1;
                            MoaType::Atomic(atom)
                        } else {
                            self.ty()?
                        }
                    } else {
                        return Err(MoaError::Parse("expected type parameter".into()));
                    };
                    self.expect(&Tok::RAngle)?;
                    Ok(MoaType::Ext { name: ext.to_string(), param: Box::new(param) })
                } else if let Ok(atom) = AtomicType::parse(ext) {
                    // bare base type like `int`
                    Ok(MoaType::Atomic(atom))
                } else {
                    Err(MoaError::Parse(format!("unknown type '{ext}'")))
                }
            }
        }
    }

    // ---- expressions ----
    // precedence: or < and < cmp < add/sub < mul/div < postfix(.attr) < primary

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while let Some(Tok::Ident(s)) = self.peek() {
            if s == "or" {
                self.pos += 1;
                let right = self.and_expr()?;
                left = Expr::Or(Box::new(left), Box::new(right));
            } else {
                break;
            }
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.cmp_expr()?;
        while let Some(Tok::Ident(s)) = self.peek() {
            if s == "and" {
                self.pos += 1;
                let right = self.cmp_expr()?;
                left = Expr::And(Box::new(left), Box::new(right));
            } else {
                break;
            }
        }
        Ok(left)
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let left = self.add_expr()?;
        let op = match self.peek() {
            Some(Tok::Eq) => Some(CmpOp::Eq),
            Some(Tok::Ne) => Some(CmpOp::Ne),
            Some(Tok::LAngle) => Some(CmpOp::Lt),
            Some(Tok::RAngle) => Some(CmpOp::Gt),
            Some(Tok::Le) => Some(CmpOp::Le),
            Some(Tok::Ge) => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.add_expr()?;
            Ok(Expr::Cmp { op, left: Box::new(left), right: Box::new(right) })
        } else {
            Ok(left)
        }
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => ArithKind::Add,
                Some(Tok::Minus) => ArithKind::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.mul_expr()?;
            left = Expr::Arith { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut left = self.postfix_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => ArithKind::Mul,
                Some(Tok::Slash) => ArithKind::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.postfix_expr()?;
            left = Expr::Arith { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn postfix_expr(&mut self) -> Result<Expr> {
        let mut e = self.primary()?;
        while self.eat(&Tok::Dot) {
            let name = self.ident()?;
            e = Expr::Attr(Box::new(e), name);
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.next()? {
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Int(i) => Ok(Expr::Lit(Lit::Int(i))),
            Tok::Float(x) => Ok(Expr::Lit(Lit::Float(x))),
            Tok::Str(s) => Ok(Expr::Lit(Lit::Str(s))),
            Tok::Ident(name) => match name.as_str() {
                "THIS" => Ok(Expr::This),
                "map" | "select" => {
                    self.expect(&Tok::LBrack)?;
                    let bracketed = self.expr()?;
                    self.expect(&Tok::RBrack)?;
                    self.expect(&Tok::LParen)?;
                    let input = self.expr()?;
                    self.expect(&Tok::RParen)?;
                    if name == "map" {
                        Ok(Expr::map(bracketed, input))
                    } else {
                        Ok(Expr::select(bracketed, input))
                    }
                }
                _ => {
                    if self.eat(&Tok::LParen) {
                        let mut args = Vec::new();
                        if !self.eat(&Tok::RParen) {
                            loop {
                                args.push(self.expr()?);
                                if !self.eat(&Tok::Comma) {
                                    break;
                                }
                            }
                            self.expect(&Tok::RParen)?;
                        }
                        Ok(Expr::Call { name, args })
                    } else {
                        Ok(Expr::Ident(name))
                    }
                }
            },
            other => Err(MoaError::Parse(format!("unexpected token {other:?}"))),
        }
    }
}

/// Parse a type expression, e.g. `SET<TUPLE<Atomic<URL>: source>>`.
pub fn parse_type(src: &str) -> Result<MoaType> {
    let mut p = P { toks: lex(src)?, pos: 0 };
    let t = p.ty()?;
    p.eat(&Tok::Semi);
    if p.pos != p.toks.len() {
        return Err(MoaError::Parse("trailing input after type".into()));
    }
    Ok(t)
}

/// Parse a schema definition: `define Name as TYPE;` → `(name, type)`.
pub fn parse_define(src: &str) -> Result<(String, MoaType)> {
    let mut p = P { toks: lex(src)?, pos: 0 };
    match p.next()? {
        Tok::Ident(kw) if kw == "define" => {}
        other => return Err(MoaError::Parse(format!("expected 'define', found {other:?}"))),
    }
    let name = p.ident()?;
    match p.next()? {
        Tok::Ident(kw) if kw == "as" => {}
        other => return Err(MoaError::Parse(format!("expected 'as', found {other:?}"))),
    }
    let ty = p.ty()?;
    p.eat(&Tok::Semi);
    if p.pos != p.toks.len() {
        return Err(MoaError::Parse("trailing input after definition".into()));
    }
    Ok((name, ty))
}

/// Parse a query expression.
pub fn parse_expr(src: &str) -> Result<Expr> {
    let mut p = P { toks: lex(src)?, pos: 0 };
    let e = p.expr()?;
    p.eat(&Tok::Semi);
    if p.pos != p.toks.len() {
        return Err(MoaError::Parse(format!("trailing input after expression at token {}", p.pos)));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Lit;

    #[test]
    fn parse_paper_schema() {
        let (name, ty) = parse_define(
            "define TraditionalImgLib as
               SET<
                 TUPLE<
                   Atomic<URL>: source,
                   CONTREP<Text>: annotation
               >>;",
        )
        .unwrap();
        assert_eq!(name, "TraditionalImgLib");
        let elem = ty.elem().unwrap();
        assert_eq!(elem.field("source"), Some(&MoaType::Atomic(AtomicType::Url)));
        match elem.field("annotation").unwrap() {
            MoaType::Ext { name, param } => {
                assert_eq!(name, "CONTREP");
                assert_eq!(**param, MoaType::Atomic(AtomicType::Text));
            }
            other => panic!("expected CONTREP, got {other}"),
        }
    }

    #[test]
    fn parse_image_library_schema() {
        let (_, ty) = parse_define(
            "define ImageLibrary as
               SET< TUPLE<
                 Atomic<URL>: source,
                 Atomic<Text>: annotation,
                 Atomic<Image>: image >>;",
        )
        .unwrap();
        assert_eq!(ty.elem().unwrap().fields().unwrap().len(), 3);
    }

    #[test]
    fn parse_nested_segment_schema() {
        let (_, ty) = parse_define(
            "define Internal as SET< TUPLE<
                Atomic<URL>: source,
                CONTREP<Text>: annotation,
                SET< TUPLE< Atomic<Image>: segment,
                            Atomic<Vector>: RGB,
                            Atomic<Vector>: Gabor > >: image_segments >>;",
        )
        .unwrap();
        let segs = ty.elem().unwrap().field("image_segments").unwrap();
        assert!(matches!(segs, MoaType::Set(_)));
        assert_eq!(segs.elem().unwrap().fields().unwrap().len(), 3);
    }

    #[test]
    fn parse_paper_query() {
        let q = parse_expr(
            "map[sum(THIS)](
               map[getBL(THIS.annotation, query, stats)]( TraditionalImgLib ));",
        )
        .unwrap();
        assert_eq!(
            q.to_string(),
            "map[sum(THIS)](map[getBL(THIS.annotation, query, stats)](TraditionalImgLib))"
        );
    }

    #[test]
    fn parse_select_with_predicate() {
        let q = parse_expr("select[THIS.score >= 0.5 and THIS.source != \"x\"](Lib)").unwrap();
        match &q {
            Expr::Select { pred, .. } => assert!(matches!(**pred, Expr::And(_, _))),
            other => panic!("expected select, got {other}"),
        }
    }

    #[test]
    fn parse_arithmetic_precedence() {
        let q = parse_expr("map[THIS.a + THIS.b * 2](Lib)").unwrap();
        // must parse as a + (b * 2)
        assert_eq!(q.to_string(), "map[(THIS.a + (THIS.b * 2))](Lib)");
    }

    #[test]
    fn parse_literals() {
        assert_eq!(parse_expr("42").unwrap(), Expr::Lit(Lit::Int(42)));
        assert_eq!(parse_expr("0.5").unwrap(), Expr::Lit(Lit::Float(0.5)));
        assert_eq!(parse_expr("'hi'").unwrap(), Expr::Lit(Lit::Str("hi".into())));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_expr("map[").is_err());
        assert!(parse_expr("select[x](").is_err());
        assert!(parse_define("define X SET<int>").is_err());
        assert!(parse_type("WIBBLE").is_err());
        assert!(parse_expr("\"unterminated").is_err());
        assert!(parse_expr("a ! b").is_err());
    }

    #[test]
    fn parse_bare_base_types() {
        assert_eq!(parse_type("int").unwrap(), MoaType::Atomic(AtomicType::Int));
        assert_eq!(
            parse_type("SET<float>").unwrap(),
            MoaType::Set(Box::new(MoaType::Atomic(AtomicType::Float)))
        );
    }

    #[test]
    fn parse_topk_helper_call() {
        let q = parse_expr("topk(map[THIS.score](Lib), 10)").unwrap();
        match q {
            Expr::Call { name, args } => {
                assert_eq!(name, "topk");
                assert_eq!(args.len(), 2);
            }
            other => panic!("expected call, got {other}"),
        }
    }
}
