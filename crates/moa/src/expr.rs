//! The Moa expression AST.
//!
//! Expressions cover the paper's query surface: structural `map`/`select`
//! pipelines over collections, attribute access through `THIS`, calls to
//! kernel aggregates and to extension-structure methods (`getBL`), plus
//! comparison and arithmetic for predicates.

use std::fmt;

/// Comparison operators in selection predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Arithmetic operators inside map bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithKind {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// A literal value in a query.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
}

/// A Moa expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A named collection or bound variable (`query`, `stats`).
    Ident(String),
    /// The element bound by the innermost enclosing `map`/`select`.
    This,
    /// Attribute access: `e.field`.
    Attr(Box<Expr>, String),
    /// `map[body](input)`.
    Map {
        /// The per-element body.
        body: Box<Expr>,
        /// The input set expression.
        input: Box<Expr>,
    },
    /// `select[pred](input)`.
    Select {
        /// The boolean predicate over `THIS`.
        pred: Box<Expr>,
        /// The input set expression.
        input: Box<Expr>,
    },
    /// Function call: aggregates (`sum`, `count`, …), structure methods
    /// (`getBL`), or top-level helpers (`topk`).
    Call {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Comparison (predicate position).
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Boolean conjunction of predicates.
    And(Box<Expr>, Box<Expr>),
    /// Boolean disjunction of predicates.
    Or(Box<Expr>, Box<Expr>),
    /// Arithmetic.
    Arith {
        /// Operator.
        op: ArithKind,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Literal.
    Lit(Lit),
}

impl Expr {
    /// Convenience constructor: `map[body](input)`.
    pub fn map(body: Expr, input: Expr) -> Expr {
        Expr::Map { body: Box::new(body), input: Box::new(input) }
    }

    /// Convenience constructor: `select[pred](input)`.
    pub fn select(pred: Expr, input: Expr) -> Expr {
        Expr::Select { pred: Box::new(pred), input: Box::new(input) }
    }

    /// Convenience constructor: a call.
    pub fn call(name: &str, args: Vec<Expr>) -> Expr {
        Expr::Call { name: name.to_string(), args }
    }

    /// Convenience constructor: `THIS.field`.
    pub fn this_attr(field: &str) -> Expr {
        Expr::Attr(Box::new(Expr::This), field.to_string())
    }

    /// All attribute names reached from `THIS` in this expression —
    /// used by the rewriter to decide whether a predicate can be pushed
    /// below a `map`.
    pub fn this_attrs(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_this_attrs(&mut out);
        out
    }

    fn collect_this_attrs(&self, out: &mut Vec<String>) {
        match self {
            Expr::Attr(base, name) => {
                if matches!(**base, Expr::This) {
                    out.push(name.clone());
                } else {
                    base.collect_this_attrs(out);
                }
            }
            Expr::Map { body, input } => {
                body.collect_this_attrs(out);
                input.collect_this_attrs(out);
            }
            Expr::Select { pred, input } => {
                pred.collect_this_attrs(out);
                input.collect_this_attrs(out);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.collect_this_attrs(out);
                }
            }
            Expr::Cmp { left, right, .. } | Expr::And(left, right) | Expr::Or(left, right) => {
                left.collect_this_attrs(out);
                right.collect_this_attrs(out);
            }
            Expr::Arith { left, right, .. } => {
                left.collect_this_attrs(out);
                right.collect_this_attrs(out);
            }
            Expr::Ident(_) | Expr::This | Expr::Lit(_) => {}
        }
    }

    /// True if the expression mentions bare `THIS` (not through an
    /// attribute), e.g. `sum(THIS)`.
    pub fn uses_bare_this(&self) -> bool {
        match self {
            Expr::This => true,
            Expr::Attr(base, _) => !matches!(**base, Expr::This) && base.uses_bare_this(),
            Expr::Map { body, input } => body.uses_bare_this() || input.uses_bare_this(),
            Expr::Select { pred, input } => pred.uses_bare_this() || input.uses_bare_this(),
            Expr::Call { args, .. } => args.iter().any(Expr::uses_bare_this),
            Expr::Cmp { left, right, .. } | Expr::And(left, right) | Expr::Or(left, right) => {
                left.uses_bare_this() || right.uses_bare_this()
            }
            Expr::Arith { left, right, .. } => left.uses_bare_this() || right.uses_bare_this(),
            Expr::Ident(_) | Expr::Lit(_) => false,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Ident(n) => f.write_str(n),
            Expr::This => f.write_str("THIS"),
            Expr::Attr(e, n) => write!(f, "{e}.{n}"),
            Expr::Map { body, input } => write!(f, "map[{body}]({input})"),
            Expr::Select { pred, input } => write!(f, "select[{pred}]({input})"),
            Expr::Call { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Cmp { op, left, right } => write!(f, "{left} {op} {right}"),
            Expr::And(l, r) => write!(f, "({l} and {r})"),
            Expr::Or(l, r) => write!(f, "({l} or {r})"),
            Expr::Arith { op, left, right } => {
                let s = match op {
                    ArithKind::Add => "+",
                    ArithKind::Sub => "-",
                    ArithKind::Mul => "*",
                    ArithKind::Div => "/",
                };
                write!(f, "({left} {s} {right})")
            }
            Expr::Lit(Lit::Int(i)) => write!(f, "{i}"),
            Expr::Lit(Lit::Float(x)) => write!(f, "{x}"),
            Expr::Lit(Lit::Str(s)) => write!(f, "{s:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_paper_query() {
        // map[sum(THIS)](map[getBL(THIS.annotation, query, stats)](Lib))
        let q = Expr::map(
            Expr::call("sum", vec![Expr::This]),
            Expr::map(
                Expr::call(
                    "getBL",
                    vec![
                        Expr::this_attr("annotation"),
                        Expr::Ident("query".into()),
                        Expr::Ident("stats".into()),
                    ],
                ),
                Expr::Ident("Lib".into()),
            ),
        );
        assert_eq!(q.to_string(), "map[sum(THIS)](map[getBL(THIS.annotation, query, stats)](Lib))");
    }

    #[test]
    fn this_attrs_collects_paths() {
        let pred = Expr::And(
            Box::new(Expr::Cmp {
                op: CmpOp::Gt,
                left: Box::new(Expr::this_attr("score")),
                right: Box::new(Expr::Lit(Lit::Float(0.5))),
            }),
            Box::new(Expr::Cmp {
                op: CmpOp::Eq,
                left: Box::new(Expr::this_attr("source")),
                right: Box::new(Expr::Lit(Lit::Str("x".into()))),
            }),
        );
        let mut attrs = pred.this_attrs();
        attrs.sort();
        assert_eq!(attrs, vec!["score".to_string(), "source".to_string()]);
    }

    #[test]
    fn bare_this_detection() {
        assert!(Expr::call("sum", vec![Expr::This]).uses_bare_this());
        assert!(!Expr::this_attr("x").uses_bare_this());
    }
}
