//! Statistics-driven optimizer pass framework.
//!
//! [`crate::rewrite`] is a fixed rule pipeline; this module generalises it
//! into composable [`Pass`]es over physical plans, fed by a [`StatsCatalog`]
//! collected at ingest time (per-column row counts, NDV and min/max via
//! [`monet::summarize`]; per-term document frequencies from the IR layer's
//! inverted indexes). The standard pipeline runs:
//!
//! 1. **peephole** — the classic rewrites of
//!    [`crate::rewrite::rewrite_physical`] (gated by [`OptConfig::peephole`]);
//! 2. **selection_order** — reorders semijoin filter chains so the most
//!    selective filter applies first. Sound for *any* filters: a semijoin
//!    keeps rows of its left input whose head occurs among the right's
//!    heads, preserving left order, so a chain over one base intersects
//!    head sets — commutative in the filters by construction;
//! 3. **push_domain** — semijoin placement: moves a selective domain
//!    *into* a belief operator (`contrep.getbl` convention: the first BAT
//!    input restricts scoring to that domain, per-document scores are
//!    domain-independent), so ranking scores only the surviving documents
//!    — and the plan then matches the fusable domain-restricted shape;
//! 4. **topk_fuse** — [`crate::rewrite::rewrite_topk`] as a pass, extended
//!    to fuse the late-filter variant (`semijoin(grouped_sum(getbl), S)`)
//!    directly into the fused operator with `S` as its domain input.
//!
//! After the passes run, every node of the final plan is annotated with an
//! estimated output cardinality ([`estimate`]) and an estimate-driven
//! parallel-degree cap, which the kernel [`monet::Executor`] renders in
//! EXPLAIN as `est≈N` next to actual row counts and consults when choosing
//! fragmentation degrees.

use crate::rewrite::{map_children, rewrite_physical, rewrite_topk, OptConfig};
use monet::fxhash::FxHashMap;
use monet::{Agg, ColSummary, OpRegistry, Plan, Pred, Val};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-inverted-index statistics: corpus size and per-term document
/// frequencies, keyed under the index's BAT-name prefix
/// (e.g. `Lib__annotation`).
#[derive(Debug, Default, Clone)]
pub struct IndexStats {
    /// Number of documents in the indexed collection.
    pub n_docs: u64,
    /// Document frequency per (stemmed) term.
    pub dfs: HashMap<String, u32>,
}

/// The statistics catalog: ingest-time summaries that feed the
/// cost estimator. Cheap to clone-on-write; the environment stores it
/// behind an `Arc` swapped atomically on updates.
#[derive(Debug, Default, Clone)]
pub struct StatsCatalog {
    columns: HashMap<String, ColSummary>,
    indexes: HashMap<String, IndexStats>,
}

impl StatsCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no statistics have been collected (estimator disabled).
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty() && self.indexes.is_empty()
    }

    /// Record (or replace) the summary of one flattened column BAT.
    pub fn set_column(&mut self, name: impl Into<String>, summary: ColSummary) {
        self.columns.insert(name.into(), summary);
    }

    /// Summary of a column BAT, if collected.
    pub fn column(&self, name: &str) -> Option<&ColSummary> {
        self.columns.get(name)
    }

    /// Number of column summaries held.
    pub fn columns_len(&self) -> usize {
        self.columns.len()
    }

    /// Drop every column and index entry under a name prefix (re-ingest).
    pub fn drop_prefix(&mut self, prefix: &str) {
        self.columns.retain(|k, _| !k.starts_with(prefix));
        self.indexes.retain(|k, _| !k.starts_with(prefix));
    }

    /// Record (or replace) the document-frequency statistics of an
    /// inverted index registered under `prefix`.
    pub fn set_index(
        &mut self,
        prefix: impl Into<String>,
        n_docs: u64,
        dfs: impl IntoIterator<Item = (String, u32)>,
    ) {
        self.indexes.insert(prefix.into(), IndexStats { n_docs, dfs: dfs.into_iter().collect() });
    }

    /// Corpus size of the index at `prefix`, if collected.
    pub fn index_docs(&self, prefix: &str) -> Option<u64> {
        self.indexes.get(prefix).map(|i| i.n_docs)
    }

    /// Document frequency of `term` in the index at `prefix`.
    pub fn term_df(&self, prefix: &str, term: &str) -> Option<u32> {
        self.indexes.get(prefix).and_then(|i| i.dfs.get(term).copied())
    }
}

/// Selectivity of a predicate against (optional) column statistics.
/// Conservative textbook factors where statistics are missing.
fn pred_selectivity(pred: &Pred, col: Option<&ColSummary>) -> f64 {
    match pred {
        Pred::Eq(_) => col.filter(|c| c.ndv > 0).map_or(0.1, |c| 1.0 / c.ndv as f64),
        Pred::StrContains(_) => 0.1,
        Pred::Range { lo, hi, .. } => {
            if let Some(c) = col {
                if let (Some(mn), Some(mx)) = (c.min, c.max) {
                    let span = mx - mn;
                    if span > 0.0 {
                        let lo_v = lo.as_ref().and_then(Val::as_float).unwrap_or(mn).max(mn);
                        let hi_v = hi.as_ref().and_then(Val::as_float).unwrap_or(mx).min(mx);
                        return ((hi_v - lo_v) / span).clamp(0.0, 1.0);
                    }
                    return 1.0; // constant column: the bound decides all-or-nothing
                }
            }
            1.0 / 3.0
        }
    }
}

/// Estimate the output cardinality of a plan node from the statistics
/// catalog. `None` means "no idea" — callers must treat unknown as
/// unoptimisable, never guess. For belief operators the estimate counts
/// *documents touched* (sum of term document frequencies, capped by corpus
/// and domain size), which is the meaningful input to the grouped sum above.
pub fn estimate(plan: &Plan, stats: &StatsCatalog) -> Option<u64> {
    match plan {
        Plan::Load(name) => stats.column(name).map(|c| c.rows),
        Plan::Const(b) => Some(b.count() as u64),
        Plan::Select { input, pred } => {
            let in_rows = estimate(input, stats)?;
            let col = if let Plan::Load(n) = &**input { stats.column(n) } else { None };
            Some((in_rows as f64 * pred_selectivity(pred, col)).ceil() as u64)
        }
        Plan::Join { left, .. } => estimate(left, stats),
        Plan::Semijoin { left, right } => match (estimate(left, stats), estimate(right, stats)) {
            (Some(l), Some(r)) => Some(l.min(r)),
            (l, r) => l.or(r),
        },
        Plan::Reverse(p) | Plan::Mirror(p) | Plan::Distinct(p) => estimate(p, stats),
        Plan::Mark { input, .. }
        | Plan::ProjectConst { input, .. }
        | Plan::SortTail { input, .. }
        | Plan::ArithConst { input, .. } => estimate(input, stats),
        Plan::Aggr { .. } => Some(1),
        Plan::GroupedAggr { groups, .. } => estimate(groups, stats),
        Plan::TopN { input, k, .. } => {
            Some(estimate(input, stats).map_or(*k as u64, |e| e.min(*k as u64)))
        }
        Plan::Slice { input, lo, hi } => {
            let cap = hi.saturating_sub(*lo) as u64;
            Some(estimate(input, stats).map_or(cap, |e| e.min(cap)))
        }
        Plan::KUnion { left, right } => {
            Some(estimate(left, stats)?.saturating_add(estimate(right, stats)?))
        }
        Plan::KDiff { left, .. } => estimate(left, stats), // upper bound
        Plan::Arith { left, right, .. } => match (estimate(left, stats), estimate(right, stats)) {
            (Some(l), Some(r)) => Some(l.min(r)),
            (l, r) => l.or(r),
        },
        Plan::Custom { op, inputs, params } => {
            let Some(Val::Str(prefix)) = params.first() else { return None };
            let n_docs = stats.index_docs(prefix)?;
            let mut sum = 0u64;
            for pair in params[1..].chunks(2) {
                if let [Val::Str(term), _] = pair {
                    sum += stats.term_df(prefix, term).unwrap_or(0) as u64;
                }
            }
            let mut est = sum.min(n_docs);
            if let Some(d) = inputs.first().and_then(|d| estimate(d, stats)) {
                est = est.min(d);
            }
            if op.ends_with(".topk") {
                if let Some(Val::Int(k)) = params.last() {
                    est = est.min((*k).max(0) as u64);
                }
            }
            Some(est)
        }
    }
}

/// Shared context the passes run under.
pub struct PassCtx<'a> {
    /// Optimiser switches.
    pub cfg: OptConfig,
    /// The ingest-time statistics catalog.
    pub stats: Arc<StatsCatalog>,
    /// The kernel operator registry (fused-operator availability).
    pub ops: &'a OpRegistry,
    /// Top-k budget of the current request, when the result shape allows
    /// fusion (single-valued ranking).
    pub top_k: Option<usize>,
}

/// One plan-to-plan transformation. Passes must preserve the executed
/// result (bit-identical under the documented operator contracts) — the
/// workspace property tests hold every registered pass to that.
pub trait Pass: Send + Sync {
    /// Short name, reported in EXPLAIN when the pass changed the plan.
    fn name(&self) -> &'static str;
    /// Whether the pass applies under this context (default: always).
    fn enabled(&self, _ctx: &PassCtx) -> bool {
        true
    }
    /// Transform the plan.
    fn apply(&self, plan: &Plan, ctx: &PassCtx) -> Plan;
}

/// Side-channel produced by [`Pipeline::optimize`]: per-node cardinality
/// estimates and degree caps (keyed by plan fingerprint, the kernel's
/// trace key), plus which passes changed the plan.
#[derive(Debug, Default, Clone)]
pub struct PlanHints {
    /// Estimated output rows per plan node.
    pub est_rows: FxHashMap<u64, u64>,
    /// Parallel-degree cap per plan node (estimate-driven; the executor
    /// only ever lowers its configured degree by these).
    pub degree_cap: FxHashMap<u64, usize>,
    /// Names of the passes that changed the plan, in pipeline order.
    pub passes_fired: Vec<&'static str>,
}

/// A registered sequence of optimizer passes.
pub struct Pipeline {
    passes: Vec<Box<dyn Pass>>,
}

impl Pipeline {
    /// The standard pipeline: peephole → selection_order → push_domain →
    /// topk_fuse.
    pub fn standard() -> Pipeline {
        Pipeline {
            passes: vec![
                Box::new(PeepholePass),
                Box::new(SelectionOrderPass),
                Box::new(PushDomainPass),
                Box::new(TopKFusePass),
            ],
        }
    }

    /// An empty pipeline (register passes with [`Pipeline::register`]).
    pub fn empty() -> Pipeline {
        Pipeline { passes: Vec::new() }
    }

    /// Append a pass to the pipeline.
    pub fn register(&mut self, pass: Box<dyn Pass>) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// Names of the registered passes, in order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Run every enabled pass in order, then annotate the final plan with
    /// cardinality estimates and degree caps (when statistics exist and
    /// [`OptConfig::stats_driven`] is on).
    pub fn optimize(&self, plan: &Plan, ctx: &PassCtx) -> (Plan, PlanHints) {
        let mut current = plan.clone();
        let mut hints = PlanHints::default();
        for pass in &self.passes {
            if !pass.enabled(ctx) {
                continue;
            }
            let next = pass.apply(&current, ctx);
            if next.fingerprint() != current.fingerprint() {
                hints.passes_fired.push(pass.name());
            }
            current = next;
        }
        if ctx.cfg.stats_driven && !ctx.stats.is_empty() {
            annotate(&current, ctx, &mut hints);
        }
        (current, hints)
    }
}

/// Rows of estimated input an operator should have per thread before
/// fragment-parallelism is worth its scoped-thread overhead; mirrors the
/// kernel's `min_fragment_rows` default.
const ROWS_PER_THREAD: usize = monet::fragment::DEFAULT_MIN_FRAGMENT_ROWS;

fn annotate(plan: &Plan, ctx: &PassCtx, hints: &mut PlanHints) {
    if let Some(est) = estimate(plan, &ctx.stats) {
        let fp = plan.fingerprint();
        hints.est_rows.insert(fp, est);
        hints.degree_cap.insert(fp, (est as usize / ROWS_PER_THREAD).max(1));
    }
    for child in plan.children() {
        annotate(child, ctx, hints);
    }
}

/// The classic peephole rewrites, as a pass.
pub struct PeepholePass;

impl Pass for PeepholePass {
    fn name(&self) -> &'static str {
        "peephole"
    }
    fn apply(&self, plan: &Plan, ctx: &PassCtx) -> Plan {
        rewrite_physical(plan, ctx.cfg) // gated by cfg.peephole internally
    }
}

/// Statistics-driven selection ordering over semijoin filter chains.
pub struct SelectionOrderPass;

impl Pass for SelectionOrderPass {
    fn name(&self) -> &'static str {
        "selection_order"
    }
    fn enabled(&self, ctx: &PassCtx) -> bool {
        ctx.cfg.stats_driven && !ctx.stats.is_empty()
    }
    fn apply(&self, plan: &Plan, ctx: &PassCtx) -> Plan {
        reorder_chains(plan, &ctx.stats)
    }
}

fn reorder_chains(plan: &Plan, stats: &StatsCatalog) -> Plan {
    let node = map_children(plan, &|c| reorder_chains(c, stats));
    if !matches!(node, Plan::Semijoin { .. }) {
        return node;
    }
    // Flatten the left-deep chain base ⋉ f1 ⋉ f2 ⋉ …; a semijoin keeps
    // rows of the base whose head occurs in every filter's head set, so
    // the filters commute (and duplicates by fingerprint are no-ops).
    let mut filters: Vec<Plan> = Vec::new();
    let mut base = node;
    while let Plan::Semijoin { left, right } = base {
        filters.push(*right);
        base = *left;
    }
    filters.reverse(); // applied order: innermost first
    let mut seen = monet::fxhash::FxHashSet::default();
    filters.retain(|f| seen.insert(f.fingerprint()));
    // Most selective (smallest estimated head set) first; unknown-size
    // filters keep their relative order at the end.
    let keyed: Vec<(u64, usize)> = filters
        .iter()
        .enumerate()
        .map(|(i, f)| (estimate(f, stats).unwrap_or(u64::MAX), i))
        .collect();
    let mut order: Vec<usize> = (0..filters.len()).collect();
    order.sort_by_key(|&i| keyed[i]);
    let reordered: Vec<Plan> = {
        let mut tagged: Vec<Option<Plan>> = filters.into_iter().map(Some).collect();
        order.iter().map(|&i| tagged[i].take().expect("each index used once")).collect()
    };
    reordered
        .into_iter()
        .fold(base, |acc, f| Plan::Semijoin { left: Box::new(acc), right: Box::new(f) })
}

/// Does a custom operator follow the belief-operator domain convention:
/// its first BAT input (if present) restricts scoring to that domain's
/// oids, and per-document output is independent of the domain? The
/// CONTREP structure's `*.getbl` operators are the registered case.
fn op_accepts_domain(op: &str) -> bool {
    op.ends_with(".getbl")
}

/// Semijoin placement: push a selective domain into a belief operator.
///
/// `semijoin(grouped_sum(getbl(∅), groups=identity), D)` scores the whole
/// corpus and then discards non-`D` rows. When statistics say `D` is
/// smaller than the corpus, rewrite to
/// `semijoin(grouped_sum(getbl(D), groups=D), D)`: the operator scores
/// only `D`'s documents (bit-identical per-document sums — same addends in
/// the same order), the grouped sum zero-fills exactly as before, and the
/// resulting shape is the fusable domain-restricted ranking.
pub struct PushDomainPass;

impl Pass for PushDomainPass {
    fn name(&self) -> &'static str {
        "push_domain"
    }
    fn enabled(&self, ctx: &PassCtx) -> bool {
        ctx.cfg.stats_driven && !ctx.stats.is_empty()
    }
    fn apply(&self, plan: &Plan, ctx: &PassCtx) -> Plan {
        push_domains(plan, &ctx.stats)
    }
}

fn push_domains(plan: &Plan, stats: &StatsCatalog) -> Plan {
    let node = map_children(plan, &|c| push_domains(c, stats));
    let Plan::Semijoin { left, right } = node else { return node };
    let pushed = (|| {
        let Plan::GroupedAggr { values, groups, agg: Agg::Sum } = &*left else { return None };
        let Plan::Custom { op, inputs, params } = &**values else { return None };
        if !inputs.is_empty() || !op_accepts_domain(op) {
            return None;
        }
        let Plan::Load(gname) = &**groups else { return None };
        if !gname.ends_with("__self") {
            return None;
        }
        let corpus = stats.column(gname)?.rows;
        let domain_est = estimate(&right, stats)?;
        if domain_est >= corpus {
            return None;
        }
        Some(Plan::Semijoin {
            left: Box::new(Plan::GroupedAggr {
                values: Box::new(Plan::Custom {
                    op: op.clone(),
                    inputs: vec![(*right).clone()],
                    params: params.clone(),
                }),
                groups: right.clone(),
                agg: Agg::Sum,
            }),
            right: right.clone(),
        })
    })();
    pushed.unwrap_or(Plan::Semijoin { left, right })
}

/// Top-k fusion as a pass: the legacy shapes of
/// [`crate::rewrite::rewrite_topk`] fuse unconditionally (kept identical to
/// the pre-pass-framework behaviour); under [`OptConfig::stats_driven`] the
/// late-filter variant — a semijoin against a domain the operator does not
/// know about — additionally fuses by handing the domain to the fused
/// operator as its input.
pub struct TopKFusePass;

impl Pass for TopKFusePass {
    fn name(&self) -> &'static str {
        "topk_fuse"
    }
    fn enabled(&self, ctx: &PassCtx) -> bool {
        ctx.top_k.is_some()
    }
    fn apply(&self, plan: &Plan, ctx: &PassCtx) -> Plan {
        let k = ctx.top_k.expect("enabled() checked");
        if let Some(fused) = rewrite_topk(plan, k, ctx.ops) {
            return fused;
        }
        if ctx.cfg.stats_driven {
            if let Some(fused) = fuse_late_filter(plan, k, ctx.ops) {
                return fused;
            }
        }
        plan.clone()
    }
}

/// Fuse `semijoin(grouped_sum(getbl(∅), groups=identity), S)` — ranking
/// late-filtered by an arbitrary survivor set `S` — into
/// `getbl.topk(S, …, k)`: the fused operator restricted to `S` computes
/// the k best nonzero-mass survivors, which is exactly the top-k budget
/// contract of the unfused plan (rank, drop zero rows, truncate to k).
fn fuse_late_filter(plan: &Plan, k: usize, ops: &OpRegistry) -> Option<Plan> {
    let Plan::Semijoin { left, right } = plan else { return None };
    let Plan::GroupedAggr { values, groups, agg: Agg::Sum } = &**left else { return None };
    let Plan::Custom { op, inputs, params } = &**values else { return None };
    if !inputs.is_empty() || !op_accepts_domain(op) {
        return None;
    }
    match &**groups {
        Plan::Load(name) if name.ends_with("__self") => {}
        _ => return None,
    }
    let fused = format!("{op}.topk");
    if !ops.contains(&fused) {
        return None;
    }
    let mut fused_params = params.clone();
    fused_params.push(Val::Int(k as i64));
    Some(Plan::Custom { op: fused, inputs: vec![(**right).clone()], params: fused_params })
}

#[cfg(test)]
mod tests {
    use super::*;
    use monet::bat::bat_of_ints;
    use monet::{Bat, Column};

    fn catalog() -> StatsCatalog {
        let mut s = StatsCatalog::new();
        s.set_column("Lib__self", monet::summarize(&identity_bat(1000)));
        s.set_column("Lib__size", {
            let vals: Vec<i64> = (0..1000).map(|i| i % 100).collect();
            monet::summarize(&Bat::dense(Column::Int(vals)))
        });
        s.set_index(
            "Lib__annotation",
            1000,
            [("sunset".to_string(), 40u32), ("beach".to_string(), 200u32)],
        );
        s
    }

    fn identity_bat(n: usize) -> Bat {
        Bat::new(Column::void(0, n), Column::void(0, n)).unwrap()
    }

    fn ops_with_fused() -> OpRegistry {
        let ops = OpRegistry::new();
        ops.register("contrep.getbl", |_ctx, _i, _p| Ok(bat_of_ints(vec![])));
        ops.register("contrep.getbl.topk", |_ctx, _i, _p| Ok(bat_of_ints(vec![])));
        ops
    }

    fn getbl(inputs: Vec<Plan>) -> Plan {
        Plan::Custom {
            op: "contrep.getbl".into(),
            inputs,
            params: vec![
                Val::Str("Lib__annotation".into()),
                Val::Str("sunset".into()),
                Val::Float(1.0),
            ],
        }
    }

    fn eq_filter(col: &str, v: i64) -> Plan {
        Plan::Mirror(Box::new(Plan::Select {
            input: Box::new(Plan::load(col)),
            pred: Pred::Eq(Val::Int(v)),
        }))
    }

    #[test]
    fn estimates_select_by_ndv_and_range_span() {
        let stats = catalog();
        let eq =
            Plan::Select { input: Box::new(Plan::load("Lib__size")), pred: Pred::Eq(Val::Int(7)) };
        // 1000 rows, ndv 100 → 10
        assert_eq!(estimate(&eq, &stats), Some(10));
        let range = Plan::Select {
            input: Box::new(Plan::load("Lib__size")),
            pred: Pred::Range {
                lo: Some(Val::Int(0)),
                lo_incl: true,
                hi: Some(Val::Int(49)),
                hi_incl: false,
            },
        };
        // about half the [0, 99] span
        let est = estimate(&range, &stats).unwrap();
        assert!((400..=600).contains(&est), "{est}");
    }

    #[test]
    fn estimates_belief_op_from_term_dfs() {
        let stats = catalog();
        assert_eq!(estimate(&getbl(vec![]), &stats), Some(40));
        // domain-restricted: capped by the domain estimate
        let dom = eq_filter("Lib__size", 3);
        assert_eq!(estimate(&getbl(vec![dom]), &stats), Some(10));
    }

    #[test]
    fn unknown_columns_estimate_to_none() {
        let stats = StatsCatalog::new();
        assert_eq!(estimate(&Plan::load("nope"), &stats), None);
    }

    fn ctx_parts() -> (StatsCatalog, OpRegistry) {
        (catalog(), ops_with_fused())
    }

    #[test]
    fn selection_order_puts_selective_filter_first() {
        let (stats, ops) = ctx_parts();
        let ctx =
            PassCtx { cfg: OptConfig::default(), stats: Arc::new(stats), ops: &ops, top_k: None };
        // base ⋉ wide(StrContains ≈ 100) ⋉ narrow(Eq ≈ 10)
        let wide = Plan::Mirror(Box::new(Plan::Select {
            input: Box::new(Plan::load("Lib__size")),
            pred: Pred::StrContains("x".into()),
        }));
        let narrow = eq_filter("Lib__size", 3);
        let plan = Plan::Semijoin {
            left: Box::new(Plan::Semijoin {
                left: Box::new(Plan::load("Lib__self")),
                right: Box::new(wide.clone()),
            }),
            right: Box::new(narrow.clone()),
        };
        let out = SelectionOrderPass.apply(&plan, &ctx);
        let expect = Plan::Semijoin {
            left: Box::new(Plan::Semijoin {
                left: Box::new(Plan::load("Lib__self")),
                right: Box::new(narrow),
            }),
            right: Box::new(wide),
        };
        assert_eq!(out.fingerprint(), expect.fingerprint());
    }

    #[test]
    fn selection_order_is_stable_without_stats() {
        let (_, ops) = ctx_parts();
        let ctx = PassCtx {
            cfg: OptConfig::default(),
            stats: Arc::new(StatsCatalog::new()),
            ops: &ops,
            top_k: None,
        };
        assert!(!SelectionOrderPass.enabled(&ctx));
    }

    #[test]
    fn push_domain_moves_selective_domain_into_the_operator() {
        let (stats, ops) = ctx_parts();
        let ctx =
            PassCtx { cfg: OptConfig::default(), stats: Arc::new(stats), ops: &ops, top_k: None };
        let domain = eq_filter("Lib__size", 3); // est 10 ≪ 1000
        let plan = Plan::Semijoin {
            left: Box::new(Plan::GroupedAggr {
                values: Box::new(getbl(vec![])),
                groups: Box::new(Plan::load("Lib__self")),
                agg: Agg::Sum,
            }),
            right: Box::new(domain.clone()),
        };
        let out = PushDomainPass.apply(&plan, &ctx);
        let Plan::Semijoin { left, .. } = &out else { panic!("semijoin kept") };
        let Plan::GroupedAggr { values, groups, .. } = &**left else { panic!("grouped sum kept") };
        assert_eq!(groups.fingerprint(), domain.fingerprint());
        let Plan::Custom { inputs, .. } = &**values else { panic!("custom kept") };
        assert_eq!(inputs.len(), 1, "domain became the operator input");
        // and the result now fuses under the legacy domain-restricted rule
        assert!(rewrite_topk(&out, 5, &ops).is_some());
    }

    #[test]
    fn push_domain_refuses_unselective_or_unknown_domains() {
        let (stats, ops) = ctx_parts();
        let ctx =
            PassCtx { cfg: OptConfig::default(), stats: Arc::new(stats), ops: &ops, top_k: None };
        // whole-corpus "domain": not selective
        let plan = Plan::Semijoin {
            left: Box::new(Plan::GroupedAggr {
                values: Box::new(getbl(vec![])),
                groups: Box::new(Plan::load("Lib__self")),
                agg: Agg::Sum,
            }),
            right: Box::new(Plan::load("Lib__self")),
        };
        assert_eq!(PushDomainPass.apply(&plan, &ctx).fingerprint(), plan.fingerprint());
        // unknown domain size: refuse
        let plan2 = Plan::Semijoin {
            left: Box::new(Plan::GroupedAggr {
                values: Box::new(getbl(vec![])),
                groups: Box::new(Plan::load("Lib__self")),
                agg: Agg::Sum,
            }),
            right: Box::new(Plan::load("mystery")),
        };
        assert_eq!(PushDomainPass.apply(&plan2, &ctx).fingerprint(), plan2.fingerprint());
    }

    #[test]
    fn topk_pass_fuses_the_late_filter_variant() {
        let (stats, ops) = ctx_parts();
        let ctx = PassCtx {
            cfg: OptConfig::default(),
            stats: Arc::new(stats),
            ops: &ops,
            top_k: Some(10),
        };
        let late = Plan::Semijoin {
            left: Box::new(Plan::GroupedAggr {
                values: Box::new(getbl(vec![])),
                groups: Box::new(Plan::load("Lib__self")),
                agg: Agg::Sum,
            }),
            right: Box::new(Plan::load("survivors")),
        };
        let out = TopKFusePass.apply(&late, &ctx);
        let Plan::Custom { op, inputs, params } = &out else { panic!("expected fused custom") };
        assert_eq!(op, "contrep.getbl.topk");
        assert_eq!(inputs.len(), 1);
        assert_eq!(params.last(), Some(&Val::Int(10)));
        // without stats_driven the late variant stays unfused (legacy none())
        let ctx_off = PassCtx { cfg: OptConfig::none(), top_k: Some(10), ..ctx };
        assert_eq!(TopKFusePass.apply(&late, &ctx_off).fingerprint(), late.fingerprint());
    }

    #[test]
    fn pipeline_reports_fired_passes_and_annotates() {
        let (stats, ops) = ctx_parts();
        let ctx =
            PassCtx { cfg: OptConfig::default(), stats: Arc::new(stats), ops: &ops, top_k: None };
        let plan = Plan::Semijoin {
            left: Box::new(Plan::Semijoin {
                left: Box::new(Plan::load("Lib__self")),
                right: Box::new(Plan::Mirror(Box::new(Plan::Select {
                    input: Box::new(Plan::load("Lib__size")),
                    pred: Pred::StrContains("x".into()),
                }))),
            }),
            right: Box::new(eq_filter("Lib__size", 3)),
        };
        let (out, hints) = Pipeline::standard().optimize(&plan, &ctx);
        assert!(hints.passes_fired.contains(&"selection_order"), "{:?}", hints.passes_fired);
        assert!(hints.est_rows.contains_key(&out.fingerprint()));
        // every annotated node has a degree cap too
        assert_eq!(hints.est_rows.len(), hints.degree_cap.len());
    }
}
