//! The logical environment: schemas, collections, bindings, and the
//! ingestion-time flattening of logical values into catalog BATs.
//!
//! Naming convention for flattened BATs (the "mirror" between the logical
//! and physical worlds):
//!
//! | logical thing                          | BAT name                      |
//! |----------------------------------------|-------------------------------|
//! | collection identity (oid → oid)        | `{coll}__self`                |
//! | atomic field `f`                       | `{coll}__{f}`                 |
//! | nested set field `g` (child → parent)  | `{coll}__{g}__map`            |
//! | nested set child attribute `a`         | `{coll}__{g}__{a}`            |
//! | nested set of atoms                    | `{coll}__{g}__elem`           |
//! | list order of `g`                      | `{coll}__{g}__pos`            |
//! | extension field `c`                    | under prefix `{coll}__{c}`    |

use crate::opt::StatsCatalog;
use crate::structure::StructRegistry;
#[cfg(test)]
use crate::types::AtomicType;
use crate::types::MoaType;
use crate::value::MoaVal;
use crate::{MoaError, Result};
use monet::{Bat, Catalog, Column, MonetType, Oid, OpRegistry, Val};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Metadata about a registered collection.
#[derive(Debug, Clone)]
pub struct CollectionMeta {
    /// Collection name.
    pub name: String,
    /// Element type (the `TUPLE<…>` inside the `SET<…>`).
    pub elem_ty: MoaType,
    /// Number of objects.
    pub count: usize,
}

/// The logical environment shared by the compiler, executor and naive
/// interpreter.
pub struct Env {
    catalog: Arc<Catalog>,
    ops: Arc<OpRegistry>,
    structs: Arc<StructRegistry>,
    collections: RwLock<HashMap<String, CollectionMeta>>,
    declared: RwLock<HashMap<String, MoaType>>,
    queries: RwLock<HashMap<String, Vec<(String, f64)>>>,
    raw: RwLock<HashMap<String, Arc<Vec<MoaVal>>>>,
    stats: RwLock<Arc<StatsCatalog>>,
    /// Keep object-at-a-time copies of ingested rows for the naive
    /// interpreter (costs memory; disabled by default).
    pub keep_raw: bool,
}

impl Env {
    /// Create an environment with fresh catalog and registries.
    pub fn new() -> Self {
        Env {
            catalog: Arc::new(Catalog::new()),
            ops: Arc::new(OpRegistry::new()),
            structs: Arc::new(StructRegistry::new()),
            collections: RwLock::new(HashMap::new()),
            declared: RwLock::new(HashMap::new()),
            queries: RwLock::new(HashMap::new()),
            raw: RwLock::new(HashMap::new()),
            stats: RwLock::new(Arc::new(StatsCatalog::new())),
            keep_raw: false,
        }
    }

    /// The current statistics catalog (an immutable snapshot; updated
    /// atomically by ingest).
    pub fn stats(&self) -> Arc<StatsCatalog> {
        Arc::clone(&self.stats.read())
    }

    /// Update the statistics catalog: clone-modify-swap, so concurrent
    /// queries keep reading a consistent snapshot.
    pub fn update_stats(&self, f: impl FnOnce(&mut StatsCatalog)) {
        let mut guard = self.stats.write();
        let mut next = (**guard).clone();
        f(&mut next);
        *guard = Arc::new(next);
    }

    /// The physical catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The physical operator registry.
    pub fn ops(&self) -> &Arc<OpRegistry> {
        &self.ops
    }

    /// The structure registry.
    pub fn structures(&self) -> &Arc<StructRegistry> {
        &self.structs
    }

    /// Declare a schema (`define Name as TYPE;`) without loading data.
    pub fn declare(&self, name: impl Into<String>, ty: MoaType) -> Result<()> {
        let name = name.into();
        match &ty {
            MoaType::Set(elem) if matches!(**elem, MoaType::Tuple(_)) => {
                self.check_ext_params(elem)?;
                self.declared.write().insert(name, ty);
                Ok(())
            }
            other => Err(MoaError::Type(format!("collections must be SET<TUPLE<…>>, got {other}"))),
        }
    }

    /// The declared (or loaded) type of a collection element.
    pub fn elem_type(&self, coll: &str) -> Result<MoaType> {
        if let Some(meta) = self.collections.read().get(coll) {
            return Ok(meta.elem_ty.clone());
        }
        if let Some(ty) = self.declared.read().get(coll) {
            return Ok(ty.elem().expect("declared is SET").clone());
        }
        Err(MoaError::Unknown(format!("collection '{coll}'")))
    }

    /// Collection metadata.
    pub fn collection(&self, name: &str) -> Result<CollectionMeta> {
        self.collections
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| MoaError::Unknown(format!("collection '{name}'")))
    }

    /// All loaded collection names, sorted.
    pub fn collection_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.collections.read().keys().cloned().collect();
        v.sort();
        v
    }

    fn check_ext_params(&self, ty: &MoaType) -> Result<()> {
        match ty {
            MoaType::Ext { name, param } => {
                let s = self.structs.get(name)?;
                s.check_param(param)?;
                Ok(())
            }
            MoaType::Tuple(fs) => {
                for (_, t) in fs {
                    self.check_ext_params(t)?;
                }
                Ok(())
            }
            MoaType::Set(t) | MoaType::List(t) => self.check_ext_params(t),
            MoaType::Atomic(_) => Ok(()),
        }
    }

    /// Bind a weighted query-term variable (the paper's `query`).
    pub fn bind_query(&self, name: impl Into<String>, terms: Vec<(String, f64)>) {
        self.queries.write().insert(name.into(), terms);
    }

    /// Look up a query binding.
    pub fn query_binding(&self, name: &str) -> Option<Vec<(String, f64)>> {
        self.queries.read().get(name).cloned()
    }

    /// Remove a query binding (used by callers that bind per-request
    /// variables to stay safe under concurrency).
    pub fn unbind_query(&self, name: &str) {
        self.queries.write().remove(name);
    }

    /// Bind a query variable for the lifetime of the returned guard: the
    /// binding is removed when the guard drops, so an early return, `?`, or
    /// panic between bind and use can no longer leak it into the shared
    /// environment. Prefer request-scoped [`crate::QueryParams`] (which
    /// never touch the environment at all); the guard exists for callers
    /// that still need an environment binding (e.g. the naive interpreter).
    #[must_use = "dropping the guard immediately unbinds the query"]
    pub fn bind_query_scoped(
        &self,
        name: impl Into<String>,
        terms: Vec<(String, f64)>,
    ) -> QueryBindingGuard<'_> {
        let name = name.into();
        self.bind_query(name.clone(), terms);
        QueryBindingGuard { env: self, name }
    }

    /// Raw rows of a collection (only if `keep_raw` was set at load time).
    pub fn raw_rows(&self, coll: &str) -> Option<Arc<Vec<MoaVal>>> {
        self.raw.read().get(coll).cloned()
    }

    /// Create (or replace) a collection: validate rows against the declared
    /// or supplied `SET<TUPLE<…>>` type and flatten them into the catalog.
    pub fn create_collection(
        &self,
        name: impl Into<String>,
        ty: MoaType,
        rows: Vec<MoaVal>,
    ) -> Result<CollectionMeta> {
        let name = name.into();
        let elem_ty = match &ty {
            MoaType::Set(e) if matches!(**e, MoaType::Tuple(_)) => (**e).clone(),
            other => {
                return Err(MoaError::Type(format!(
                    "collections must be SET<TUPLE<…>>, got {other}"
                )))
            }
        };
        self.check_ext_params(&elem_ty)?;
        for (i, row) in rows.iter().enumerate() {
            if !row.conforms(&elem_ty) {
                return Err(MoaError::Type(format!(
                    "row {i} of '{name}' does not conform to {elem_ty}"
                )));
            }
        }
        // Drop any previous flattening of this collection.
        self.catalog.drop_prefix(&format!("{name}__"));
        let fields = elem_ty.fields().expect("tuple").to_vec();
        self.flatten_tuples(&name, &fields, &rows)?;
        let n = rows.len();
        self.catalog.register(
            format!("{name}__self"),
            Bat::new(Column::void(0, n), Column::void(0, n)).expect("equal lengths"),
        );
        let meta = CollectionMeta { name: name.clone(), elem_ty, count: n };
        self.collections.write().insert(name.clone(), meta.clone());
        self.collect_column_stats(&name);
        if self.keep_raw {
            self.raw.write().insert(name, Arc::new(rows));
        }
        Ok(meta)
    }

    /// Summarise every flattened BAT of a collection into the statistics
    /// catalog (replacing any previous entries for the collection). Runs at
    /// ingest so queries pay nothing; the summaries themselves are
    /// stride-sampled and cheap even for million-row columns.
    fn collect_column_stats(&self, coll: &str) {
        let prefix = format!("{coll}__");
        let summaries: Vec<(String, monet::ColSummary)> = self
            .catalog
            .names()
            .into_iter()
            .filter(|n| n.starts_with(&prefix))
            .filter_map(|n| self.catalog.get(&n).ok().map(|b| (n, monet::summarize(&b))))
            .collect();
        self.update_stats(|stats| {
            stats.drop_prefix(&prefix);
            for (name, summary) in summaries {
                stats.set_column(name, summary);
            }
        });
    }

    /// Flatten rows (each a `MoaVal::Tuple`) under `prefix`.
    fn flatten_tuples(
        &self,
        prefix: &str,
        fields: &[(String, MoaType)],
        rows: &[MoaVal],
    ) -> Result<()> {
        for (fi, (fname, fty)) in fields.iter().enumerate() {
            let field_of = |row: &MoaVal| -> MoaVal {
                match row {
                    MoaVal::Tuple(vs) => vs.get(fi).cloned().unwrap_or(MoaVal::Null),
                    _ => MoaVal::Null,
                }
            };
            match fty {
                MoaType::Atomic(a) => {
                    let vals: Result<Vec<Val>> =
                        rows.iter().map(|r| field_of(r).to_physical(fty)).collect();
                    let col = typed_column(a.physical(), vals?)?;
                    self.catalog.register(format!("{prefix}__{fname}"), Bat::dense(col));
                }
                MoaType::Set(inner) | MoaType::List(inner) => {
                    let is_list = matches!(fty, MoaType::List(_));
                    let mut parents: Vec<Oid> = Vec::new();
                    let mut positions: Vec<i64> = Vec::new();
                    let mut children: Vec<MoaVal> = Vec::new();
                    for (oid, row) in rows.iter().enumerate() {
                        let v = field_of(row);
                        let elems = match &v {
                            MoaVal::Set(e) | MoaVal::List(e) => e.clone(),
                            MoaVal::Null => Vec::new(),
                            other => {
                                return Err(MoaError::Type(format!(
                                    "field '{fname}' expected a set, got {other:?}"
                                )))
                            }
                        };
                        for (pos, e) in elems.into_iter().enumerate() {
                            parents.push(oid as Oid);
                            positions.push(pos as i64);
                            children.push(e);
                        }
                    }
                    let child_prefix = format!("{prefix}__{fname}");
                    self.catalog
                        .register(format!("{child_prefix}__map"), Bat::dense(Column::Oid(parents)));
                    if is_list {
                        self.catalog.register(
                            format!("{child_prefix}__pos"),
                            Bat::dense(Column::Int(positions)),
                        );
                    }
                    match &**inner {
                        MoaType::Tuple(child_fields) => {
                            self.flatten_tuples(&child_prefix, child_fields, &children)?;
                            let m = children.len();
                            self.catalog.register(
                                format!("{child_prefix}__self"),
                                Bat::new(Column::void(0, m), Column::void(0, m))
                                    .expect("equal lengths"),
                            );
                        }
                        MoaType::Atomic(a) => {
                            let vals: Result<Vec<Val>> =
                                children.iter().map(|c| c.to_physical(inner)).collect();
                            let col = typed_column(a.physical(), vals?)?;
                            self.catalog.register(format!("{child_prefix}__elem"), Bat::dense(col));
                        }
                        other => {
                            return Err(MoaError::Unsupported(format!(
                                "nested structure {other} inside a set \
                                 (flatten one level at a time)"
                            )))
                        }
                    }
                }
                MoaType::Tuple(sub) => {
                    // inline tuple: fields share the parent oids
                    let sub_rows: Vec<MoaVal> = rows.iter().map(&field_of).collect();
                    self.flatten_tuples(&format!("{prefix}__{fname}"), sub, &sub_rows)?;
                }
                MoaType::Ext { name: sname, param } => {
                    let s = self.structs.get(sname)?;
                    let payloads: Vec<Option<String>> = rows
                        .iter()
                        .map(|r| match field_of(r) {
                            MoaVal::Str(s) => Some(s),
                            _ => None,
                        })
                        .collect();
                    s.build(
                        &payloads,
                        param,
                        &self.catalog,
                        &self.ops,
                        &format!("{prefix}__{fname}"),
                    )?;
                }
            }
        }
        Ok(())
    }
}

impl Default for Env {
    fn default() -> Self {
        Self::new()
    }
}

/// RAII guard for a query binding created by [`Env::bind_query_scoped`];
/// unbinds on drop, including during unwinding.
pub struct QueryBindingGuard<'e> {
    env: &'e Env,
    name: String,
}

impl QueryBindingGuard<'_> {
    /// The bound variable name (splice into the query text).
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl Drop for QueryBindingGuard<'_> {
    fn drop(&mut self) {
        self.env.unbind_query(&self.name);
    }
}

/// Build a column of physical type `ty` from scalar values (handles the
/// empty case, which `Column::from_vals` cannot type).
pub(crate) fn typed_column(ty: MonetType, vals: Vec<Val>) -> Result<Column> {
    if vals.is_empty() {
        return Ok(Column::empty(ty));
    }
    Column::from_vals(&vals).map_err(MoaError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_define;

    fn simple_rows() -> (MoaType, Vec<MoaVal>) {
        let (_, ty) =
            parse_define("define Lib as SET<TUPLE< Atomic<URL>: source, Atomic<int>: size >>;")
                .unwrap();
        let rows = vec![
            MoaVal::Tuple(vec![MoaVal::str("u0"), MoaVal::Int(10)]),
            MoaVal::Tuple(vec![MoaVal::str("u1"), MoaVal::Int(20)]),
        ];
        (ty, rows)
    }

    #[test]
    fn create_collection_registers_bats() {
        let env = Env::new();
        let (ty, rows) = simple_rows();
        let meta = env.create_collection("Lib", ty, rows).unwrap();
        assert_eq!(meta.count, 2);
        let names = env.catalog().names();
        assert!(names.contains(&"Lib__source".to_string()));
        assert!(names.contains(&"Lib__size".to_string()));
        assert!(names.contains(&"Lib__self".to_string()));
        let sizes = env.catalog().get("Lib__size").unwrap();
        assert_eq!(sizes.tail().int_slice().unwrap(), &[10, 20]);
    }

    #[test]
    fn create_collection_rejects_bad_rows() {
        let env = Env::new();
        let (ty, _) = simple_rows();
        let bad = vec![MoaVal::Tuple(vec![MoaVal::Int(5), MoaVal::Int(10)])];
        assert!(matches!(env.create_collection("Lib", ty, bad), Err(MoaError::Type(_))));
    }

    #[test]
    fn create_collection_rejects_non_set_of_tuple() {
        let env = Env::new();
        let ty = MoaType::Set(Box::new(MoaType::Atomic(AtomicType::Int)));
        assert!(env.create_collection("X", ty, vec![]).is_err());
    }

    #[test]
    fn nested_set_flattens_to_map_and_child_bats() {
        let env = Env::new();
        let (_, ty) = parse_define(
            "define L as SET<TUPLE<
               Atomic<URL>: source,
               SET<TUPLE<Atomic<str>: tag, Atomic<float>: w>>: tags >>;",
        )
        .unwrap();
        let rows = vec![
            MoaVal::Tuple(vec![
                MoaVal::str("u0"),
                MoaVal::Set(vec![
                    MoaVal::Tuple(vec![MoaVal::str("red"), MoaVal::Float(0.9)]),
                    MoaVal::Tuple(vec![MoaVal::str("sky"), MoaVal::Float(0.5)]),
                ]),
            ]),
            MoaVal::Tuple(vec![
                MoaVal::str("u1"),
                MoaVal::Set(vec![MoaVal::Tuple(vec![MoaVal::str("sea"), MoaVal::Float(0.7)])]),
            ]),
        ];
        env.create_collection("L", ty, rows).unwrap();
        let map = env.catalog().get("L__tags__map").unwrap();
        // three children: two for parent 0, one for parent 1
        assert_eq!(map.count(), 3);
        assert_eq!(map.fetch(2).unwrap().1, Val::Oid(1));
        let tags = env.catalog().get("L__tags__tag").unwrap();
        assert_eq!(tags.fetch(0).unwrap().1, Val::from("red"));
        let w = env.catalog().get("L__tags__w").unwrap();
        assert_eq!(w.fetch(2).unwrap().1, Val::Float(0.7));
    }

    #[test]
    fn list_field_records_positions() {
        let env = Env::new();
        let (_, ty) = parse_define("define L as SET<TUPLE< LIST<Atomic<int>>: xs >>;").unwrap();
        let rows = vec![MoaVal::Tuple(vec![MoaVal::List(vec![MoaVal::Int(7), MoaVal::Int(8)])])];
        env.create_collection("L", ty, rows).unwrap();
        let pos = env.catalog().get("L__xs__pos").unwrap();
        assert_eq!(pos.tail().int_slice().unwrap(), &[0, 1]);
        let elems = env.catalog().get("L__xs__elem").unwrap();
        assert_eq!(elems.tail().int_slice().unwrap(), &[7, 8]);
    }

    #[test]
    fn declare_then_query_type() {
        let env = Env::new();
        let (name, ty) =
            parse_define("define Lib as SET<TUPLE< Atomic<URL>: source, Atomic<int>: size >>;")
                .unwrap();
        env.declare(name, ty).unwrap();
        let elem = env.elem_type("Lib").unwrap();
        assert!(elem.field("size").is_some());
        assert!(env.elem_type("Nope").is_err());
    }

    #[test]
    fn unknown_extension_structure_is_rejected() {
        let env = Env::new();
        let (_, ty) =
            parse_define("define Lib as SET<TUPLE< CONTREP<Text>: annotation >>;").unwrap();
        // CONTREP not registered in a bare Env
        assert!(matches!(env.create_collection("Lib", ty, vec![]), Err(MoaError::Unknown(_))));
    }

    #[test]
    fn query_bindings() {
        let env = Env::new();
        env.bind_query("query", vec![("sunset".into(), 1.0)]);
        assert_eq!(env.query_binding("query").unwrap()[0].0, "sunset");
        assert!(env.query_binding("other").is_none());
    }

    #[test]
    fn scoped_binding_unbinds_on_drop() {
        let env = Env::new();
        {
            let guard = env.bind_query_scoped("q0", vec![("sunset".into(), 1.0)]);
            assert_eq!(guard.name(), "q0");
            assert!(env.query_binding("q0").is_some());
        }
        assert!(env.query_binding("q0").is_none());
    }

    #[test]
    fn scoped_binding_survives_panics() {
        let env = Env::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = env.bind_query_scoped("qp", vec![("sunset".into(), 1.0)]);
            assert!(env.query_binding("qp").is_some());
            panic!("executor error mid-query");
        }));
        assert!(result.is_err());
        assert!(env.query_binding("qp").is_none(), "panic leaked the binding");
    }

    #[test]
    fn keep_raw_stores_rows() {
        let mut env = Env::new();
        env.keep_raw = true;
        let (ty, rows) = simple_rows();
        env.create_collection("Lib", ty, rows).unwrap();
        assert_eq!(env.raw_rows("Lib").unwrap().len(), 2);
    }

    #[test]
    fn reingest_replaces_collection() {
        let env = Env::new();
        let (ty, rows) = simple_rows();
        env.create_collection("Lib", ty.clone(), rows).unwrap();
        env.create_collection(
            "Lib",
            ty,
            vec![MoaVal::Tuple(vec![MoaVal::str("u9"), MoaVal::Int(9)])],
        )
        .unwrap();
        assert_eq!(env.collection("Lib").unwrap().count, 1);
        assert_eq!(env.catalog().get("Lib__size").unwrap().count(), 1);
    }
}
