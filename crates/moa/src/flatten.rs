//! The flattening compiler: Moa expressions → BAT-algebra plans.
//!
//! Following Boncz/Wilschut/Kersten \[BWK98\], every logical expression over
//! structured objects compiles to a *set-at-a-time* plan over the flattened
//! columns. The compiler threads a *domain restriction* (the set of
//! surviving parent oids, as a `[oid, oid]` plan) through the translation,
//! so relational selections compose with content ranking in one plan — the
//! paper's "efficient integration of IR and data retrieval".

use crate::expr::{ArithKind, CmpOp, Expr, Lit};
use crate::params::QueryParams;
use crate::structure::CallArgs;
use crate::types::{AtomicType, MoaType};
use crate::{Env, MoaError, Result};
use monet::{Agg, ArithOp, Plan, Pred, Val};

/// The compiled representation of a Moa (sub)expression.
#[derive(Debug, Clone)]
pub enum Rep {
    /// A set of rows of collection `coll`; `domain` (if any) is a plan for
    /// the surviving `[oid, oid]` pairs.
    Rows {
        /// Collection name.
        coll: String,
        /// Restriction plan, `None` = the full collection.
        domain: Option<Plan>,
    },
    /// Values aligned to parent oids: the plan yields `[parent_oid, value]`.
    Vals {
        /// The plan.
        plan: Plan,
        /// More than one row per parent possible (a nested set)?
        multi: bool,
        /// The element type of the values.
        ty: MoaType,
        /// The collection whose oids the heads come from.
        coll: String,
        /// Restriction inherited from the input pipeline.
        domain: Option<Plan>,
        /// If the values are child oids of a nested set, the child BAT
        /// prefix (enables attribute access through the nesting).
        child_prefix: Option<String>,
    },
    /// A single scalar (whole-set aggregate); plan yields a 1-row BAT.
    Scalar {
        /// The plan.
        plan: Plan,
        /// The scalar type.
        ty: MoaType,
    },
    /// A bound set of weighted query terms.
    Query(Vec<(String, f64)>),
    /// A reference to collection statistics (resolved by structures).
    Stats(String),
    /// A literal value.
    Lit(Val),
}

/// What `THIS` denotes while compiling the body of a `map`/`select`.
enum ThisBind<'a> {
    /// `THIS` is a row (tuple) of `coll`.
    Row { coll: &'a str, domain: Option<&'a Plan> },
    /// `THIS` is a set of values per parent (body of a map over a nested
    /// result).
    SetOf {
        plan: &'a Plan,
        ty: &'a MoaType,
        coll: &'a str,
        domain: Option<&'a Plan>,
        child_prefix: Option<&'a str>,
    },
    /// `THIS` is one atomic value per parent.
    ValOf { plan: &'a Plan, ty: &'a MoaType, coll: &'a str, domain: Option<&'a Plan> },
}

/// The flattening compiler.
pub struct Compiler<'e> {
    env: &'e Env,
    params: Option<&'e QueryParams>,
}

impl<'e> Compiler<'e> {
    /// Create a compiler over an environment.
    pub fn new(env: &'e Env) -> Self {
        Compiler { env, params: None }
    }

    /// Create a compiler that resolves query bindings from request-scoped
    /// [`QueryParams`] first, falling back to the environment — the
    /// concurrent-serving path, which never touches the shared `Env` maps.
    pub fn with_params(env: &'e Env, params: &'e QueryParams) -> Self {
        Compiler { env, params: Some(params) }
    }

    /// Compile a top-level expression.
    pub fn compile(&self, expr: &Expr) -> Result<Rep> {
        self.comp(expr, None)
    }

    fn comp(&self, expr: &Expr, this: Option<&ThisBind<'_>>) -> Result<Rep> {
        match expr {
            Expr::Lit(Lit::Int(i)) => Ok(Rep::Lit(Val::Int(*i))),
            Expr::Lit(Lit::Float(x)) => Ok(Rep::Lit(Val::Float(*x))),
            Expr::Lit(Lit::Str(s)) => Ok(Rep::Lit(Val::Str(s.clone()))),
            Expr::Ident(name) => self.ident(name),
            Expr::This => self.this_rep(this),
            Expr::Attr(base, field) => self.attr(base, field, this),
            Expr::Map { body, input } => self.map(body, input, this),
            Expr::Select { pred, input } => self.select(pred, input, this),
            Expr::Call { name, args } => self.call(name, args, this),
            Expr::Arith { op, left, right } => self.arith(*op, left, right, this),
            Expr::Cmp { .. } | Expr::And(_, _) | Expr::Or(_, _) => {
                Err(MoaError::Unsupported("comparison outside select[…] predicate".into()))
            }
        }
    }

    fn ident(&self, name: &str) -> Result<Rep> {
        if let Some(terms) = self.params.and_then(|p| p.binding(name)) {
            return Ok(Rep::Query(terms.to_vec()));
        }
        if let Some(terms) = self.env.query_binding(name) {
            return Ok(Rep::Query(terms));
        }
        if name == "stats" || name.ends_with("_stats") {
            return Ok(Rep::Stats(name.to_string()));
        }
        self.env.collection(name)?;
        Ok(Rep::Rows { coll: name.to_string(), domain: None })
    }

    fn this_rep(&self, this: Option<&ThisBind<'_>>) -> Result<Rep> {
        match this {
            Some(ThisBind::Row { coll, domain }) => {
                Ok(Rep::Rows { coll: coll.to_string(), domain: domain.cloned() })
            }
            Some(ThisBind::SetOf { plan, ty, coll, domain, child_prefix }) => Ok(Rep::Vals {
                plan: (*plan).clone(),
                multi: true,
                ty: (*ty).clone(),
                coll: coll.to_string(),
                domain: domain.cloned(),
                child_prefix: child_prefix.map(str::to_string),
            }),
            Some(ThisBind::ValOf { plan, ty, coll, domain }) => Ok(Rep::Vals {
                plan: (*plan).clone(),
                multi: false,
                ty: (*ty).clone(),
                coll: coll.to_string(),
                domain: domain.cloned(),
                child_prefix: None,
            }),
            None => Err(MoaError::Unsupported("THIS outside map/select".into())),
        }
    }

    fn attr(&self, base: &Expr, field: &str, this: Option<&ThisBind<'_>>) -> Result<Rep> {
        let base_rep = self.comp(base, this)?;
        match base_rep {
            Rep::Rows { coll, domain } => {
                let elem = self.env.elem_type(&coll)?;
                let fty = elem
                    .field(field)
                    .ok_or_else(|| {
                        MoaError::Unknown(format!("field '{field}' of collection '{coll}'"))
                    })?
                    .clone();
                match &fty {
                    MoaType::Atomic(_) => {
                        let plan = restrict(Plan::load(format!("{coll}__{field}")), &domain);
                        Ok(Rep::Vals {
                            plan,
                            multi: false,
                            ty: fty,
                            coll,
                            domain,
                            child_prefix: None,
                        })
                    }
                    MoaType::Set(inner) | MoaType::List(inner) => {
                        // child→parent map reversed gives [parent, child oid]
                        let prefix = format!("{coll}__{field}");
                        let to_children = restrict(
                            Plan::Reverse(Box::new(Plan::load(format!("{prefix}__map")))),
                            &domain,
                        );
                        match &**inner {
                            // set of atoms: fetch the element values
                            MoaType::Atomic(_) => Ok(Rep::Vals {
                                plan: Plan::Join {
                                    left: Box::new(to_children),
                                    right: Box::new(Plan::load(format!("{prefix}__elem"))),
                                },
                                multi: true,
                                ty: (**inner).clone(),
                                coll,
                                domain,
                                child_prefix: None,
                            }),
                            // set of tuples: keep child oids, remember the
                            // prefix so field access can join later
                            _ => Ok(Rep::Vals {
                                plan: to_children,
                                multi: true,
                                ty: (**inner).clone(),
                                coll,
                                domain,
                                child_prefix: Some(prefix),
                            }),
                        }
                    }
                    MoaType::Ext { .. } => Err(MoaError::Unsupported(format!(
                        "extension attribute '{field}' can only be used through its methods (e.g. getBL)"
                    ))),
                    MoaType::Tuple(_) => Err(MoaError::Unsupported(format!(
                        "direct access to inline tuple '{field}'; access its fields instead"
                    ))),
                }
            }
            Rep::Vals { plan, multi, ty, coll, domain, child_prefix } => {
                // attribute of nested set elements: join child oids to the
                // child attribute BAT, keeping parent heads
                let prefix = child_prefix.ok_or_else(|| {
                    MoaError::Unsupported(format!("attribute '{field}' on non-tuple values"))
                })?;
                let fty = ty
                    .field(field)
                    .ok_or_else(|| {
                        MoaError::Unknown(format!("field '{field}' of nested set '{prefix}'"))
                    })?
                    .clone();
                if !matches!(fty, MoaType::Atomic(_)) {
                    return Err(MoaError::Unsupported(
                        "attribute chains deeper than one nested set".into(),
                    ));
                }
                let joined = Plan::Join {
                    left: Box::new(plan),
                    right: Box::new(Plan::load(format!("{prefix}__{field}"))),
                };
                Ok(Rep::Vals { plan: joined, multi, ty: fty, coll, domain, child_prefix: None })
            }
            other => {
                Err(MoaError::Unsupported(format!("attribute access on {}", rep_kind(&other))))
            }
        }
    }

    fn map(&self, body: &Expr, input: &Expr, this: Option<&ThisBind<'_>>) -> Result<Rep> {
        let input_rep = self.comp(input, this)?;
        match input_rep {
            Rep::Rows { coll, domain } => {
                let bind = ThisBind::Row { coll: &coll, domain: domain.as_ref() };
                let out = self.comp(body, Some(&bind))?;
                match out {
                    v @ Rep::Vals { .. } => Ok(v),
                    // map[THIS](C) — identity
                    Rep::Rows { coll, domain } => Ok(Rep::Rows { coll, domain }),
                    // map[0.5](C) — constant per row
                    Rep::Lit(v) => {
                        let ident = identity_plan(&coll, &domain);
                        Ok(Rep::Vals {
                            plan: Plan::ProjectConst { input: Box::new(ident), val: v.clone() },
                            multi: false,
                            ty: lit_type(&v),
                            coll,
                            domain,
                            child_prefix: None,
                        })
                    }
                    other => Err(MoaError::Unsupported(format!(
                        "map body produced {}",
                        rep_kind(&other)
                    ))),
                }
            }
            Rep::Vals { plan, multi, ty, coll, domain, child_prefix } => {
                let bind = if multi {
                    ThisBind::SetOf {
                        plan: &plan,
                        ty: &ty,
                        coll: &coll,
                        domain: domain.as_ref(),
                        child_prefix: child_prefix.as_deref(),
                    }
                } else {
                    ThisBind::ValOf { plan: &plan, ty: &ty, coll: &coll, domain: domain.as_ref() }
                };
                self.comp(body, Some(&bind))
            }
            other => Err(MoaError::Unsupported(format!("map over {}", rep_kind(&other)))),
        }
    }

    fn select(&self, pred: &Expr, input: &Expr, this: Option<&ThisBind<'_>>) -> Result<Rep> {
        let input_rep = self.comp(input, this)?;
        match input_rep {
            Rep::Rows { coll, domain } => {
                let new_domain = self.compile_pred(pred, &coll, &domain)?;
                let combined = match domain {
                    Some(d) => Plan::Semijoin { left: Box::new(new_domain), right: Box::new(d) },
                    None => new_domain,
                };
                Ok(Rep::Rows { coll, domain: Some(combined) })
            }
            // Selection over an already-mapped set. Two cases:
            //  * the predicate tests the mapped values themselves
            //    (`select[THIS > 0.5](map[…](C))`) — a tail select;
            //  * the predicate tests row attributes of the underlying
            //    collection — *late filtering*: evaluate the map over
            //    everything, then semijoin with the qualifying rows. The
            //    pushdown rewrite turns this shape into early filtering;
            //    keeping the late form is what the optimizer ablation
            //    measures.
            Rep::Vals { plan, multi, ty, coll, domain, child_prefix } => {
                if pred.uses_bare_this() {
                    let filtered = self.value_pred(pred, plan)?;
                    Ok(Rep::Vals { plan: filtered, multi, ty, coll, domain, child_prefix })
                } else {
                    let survivors = self.compile_pred(pred, &coll, &None)?;
                    Ok(Rep::Vals {
                        plan: Plan::Semijoin { left: Box::new(plan), right: Box::new(survivors) },
                        multi,
                        ty,
                        coll,
                        domain,
                        child_prefix,
                    })
                }
            }
            other => Err(MoaError::Unsupported(format!("select over {}", rep_kind(&other)))),
        }
    }

    /// Compile a predicate over the mapped values (`THIS` = the value) into
    /// a tail selection on the values plan.
    fn value_pred(&self, pred: &Expr, plan: Plan) -> Result<Plan> {
        let Expr::Cmp { op, left, right } = pred else {
            return Err(MoaError::Unsupported(
                "value predicates must be a single comparison with THIS".into(),
            ));
        };
        let (op, lit) = match (&**left, &**right) {
            (Expr::This, Expr::Lit(l)) => (*op, l.clone()),
            (Expr::Lit(l), Expr::This) => (flip(*op), l.clone()),
            _ => {
                return Err(MoaError::Unsupported(
                    "value predicates must compare THIS with a literal".into(),
                ))
            }
        };
        let lit = match lit {
            Lit::Int(i) => Val::Int(i),
            Lit::Float(x) => Val::Float(x),
            Lit::Str(s) => Val::Str(s),
        };
        let p = match op {
            CmpOp::Eq => Pred::Eq(lit),
            CmpOp::Ne => return Err(MoaError::Unsupported("THIS != literal on values".into())),
            CmpOp::Lt => Pred::Range { lo: None, lo_incl: true, hi: Some(lit), hi_incl: false },
            CmpOp::Le => Pred::Range { lo: None, lo_incl: true, hi: Some(lit), hi_incl: true },
            CmpOp::Gt => Pred::Range { lo: Some(lit), lo_incl: false, hi: None, hi_incl: true },
            CmpOp::Ge => Pred::Range { lo: Some(lit), lo_incl: true, hi: None, hi_incl: true },
        };
        Ok(Plan::Select { input: Box::new(plan), pred: p })
    }

    /// Compile a predicate into a `[oid, oid]` survivors plan.
    fn compile_pred(&self, pred: &Expr, coll: &str, domain: &Option<Plan>) -> Result<Plan> {
        match pred {
            Expr::And(l, r) => {
                let lp = self.compile_pred(l, coll, domain)?;
                let rp = self.compile_pred(r, coll, domain)?;
                Ok(Plan::Semijoin { left: Box::new(lp), right: Box::new(rp) })
            }
            Expr::Or(l, r) => {
                let lp = self.compile_pred(l, coll, domain)?;
                let rp = self.compile_pred(r, coll, domain)?;
                Ok(Plan::KUnion { left: Box::new(lp), right: Box::new(rp) })
            }
            Expr::Cmp { op, left, right } => {
                let bind = ThisBind::Row { coll, domain: domain.as_ref() };
                let lrep = self.comp(left, Some(&bind))?;
                let rrep = self.comp(right, Some(&bind))?;
                let (vals_plan, lit) = match (lrep, rrep) {
                    (Rep::Vals { plan, multi: false, .. }, Rep::Lit(v)) => (plan, v),
                    (Rep::Lit(v), Rep::Vals { plan, multi: false, .. }) => {
                        // flip the comparison
                        let flipped = flip(*op);
                        return self.pred_from_plan(plan, flipped, v, coll);
                    }
                    _ => {
                        return Err(MoaError::Unsupported(
                            "predicates must compare an attribute with a literal".into(),
                        ))
                    }
                };
                self.pred_from_plan(vals_plan, *op, lit, coll)
            }
            Expr::Call { name, args } if name == "contains" => {
                let bind = ThisBind::Row { coll, domain: domain.as_ref() };
                if args.len() != 2 {
                    return Err(MoaError::Type("contains(attr, \"pat\") needs 2 args".into()));
                }
                let attr = self.comp(&args[0], Some(&bind))?;
                let pat = self.comp(&args[1], Some(&bind))?;
                let (Rep::Vals { plan, multi: false, .. }, Rep::Lit(Val::Str(p))) = (attr, pat)
                else {
                    return Err(MoaError::Type(
                        "contains needs an atomic attribute and a string literal".into(),
                    ));
                };
                Ok(Plan::Mirror(Box::new(Plan::Select {
                    input: Box::new(plan),
                    pred: Pred::StrContains(p),
                })))
            }
            other => Err(MoaError::Unsupported(format!("predicate expression {other}"))),
        }
    }

    fn pred_from_plan(&self, plan: Plan, op: CmpOp, lit: Val, coll: &str) -> Result<Plan> {
        let selected = match op {
            CmpOp::Eq => Plan::Select { input: Box::new(plan), pred: Pred::Eq(lit) },
            CmpOp::Ne => {
                let eq = Plan::Mirror(Box::new(Plan::Select {
                    input: Box::new(plan),
                    pred: Pred::Eq(lit),
                }));
                let all = Plan::load(format!("{coll}__self"));
                return Ok(Plan::KDiff { left: Box::new(all), right: Box::new(eq) });
            }
            CmpOp::Lt => Plan::Select {
                input: Box::new(plan),
                pred: Pred::Range { lo: None, lo_incl: true, hi: Some(lit), hi_incl: false },
            },
            CmpOp::Le => Plan::Select {
                input: Box::new(plan),
                pred: Pred::Range { lo: None, lo_incl: true, hi: Some(lit), hi_incl: true },
            },
            CmpOp::Gt => Plan::Select {
                input: Box::new(plan),
                pred: Pred::Range { lo: Some(lit), lo_incl: false, hi: None, hi_incl: true },
            },
            CmpOp::Ge => Plan::Select {
                input: Box::new(plan),
                pred: Pred::Range { lo: Some(lit), lo_incl: true, hi: None, hi_incl: true },
            },
        };
        Ok(Plan::Mirror(Box::new(selected)))
    }

    fn call(&self, name: &str, args: &[Expr], this: Option<&ThisBind<'_>>) -> Result<Rep> {
        match name {
            "sum" | "count" | "min" | "max" | "avg" => self.aggregate(name, args, this),
            "getBL" => self.get_bl(args, this),
            "topk" => self.topk(args, this),
            other => {
                // extension-structure method: getXYZ(THIS.field, …)
                if let Some(Expr::Attr(base, field)) = args.first() {
                    if matches!(**base, Expr::This) {
                        return self.ext_method(other, field, args, this);
                    }
                }
                Err(MoaError::Unknown(format!("function '{other}'")))
            }
        }
    }

    fn aggregate(&self, name: &str, args: &[Expr], this: Option<&ThisBind<'_>>) -> Result<Rep> {
        if args.len() != 1 {
            return Err(MoaError::Type(format!("{name}() takes exactly one argument")));
        }
        let agg = match name {
            "sum" => Agg::Sum,
            "count" => Agg::Count,
            "min" => Agg::Min,
            "max" => Agg::Max,
            "avg" => Agg::Avg,
            _ => unreachable!("checked by caller"),
        };
        let arg = self.comp(&args[0], this)?;
        match arg {
            // aggregate of a nested set, per parent object
            Rep::Vals { plan, multi: true, coll, domain, .. } => {
                let groups = identity_plan(&coll, &domain);
                let mut out =
                    Plan::GroupedAggr { values: Box::new(plan), groups: Box::new(groups), agg };
                if let Some(d) = &domain {
                    out = Plan::Semijoin { left: Box::new(out), right: Box::new(d.clone()) };
                }
                let ty = if agg == Agg::Count {
                    MoaType::Atomic(AtomicType::Int)
                } else {
                    MoaType::Atomic(AtomicType::Float)
                };
                Ok(Rep::Vals { plan: out, multi: false, ty, coll, domain, child_prefix: None })
            }
            // aggregate of a per-object value set → one scalar
            Rep::Vals { plan, multi: false, .. } => {
                let ty = if agg == Agg::Count {
                    MoaType::Atomic(AtomicType::Int)
                } else {
                    MoaType::Atomic(AtomicType::Float)
                };
                Ok(Rep::Scalar { plan: Plan::Aggr { input: Box::new(plan), agg }, ty })
            }
            // count(Collection)
            Rep::Rows { coll, domain } => {
                if agg != Agg::Count {
                    return Err(MoaError::Type(format!(
                        "{name}() over rows; project an attribute first"
                    )));
                }
                let ident = identity_plan(&coll, &domain);
                Ok(Rep::Scalar {
                    plan: Plan::Aggr { input: Box::new(ident), agg },
                    ty: MoaType::Atomic(AtomicType::Int),
                })
            }
            other => Err(MoaError::Unsupported(format!("{name}() over {}", rep_kind(&other)))),
        }
    }

    fn get_bl(&self, args: &[Expr], this: Option<&ThisBind<'_>>) -> Result<Rep> {
        if args.is_empty() {
            return Err(MoaError::Type("getBL(THIS.field, query, stats) needs arguments".into()));
        }
        let Expr::Attr(base, field) = &args[0] else {
            return Err(MoaError::Type("getBL's first argument must be THIS.field".into()));
        };
        if !matches!(**base, Expr::This) {
            return Err(MoaError::Type("getBL's first argument must be THIS.field".into()));
        }
        self.ext_method("getBL", field, args, this)
    }

    /// Compile an extension-structure method call.
    fn ext_method(
        &self,
        method: &str,
        field: &str,
        args: &[Expr],
        this: Option<&ThisBind<'_>>,
    ) -> Result<Rep> {
        let Some(ThisBind::Row { coll, domain }) = this else {
            return Err(MoaError::Unsupported(format!(
                "{method}() must appear in a map over a collection"
            )));
        };
        let elem = self.env.elem_type(coll)?;
        let fty = elem
            .field(field)
            .ok_or_else(|| MoaError::Unknown(format!("field '{field}' of '{coll}'")))?;
        let MoaType::Ext { name: sname, .. } = fty else {
            return Err(MoaError::Type(format!(
                "{method}() needs an extension-typed attribute, '{field}' is {fty}"
            )));
        };
        let structure = self.env.structures().get(sname)?;
        // collect query/stats/extra arguments
        let mut query: Option<Vec<(String, f64)>> = None;
        let mut stats: Option<String> = None;
        let mut extra: Vec<Val> = Vec::new();
        for a in &args[1..] {
            match self.comp(a, this)? {
                Rep::Query(terms) => query = Some(terms),
                Rep::Stats(s) => stats = Some(s),
                Rep::Lit(v) => extra.push(v),
                other => {
                    return Err(MoaError::Unsupported(format!(
                        "{method}() argument {}",
                        rep_kind(&other)
                    )))
                }
            }
        }
        let prefix = format!("{coll}__{field}");
        let call_args = CallArgs {
            query: query.as_deref(),
            stats: stats.as_deref(),
            domain: domain.as_deref().map(|d| d as &Plan),
            extra,
        };
        let plan = structure.compile_call(method, &prefix, &call_args)?;
        let elem_ty = structure.method_result_elem(method)?;
        Ok(Rep::Vals {
            plan,
            multi: true,
            ty: elem_ty,
            coll: coll.to_string(),
            domain: domain.cloned(),
            child_prefix: None,
        })
    }

    fn topk(&self, args: &[Expr], this: Option<&ThisBind<'_>>) -> Result<Rep> {
        if args.len() != 2 {
            return Err(MoaError::Type("topk(expr, k) takes 2 arguments".into()));
        }
        let k = match self.comp(&args[1], this)? {
            Rep::Lit(Val::Int(i)) if i >= 0 => i as usize,
            _ => return Err(MoaError::Type("topk's second argument must be an int".into())),
        };
        match self.comp(&args[0], this)? {
            Rep::Vals { plan, multi: false, ty, coll, domain, .. } => Ok(Rep::Vals {
                plan: Plan::TopN { input: Box::new(plan), k, desc: true },
                multi: false,
                ty,
                coll,
                domain,
                child_prefix: None,
            }),
            other => Err(MoaError::Unsupported(format!("topk over {}", rep_kind(&other)))),
        }
    }

    fn arith(
        &self,
        op: ArithKind,
        left: &Expr,
        right: &Expr,
        this: Option<&ThisBind<'_>>,
    ) -> Result<Rep> {
        let l = self.comp(left, this)?;
        let r = self.comp(right, this)?;
        let phys = match op {
            ArithKind::Add => ArithOp::Add,
            ArithKind::Sub => ArithOp::Sub,
            ArithKind::Mul => ArithOp::Mul,
            ArithKind::Div => ArithOp::Div,
        };
        match (l, r) {
            (Rep::Vals { plan, multi, coll, domain, .. }, Rep::Lit(v)) => Ok(Rep::Vals {
                plan: Plan::ArithConst { input: Box::new(plan), op: phys, val: v },
                multi,
                ty: MoaType::Atomic(AtomicType::Float),
                coll,
                domain,
                child_prefix: None,
            }),
            (Rep::Lit(v), Rep::Vals { plan, multi, coll, domain, .. }) => {
                // a ∘ X: only commutative ops can swap; for sub/div fold via
                // two steps: (X * -1 + a), (1/X * a) are messier — reject.
                match phys {
                    ArithOp::Add | ArithOp::Mul => Ok(Rep::Vals {
                        plan: Plan::ArithConst { input: Box::new(plan), op: phys, val: v },
                        multi,
                        ty: MoaType::Atomic(AtomicType::Float),
                        coll,
                        domain,
                        child_prefix: None,
                    }),
                    _ => Err(MoaError::Unsupported(
                        "literal on the left of - or / (rewrite the expression)".into(),
                    )),
                }
            }
            (
                Rep::Vals { plan: lp, multi: lm, coll, domain, .. },
                Rep::Vals { plan: rp, multi: rm, .. },
            ) => Ok(Rep::Vals {
                plan: Plan::Arith { left: Box::new(lp), right: Box::new(rp), op: phys },
                multi: lm || rm,
                ty: MoaType::Atomic(AtomicType::Float),
                coll,
                domain,
                child_prefix: None,
            }),
            (a, b) => Err(MoaError::Unsupported(format!(
                "arithmetic between {} and {}",
                rep_kind(&a),
                rep_kind(&b)
            ))),
        }
    }
}

/// The `[oid, oid]` identity of a (possibly restricted) collection.
pub(crate) fn identity_plan(coll: &str, domain: &Option<Plan>) -> Plan {
    match domain {
        Some(d) => d.clone(),
        None => Plan::load(format!("{coll}__self")),
    }
}

/// Restrict a `[oid, value]` plan to a domain, if one is present.
fn restrict(plan: Plan, domain: &Option<Plan>) -> Plan {
    match domain {
        Some(d) => Plan::Semijoin { left: Box::new(plan), right: Box::new(d.clone()) },
        None => plan,
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

fn lit_type(v: &Val) -> MoaType {
    match v {
        Val::Int(_) | Val::Oid(_) => MoaType::Atomic(AtomicType::Int),
        Val::Float(_) => MoaType::Atomic(AtomicType::Float),
        Val::Str(_) => MoaType::Atomic(AtomicType::Str),
    }
}

fn rep_kind(r: &Rep) -> &'static str {
    match r {
        Rep::Rows { .. } => "a collection",
        Rep::Vals { multi: true, .. } => "a nested value set",
        Rep::Vals { multi: false, .. } => "per-object values",
        Rep::Scalar { .. } => "a scalar",
        Rep::Query(_) => "a query binding",
        Rep::Stats(_) => "a stats binding",
        Rep::Lit(_) => "a literal",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_define, parse_expr};
    use crate::value::MoaVal;
    use monet::Executor;

    fn env_with_data() -> Env {
        let env = Env::new();
        let (name, ty) = parse_define(
            "define Lib as SET<TUPLE<
                Atomic<URL>: source,
                Atomic<int>: size,
                Atomic<float>: score,
                SET<TUPLE<Atomic<str>: tag, Atomic<float>: w>>: tags >>;",
        )
        .unwrap();
        let rows = vec![
            MoaVal::Tuple(vec![
                MoaVal::str("u0"),
                MoaVal::Int(100),
                MoaVal::Float(0.9),
                MoaVal::Set(vec![
                    MoaVal::Tuple(vec![MoaVal::str("red"), MoaVal::Float(0.5)]),
                    MoaVal::Tuple(vec![MoaVal::str("sky"), MoaVal::Float(0.25)]),
                ]),
            ]),
            MoaVal::Tuple(vec![
                MoaVal::str("u1"),
                MoaVal::Int(200),
                MoaVal::Float(0.2),
                MoaVal::Set(vec![MoaVal::Tuple(vec![MoaVal::str("sea"), MoaVal::Float(1.0)])]),
            ]),
            MoaVal::Tuple(vec![
                MoaVal::str("u2"),
                MoaVal::Int(300),
                MoaVal::Float(0.6),
                MoaVal::Set(vec![]),
            ]),
        ];
        env.create_collection(name, ty, rows).unwrap();
        env
    }

    fn run_vals(env: &Env, src: &str) -> Vec<(monet::Oid, Val)> {
        let expr = parse_expr(src).unwrap();
        let rep = Compiler::new(env).compile(&expr).unwrap();
        let Rep::Vals { plan, .. } = rep else { panic!("expected Vals") };
        let exec = Executor::new(env.catalog(), env.ops());
        let bat = exec.run_bat(&plan).unwrap();
        bat.to_pairs().into_iter().map(|(h, t)| (h.as_oid().unwrap(), t)).collect()
    }

    #[test]
    fn attribute_projection() {
        let env = env_with_data();
        let out = run_vals(&env, "map[THIS.size](Lib)");
        assert_eq!(out, vec![(0, Val::Int(100)), (1, Val::Int(200)), (2, Val::Int(300))]);
    }

    #[test]
    fn arithmetic_on_attributes() {
        let env = env_with_data();
        let out = run_vals(&env, "map[THIS.size * 2](Lib)");
        assert_eq!(out[1].1, Val::Float(400.0));
        let out2 = run_vals(&env, "map[THIS.size + THIS.size](Lib)");
        assert_eq!(out2[2].1, Val::Float(600.0));
    }

    #[test]
    fn nested_sum_per_object() {
        let env = env_with_data();
        // sum of tag weights per object
        let out = run_vals(&env, "map[sum(map[THIS.w](THIS.tags))](Lib)");
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].1, Val::Float(0.75));
        assert_eq!(out[1].1, Val::Float(1.0));
        assert_eq!(out[2].1, Val::Float(0.0)); // empty set sums to 0
    }

    #[test]
    fn nested_count_per_object() {
        let env = env_with_data();
        let out = run_vals(&env, "map[count(THIS.tags)](Lib)");
        assert_eq!(out, vec![(0, Val::Int(2)), (1, Val::Int(1)), (2, Val::Int(0))]);
    }

    #[test]
    fn select_restricts_downstream_map() {
        let env = env_with_data();
        let out = run_vals(&env, "map[THIS.size](select[THIS.score >= 0.5](Lib))");
        let oids: Vec<_> = out.iter().map(|(o, _)| *o).collect();
        assert_eq!(oids, vec![0, 2]);
    }

    #[test]
    fn select_with_conjunction_and_disjunction() {
        let env = env_with_data();
        let out =
            run_vals(&env, "map[THIS.size](select[THIS.score >= 0.5 and THIS.size > 150](Lib))");
        assert_eq!(out, vec![(2, Val::Int(300))]);
        let out2 =
            run_vals(&env, "map[THIS.size](select[THIS.score < 0.3 or THIS.size = 300](Lib))");
        let mut oids: Vec<_> = out2.iter().map(|(o, _)| *o).collect();
        oids.sort();
        assert_eq!(oids, vec![1, 2]);
    }

    #[test]
    fn select_ne_and_contains() {
        let env = env_with_data();
        let out = run_vals(&env, "map[THIS.size](select[THIS.source != \"u1\"](Lib))");
        assert_eq!(out.len(), 2);
        let out2 = run_vals(&env, "map[THIS.size](select[contains(THIS.source, \"2\")](Lib))");
        assert_eq!(out2, vec![(2, Val::Int(300))]);
    }

    #[test]
    fn select_after_select_composes() {
        let env = env_with_data();
        let out = run_vals(
            &env,
            "map[THIS.size](select[THIS.size > 100](select[THIS.score >= 0.5](Lib)))",
        );
        assert_eq!(out, vec![(2, Val::Int(300))]);
    }

    #[test]
    fn scalar_count_of_collection() {
        let env = env_with_data();
        let expr = parse_expr("count(Lib)").unwrap();
        let rep = Compiler::new(&env).compile(&expr).unwrap();
        let Rep::Scalar { plan, .. } = rep else { panic!("expected scalar") };
        let exec = Executor::new(env.catalog(), env.ops());
        let out = exec.run_bat(&plan).unwrap();
        assert_eq!(out.fetch(0).unwrap().1, Val::Int(3));
    }

    #[test]
    fn nested_attr_through_set() {
        let env = env_with_data();
        let out = run_vals(&env, "map[THIS.tags.w](Lib)");
        // parent heads with one row per child
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], (0, Val::Float(0.5)));
        assert_eq!(out[2], (1, Val::Float(1.0)));
    }

    #[test]
    fn topk_wraps_ranking() {
        let env = env_with_data();
        let out = run_vals(&env, "topk(map[THIS.score](Lib), 2)");
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], (0, Val::Float(0.9)));
        assert_eq!(out[1], (2, Val::Float(0.6)));
    }

    #[test]
    fn errors_for_malformed_queries() {
        let env = env_with_data();
        let c = Compiler::new(&env);
        // THIS outside map
        assert!(c.compile(&parse_expr("THIS.size").unwrap()).is_err());
        // unknown field
        assert!(c.compile(&parse_expr("map[THIS.nope](Lib)").unwrap()).is_err());
        // unknown collection
        assert!(c.compile(&parse_expr("map[THIS.x](Nope)").unwrap()).is_err());
        // cmp outside select
        assert!(c.compile(&parse_expr("map[THIS.size > 3](Lib)").unwrap()).is_err());
        // sum over rows
        assert!(c.compile(&parse_expr("sum(Lib)").unwrap()).is_err());
    }

    #[test]
    fn map_constant_body() {
        let env = env_with_data();
        let out = run_vals(&env, "map[1.5](Lib)");
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|(_, v)| *v == Val::Float(1.5)));
    }
}
