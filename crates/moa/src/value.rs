//! Logical values — the object-at-a-time view of Moa data.
//!
//! [`MoaVal`] trees are used for ingestion (rows handed to
//! [`crate::env::Env::create_collection`]) and by the naive interpreter.
//! The flattening compiler never materialises them during query execution;
//! that is the whole point of the architecture.

use crate::types::{AtomicType, MoaType};
use crate::{MoaError, Result};
use monet::Val;

/// A logical value.
#[derive(Debug, Clone, PartialEq)]
pub enum MoaVal {
    /// Absent value (e.g. a missing annotation).
    Null,
    /// Integer atom.
    Int(i64),
    /// Float atom.
    Float(f64),
    /// String-like atom (str, URL, Text, Image ref, Vector ref).
    Str(String),
    /// Tuple value, fields in schema order.
    Tuple(Vec<MoaVal>),
    /// Set value.
    Set(Vec<MoaVal>),
    /// List value (ordered).
    List(Vec<MoaVal>),
}

impl MoaVal {
    /// Convenience: string atom.
    pub fn str(s: impl Into<String>) -> MoaVal {
        MoaVal::Str(s.into())
    }

    /// Check this value against a type, shallowly recursing through
    /// structures. Extension-typed positions accept `Str`/`Null` payloads
    /// (the raw representation handed to the structure's builder).
    pub fn conforms(&self, ty: &MoaType) -> bool {
        match (self, ty) {
            (MoaVal::Null, _) => true,
            (MoaVal::Int(_), MoaType::Atomic(AtomicType::Int)) => true,
            (MoaVal::Float(_), MoaType::Atomic(AtomicType::Float)) => true,
            (MoaVal::Str(_), MoaType::Atomic(a)) => {
                !matches!(a, AtomicType::Int | AtomicType::Float)
            }
            (MoaVal::Str(_), MoaType::Ext { .. }) => true,
            (MoaVal::Tuple(vs), MoaType::Tuple(fs)) => {
                vs.len() == fs.len() && vs.iter().zip(fs).all(|(v, (_, t))| v.conforms(t))
            }
            (MoaVal::Set(vs), MoaType::Set(t)) => vs.iter().all(|v| v.conforms(t)),
            (MoaVal::List(vs), MoaType::List(t)) => vs.iter().all(|v| v.conforms(t)),
            _ => false,
        }
    }

    /// Convert an atomic value to a physical scalar. `Null` maps to the
    /// type's neutral physical value (0, 0.0 or the empty string) — BATs
    /// have no null bitmap, matching Monet's early design.
    pub fn to_physical(&self, ty: &MoaType) -> Result<Val> {
        match (self, ty) {
            (MoaVal::Int(i), _) => Ok(Val::Int(*i)),
            (MoaVal::Float(x), _) => Ok(Val::Float(*x)),
            (MoaVal::Str(s), _) => Ok(Val::Str(s.clone())),
            (MoaVal::Null, MoaType::Atomic(AtomicType::Int)) => Ok(Val::Int(0)),
            (MoaVal::Null, MoaType::Atomic(AtomicType::Float)) => Ok(Val::Float(0.0)),
            (MoaVal::Null, _) => Ok(Val::Str(String::new())),
            (other, ty) => Err(MoaError::Type(format!("cannot store {other:?} as atomic {ty}"))),
        }
    }

    /// Numeric view of an atomic value (used by the naive interpreter).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            MoaVal::Int(i) => Some(*i as f64),
            MoaVal::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// String view of an atomic value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            MoaVal::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements if this is a set or list.
    pub fn elems(&self) -> Option<&[MoaVal]> {
        match self {
            MoaVal::Set(v) | MoaVal::List(v) => Some(v),
            _ => None,
        }
    }
}

impl From<i64> for MoaVal {
    fn from(v: i64) -> Self {
        MoaVal::Int(v)
    }
}

impl From<f64> for MoaVal {
    fn from(v: f64) -> Self {
        MoaVal::Float(v)
    }
}

impl From<&str> for MoaVal {
    fn from(v: &str) -> Self {
        MoaVal::Str(v.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img_lib_ty() -> MoaType {
        MoaType::set_of_tuple(vec![
            ("source", MoaType::Atomic(AtomicType::Url)),
            (
                "annotation",
                MoaType::Ext {
                    name: "CONTREP".into(),
                    param: Box::new(MoaType::Atomic(AtomicType::Text)),
                },
            ),
        ])
    }

    #[test]
    fn conformance_happy_path() {
        let ty = img_lib_ty();
        let elem = ty.elem().unwrap();
        let row = MoaVal::Tuple(vec![
            MoaVal::str("http://x/1.png"),
            MoaVal::str("a sunset over the sea"),
        ]);
        assert!(row.conforms(elem));
    }

    #[test]
    fn conformance_rejects_wrong_arity_and_type() {
        let ty = img_lib_ty();
        let elem = ty.elem().unwrap();
        assert!(!MoaVal::Tuple(vec![MoaVal::str("only-one")]).conforms(elem));
        assert!(!MoaVal::Tuple(vec![MoaVal::Int(4), MoaVal::str("x")]).conforms(elem));
    }

    #[test]
    fn null_conforms_and_maps_to_neutral() {
        let ty = img_lib_ty();
        let elem = ty.elem().unwrap();
        let row = MoaVal::Tuple(vec![MoaVal::str("u"), MoaVal::Null]);
        assert!(row.conforms(elem));
        assert_eq!(
            MoaVal::Null.to_physical(&MoaType::Atomic(AtomicType::Int)).unwrap(),
            Val::Int(0)
        );
        assert_eq!(
            MoaVal::Null.to_physical(&MoaType::Atomic(AtomicType::Text)).unwrap(),
            Val::Str(String::new())
        );
    }

    #[test]
    fn set_conformance_is_elementwise() {
        let ty = MoaType::Set(Box::new(MoaType::Atomic(AtomicType::Float)));
        assert!(MoaVal::Set(vec![0.5.into(), 0.7.into()]).conforms(&ty));
        assert!(!MoaVal::Set(vec![0.5.into(), "x".into()]).conforms(&ty));
    }

    #[test]
    fn numeric_views() {
        assert_eq!(MoaVal::Int(3).as_f64(), Some(3.0));
        assert_eq!(MoaVal::Float(0.5).as_f64(), Some(0.5));
        assert_eq!(MoaVal::str("x").as_f64(), None);
        assert_eq!(MoaVal::str("x").as_str(), Some("x"));
    }
}
