//! Algebraic rewriting.
//!
//! The paper argues that translating the logical object model to a
//! different physical model "provides an excellent basis for algebraic
//! query optimization". This module implements the optimisations that the
//! E2 ablation toggles:
//!
//! * **selection pushdown** (logical): `select[p](map[f](X))` →
//!   `map[f](select[p](X))` whenever the predicate only mentions
//!   attributes of `X`'s rows — crucial for the IR/data integration
//!   queries, because it makes ranking operate on the surviving documents
//!   only;
//! * **peephole plan rewrites** (physical): cancel `reverse∘reverse`,
//!   collapse `slice∘sort` into `topn`, fuse constant arithmetic chains,
//!   deduplicate idempotent semijoins;
//! * **CSE memoisation** is implemented by the kernel executor and toggled
//!   through [`OptConfig::memoize`].

use crate::expr::Expr;
use crate::Env;
use monet::{Agg, ArithOp, OpRegistry, Plan, Val};

/// Optimiser switches (all on by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptConfig {
    /// Push `select` below `map` at the logical level.
    pub pushdown: bool,
    /// Run peephole rewrites on physical plans.
    pub peephole: bool,
    /// Memoise common subexpressions during execution.
    pub memoize: bool,
    /// Fragment-parallel execution degree for the kernel executor:
    /// `0` = auto (one thread per available core), `1` = serial,
    /// `n` = exactly `n` threads per fragmented operator.
    pub parallelism: usize,
    /// Run the statistics-driven passes of [`crate::opt`]: selection
    /// ordering, semijoin placement (domain pushdown into belief
    /// operators, enabling top-k fusion of filtered rankings), and
    /// estimate-driven per-operator parallel-degree caps.
    pub stats_driven: bool,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig {
            pushdown: true,
            peephole: true,
            memoize: true,
            parallelism: 0,
            stats_driven: true,
        }
    }
}

impl OptConfig {
    /// Everything off — the unoptimised, serial baseline for the ablation.
    pub fn none() -> Self {
        OptConfig {
            pushdown: false,
            peephole: false,
            memoize: false,
            parallelism: 1,
            stats_driven: false,
        }
    }
}

/// Apply logical rewrites to an expression.
pub fn rewrite_logical(expr: &Expr, env: &Env, cfg: OptConfig) -> Expr {
    if !cfg.pushdown {
        return expr.clone();
    }
    push_selections(expr, env)
}

/// `select[p](map[f](X))` → `map[f](select[p](X))` when `p` only touches
/// row attributes of the mapped collection.
fn push_selections(expr: &Expr, env: &Env) -> Expr {
    match expr {
        Expr::Select { pred, input } => {
            let input = push_selections(input, env);
            let pred = (**pred).clone();
            if let Expr::Map { body, input: map_in } = &input {
                if let Some(coll) = collection_of(map_in) {
                    if pred_touches_only_row_attrs(&pred, &coll, env) {
                        let pushed = Expr::select(pred, (**map_in).clone());
                        return Expr::map((**body).clone(), push_selections(&pushed, env));
                    }
                }
            }
            Expr::Select { pred: Box::new(pred), input: Box::new(input) }
        }
        Expr::Map { body, input } => Expr::Map {
            body: Box::new(push_selections(body, env)),
            input: Box::new(push_selections(input, env)),
        },
        Expr::Call { name, args } => Expr::Call {
            name: name.clone(),
            args: args.iter().map(|a| push_selections(a, env)).collect(),
        },
        other => other.clone(),
    }
}

/// The collection a pipeline input ultimately ranges over, if statically
/// known (`Ident` or nested `select`/`map` over one).
fn collection_of(expr: &Expr) -> Option<String> {
    match expr {
        Expr::Ident(name) => Some(name.clone()),
        Expr::Select { input, .. } | Expr::Map { input, .. } => collection_of(input),
        _ => None,
    }
}

fn pred_touches_only_row_attrs(pred: &Expr, coll: &str, env: &Env) -> bool {
    let Ok(elem) = env.elem_type(coll) else { return false };
    if pred.uses_bare_this() {
        return false; // predicate over the mapped value, not the row
    }
    let attrs = pred.this_attrs();
    !attrs.is_empty() && attrs.iter().all(|a| elem.field(a).is_some())
}

/// Apply peephole rewrites to a physical plan, bottom-up, to fixpoint
/// (bounded by plan depth).
pub fn rewrite_physical(plan: &Plan, cfg: OptConfig) -> Plan {
    if !cfg.peephole {
        return plan.clone();
    }
    let mut current = plan.clone();
    for _ in 0..8 {
        let next = peephole(&current);
        if next.fingerprint() == current.fingerprint() {
            return next;
        }
        current = next;
    }
    current
}

fn peephole(plan: &Plan) -> Plan {
    // rewrite children first
    let node = map_children(plan, &|c| peephole(c));
    match node {
        // reverse(reverse(x)) = x
        Plan::Reverse(inner) => match *inner {
            Plan::Reverse(x) => *x,
            other => Plan::Reverse(Box::new(other)),
        },
        // mirror(mirror(x)) = mirror(x)
        Plan::Mirror(inner) => match *inner {
            Plan::Mirror(x) => Plan::Mirror(x),
            other => Plan::Mirror(Box::new(other)),
        },
        // slice(sort(x), 0, k) = topn(x, k)
        Plan::Slice { input, lo: 0, hi } => match *input {
            Plan::SortTail { input: x, desc } => Plan::TopN { input: x, k: hi, desc },
            other => Plan::Slice { input: Box::new(other), lo: 0, hi },
        },
        // topn(sort(x)) = topn(x) with matching direction
        Plan::TopN { input, k, desc } => match *input {
            Plan::SortTail { input: x, desc: d2 } if d2 == desc => Plan::TopN { input: x, k, desc },
            other => Plan::TopN { input: Box::new(other), k, desc },
        },
        // fold (x ∘ c1) ∘ c2 for matching associative ops
        Plan::ArithConst { input, op, val } => match (*input, op) {
            (Plan::ArithConst { input: x, op: op2, val: v2 }, op1)
                if op1 == op2 && matches!(op1, ArithOp::Add | ArithOp::Mul) =>
            {
                let a = val.as_float().unwrap_or(0.0);
                let b = v2.as_float().unwrap_or(0.0);
                let folded = match op1 {
                    ArithOp::Add => a + b,
                    ArithOp::Mul => a * b,
                    _ => unreachable!("guard covers add/mul"),
                };
                Plan::ArithConst { input: x, op: op1, val: monet::Val::Float(folded) }
            }
            (other, op) => Plan::ArithConst { input: Box::new(other), op, val },
        },
        // semijoin(semijoin(x, d), d) = semijoin(x, d)
        Plan::Semijoin { left, right } => {
            if let Plan::Semijoin { left: x, right: r2 } = &*left {
                if r2.fingerprint() == right.fingerprint() {
                    return Plan::Semijoin { left: x.clone(), right };
                }
            }
            Plan::Semijoin { left, right }
        }
        other => other,
    }
}

/// Fuse a top-k budget into the compiled ranking plan.
///
/// Recognises the physical shape the paper's
/// `map[sum(THIS)](map[getBL(…)](C))` query compiles to — a grouped sum
/// over a custom belief operator, optionally semijoined with the domain the
/// operator is already restricted to — and rewrites it into the operator's
/// fused top-k counterpart. The convention is the kernel's: an extension
/// that registers `X` may also register `X.topk`, taking `X`'s parameters
/// with the budget appended, and returning the k best `[oid, value]` rows
/// in rank order (the IR crate registers `contrep.getbl.topk`, the
/// `topk_bl` operator). Returns `None` — execute the original plan — when
/// the shape does not match or no fused operator is registered.
///
/// The fused plan implements the *top-k budget* contract, not row-for-row
/// plan equivalence: the grouped sum emits a `0.0` row for every document
/// that matches no query term, while the fused operator omits those
/// zero-mass rows entirely (a ranking drops them anyway) and keeps only
/// the k best of the rest. The surviving `(oid, score)` pairs are
/// bit-identical to materialise-then-sort.
pub fn rewrite_topk(plan: &Plan, k: usize, ops: &OpRegistry) -> Option<Plan> {
    // see through the domain semijoin the aggregate compiler adds; it is
    // redundant iff the custom operator restricts itself to the same domain
    let (inner, outer_domain) = match plan {
        Plan::Semijoin { left, right } => (&**left, Some(&**right)),
        p => (p, None),
    };
    let Plan::GroupedAggr { values, groups, agg: Agg::Sum } = inner else {
        return None;
    };
    let Plan::Custom { op, inputs, params } = &**values else {
        return None;
    };
    match (inputs.first(), outer_domain) {
        // unrestricted ranking: groups must be the collection identity
        (None, None) => match &**groups {
            Plan::Load(name) if name.ends_with("__self") => {}
            _ => return None,
        },
        // domain-restricted ranking: the operator input, the group mapping
        // and the outer semijoin must all be that same domain
        (Some(d), outer) => {
            if groups.fingerprint() != d.fingerprint() {
                return None;
            }
            if let Some(o) = outer {
                if o.fingerprint() != d.fingerprint() {
                    return None;
                }
            }
        }
        // a semijoin against a domain the operator does not know about
        // cannot be folded into it
        (None, Some(_)) => return None,
    }
    let fused = format!("{op}.topk");
    if !ops.contains(&fused) {
        return None;
    }
    let mut fused_params = params.clone();
    fused_params.push(Val::Int(k as i64));
    Some(Plan::Custom { op: fused, inputs: inputs.clone(), params: fused_params })
}

/// Rebuild a plan node with its children transformed (shared with the
/// statistics-driven pass framework in [`crate::opt`]).
pub(crate) fn map_children(plan: &Plan, f: &dyn Fn(&Plan) -> Plan) -> Plan {
    use Plan::*;
    match plan {
        Load(n) => Load(n.clone()),
        Const(b) => Const(b.clone()),
        Select { input, pred } => Select { input: Box::new(f(input)), pred: pred.clone() },
        Join { left, right } => Join { left: Box::new(f(left)), right: Box::new(f(right)) },
        Semijoin { left, right } => Semijoin { left: Box::new(f(left)), right: Box::new(f(right)) },
        Reverse(p) => Reverse(Box::new(f(p))),
        Mirror(p) => Mirror(Box::new(f(p))),
        Mark { input, base } => Mark { input: Box::new(f(input)), base: *base },
        ProjectConst { input, val } => ProjectConst { input: Box::new(f(input)), val: val.clone() },
        Aggr { input, agg } => Aggr { input: Box::new(f(input)), agg: *agg },
        GroupedAggr { values, groups, agg } => {
            GroupedAggr { values: Box::new(f(values)), groups: Box::new(f(groups)), agg: *agg }
        }
        SortTail { input, desc } => SortTail { input: Box::new(f(input)), desc: *desc },
        TopN { input, k, desc } => TopN { input: Box::new(f(input)), k: *k, desc: *desc },
        Slice { input, lo, hi } => Slice { input: Box::new(f(input)), lo: *lo, hi: *hi },
        Distinct(p) => Distinct(Box::new(f(p))),
        KUnion { left, right } => KUnion { left: Box::new(f(left)), right: Box::new(f(right)) },
        KDiff { left, right } => KDiff { left: Box::new(f(left)), right: Box::new(f(right)) },
        Arith { left, right, op } => {
            Arith { left: Box::new(f(left)), right: Box::new(f(right)), op: *op }
        }
        ArithConst { input, op, val } => {
            ArithConst { input: Box::new(f(input)), op: *op, val: val.clone() }
        }
        Custom { op, inputs, params } => Custom {
            op: op.clone(),
            inputs: inputs.iter().map(f).collect(),
            params: params.clone(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_define, parse_expr};
    use crate::value::MoaVal;
    use monet::Val;

    fn env() -> Env {
        let e = Env::new();
        let (n, ty) =
            parse_define("define Lib as SET<TUPLE<Atomic<int>: size, Atomic<float>: score>>;")
                .unwrap();
        e.create_collection(n, ty, vec![MoaVal::Tuple(vec![MoaVal::Int(1), MoaVal::Float(0.5)])])
            .unwrap();
        e
    }

    #[test]
    fn pushdown_moves_select_below_map() {
        let env = env();
        let q = parse_expr("select[THIS.size > 2](map[THIS.score](Lib))").unwrap();
        let r = rewrite_logical(&q, &env, OptConfig::default());
        assert_eq!(r.to_string(), "map[THIS.score](select[THIS.size > 2](Lib))");
    }

    #[test]
    fn pushdown_disabled_is_identity() {
        let env = env();
        let q = parse_expr("select[THIS.size > 2](map[THIS.score](Lib))").unwrap();
        let r = rewrite_logical(&q, &env, OptConfig::none());
        assert_eq!(r, q);
    }

    #[test]
    fn pushdown_respects_mapped_values() {
        let env = env();
        // predicate over the mapped value (bare THIS) must NOT be pushed
        let q = parse_expr("select[THIS > 0.5](map[THIS.score](Lib))").unwrap();
        let r = rewrite_logical(&q, &env, OptConfig::default());
        assert_eq!(r, q);
        // predicate over an attribute the collection doesn't have: not pushed
        let q2 = parse_expr("select[THIS.missing > 1](map[THIS.score](Lib))").unwrap();
        let r2 = rewrite_logical(&q2, &env, OptConfig::default());
        assert_eq!(r2, q2);
    }

    #[test]
    fn pushdown_through_nested_maps() {
        let env = env();
        let q = parse_expr("select[THIS.size = 1](map[sum(THIS)](map[THIS.score](Lib)))").unwrap();
        let r = rewrite_logical(&q, &env, OptConfig::default());
        assert_eq!(r.to_string(), "map[sum(THIS)](map[THIS.score](select[THIS.size = 1](Lib)))");
    }

    #[test]
    fn peephole_reverse_reverse() {
        let p = Plan::Reverse(Box::new(Plan::Reverse(Box::new(Plan::load("x")))));
        let r = rewrite_physical(&p, OptConfig::default());
        assert_eq!(r.fingerprint(), Plan::load("x").fingerprint());
    }

    #[test]
    fn peephole_slice_sort_to_topn() {
        let p = Plan::Slice {
            input: Box::new(Plan::SortTail { input: Box::new(Plan::load("x")), desc: true }),
            lo: 0,
            hi: 10,
        };
        let r = rewrite_physical(&p, OptConfig::default());
        assert!(matches!(r, Plan::TopN { k: 10, desc: true, .. }));
    }

    #[test]
    fn peephole_folds_constant_arith() {
        let p = Plan::ArithConst {
            input: Box::new(Plan::ArithConst {
                input: Box::new(Plan::load("x")),
                op: ArithOp::Mul,
                val: Val::Float(2.0),
            }),
            op: ArithOp::Mul,
            val: Val::Float(3.0),
        };
        let r = rewrite_physical(&p, OptConfig::default());
        match r {
            Plan::ArithConst { val, .. } => assert_eq!(val, Val::Float(6.0)),
            other => panic!("expected folded arith, got {other:?}"),
        }
    }

    #[test]
    fn peephole_does_not_fold_mixed_ops() {
        let p = Plan::ArithConst {
            input: Box::new(Plan::ArithConst {
                input: Box::new(Plan::load("x")),
                op: ArithOp::Mul,
                val: Val::Float(2.0),
            }),
            op: ArithOp::Add,
            val: Val::Float(3.0),
        };
        let r = rewrite_physical(&p, OptConfig::default());
        // still two ArithConst nodes
        assert_eq!(r.size(), 3);
    }

    #[test]
    fn peephole_dedups_idempotent_semijoin() {
        let d = Plan::load("dom");
        let p = Plan::Semijoin {
            left: Box::new(Plan::Semijoin {
                left: Box::new(Plan::load("x")),
                right: Box::new(d.clone()),
            }),
            right: Box::new(d),
        };
        let r = rewrite_physical(&p, OptConfig::default());
        assert_eq!(r.size(), 3); // semijoin(x, dom)
    }

    fn getbl_like(inputs: Vec<Plan>) -> Plan {
        Plan::Custom {
            op: "contrep.getbl".into(),
            inputs,
            params: vec![
                Val::Str("Lib__annotation".into()),
                Val::Str("sunset".into()),
                Val::Float(1.0),
            ],
        }
    }

    fn registry_with_fused() -> OpRegistry {
        let ops = OpRegistry::new();
        ops.register("contrep.getbl.topk", |_ctx, _inputs, _params| {
            Ok(monet::bat::bat_of_ints(vec![]))
        });
        ops
    }

    #[test]
    fn topk_fuses_the_unrestricted_ranking_shape() {
        let ops = registry_with_fused();
        let plan = Plan::GroupedAggr {
            values: Box::new(getbl_like(vec![])),
            groups: Box::new(Plan::load("Lib__self")),
            agg: Agg::Sum,
        };
        let fused = rewrite_topk(&plan, 10, &ops).unwrap();
        let Plan::Custom { op, params, .. } = fused else { panic!("expected custom") };
        assert_eq!(op, "contrep.getbl.topk");
        assert_eq!(params.last(), Some(&Val::Int(10)));
    }

    #[test]
    fn topk_fuses_the_domain_restricted_shape() {
        let ops = registry_with_fused();
        let domain = Plan::Mirror(Box::new(Plan::Select {
            input: Box::new(Plan::load("Lib__source")),
            pred: monet::Pred::StrContains("x".into()),
        }));
        let plan = Plan::Semijoin {
            left: Box::new(Plan::GroupedAggr {
                values: Box::new(getbl_like(vec![domain.clone()])),
                groups: Box::new(domain.clone()),
                agg: Agg::Sum,
            }),
            right: Box::new(domain),
        };
        assert!(rewrite_topk(&plan, 5, &ops).is_some());
    }

    #[test]
    fn topk_refuses_unsafe_shapes() {
        let ops = registry_with_fused();
        // groups that are not the identity / operator domain
        let plan = Plan::GroupedAggr {
            values: Box::new(getbl_like(vec![])),
            groups: Box::new(Plan::load("Other__map")),
            agg: Agg::Sum,
        };
        assert!(rewrite_topk(&plan, 10, &ops).is_none());
        // a late-filter semijoin the operator knows nothing about
        let late = Plan::Semijoin {
            left: Box::new(Plan::GroupedAggr {
                values: Box::new(getbl_like(vec![])),
                groups: Box::new(Plan::load("Lib__self")),
                agg: Agg::Sum,
            }),
            right: Box::new(Plan::load("survivors")),
        };
        assert!(rewrite_topk(&late, 10, &ops).is_none());
        // no fused operator registered
        let plain = Plan::GroupedAggr {
            values: Box::new(getbl_like(vec![])),
            groups: Box::new(Plan::load("Lib__self")),
            agg: Agg::Sum,
        };
        assert!(rewrite_topk(&plain, 10, &OpRegistry::new()).is_none());
    }

    #[test]
    fn peephole_disabled_is_identity() {
        let p = Plan::Reverse(Box::new(Plan::Reverse(Box::new(Plan::load("x")))));
        let r = rewrite_physical(&p, OptConfig::none());
        assert_eq!(r.size(), 3);
    }
}
