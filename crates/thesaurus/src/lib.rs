//! # thesaurus — the association thesaurus (dual coding)
//!
//! The Mirror demo automatically constructs a thesaurus "associating words
//! in the textual annotations to the clusters in the image content
//! representation" — an implementation of Paivio's dual-coding theory, and
//! (following PhraseFinder \[JC94\]) a device that can be read as *measuring
//! the belief in a concept (instead of a document) given the query*.
//!
//! [`AssociationThesaurus`] mines co-occurrence statistics between
//! annotation terms and visual terms over the annotated subset of the
//! library, scores associations with EMIM (expected mutual information
//! measure, with a chi-square alternative for the ablation), and expands a
//! text query into a weighted visual-term query.

#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};

/// Association scoring measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssocMeasure {
    /// Expected mutual information over the presence/absence contingency
    /// table (PhraseFinder's choice).
    #[default]
    Emim,
    /// Pearson chi-square statistic of the same table.
    ChiSquare,
    /// Raw joint frequency (a deliberately weak baseline).
    JointCount,
}

/// Builder state: per-document term sets of both channels.
#[derive(Debug, Default)]
pub struct ThesaurusBuilder {
    docs: Vec<(HashSet<String>, HashSet<String>)>,
}

impl ThesaurusBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one *annotated* document: its annotation terms (already
    /// stemmed) and its visual terms.
    pub fn add_document<S: AsRef<str>, T: AsRef<str>>(
        &mut self,
        text_terms: &[S],
        visual_terms: &[T],
    ) {
        self.docs.push((
            text_terms.iter().map(|s| s.as_ref().to_string()).collect(),
            visual_terms.iter().map(|s| s.as_ref().to_string()).collect(),
        ));
    }

    /// Number of documents added.
    pub fn n_docs(&self) -> usize {
        self.docs.len()
    }

    /// Mine associations and freeze the thesaurus.
    pub fn build(&self, measure: AssocMeasure) -> AssociationThesaurus {
        let n = self.docs.len() as f64;
        let mut text_df: HashMap<String, u32> = HashMap::new();
        let mut vis_df: HashMap<String, u32> = HashMap::new();
        let mut joint: HashMap<(String, String), u32> = HashMap::new();
        for (text, vis) in &self.docs {
            for t in text {
                *text_df.entry(t.clone()).or_insert(0) += 1;
            }
            for v in vis {
                *vis_df.entry(v.clone()).or_insert(0) += 1;
            }
            for t in text {
                for v in vis {
                    *joint.entry((t.clone(), v.clone())).or_insert(0) += 1;
                }
            }
        }
        // score every co-occurring pair
        let mut assoc: HashMap<String, Vec<(String, f64)>> = HashMap::new();
        for ((t, v), &jc) in &joint {
            let nt = text_df[t] as f64;
            let nv = vis_df[v] as f64;
            let score = match measure {
                AssocMeasure::Emim => emim(jc as f64, nt, nv, n),
                AssocMeasure::ChiSquare => chi_square(jc as f64, nt, nv, n),
                AssocMeasure::JointCount => jc as f64,
            };
            if score > 0.0 {
                assoc.entry(t.clone()).or_default().push((v.clone(), score));
            }
        }
        for list in assoc.values_mut() {
            list.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        }
        AssociationThesaurus { assoc, measure }
    }
}

/// Positive pointwise/expected mutual information over the 2×2 presence
/// table (only the co-presence cell contributes positively; negative
/// associations are clipped to zero, as PhraseFinder effectively does by
/// ranking).
fn emim(joint: f64, nt: f64, nv: f64, n: f64) -> f64 {
    if joint == 0.0 || n == 0.0 {
        return 0.0;
    }
    let p_tv = joint / n;
    let p_t = nt / n;
    let p_v = nv / n;
    let ratio = p_tv / (p_t * p_v);
    if ratio <= 1.0 {
        0.0
    } else {
        p_tv * ratio.ln()
    }
}

/// Pearson chi-square of the presence/absence table, clipped to positive
/// association only.
fn chi_square(joint: f64, nt: f64, nv: f64, n: f64) -> f64 {
    if n == 0.0 {
        return 0.0;
    }
    let expected = nt * nv / n;
    if expected == 0.0 || joint <= expected {
        return 0.0;
    }
    let cells = [
        (joint, expected),
        (nt - joint, nt - expected),
        (nv - joint, nv - expected),
        (n - nt - nv + joint, n - nt - nv + expected),
    ];
    cells.iter().filter(|(_, e)| *e > 0.0).map(|(o, e)| (o - e) * (o - e) / e).sum()
}

/// The frozen thesaurus: text term → ranked `(visual term, strength)`.
#[derive(Debug, Clone)]
pub struct AssociationThesaurus {
    assoc: HashMap<String, Vec<(String, f64)>>,
    measure: AssocMeasure,
}

impl AssociationThesaurus {
    /// The measure the thesaurus was built with.
    pub fn measure(&self) -> AssocMeasure {
        self.measure
    }

    /// Ranked associations of one text term.
    pub fn associations(&self, term: &str) -> &[(String, f64)] {
        self.assoc.get(term).map_or(&[], Vec::as_slice)
    }

    /// Number of text terms with at least one association.
    pub fn n_terms(&self) -> usize {
        self.assoc.len()
    }

    /// Every association as `(text term, visual term, strength)`, sorted
    /// by text term and then by the per-term ranking. Deterministic, so
    /// it can be serialised and compared across processes; the inverse of
    /// [`from_entries`](Self::from_entries).
    pub fn entries(&self) -> Vec<(String, String, f64)> {
        let mut terms: Vec<&String> = self.assoc.keys().collect();
        terms.sort();
        terms
            .into_iter()
            .flat_map(|t| self.assoc[t].iter().map(move |(v, s)| (t.clone(), v.clone(), *s)))
            .collect()
    }

    /// Rebuild a thesaurus from [`entries`](Self::entries) output.
    /// Within-term order of `entries` is preserved, so a roundtrip
    /// reproduces the original ranking bit-for-bit.
    pub fn from_entries(
        measure: AssocMeasure,
        entries: impl IntoIterator<Item = (String, String, f64)>,
    ) -> Self {
        let mut assoc: HashMap<String, Vec<(String, f64)>> = HashMap::new();
        for (t, v, s) in entries {
            assoc.entry(t).or_default().push((v, s));
        }
        AssociationThesaurus { assoc, measure }
    }

    /// Expand a weighted text query into a weighted visual-term query:
    /// per text term take the top `per_term` associations, accumulate
    /// `query weight × association strength`, renormalise so the expansion
    /// weights sum to 1, and keep the overall top `max_terms`.
    ///
    /// This is the PhraseFinder view: the strengths act as beliefs in the
    /// visual *concepts* given the query.
    pub fn expand(
        &self,
        query: &[(String, f64)],
        per_term: usize,
        max_terms: usize,
    ) -> Vec<(String, f64)> {
        let mut acc: HashMap<&str, f64> = HashMap::new();
        for (t, w) in query {
            for (v, s) in self.associations(t).iter().take(per_term) {
                *acc.entry(v.as_str()).or_insert(0.0) += w * s;
            }
        }
        let mut out: Vec<(String, f64)> =
            acc.into_iter().map(|(v, s)| (v.to_string(), s)).collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out.truncate(max_terms);
        let total: f64 = out.iter().map(|(_, s)| s).sum();
        if total > 0.0 {
            for (_, s) in &mut out {
                *s /= total;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A corpus where "sunset" co-occurs with rgb_0, "forest" with rgb_1,
    /// and "photo" with everything (a stop-like word).
    fn builder() -> ThesaurusBuilder {
        let mut b = ThesaurusBuilder::new();
        for _ in 0..10 {
            b.add_document(&["sunset", "photo"], &["rgb_0", "gabor_2"]);
        }
        for _ in 0..10 {
            b.add_document(&["forest", "photo"], &["rgb_1", "gabor_5"]);
        }
        for _ in 0..2 {
            b.add_document(&["sunset"], &["rgb_1"]); // a little noise
        }
        b
    }

    #[test]
    fn emim_ranks_characteristic_clusters_first() {
        let th = builder().build(AssocMeasure::Emim);
        let a = th.associations("sunset");
        assert!(!a.is_empty());
        assert!(a[0].0 == "rgb_0" || a[0].0 == "gabor_2", "top was {:?}", a[0]);
        let f = th.associations("forest");
        assert!(f[0].0 == "rgb_1" || f[0].0 == "gabor_5");
    }

    #[test]
    fn uninformative_words_get_weak_associations() {
        let th = builder().build(AssocMeasure::Emim);
        // "photo" occurs everywhere → ratio ≈ 1 → clipped to no/weak assoc
        let p = th.associations("photo");
        let s = th.associations("sunset");
        let p_best = p.first().map_or(0.0, |x| x.1);
        let s_best = s.first().map_or(0.0, |x| x.1);
        assert!(s_best > p_best, "{s_best} vs {p_best}");
    }

    #[test]
    fn chi_square_agrees_on_the_top_association() {
        let emim_th = builder().build(AssocMeasure::Emim);
        let chi_th = builder().build(AssocMeasure::ChiSquare);
        let e = &emim_th.associations("forest")[0].0;
        let c = &chi_th.associations("forest")[0].0;
        assert_eq!(e, c);
    }

    #[test]
    fn joint_count_is_fooled_by_frequency() {
        // joint count cannot discount ubiquitous visual terms
        let mut b = ThesaurusBuilder::new();
        for _ in 0..20 {
            b.add_document(&["sunset"], &["common_0"]);
        }
        for i in 0..20 {
            let other = if i < 10 { "sunset" } else { "forest" };
            b.add_document(&[other], &["common_0", "rare_1"]);
        }
        let jc = b.build(AssocMeasure::JointCount);
        assert_eq!(jc.associations("sunset")[0].0, "common_0");
    }

    #[test]
    fn expansion_produces_normalised_weights() {
        let th = builder().build(AssocMeasure::Emim);
        let q = vec![("sunset".to_string(), 1.0)];
        let exp = th.expand(&q, 3, 5);
        assert!(!exp.is_empty());
        let total: f64 = exp.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // best expansion should be a sunset cluster
        assert!(exp[0].0 == "rgb_0" || exp[0].0 == "gabor_2");
    }

    #[test]
    fn expansion_of_unknown_term_is_empty() {
        let th = builder().build(AssocMeasure::Emim);
        let exp = th.expand(&[("xyzzy".to_string(), 1.0)], 3, 5);
        assert!(exp.is_empty());
    }

    #[test]
    fn expansion_respects_limits() {
        let th = builder().build(AssocMeasure::Emim);
        let q = vec![("sunset".to_string(), 1.0), ("forest".to_string(), 1.0)];
        let exp = th.expand(&q, 2, 3);
        assert!(exp.len() <= 3);
    }

    #[test]
    fn multi_term_queries_merge_evidence() {
        let th = builder().build(AssocMeasure::Emim);
        let q = vec![("sunset".to_string(), 2.0), ("forest".to_string(), 0.5)];
        let exp = th.expand(&q, 4, 10);
        // sunset clusters should outrank forest clusters due to weight
        let sunset_pos = exp.iter().position(|(v, _)| v == "rgb_0" || v == "gabor_2");
        let forest_pos = exp.iter().position(|(v, _)| v == "rgb_1" || v == "gabor_5");
        assert!(sunset_pos.unwrap() < forest_pos.unwrap());
    }

    #[test]
    fn empty_builder_yields_empty_thesaurus() {
        let th = ThesaurusBuilder::new().build(AssocMeasure::Emim);
        assert_eq!(th.n_terms(), 0);
        assert!(th.associations("anything").is_empty());
    }

    #[test]
    fn entries_roundtrip_is_bit_identical() {
        let th = builder().build(AssocMeasure::Emim);
        let back = AssociationThesaurus::from_entries(th.measure(), th.entries());
        assert_eq!(back.measure(), th.measure());
        assert_eq!(back.n_terms(), th.n_terms());
        for term in ["sunset", "forest", "photo"] {
            assert_eq!(back.associations(term), th.associations(term), "{term}");
        }
        // and expansions (the behaviour that matters) agree exactly
        let q = vec![("sunset".to_string(), 1.0), ("forest".to_string(), 0.25)];
        assert_eq!(back.expand(&q, 3, 5), th.expand(&q, 3, 5));
    }

    #[test]
    fn entries_are_deterministically_ordered() {
        let th = builder().build(AssocMeasure::Emim);
        let a = th.entries();
        let b = builder().build(AssocMeasure::Emim).entries();
        assert_eq!(a, b);
        // sorted by text term, each term's block keeps ranked order
        let mut terms: Vec<&String> = a.iter().map(|(t, _, _)| t).collect();
        terms.dedup();
        let mut sorted = terms.clone();
        sorted.sort();
        assert_eq!(terms, sorted);
    }
}
