//! # mirror-bench — workloads and measurement helpers
//!
//! The demo paper contains no numeric tables, so EXPERIMENTS.md defines
//! the quantitative claims to validate (E1–E15); this crate provides the
//! shared workload generators used by both the criterion benches
//! (`benches/e*.rs`) and the `report` binary that regenerates the
//! EXPERIMENTS.md tables.

#![warn(missing_docs)]

use media::{CrawledImage, RobotConfig, WebRobot};
use mirror_core::{Clustering, MirrorConfig, MirrorDbms};
use moa::{Env, MoaEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Vocabulary pool for synthetic annotations (theme words + filler).
const WORD_POOL: &[&str] = &[
    "sunset", "orange", "horizon", "glow", "evening", "dusk", "forest", "tree", "green", "leaf",
    "moss", "trail", "ocean", "wave", "blue", "water", "surf", "tide", "desert", "sand", "dune",
    "arid", "city", "building", "street", "skyline", "tower", "snow", "white", "winter", "ice",
    "mountain", "peak", "photo", "picture", "view", "image", "scene", "light", "shadow", "cloud",
    "storm", "river", "valley", "meadow", "stone",
];

/// Build a text-only environment (`TraditionalImgLib` at scale): `n`
/// annotated documents with 5–12 word annotations drawn from the pool.
/// Returns the environment (with raw rows kept for the naive baseline).
pub fn text_env(n: usize, seed: u64) -> Arc<Env> {
    let mut env = Env::new();
    env.keep_raw = true;
    ir::register_contrep(&env);
    let (name, ty) = moa::parse_define(
        "define TraditionalImgLib as
           SET< TUPLE< Atomic<URL>: source, Atomic<int>: year,
                       CONTREP<Text>: annotation >>;",
    )
    .expect("schema parses");
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<moa::MoaVal> = (0..n)
        .map(|i| {
            let len = rng.gen_range(5..=12);
            let words: Vec<&str> =
                (0..len).map(|_| WORD_POOL[rng.gen_range(0..WORD_POOL.len())]).collect();
            moa::MoaVal::Tuple(vec![
                moa::MoaVal::Str(format!("http://lib/{i}")),
                moa::MoaVal::Int(1990 + (i % 10) as i64),
                moa::MoaVal::Str(words.join(" ")),
            ])
        })
        .collect();
    env.create_collection(name, ty, rows).expect("collection loads");
    Arc::new(env)
}

/// The paper's ranking query over the scaled library.
pub const RANKING_QUERY: &str =
    "map[sum(THIS)](map[getBL(THIS.annotation, benchquery, stats)](TraditionalImgLib))";

/// The standard benchmark query terms.
pub fn bench_query_terms() -> Vec<(String, f64)> {
    vec![("sunset".into(), 1.0), ("ocean".into(), 1.0), ("glow".into(), 1.0)]
}

/// Bind the standard benchmark query terms.
pub fn bind_bench_query(env: &Env) {
    env.bind_query("benchquery", bench_query_terms());
}

/// An engine over a text environment with default optimisation.
pub fn engine(env: &Arc<Env>) -> MoaEngine {
    MoaEngine::new(Arc::clone(env))
}

/// Crawl a themed image corpus for the multimedia experiments.
pub fn image_corpus(n: usize, seed: u64) -> Vec<CrawledImage> {
    WebRobot::new(RobotConfig { n_images: n, image_size: 24, unannotated_fraction: 0.3, seed })
        .crawl()
}

/// A fully ingested Mirror instance over an image corpus.
pub fn ingested_db(n: usize, seed: u64, clustering: Clustering) -> MirrorDbms {
    let mut db = MirrorDbms::new(MirrorConfig { clustering, ..Default::default() });
    db.ingest(&image_corpus(n, seed)).expect("ingest succeeds");
    db
}

/// A small-image corpus for the sharding experiments (E11): cheap enough
/// to extract and cluster at four-digit document counts (the renderer
/// needs at least 9×9 pixels to place its accent blobs).
pub fn cluster_corpus(n: usize, seed: u64) -> Vec<CrawledImage> {
    WebRobot::new(RobotConfig { n_images: n, image_size: 12, unannotated_fraction: 0.3, seed })
        .crawl()
}

/// Node configuration for the sharding experiments: a coarse segmentation
/// grid and fixed k-means keep the one-off global ingest pipeline fast at
/// 10k documents; retrieval behaviour is unaffected.
pub fn cluster_node_config() -> MirrorConfig {
    MirrorConfig { grid: 2, clustering: Clustering::KMeans(4), ..Default::default() }
}

/// The E14 live-ingest corpus: the E11 small-image crawl ingested under
/// the node config, supplying real library rows plus the shared visual
/// vocabulary and association thesaurus for seeding `LiveMirror`
/// instances (a row prefix becomes the merged base, the rest the
/// insert pool).
pub fn live_ingest_db(n: usize, seed: u64) -> MirrorDbms {
    let mut db = MirrorDbms::new(cluster_node_config());
    db.ingest(&cluster_corpus(n, seed)).expect("ingest succeeds");
    db
}

/// A kernel catalog holding the E9 scan workload: `scores`, `n` uniformly
/// random floats in `[0, 1)` under a dense head — the E1-style
/// set-at-a-time scan/select substrate at kernel level.
pub fn kernel_scan_catalog(n: usize, seed: u64) -> monet::Catalog {
    let mut rng = StdRng::seed_from_u64(seed);
    let vals: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
    let cat = monet::Catalog::new();
    cat.register("scores", monet::bat::bat_of_floats(vals));
    cat
}

/// The E9 scan/select plan: a ~50%-selectivity range scan over `scores`.
pub fn kernel_scan_plan() -> monet::Plan {
    monet::Plan::Select {
        input: Box::new(monet::Plan::load("scores")),
        pred: monet::Pred::Range {
            lo: Some(monet::Val::Float(0.25)),
            lo_incl: true,
            hi: Some(monet::Val::Float(0.75)),
            hi_incl: false,
        },
    }
}

/// The E9 aggregation plan: scan/select then sum the surviving tails.
pub fn kernel_scan_aggr_plan() -> monet::Plan {
    monet::Plan::Aggr { input: Box::new(kernel_scan_plan()), agg: monet::Agg::Sum }
}

/// A large skewed text index for the postings-compression experiments
/// (E13), built directly at the ir level: `n` documents of 6–14 tokens
/// drawn Zipf-style from a 2 000-term vocabulary (term *i* with weight
/// ∝ 1/(i+1)), so head terms have long dense posting runs and tail terms
/// are short and selective — with natural within-document repeats for tf
/// variance across blocks.
pub fn compression_index(n: usize, seed: u64) -> ir::InvertedIndex {
    let vocab: Vec<String> = (0..2_000).map(|i| format!("t{i}")).collect();
    let cum: Vec<f64> = vocab
        .iter()
        .enumerate()
        .scan(0.0, |acc, (i, _)| {
            *acc += 1.0 / (i + 1) as f64;
            Some(*acc)
        })
        .collect();
    let total = *cum.last().expect("nonempty vocabulary");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ir::IndexBuilder::new();
    for _ in 0..n {
        let len = rng.gen_range(6..=14);
        let toks: Vec<&str> = (0..len)
            .map(|_| {
                let x = rng.gen_range(0.0..total);
                vocab[cum.partition_point(|&c| c < x)].as_str()
            })
            .collect();
        b.add_tokens(&toks);
    }
    b.build()
}

/// The E13 query battery. The headline shape is *head + tail*: a dense
/// head list paired with selective tail terms whose high-idf postings
/// drive the threshold up, so the pivot leaps the head cursor in
/// multi-block strides — the workload block-max skipping exists for.
/// `head-heavy` (all-dense, nothing to leap) and `selective` (all-sparse,
/// nothing worth leaping) bracket it.
pub fn compression_queries() -> Vec<(&'static str, Vec<(&'static str, f64)>)> {
    vec![
        ("head+tail", vec![("t1", 1.0), ("t400", 1.0), ("t900", 1.0)]),
        ("head-heavy", vec![("t0", 1.0), ("t3", 1.0), ("t12", 1.0)]),
        ("selective", vec![("t150", 1.0), ("t500", 1.0), ("t1200", 1.0)]),
    ]
}

/// Wall-clock one closure in milliseconds.
pub fn time_ms<F: FnMut()>(mut f: F) -> f64 {
    let t0 = std::time::Instant::now();
    f();
    t0.elapsed().as_secs_f64() * 1e3
}

/// Median of several timed runs, in milliseconds.
pub fn median_time_ms<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..runs).map(|_| time_ms(&mut f)).collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_env_scales_and_queries() {
        let env = text_env(100, 1);
        bind_bench_query(&env);
        let out = engine(&env).query(RANKING_QUERY).unwrap();
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn text_env_is_deterministic() {
        let a = text_env(50, 9);
        let b = text_env(50, 9);
        let qa = engine(&a);
        let qb = engine(&b);
        bind_bench_query(&a);
        bind_bench_query(&b);
        let ra = qa.query(RANKING_QUERY).unwrap();
        let rb = qb.query(RANKING_QUERY).unwrap();
        assert_eq!(ra, rb);
    }

    #[test]
    fn median_time_is_positive() {
        let t = median_time_ms(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(t >= 0.0);
    }
}
