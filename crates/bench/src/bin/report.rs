//! Regenerates every table in EXPERIMENTS.md (deterministic seeds).
//!
//! ```sh
//! cargo run --release -p mirror-bench --bin report
//! ```

use cluster::{AutoClass, AutoClassConfig, VocabularyBuilder};
use media::{grid_segments, standard_extractors};
use mirror_bench::*;
use mirror_core::eval::{average_precision, mean, precision_at_k};
use mirror_core::feedback::{FeedbackParams, FeedbackQuery};
use mirror_core::{Clustering, MirrorConfig, MirrorDbms, Retriever};
use moa::naive::NaiveEngine;
use moa::{MoaEngine, OptConfig};
use std::sync::Arc;

fn main() {
    println!("# Mirror MMDBMS — experiment report\n");
    println!("(regenerate with `cargo run --release -p mirror-bench --bin report`)\n");
    e1();
    e2();
    e4();
    e5();
    e6();
    e7();
    e8();
    e9();
    e10();
    e11();
    e12();
    e13();
    e14();
    e15();
    println!("\nreport complete.");
}

/// E1: flattened set-at-a-time vs object-at-a-time scaling.
fn e1() {
    println!("## E1 — set-at-a-time vs object-at-a-time\n");
    println!("| docs | flattened (ms) | object-at-a-time (ms) | speedup |");
    println!("|-----:|---------------:|----------------------:|--------:|");
    for &n in &[1_000usize, 5_000, 20_000] {
        let env = text_env(n, 42);
        bind_bench_query(&env);
        let eng = engine(&env);
        let naive = NaiveEngine::new(&env);
        let t_flat = median_time_ms(5, || {
            eng.query(RANKING_QUERY).unwrap();
        });
        let t_naive = median_time_ms(3, || {
            naive.query(RANKING_QUERY).unwrap();
        });
        println!("| {n} | {t_flat:.2} | {t_naive:.2} | {:.1}× |", t_naive / t_flat.max(1e-6));
    }
    println!();
}

/// E2: optimizer ablation.
fn e2() {
    println!("## E2 — optimizer ablation (10k docs, select-after-rank query)\n");
    let env = text_env(10_000, 42);
    bind_bench_query(&env);
    let query = "select[contains(THIS.source, \"7\")](
        map[sum(THIS)](map[getBL(THIS.annotation, benchquery, stats)](TraditionalImgLib)))";
    println!("| configuration | time (ms) | rows produced | ops |");
    println!("|---------------|----------:|--------------:|----:|");
    for (label, opt) in [
        ("all optimisations", OptConfig { parallelism: 1, ..OptConfig::default() }),
        ("none", OptConfig::none()),
        ("pushdown only", OptConfig { pushdown: true, ..OptConfig::none() }),
        ("memoize only", OptConfig { memoize: true, ..OptConfig::none() }),
    ] {
        let eng = MoaEngine::with_opt(Arc::clone(&env), opt);
        let expr = moa::parse_expr(query).unwrap();
        let (_, stats) = eng.query_with_stats(&expr).unwrap();
        let t = median_time_ms(5, || {
            eng.query(query).unwrap();
        });
        println!("| {label} | {t:.2} | {} | {} |", stats.rows_produced, stats.ops_evaluated);
    }
    println!();
}

/// E4: integrated vs two-system retrieval.
fn e4() {
    println!("## E4 — IR/DB integration (rank ∘ select, 20k docs)\n");
    let env = text_env(20_000, 42);
    bind_bench_query(&env);
    let eng = engine(&env);
    let integrated = "map[sum(THIS)](map[getBL(THIS.annotation, benchquery, stats)](
                        select[THIS.year >= 1998](TraditionalImgLib)))";
    let rank_all =
        "map[sum(THIS)](map[getBL(THIS.annotation, benchquery, stats)](TraditionalImgLib))";
    let filter_only = "select[THIS.year >= 1998](TraditionalImgLib)";
    let t_int = median_time_ms(5, || {
        eng.query(integrated).unwrap();
    });
    let t_two = median_time_ms(5, || {
        let ranked = eng.query(rank_all).unwrap();
        let survivors = eng.query(filter_only).unwrap();
        let keep: std::collections::HashSet<u32> = match survivors {
            moa::QueryOutput::Oids(v) => v.into_iter().collect(),
            _ => unreachable!(),
        };
        if let moa::QueryOutput::Pairs(p) = ranked {
            let _ = p.into_iter().filter(|(o, _)| keep.contains(o)).count();
        }
    });
    println!("| strategy | time (ms) |");
    println!("|----------|----------:|");
    println!("| integrated (single algebra plan) | {t_int:.2} |");
    println!("| two-system (rank all, filter post hoc) | {t_two:.2} |");
    println!("| advantage | {:.1}× |", t_two / t_int.max(1e-6));
    println!();
}

/// E5: daemon-architecture ingest throughput.
fn e5() {
    println!("## E5 — distributed architecture (Figure 1)\n");
    let corpus = image_corpus(48, 42);
    let t_inline = median_time_ms(3, || {
        let mut db = MirrorDbms::new(MirrorConfig::default());
        db.ingest(&corpus).unwrap();
    });
    let t_daemon = median_time_ms(3, || {
        let mut db = MirrorDbms::new(MirrorConfig::default());
        db.ingest_via_daemons(&corpus).unwrap();
    });
    println!("| pipeline | 48-image ingest (ms) | images/s |");
    println!("|----------|---------------------:|---------:|");
    println!("| in-process | {t_inline:.0} | {:.1} |", 48.0 * 1e3 / t_inline);
    println!(
        "| daemons (segmenter + 6 feature daemons, threaded) | {t_daemon:.0} | {:.1} |",
        48.0 * 1e3 / t_daemon
    );
    println!();
}

/// E6: dual-coding effectiveness.
fn e6() {
    println!("## E6 — dual coding effectiveness (120 images, 30% un-annotated)\n");
    let mut db = MirrorDbms::new(MirrorConfig::default());
    let corpus = image_corpus(120, 42);
    db.ingest(&corpus).unwrap();
    let queries: [(&str, usize); 4] = [
        ("sunset glow evening", 0),
        ("forest tree moss", 1),
        ("ocean wave surf", 2),
        ("snow winter mountain", 5),
    ];
    println!(
        "| query | P@10 text | P@10 dual | AP text | AP dual | un-annotated found (text/dual) |"
    );
    println!(
        "|-------|----------:|----------:|--------:|--------:|-------------------------------:|"
    );
    let mut ap_t_all = Vec::new();
    let mut ap_d_all = Vec::new();
    for (q, theme) in queries {
        let rel = |o: u32| db.docs()[o as usize].theme == theme;
        let n_rel = db.docs().iter().filter(|d| d.theme == theme).count();
        let text: Vec<u32> = db.query_text(q, 120).unwrap().iter().map(|r| r.oid).collect();
        let dual: Vec<u32> = db.query_dual(q, 0.5, 120).unwrap().iter().map(|r| r.oid).collect();
        let un = |oids: &[u32]| {
            oids.iter().filter(|&&o| rel(o) && !db.docs()[o as usize].annotated).count()
        };
        let (pt, pd) = (precision_at_k(&text, rel, 10), precision_at_k(&dual, rel, 10));
        let (at, ad) = (average_precision(&text, rel, n_rel), average_precision(&dual, rel, n_rel));
        ap_t_all.push(at);
        ap_d_all.push(ad);
        println!("| {q} | {pt:.2} | {pd:.2} | {at:.3} | {ad:.3} | {}/{} |", un(&text), un(&dual));
    }
    println!("| **mean** | | | **{:.3}** | **{:.3}** | |", mean(&ap_t_all), mean(&ap_d_all));
    println!();
}

/// E7: relevance feedback across iterations.
fn e7() {
    println!("## E7 — relevance feedback (target theme: forest)\n");
    let mut db = MirrorDbms::new(MirrorConfig::default());
    let corpus = image_corpus(120, 43);
    db.ingest(&corpus).unwrap();
    let rel = |o: u32| db.docs()[o as usize].theme == 1;
    let n_rel = db.docs().iter().filter(|d| d.theme == 1).count();
    let mut query = FeedbackQuery::from_text("forest");
    let mut results = db.run_feedback_query(&query, 0.5, 25).unwrap();
    println!("| round | P@10 | Recall@25 | un-annotated relevant in top-25 | text terms | visual terms |");
    println!("|------:|-----:|----------:|--------------------------------:|-----------:|-------------:|");
    for round in 0..4 {
        let oids: Vec<u32> = results.iter().map(|r| r.oid).collect();
        let unann =
            oids.iter().take(25).filter(|&&o| rel(o) && !db.docs()[o as usize].annotated).count();
        println!(
            "| {round} | {:.2} | {:.2} | {} | {} | {} |",
            precision_at_k(&oids, rel, 10),
            mirror_core::eval::recall_at_k(&oids, rel, 25, n_rel),
            unann,
            query.text.len(),
            query.visual.len()
        );
        let relevant: Vec<u32> = oids.iter().copied().filter(|&o| rel(o)).collect();
        if relevant.is_empty() {
            break;
        }
        let (r, q) =
            db.query_with_feedback(&query, &relevant, FeedbackParams::default(), 0.5, 25).unwrap();
        results = r;
        query = q;
    }
    println!();
}

/// E8: AutoClass vs k-means vocabularies and their retrieval effect.
fn e8() {
    println!("## E8 — clustering ablation (vocabularies and retrieval)\n");
    let corpus = image_corpus(96, 42);
    // vocabulary shapes
    let extractors = standard_extractors();
    let mut builder = VocabularyBuilder::new();
    for c in &corpus {
        for seg in grid_segments(&c.image, 3) {
            for ex in &extractors {
                builder.add(ex.space(), ex.extract(&seg.image).into_values());
            }
        }
    }
    let ac = builder.build_autoclass(&AutoClass::new(AutoClassConfig::default()));
    let km = builder.build_kmeans(6, 42);
    println!("| feature space | AutoClass classes (BIC) | k-means classes |");
    println!("|---------------|------------------------:|----------------:|");
    for space in ac.spaces() {
        println!(
            "| {space} | {} | {} |",
            ac.model(&space).unwrap().n_clusters(),
            km.model(&space).map_or(0, |m| m.n_clusters())
        );
    }
    // retrieval effect
    println!("\n| clustering | mean AP over 3 theme queries |");
    println!("|------------|-----------------------------:|");
    for (label, clustering) in
        [("AutoClass", Clustering::AutoClass), ("k-means (k=6)", Clustering::KMeans(6))]
    {
        let mut db = MirrorDbms::new(MirrorConfig { clustering, ..Default::default() });
        db.ingest(&corpus).unwrap();
        let mut aps = Vec::new();
        for (q, theme) in [("sunset glow", 0usize), ("forest tree", 1), ("ocean wave", 2)] {
            let ranked: Vec<u32> =
                db.query_dual(q, 0.5, 96).unwrap().iter().map(|r| r.oid).collect();
            let n_rel = db.docs().iter().filter(|d| d.theme == theme).count();
            aps.push(average_precision(&ranked, |o| db.docs()[o as usize].theme == theme, n_rel));
        }
        println!("| {label} | {:.3} |", mean(&aps));
    }
    println!();
}

/// E9: fragmented parallel execution of the kernel scan/select workload.
fn e9() {
    println!("## E9 — fragmented parallel execution (1M-row scan/select)\n");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "(host has {cores} core(s) available — degrees beyond that cannot show \
         wall-clock speedup)\n"
    );
    let cat = kernel_scan_catalog(1_000_000, 42);
    let reg = monet::OpRegistry::new();
    let select = kernel_scan_plan();
    let aggr = kernel_scan_aggr_plan();
    let serial = monet::ParallelExecutor::new(&cat, &reg, 1);
    let t1_select = median_time_ms(7, || {
        serial.run_bat(&select).unwrap();
    });
    let t1_aggr = median_time_ms(7, || {
        serial.run_bat(&aggr).unwrap();
    });
    println!("| degree | select (ms) | speedup | select+sum (ms) | speedup |");
    println!("|-------:|------------:|--------:|----------------:|--------:|");
    println!("| 1 (serial) | {t1_select:.2} | 1.0× | {t1_aggr:.2} | 1.0× |");
    for degree in [2usize, 4, 8] {
        let ex = monet::ParallelExecutor::new(&cat, &reg, degree);
        let ts = median_time_ms(7, || {
            ex.run_bat(&select).unwrap();
        });
        let ta = median_time_ms(7, || {
            ex.run_bat(&aggr).unwrap();
        });
        println!(
            "| {degree} | {ts:.2} | {:.1}× | {ta:.2} | {:.1}× |",
            t1_select / ts.max(1e-6),
            t1_aggr / ta.max(1e-6)
        );
    }
    // prove the fragmented output is value-identical to serial
    let par = monet::ParallelExecutor::new(&cat, &reg, 4);
    assert_eq!(
        par.run_bat(&select).unwrap().count(),
        serial.run_bat(&select).unwrap().count(),
        "fragmented select diverged from serial"
    );
    println!();
}

/// E10: fused top-k retrieval and the concurrent serving layer.
fn e10() {
    use mirror_core::serve::{MirrorServer, RetrievalRequest};
    println!("## E10 — fused top-k serving\n");

    // (a) fused topk_bl vs materialise-then-sort on a 10k-doc corpus
    let env = text_env(10_000, 42);
    let eng = engine(&env);
    let materialise = moa::QueryParams::new().bind("benchquery", bench_query_terms());
    println!("| k | full-sort (ms) | fused top-k (ms) | speedup | operator note |");
    println!("|--:|---------------:|-----------------:|--------:|---------------|");
    for k in [10usize, 100] {
        let fused_params = materialise.clone().with_top_k(k);
        let t_full = median_time_ms(7, || {
            let out = eng.query_with(RANKING_QUERY, &materialise).unwrap();
            let mut pairs: Vec<(u32, f64)> = out
                .pairs()
                .unwrap()
                .iter()
                .filter_map(|(o, v)| v.as_float().map(|f| (*o, f)))
                .filter(|(_, s)| *s > 0.0)
                .collect();
            pairs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            pairs.truncate(k);
        });
        let t_fused = median_time_ms(7, || {
            eng.query_with(RANKING_QUERY, &fused_params).unwrap();
        });
        let expr = moa::parse_expr(RANKING_QUERY).unwrap();
        let (_, stats) = eng.query_expr_params(&expr, &fused_params).unwrap();
        let note = stats
            .notes()
            .into_iter()
            .find(|n| n.starts_with("topk"))
            .unwrap_or_else(|| "(not fused)".into());
        println!(
            "| {k} | {t_full:.2} | {t_fused:.2} | {:.1}× | {note} |",
            t_full / t_fused.max(1e-6)
        );
    }

    // (b) the serving layer under 1/4/8 concurrent clients
    let db = std::sync::Arc::new(ingested_db(64, 42, Clustering::AutoClass));
    let requests = 64usize;
    println!(
        "\n| clients (= workers) | {requests} text requests (ms) | req/s | mean latency (ms) |"
    );
    println!("|--------------------:|------------------------------:|------:|------------------:|");
    for clients in [1usize, 4, 8] {
        let server = MirrorServer::start(std::sync::Arc::clone(&db), clients);
        let wall = median_time_ms(3, || {
            std::thread::scope(|scope| {
                let server = &server;
                let handles: Vec<_> = (0..clients)
                    .map(|_| {
                        scope.spawn(move || {
                            for _ in 0..requests / clients {
                                server.query(&RetrievalRequest::text("sunset glow", 10)).unwrap();
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
            });
        });
        let stats = server.stats();
        println!(
            "| {clients} | {wall:.1} | {:.0} | {:.2} |",
            requests as f64 * 1e3 / wall.max(1e-6),
            stats.mean_latency_ms
        );
    }
    println!();
}

/// E11: sharded scatter-gather retrieval vs a single node.
fn e11() {
    use mirror_core::serve::{MirrorServer, RetrievalRequest};
    use mirror_core::shard::{ClusterConfig, MirrorCluster};
    println!("## E11 — sharded scatter-gather retrieval (10k-doc corpus)\n");
    let corpus = cluster_corpus(10_000, 42);
    let node = cluster_node_config();

    // single-node baseline
    let mut single = MirrorDbms::new(node.clone());
    single.ingest(&corpus).unwrap();
    let req = RetrievalRequest::text("sunset glow evening", 10);
    let want = single.retrieve(&req).unwrap();
    let t_single = median_time_ms(9, || {
        single.retrieve(&req).unwrap();
    });

    println!("| backend | top-10 latency (ms) | vs single node | results bit-identical |");
    println!("|---------|--------------------:|---------------:|----------------------:|");
    println!("| single node | {t_single:.2} | 1.00× | — |");
    let mut overhead_1shard = f64::NAN;
    for shards in [1usize, 2, 4] {
        let cluster = MirrorCluster::build_with(
            &corpus,
            ClusterConfig { shards, replicas: 1, node: node.clone(), ..Default::default() },
        )
        .unwrap();
        let identical = cluster.retrieve(&req).unwrap() == want;
        let t = median_time_ms(9, || {
            cluster.retrieve(&req).unwrap();
        });
        if shards == 1 {
            overhead_1shard = (t - t_single) / t_single.max(1e-9) * 100.0;
        }
        println!("| {shards} shard(s) | {t:.2} | {:.2}× | {identical} |", t_single / t.max(1e-6));
    }
    println!(
        "\nmerge overhead at 1 shard: {overhead_1shard:.1}% \
         (acceptance: < 10%)\n"
    );

    // replica routing under concurrent clients: p50/p99 make the
    // spreading observable
    let cluster = std::sync::Arc::new(
        MirrorCluster::build_with(
            &corpus,
            ClusterConfig { shards: 2, replicas: 2, node, ..Default::default() },
        )
        .unwrap(),
    );
    let server = MirrorServer::start(cluster, 4);
    std::thread::scope(|scope| {
        let server = &server;
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(move || {
                    for _ in 0..16 {
                        server.query(&RetrievalRequest::text("sunset glow evening", 10)).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    let stats = server.stats();
    println!("2 shards × 2 replicas under 4 clients (64 requests):\n");
    println!("| served | errors | p50 (ms) | p99 (ms) | max (ms) |");
    println!("|-------:|-------:|---------:|---------:|---------:|");
    println!(
        "| {} | {} | {:.2} | {:.2} | {:.2} |",
        stats.served,
        stats.errors,
        stats.p50_latency_ms,
        stats.p99_latency_ms,
        stats.max_latency_ms
    );
    println!();
}

/// E12: the durable storage tier — cold open vs re-ingest.
fn e12() {
    use mirror_core::Retriever;
    use monet::{MemFs, Store, StoreOptions};
    println!("## E12 — durable storage tier (2k-doc corpus)\n");
    let corpus = cluster_corpus(2_000, 42);
    let node = cluster_node_config();

    let mut db = MirrorDbms::new(node.clone());
    db.ingest(&corpus).unwrap();
    let want = db.query_text("sunset glow evening", 10).unwrap();
    let t_ingest = median_time_ms(3, || {
        let mut db = MirrorDbms::new(node.clone());
        db.ingest(&corpus).unwrap();
    });

    // save + checkpoint into an in-memory disk image
    let saved = MemFs::new();
    let store = Store::open(Arc::new(saved.clone()), StoreOptions::default()).unwrap();
    db.save_to(&store).unwrap();
    store.checkpoint().unwrap();
    drop(store);
    let t_save = median_time_ms(3, || {
        let fs = MemFs::new();
        let store = Store::open(Arc::new(fs), StoreOptions::default()).unwrap();
        db.save_to(&store).unwrap();
        store.checkpoint().unwrap();
    });
    let t_open = median_time_ms(5, || {
        let store = Store::open(Arc::new(saved.clone()), StoreOptions::default()).unwrap();
        MirrorDbms::open_from(&store).unwrap();
    });

    let store = Store::open(Arc::new(saved.clone()), StoreOptions::default()).unwrap();
    let reopened = MirrorDbms::open_from(&store).unwrap();
    let identical = reopened.query_text("sunset glow evening", 10).unwrap() == want;
    let speedup = t_ingest / t_open.max(1e-6);

    println!("| path | time (ms) | store size (KiB) | results bit-identical |");
    println!("|------|----------:|-----------------:|----------------------:|");
    println!("| ingest from corpus | {t_ingest:.1} | — | — |");
    println!("| save + checkpoint | {t_save:.1} | {} | — |", saved.total_bytes() / 1024);
    println!("| cold open | {t_open:.1} | — | {identical} |");
    println!("\ncold open is {speedup:.1}× faster than re-ingest (acceptance: ≥ 5×)\n");

    // WAL-only durability: save without a checkpoint and replay the log
    let wal_fs = MemFs::new();
    let store = Store::open(Arc::new(wal_fs.clone()), StoreOptions::default()).unwrap();
    db.save_to(&store).unwrap();
    drop(store);
    let t_replay = median_time_ms(3, || {
        Store::open(Arc::new(wal_fs.clone()), StoreOptions::default()).unwrap();
    });
    let store = Store::open(Arc::new(wal_fs.clone()), StoreOptions::default()).unwrap();
    let rec = store.recovery();
    println!(
        "WAL-only recovery: {} transactions / {} keys replayed in {:.1} ms \
         ({} KiB of log); checkpointed pages make reopen {:.1}× cheaper\n",
        rec.wal_transactions,
        rec.wal_keys,
        t_replay,
        wal_fs.total_bytes() / 1024,
        t_replay
            / median_time_ms(3, || {
                Store::open(Arc::new(saved.clone()), StoreOptions::default()).unwrap();
            })
            .max(1e-6),
    );
}

/// E13: block-compressed postings with block-max pruning on the belief
/// path — space and speed against the raw-vec reference evaluator.
fn e13() {
    use ir::{topk_beliefs, topk_beliefs_raw, BeliefParams, RawPostings};
    use mirror_bench::{compression_index, compression_queries};
    println!("## E13 — postings compression & block-max pruning (100k-doc Zipf corpus)\n");
    let index = compression_index(100_000, 42);
    let raw = RawPostings::from_index(&index);
    let params = BeliefParams::default();

    let compressed = index.postings_heap_bytes();
    let raw_bytes = index.raw_postings_bytes();
    let n = index.n_docs() as f64;
    println!(
        "postings: {} in {} KiB compressed vs {} KiB raw — {:.2} vs {:.2} bytes/doc \
         ({:.1}× smaller)\n",
        raw.total_postings(),
        compressed / 1024,
        raw_bytes / 1024,
        compressed as f64 / n,
        raw_bytes as f64 / n,
        raw_bytes as f64 / compressed.max(1) as f64,
    );

    println!("| query | k | raw daat (ms) | blockmax (ms) | speedup | blocks skipped | pruned | identical |");
    println!("|-------|--:|--------------:|--------------:|--------:|---------------:|-------:|----------:|");
    for (label, query) in compression_queries() {
        for &k in &[10usize, 100] {
            let fast = topk_beliefs(&index, params, &query, None, k, 1);
            let slow = topk_beliefs_raw(&index, &raw, params, &query, None, k, 1);
            let identical = fast.hits == slow.hits;
            let t_raw = median_time_ms(5, || {
                topk_beliefs_raw(&index, &raw, params, &query, None, k, 1);
            });
            let t_fast = median_time_ms(5, || {
                topk_beliefs(&index, params, &query, None, k, 1);
            });
            println!(
                "| {label} | {k} | {t_raw:.2} | {t_fast:.2} | {:.1}× | {} | {} | {identical} |",
                t_raw / t_fast.max(1e-6),
                fast.blocks_skipped,
                fast.pruned,
            );
        }
    }
    println!("\nacceptance: ≥ 1.3× at k = 10, nonzero blocks skipped, identical = true\n");
}

/// E14: query latency under live write load (MVCC snapshot isolation).
///
/// A deterministic single-threaded interleave: `load` writes are issued
/// per query (two inserts from the pool for every tombstone), so the
/// delta a query must evaluate alongside its pinned generation grows with
/// the load level. `merge` then folds the delta and `merged p50` shows
/// the fast path restored.
fn e14() {
    use mirror_core::serve::RetrievalRequest;
    use mirror_core::LiveMirror;
    use std::time::Instant;
    const QUERIES: usize = 300;
    const BASE: usize = 1_000;

    println!("## E14 — live ingest: query latency under write load (2k-doc corpus, 1k seeded)\n");
    let db = live_ingest_db(2_000, 42);
    let rows = db.library_rows().to_vec();
    let reqs = [
        RetrievalRequest::text("sunset over the water", 10),
        RetrievalRequest::dual("forest tree", 0.5, 10),
    ];

    println!("| write load | writes | p50 (ms) | p99 (ms) | merge (ms) | merged p50 (ms) |");
    println!("|-----------:|-------:|---------:|---------:|-----------:|----------------:|");
    for &(label, per_query) in &[("0%", 0.0f64), ("10%", 1.0 / 9.0), ("50%", 1.0)] {
        let base = MirrorDbms::from_rows(
            db.config().clone(),
            rows[..BASE].to_vec(),
            db.vocabulary().cloned(),
            db.thesaurus().cloned(),
        )
        .expect("base loads");
        let live = LiveMirror::new(base);
        let mut times: Vec<f64> = Vec::with_capacity(QUERIES);
        let (mut credit, mut writes) = (0.0f64, 0usize);
        for q in 0..QUERIES {
            credit += per_query;
            while credit >= 1.0 {
                credit -= 1.0;
                if writes % 3 == 2 {
                    live.delete(&rows[writes % BASE].url).expect("delete");
                } else {
                    live.insert_rows(vec![rows[BASE + writes].clone()]).expect("insert");
                }
                writes += 1;
            }
            let req = &reqs[q % reqs.len()];
            let t = Instant::now();
            live.retrieve(req).expect("query");
            times.push(t.elapsed().as_secs_f64() * 1e3);
        }
        times.sort_by(f64::total_cmp);
        let p50 = times[times.len() / 2];
        let p99 = times[times.len() * 99 / 100];
        let t_merge = time_ms(|| {
            live.merge().expect("merge");
        });
        let mut merged: Vec<f64> = (0..QUERIES / 3)
            .map(|q| {
                let t = Instant::now();
                live.retrieve(&reqs[q % reqs.len()]).expect("query");
                t.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        merged.sort_by(f64::total_cmp);
        let merged_p50 = merged[merged.len() / 2];
        println!("| {label} | {writes} | {p50:.3} | {p99:.3} | {t_merge:.1} | {merged_p50:.3} |");
    }
    println!(
        "\ndeterministic interleave (seeded corpus, no sleeps); write load = writes issued per \
         query, 2:1 insert:tombstone mix. acceptance: merged p50 matches the 0% row and the \
         delta-path p99 stays within one order of magnitude of it\n"
    );
}

/// E15: the statistics-driven pass framework under open-loop serving load.
///
/// The workload harness offers the same seeded mixed-traffic stream
/// (dual-heavy — multi-channel plans are where memoization and the stats
/// passes pay; URL filters included) to two 2-worker servers over the
/// same 2k-document corpus — one with the full pass pipeline, one with
/// `OptConfig::none()` — at three arrival rates, the last far beyond
/// capacity. Percentiles come from the server's fixed-bucket histogram,
/// so every request of the run is counted; `shed` is the admission
/// queue's typed `Overloaded` rejections.
fn e15() {
    use mirror_core::serve::MirrorServer;
    use mirror_core::workload::{TrafficMix, WorkloadConfig, WorkloadGen};

    println!("## E15 — optimizer pass pipeline under open-loop load (2k docs, 2 workers)\n");
    let db = live_ingest_db(2_000, 42);
    let rows = db.library_rows().to_vec();
    let terms: Vec<String> =
        ["sunset", "ocean", "forest", "city", "snow", "wave", "desert", "glow"]
            .map(String::from)
            .to_vec();
    let mix = TrafficMix { text: 0.3, dual: 0.4, filtered: 0.2, feedback: 0.1 };

    println!(
        "| rate (req/s) | optimizer | completed | shed | p50 (ms) | p99 (ms) | SLO headroom |"
    );
    println!(
        "|-------------:|-----------|----------:|-----:|---------:|---------:|-------------:|"
    );
    for &qps in &[200.0f64, 2_000.0, 20_000.0] {
        for (label, opt) in [("on", None), ("off", Some(OptConfig::none()))] {
            let mut node = MirrorDbms::from_rows(
                db.config().clone(),
                rows.clone(),
                db.vocabulary().cloned(),
                db.thesaurus().cloned(),
            )
            .expect("node loads");
            if let Some(cfg) = opt {
                node.set_opt(cfg);
            }
            let node = Arc::new(node);
            // warm the node (lazy index state, page cache) on a throwaway
            // server so the measured histogram isn't charged for cold start
            let warmup = MirrorServer::start_with_queue(node.clone(), 2, 64);
            let warm =
                WorkloadConfig { seed: 7, qps: 400.0, requests: 64, mix, ..Default::default() };
            WorkloadGen::new(warm, terms.clone()).run(&warmup);
            warmup.shutdown();
            let server = MirrorServer::start_with_queue(node, 2, 64);
            let cfg = WorkloadConfig { seed: 11, qps, requests: 400, mix, ..Default::default() };
            let mut gen = WorkloadGen::new(cfg, terms.clone())
                .with_filters(vec!["/sunset/".into(), "/ocean/".into()]);
            let r = gen.run(&server);
            assert_eq!(r.errors, 0, "serving errors at {qps} req/s");
            println!(
                "| {qps:.0} | {label} | {} | {} | {:.3} | {:.3} | {:+.0}% |",
                r.completed,
                r.rejected,
                r.p50_ms,
                r.p99_ms,
                r.slo_headroom * 100.0
            );
        }
    }
    println!(
        "\nsame seeded request stream per row (seed 11); identical results either way — the \
         bit-identity property tests hold every pass to that. acceptance: at sustainable rates \
         both configurations complete every request inside the SLO with positive headroom — the \
         optimizer's per-query pass and annotation overhead must not cost SLO compliance (its \
         plan-quality wins are isolated in the e15 bench ablation) — and at the overloaded rate \
         both degrade by shedding typed Overloaded rejections, never by erroring\n"
    );
}
