//! E6 — dual-coding retrieval latency (§5.2): text-only vs visual-only vs
//! dual-channel queries over the ingested demo library. (Effectiveness
//! numbers are produced by the `report` binary; here we measure cost.)

use criterion::{criterion_group, criterion_main, Criterion};
use mirror_bench::ingested_db;
use mirror_core::{Clustering, Retriever};

fn bench(c: &mut Criterion) {
    let db = ingested_db(60, 42, Clustering::AutoClass);
    let visual =
        db.thesaurus().unwrap().expand(&mirror_core::query::weighted_terms("sunset glow"), 4, 12);

    let mut group = c.benchmark_group("e6_dual_coding");
    group.sample_size(30);
    group.bench_function("text_only", |b| b.iter(|| db.query_text("sunset glow", 10).unwrap()));
    group.bench_function("visual_only", |b| b.iter(|| db.query_visual(&visual, 10).unwrap()));
    group.bench_function("dual", |b| b.iter(|| db.query_dual("sunset glow", 0.5, 10).unwrap()));
    group.bench_function("thesaurus_expansion", |b| {
        b.iter(|| {
            db.thesaurus().unwrap().expand(
                &mirror_core::query::weighted_terms("sunset glow"),
                4,
                12,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
