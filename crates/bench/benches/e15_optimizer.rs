//! E15 — statistics-driven pass framework and serving under load.
//!
//! Two halves, matching the two PR-10 subsystems:
//!
//! 1. **Plan quality** — the conjunctive-filter chain (reordered by
//!    `selection_order` using ingest-time NDV statistics) and the
//!    late-filter ranking (pushed down and fused into the streaming
//!    top-k), each measured with the full pipeline against
//!    `OptConfig::none()`. The plan changes are EXPLAIN-verified before
//!    anything is timed: if the expected passes stop firing, the bench
//!    panics rather than publishing a vacuous comparison.
//! 2. **Serving** — the open-loop workload generator drives a bounded
//!    `MirrorServer` over the same corpus at three arrival rates,
//!    with and without the optimizer, timing the whole drained run.
//!
//! Run with `cargo bench -p mirror-bench --bench e15_optimizer`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mirror_bench::live_ingest_db;
use mirror_core::serve::MirrorServer;
use mirror_core::workload::{WorkloadConfig, WorkloadGen};
use mirror_core::MirrorDbms;
use moa::{OptConfig, QueryParams};
use std::sync::Arc;

const DOCS: usize = 2_000;

const CHAIN_QUERY: &str = "map[sum(THIS)](map[getBL(THIS.annotation, pq, stats)](\
    select[contains(THIS.source, \"http\") and contains(THIS.source, \"png\") \
    and THIS.source = \"__URL__\"](ImageLibraryInternal)))";

const LATE_QUERY: &str = "select[contains(THIS.source, \"7\")](map[sum(THIS)](\
    map[getBL(THIS.annotation, pq, stats)](ImageLibraryInternal)))";

fn params() -> QueryParams {
    QueryParams::new()
        .bind("pq", vec![("sunset".to_string(), 1.0), ("ocean".to_string(), 1.0)])
        .with_top_k(10)
}

fn bench(c: &mut Criterion) {
    let db = live_ingest_db(DOCS, 42);
    let rows = db.library_rows().to_vec();
    let chain_query = CHAIN_QUERY.replace("__URL__", &rows[0].url);
    let mk = |opt: Option<OptConfig>| {
        let mut node = MirrorDbms::from_rows(
            db.config().clone(),
            rows.clone(),
            db.vocabulary().cloned(),
            db.thesaurus().cloned(),
        )
        .expect("node loads");
        if let Some(cfg) = opt {
            node.set_opt(cfg);
        }
        node
    };
    let optimized = mk(None);
    let ablated = mk(Some(OptConfig::none()));

    // EXPLAIN-verify the plan changes this bench claims to measure
    let p = params();
    let chain = optimized.engine().explain_analyze(&chain_query, &p).unwrap();
    assert!(chain.contains("selection_order") && chain.contains("est≈"), "chain plan:\n{chain}");
    let late = optimized.engine().explain_analyze(LATE_QUERY, &p).unwrap();
    assert!(late.contains("contrep.getbl.topk"), "late plan did not fuse:\n{late}");
    let late_off = ablated.engine().explain_analyze(LATE_QUERY, &p).unwrap();
    assert!(!late_off.contains("contrep.getbl.topk"), "ablated plan fused:\n{late_off}");

    let mut group = c.benchmark_group("e15_optimizer");
    group.sample_size(10);
    for (label, node) in [("optimized", &optimized), ("unoptimized", &ablated)] {
        group.bench_function(BenchmarkId::new("conjunctive_chain", label), |b| {
            b.iter(|| node.engine().query_with(&chain_query, &p).unwrap())
        });
        group.bench_function(BenchmarkId::new("late_filter", label), |b| {
            b.iter(|| node.engine().query_with(LATE_QUERY, &p).unwrap())
        });
    }

    // serving under open-loop load at three arrival rates
    let terms: Vec<String> =
        ["sunset", "ocean", "forest", "city", "snow", "wave"].map(String::from).to_vec();
    for (label, node) in [("optimized", optimized), ("unoptimized", ablated)] {
        let server = MirrorServer::start(Arc::new(node), 4);
        for qps in [400.0f64, 1_600.0, 6_400.0] {
            group.bench_with_input(
                BenchmarkId::new(&format!("serve_{label}"), qps as u64),
                &qps,
                |b, &qps| {
                    b.iter(|| {
                        let cfg =
                            WorkloadConfig { seed: 11, qps, requests: 64, ..Default::default() };
                        let mut gen = WorkloadGen::new(cfg, terms.clone())
                            .with_filters(vec!["/sunset/".into(), "/ocean/".into()]);
                        gen.run(&server)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
