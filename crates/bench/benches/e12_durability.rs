//! E12 — the durable storage tier (ROADMAP: persistence beyond process
//! lifetime).
//!
//! Three workloads over a 600-document corpus (the report binary runs the
//! 2k-document version and checks the acceptance ratio):
//!
//! * `open`: cold-opening a persisted instance from checksummed pages vs
//!   re-running the whole ingest pipeline — the reason the tier exists.
//!   Acceptance (checked in the report): cold open ≥ 5× faster.
//! * `save`: a full save + checkpoint to an in-memory backend, isolating
//!   serialisation + WAL + page-write cost from disk hardware.
//! * `get`: point reads through the buffer pool at pool sizes 2 and
//!   unbounded — the clock eviction overhead under maximal pressure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mirror_bench::{cluster_corpus, cluster_node_config};
use mirror_core::MirrorDbms;
use monet::{MemFs, Store, StoreOptions};
use std::sync::Arc;

const DOCS: usize = 600;

fn bench(c: &mut Criterion) {
    let corpus = cluster_corpus(DOCS, 42);
    let node = cluster_node_config();
    let mut db = MirrorDbms::new(node.clone());
    db.ingest(&corpus).unwrap();

    let saved = MemFs::new();
    let store = Store::open(Arc::new(saved.clone()), StoreOptions::default()).unwrap();
    db.save_to(&store).unwrap();
    store.checkpoint().unwrap();
    drop(store);

    let mut group = c.benchmark_group("e12_open");
    group.sample_size(10);
    group.bench_function("cold_open", |b| {
        b.iter(|| {
            let store = Store::open(Arc::new(saved.clone()), StoreOptions::default()).unwrap();
            MirrorDbms::open_from(&store).unwrap()
        })
    });
    group.sample_size(10);
    group.bench_function("re_ingest", |b| {
        b.iter(|| {
            let mut db = MirrorDbms::new(node.clone());
            db.ingest(&corpus).unwrap();
            db
        })
    });
    group.finish();

    let mut group = c.benchmark_group("e12_save");
    group.sample_size(10);
    group.bench_function("save_and_checkpoint", |b| {
        b.iter(|| {
            let fs = MemFs::new();
            let store = Store::open(Arc::new(fs), StoreOptions::default()).unwrap();
            db.save_to(&store).unwrap();
            store.checkpoint().unwrap();
        })
    });
    group.finish();

    // point reads under pool pressure: every key, round-robin, at a pool
    // far smaller than the page count vs no eviction at all
    let mut group = c.benchmark_group("e12_get");
    for &pool in &[2usize, 0] {
        let store =
            Store::open(Arc::new(saved.clone()), StoreOptions { pool_pages: pool }).unwrap();
        let keys = store.keys();
        group.bench_with_input(
            BenchmarkId::new(
                "pool_pages",
                if pool == 0 { "unbounded".into() } else { pool.to_string() },
            ),
            &pool,
            |b, _| {
                b.iter(|| {
                    for key in &keys {
                        store.get(key).unwrap().unwrap();
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
