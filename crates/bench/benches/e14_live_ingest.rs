//! E14 — live ingest: query latency across delta fill levels.
//!
//! One seeded `LiveMirror` per delta level: 0% (freshly merged — the
//! empty-delta fast path delegates straight to the generation's fused
//! top-k), then 10% and 50% of the base corpus sitting un-merged in the
//! delta plus a tombstone sprinkling, so the bench prices exactly what
//! a reader pays for snapshot isolation before the background merge
//! catches up. `pin` times the epoch guard itself (read-lock +
//! `Arc` clone), the fixed cost every query pays regardless of load.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mirror_bench::live_ingest_db;
use mirror_core::serve::RetrievalRequest;
use mirror_core::{LiveMirror, MirrorDbms, Retriever};

const DOCS: usize = 2_000;
const BASE: usize = 1_000;

/// A live instance with `delta_pct`% of the base corpus un-merged in the
/// delta (batched inserts) and one tombstone per ten delta rows.
fn live_at(db: &MirrorDbms, delta_pct: usize) -> LiveMirror {
    let rows = db.library_rows();
    let base = MirrorDbms::from_rows(
        db.config().clone(),
        rows[..BASE].to_vec(),
        db.vocabulary().cloned(),
        db.thesaurus().cloned(),
    )
    .expect("base loads");
    let live = LiveMirror::new(base);
    let n_delta = BASE * delta_pct / 100;
    for chunk in rows[BASE..BASE + n_delta].chunks(16) {
        live.insert_rows(chunk.to_vec()).expect("insert");
    }
    for row in rows[..BASE].iter().step_by(11).take(n_delta / 10) {
        live.delete(&row.url).expect("delete");
    }
    live
}

fn bench(c: &mut Criterion) {
    let db = live_ingest_db(DOCS, 42);
    let text = RetrievalRequest::text("sunset over the water", 10);
    let dual = RetrievalRequest::dual("forest tree", 0.5, 10);

    let mut group = c.benchmark_group("e14_live_ingest");
    group.sample_size(10);
    for &pct in &[0usize, 10, 50] {
        let live = live_at(&db, pct);
        group.bench_with_input(BenchmarkId::new("query_text", pct), &pct, |b, _| {
            b.iter(|| live.retrieve(&text).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("query_dual", pct), &pct, |b, _| {
            b.iter(|| live.retrieve(&dual).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("pin", pct), &pct, |b, _| b.iter(|| live.pin()));
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
