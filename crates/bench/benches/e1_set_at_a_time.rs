//! E1 — set-at-a-time flattened execution vs object-at-a-time
//! interpretation (§2: "allows often for set-at-a-time processing of
//! complex query expressions"; "design for scalability").
//!
//! The same ranking query runs through (a) the flattening compiler onto
//! BAT operators and (b) the naive per-object interpreter, across
//! collection sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mirror_bench::{bind_bench_query, engine, text_env, RANKING_QUERY};
use moa::naive::NaiveEngine;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_set_at_a_time");
    group.sample_size(10);
    for &n in &[1_000usize, 5_000, 20_000] {
        let env = text_env(n, 42);
        bind_bench_query(&env);
        let eng = engine(&env);
        group.bench_with_input(BenchmarkId::new("flattened", n), &n, |b, _| {
            b.iter(|| eng.query(RANKING_QUERY).unwrap())
        });
        // the naive interpreter is orders of magnitude slower; keep its
        // largest size bounded so the suite stays runnable
        if n <= 5_000 {
            let naive = NaiveEngine::new(&env);
            group.bench_with_input(BenchmarkId::new("object_at_a_time", n), &n, |b, _| {
                b.iter(|| naive.query(RANKING_QUERY).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
