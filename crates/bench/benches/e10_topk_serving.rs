//! E10 — fused top-k retrieval and the concurrent serving layer
//! (ROADMAP: "heavy traffic from millions of users").
//!
//! Two workloads:
//!
//! * `fused_vs_fullsort`: the paper's ranking query over a 10k-document
//!   corpus, as the facade used to run it (materialise every belief, sort,
//!   truncate) versus the fused streaming `topk_bl` operator at
//!   k ∈ {10, 100}. The fused path must win — it touches k-sized state
//!   instead of corpus-sized state and prunes documents whose belief upper
//!   bound cannot reach the heap.
//! * `serving`: a `MirrorServer` worker pool over a shared snapshot,
//!   drained by 1/4/8 concurrent clients issuing typed text requests.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mirror_bench::{bench_query_terms, engine, ingested_db, text_env, RANKING_QUERY};
use mirror_core::serve::{MirrorServer, RetrievalRequest};
use mirror_core::Clustering;
use moa::QueryParams;
use std::sync::Arc;

const DOCS: usize = 10_000;
const REQUESTS: usize = 64;

fn bench(c: &mut Criterion) {
    let env = text_env(DOCS, 42);
    let eng = engine(&env);
    let materialise = QueryParams::new().bind("benchquery", bench_query_terms());

    let mut group = c.benchmark_group("e10_topk");
    group.sample_size(10);
    for &k in &[10usize, 100] {
        group.bench_with_input(BenchmarkId::new("full_sort_10k", k), &k, |b, &k| {
            b.iter(|| {
                // the pre-fusion facade: materialise every belief, then rank
                let out = eng.query_with(RANKING_QUERY, &materialise).unwrap();
                let mut pairs: Vec<(u32, f64)> = out
                    .pairs()
                    .unwrap()
                    .iter()
                    .filter_map(|(o, v)| v.as_float().map(|f| (*o, f)))
                    .filter(|(_, s)| *s > 0.0)
                    .collect();
                pairs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                pairs.truncate(k);
                pairs
            })
        });
        let fused = materialise.clone().with_top_k(k);
        group.bench_with_input(BenchmarkId::new("fused_topk_10k", k), &k, |b, _| {
            b.iter(|| eng.query_with(RANKING_QUERY, &fused).unwrap())
        });
    }
    group.finish();

    let db = Arc::new(ingested_db(64, 42, Clustering::AutoClass));
    let mut group = c.benchmark_group("e10_serving");
    group.sample_size(10);
    for &clients in &[1usize, 4, 8] {
        let server = MirrorServer::start(Arc::clone(&db), clients);
        group.bench_with_input(
            BenchmarkId::new("text_requests_64", clients),
            &clients,
            |b, &clients| {
                b.iter(|| {
                    std::thread::scope(|scope| {
                        let server = &server;
                        let handles: Vec<_> = (0..clients)
                            .map(|_| {
                                scope.spawn(move || {
                                    for _ in 0..REQUESTS / clients {
                                        server
                                            .query(&RetrievalRequest::text("sunset glow", 10))
                                            .unwrap();
                                    }
                                })
                            })
                            .collect();
                        for h in handles {
                            h.join().unwrap();
                        }
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
