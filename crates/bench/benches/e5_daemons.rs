//! E5 — the open distributed architecture (Figure 1, §4): ingest
//! throughput through the daemon pipeline vs the in-process pipeline, and
//! the cost of adding extraction daemons.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mirror_bench::image_corpus;
use mirror_core::{MirrorConfig, MirrorDbms};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_daemons");
    group.sample_size(10);
    for &n in &[16usize, 48] {
        let corpus = image_corpus(n, 42);
        group.bench_with_input(BenchmarkId::new("inline_ingest", n), &n, |b, _| {
            b.iter(|| {
                let mut db = MirrorDbms::new(MirrorConfig::default());
                db.ingest(&corpus).unwrap();
                db.n_docs()
            })
        });
        group.bench_with_input(BenchmarkId::new("daemon_ingest", n), &n, |b, _| {
            b.iter(|| {
                let mut db = MirrorDbms::new(MirrorConfig::default());
                db.ingest_via_daemons(&corpus).unwrap();
                db.n_docs()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
