//! E9 — fragmented parallel execution of the set-at-a-time kernel
//! (ROADMAP: "runs as fast as the hardware allows").
//!
//! The same 1M-row scan/select (and scan/select/sum) plan runs through
//! [`monet::ParallelExecutor`] at increasing fragmentation degrees; degree 1
//! is the serial baseline every other degree is compared against. The
//! acceptance bar for this experiment is ≥ 1.5× at degree 4 on the select
//! workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mirror_bench::{kernel_scan_aggr_plan, kernel_scan_catalog, kernel_scan_plan};
use monet::{OpRegistry, ParallelExecutor};

const ROWS: usize = 1_000_000;

fn bench(c: &mut Criterion) {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    eprintln!("e9_parallel: host has {cores} core(s) — speedup is bounded by that");
    let cat = kernel_scan_catalog(ROWS, 42);
    let reg = OpRegistry::new();
    let select = kernel_scan_plan();
    let aggr = kernel_scan_aggr_plan();

    let mut group = c.benchmark_group("e9_parallel");
    group.sample_size(10);
    for &degree in &[1usize, 2, 4, 8] {
        let ex = ParallelExecutor::new(&cat, &reg, degree);
        group.bench_with_input(BenchmarkId::new("select_1m", degree), &degree, |b, _| {
            b.iter(|| ex.run_bat(&select).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("select_sum_1m", degree), &degree, |b, _| {
            b.iter(|| ex.run_bat(&aggr).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
