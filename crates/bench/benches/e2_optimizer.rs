//! E2 — algebraic optimisation ablation (§2: the logical→physical
//! translation "provides an excellent basis for algebraic query
//! optimization").
//!
//! One query written with the selection *after* the ranking; the
//! optimising engine pushes it down (ranking touches survivors only),
//! the ablated engine evaluates it late.

use criterion::{criterion_group, criterion_main, Criterion};
use mirror_bench::{bind_bench_query, text_env};
use moa::{MoaEngine, OptConfig};
use std::sync::Arc;

const SLOPPY_QUERY: &str = "select[contains(THIS.source, \"7\")](
    map[sum(THIS)](map[getBL(THIS.annotation, benchquery, stats)](TraditionalImgLib)))";

fn bench(c: &mut Criterion) {
    let env = text_env(10_000, 42);
    bind_bench_query(&env);
    // pin parallelism to serial across every configuration so the ablation
    // measures the algebraic rewrites alone, not fragment-parallel speedup
    let optimised =
        MoaEngine::with_opt(Arc::clone(&env), OptConfig { parallelism: 1, ..OptConfig::default() });
    let ablated = MoaEngine::with_opt(Arc::clone(&env), OptConfig::none());

    // both must agree before we measure
    let a = optimised.query(SLOPPY_QUERY).unwrap();
    let b = ablated.query(SLOPPY_QUERY).unwrap();
    assert_eq!(a.len(), b.len(), "optimizer changed the result");

    let mut group = c.benchmark_group("e2_optimizer");
    group.sample_size(20);
    group.bench_function("optimized", |bch| bch.iter(|| optimised.query(SLOPPY_QUERY).unwrap()));
    group.bench_function("unoptimized", |bch| bch.iter(|| ablated.query(SLOPPY_QUERY).unwrap()));
    // individual switches
    for (label, opt) in [
        ("pushdown_only", OptConfig { pushdown: true, ..OptConfig::none() }),
        ("memoize_only", OptConfig { memoize: true, ..OptConfig::none() }),
        ("peephole_only", OptConfig { peephole: true, ..OptConfig::none() }),
    ] {
        let eng = MoaEngine::with_opt(Arc::clone(&env), opt);
        group.bench_function(label, |bch| bch.iter(|| eng.query(SLOPPY_QUERY).unwrap()));
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
