//! E4 — integration of IR and data retrieval (§3: "the resulting system is
//! an efficient integration of information and data retrieval … it is
//! possible to refer to both structure and content of multimedia data in a
//! single query").
//!
//! Compares the *integrated* plan (relational selection composed with
//! ranking inside one algebra expression, selection pushed into `getBL`'s
//! domain) against the *two-system* baseline a loosely-coupled
//! architecture would run: rank everything in the IR system, then filter
//! the ranked list in the DB system.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mirror_bench::{bind_bench_query, engine, text_env};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_integration");
    group.sample_size(15);
    for &n in &[5_000usize, 20_000] {
        let env = text_env(n, 42);
        bind_bench_query(&env);
        let eng = engine(&env);
        // integrated: selection restricts ranking inside one plan
        let integrated = "map[sum(THIS)](map[getBL(THIS.annotation, benchquery, stats)](
                            select[THIS.year >= 1998](TraditionalImgLib)))";
        // two-system baseline: rank all documents, then filter post hoc
        let rank_all =
            "map[sum(THIS)](map[getBL(THIS.annotation, benchquery, stats)](TraditionalImgLib))";
        let filter_only = "select[THIS.year >= 1998](TraditionalImgLib)";

        group.bench_with_input(BenchmarkId::new("integrated", n), &n, |b, _| {
            b.iter(|| eng.query(integrated).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("two_system", n), &n, |b, _| {
            b.iter(|| {
                // system 1: IR ranking of the whole collection
                let ranked = eng.query(rank_all).unwrap();
                // system 2: relational filter
                let survivors = eng.query(filter_only).unwrap();
                // client-side intersection of the two result sets
                let keep: std::collections::HashSet<u32> = match survivors {
                    moa::QueryOutput::Oids(v) => v.into_iter().collect(),
                    _ => unreachable!("select returns oids"),
                };
                let pairs = match ranked {
                    moa::QueryOutput::Pairs(p) => p,
                    _ => unreachable!("map returns pairs"),
                };
                pairs.into_iter().filter(|(o, _)| keep.contains(o)).count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
