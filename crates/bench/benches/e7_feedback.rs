//! E7 — relevance feedback cost (§5.2): query expansion from judged
//! documents and the expanded dual-channel query.

use criterion::{criterion_group, criterion_main, Criterion};
use mirror_bench::ingested_db;
use mirror_core::feedback::{FeedbackParams, FeedbackQuery};
use mirror_core::{Clustering, Retriever};

fn bench(c: &mut Criterion) {
    let db = ingested_db(60, 42, Clustering::AutoClass);
    let q0 = FeedbackQuery::from_text("forest moss");
    let initial = db.run_feedback_query(&q0, 0.5, 10).unwrap();
    let relevant: Vec<u32> = initial.iter().map(|r| r.oid).take(5).collect();
    let expanded = db.expand_query(&q0, &relevant, FeedbackParams::default()).unwrap();

    let mut group = c.benchmark_group("e7_feedback");
    group.sample_size(30);
    group.bench_function("expand_query", |b| {
        b.iter(|| db.expand_query(&q0, &relevant, FeedbackParams::default()).unwrap())
    });
    group.bench_function("initial_round", |b| {
        b.iter(|| db.run_feedback_query(&q0, 0.5, 10).unwrap())
    });
    group.bench_function("expanded_round", |b| {
        b.iter(|| db.run_feedback_query(&expanded, 0.5, 10).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
