//! E13 — block-compressed postings with block-max pruning.
//!
//! A 100k-document Zipf corpus, evaluated two ways with the same belief
//! model and the same results (the harness asserts bit-identity before
//! timing):
//!
//! * `raw_daat`: the pre-compression reference — document-at-a-time over
//!   fully decoded posting vectors with list-level threshold pruning
//!   (`topk_beliefs_raw` over a pre-built `RawPostings`, so decode cost is
//!   not what is being measured);
//! * `blockmax`: the shipped path — WAND pivoting over the compressed
//!   blocks, undecoded block skips via the `last_doc` metadata, block-max
//!   `max_tf` refinement at the pivot (`topk_beliefs`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ir::{topk_beliefs, topk_beliefs_raw, BeliefParams, RawPostings};
use mirror_bench::{compression_index, compression_queries};

const DOCS: usize = 100_000;

fn bench(c: &mut Criterion) {
    let index = compression_index(DOCS, 42);
    let raw = RawPostings::from_index(&index);
    let params = BeliefParams::default();

    let mut group = c.benchmark_group("e13_compression");
    group.sample_size(10);
    for (label, query) in compression_queries() {
        for &k in &[10usize, 100] {
            let fast = topk_beliefs(&index, params, &query, None, k, 1);
            let slow = topk_beliefs_raw(&index, &raw, params, &query, None, k, 1);
            assert_eq!(fast.hits, slow.hits, "paths diverge on {label} k={k}");
            let raw_id = format!("raw_daat_{label}");
            let fast_id = format!("blockmax_{label}");
            group.bench_with_input(BenchmarkId::new(raw_id.as_str(), k), &k, |b, &k| {
                b.iter(|| topk_beliefs_raw(&index, &raw, params, &query, None, k, 1))
            });
            group.bench_with_input(BenchmarkId::new(fast_id.as_str(), k), &k, |b, &k| {
                b.iter(|| topk_beliefs(&index, params, &query, None, k, 1))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
