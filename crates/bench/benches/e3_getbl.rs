//! E3 — the paper's ranking query and the cost of going through the
//! algebra (§3: "new structures in Moa, supported by new probabilistic
//! operators at the physical level, provide an efficient implementation of
//! the inference network retrieval model").
//!
//! Compares `map[sum(THIS)](map[getBL(…)])` through the full
//! parse→rewrite→flatten→execute stack against the hand-written inference
//! network ranker on the same index — the algebra should add only small
//! overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ir::{QueryNode, Ranker};
use mirror_bench::{bind_bench_query, engine, text_env, RANKING_QUERY};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_getbl");
    group.sample_size(20);
    for &n in &[1_000usize, 10_000, 50_000] {
        let env = text_env(n, 42);
        bind_bench_query(&env);
        let eng = engine(&env);
        group.bench_with_input(BenchmarkId::new("moa_algebra", n), &n, |b, _| {
            b.iter(|| eng.query(RANKING_QUERY).unwrap())
        });
        // the direct network evaluation over the same data: rebuild the
        // index from the flattened BATs (they are the system of record)
        let query = QueryNode::wsum_of(&[
            ("sunset".to_string(), 1.0),
            ("ocean".to_string(), 1.0),
            ("glow".to_string(), 1.0),
        ]);
        let rebuilt = rebuild_index(&env, n);
        group.bench_with_input(BenchmarkId::new("direct_network", n), &n, |b, _| {
            let ranker = Ranker::new(&rebuilt);
            b.iter(|| ranker.rank(&query))
        });
    }
    group.finish();
}

/// Rebuild the annotation index from the flattened BATs — proving the BATs
/// are the system of record.
fn rebuild_index(env: &moa::Env, n: usize) -> ir::InvertedIndex {
    let term = env.catalog().get("TraditionalImgLib__annotation__term").unwrap();
    let post_t = env.catalog().get("TraditionalImgLib__annotation__post_t").unwrap();
    let post_d = env.catalog().get("TraditionalImgLib__annotation__post_d").unwrap();
    let post_tf = env.catalog().get("TraditionalImgLib__annotation__post_tf").unwrap();
    let mut docs: Vec<Vec<String>> = vec![Vec::new(); n];
    for i in 0..post_t.count() {
        let tid = post_t.fetch(i).unwrap().1.as_oid().unwrap();
        let doc = post_d.fetch(i).unwrap().1.as_oid().unwrap() as usize;
        let tf = post_tf.fetch(i).unwrap().1.as_int().unwrap();
        let word = term.fetch(tid as usize).unwrap().1;
        for _ in 0..tf {
            docs[doc].push(word.as_str().unwrap().to_string());
        }
    }
    let mut b = ir::IndexBuilder::new();
    for d in &docs {
        b.add_tokens(d);
    }
    b.build()
}

criterion_group!(benches, bench);
criterion_main!(benches);
