//! E8 — visual vocabulary construction (§5.1): AutoClass-style Bayesian
//! mixtures with BIC model selection vs the k-means baseline, on the
//! feature vectors of the ingested corpus.

use cluster::{AutoClass, AutoClassConfig, VocabularyBuilder};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use media::{grid_segments, standard_extractors};
use mirror_bench::image_corpus;

fn feature_builder(n_images: usize) -> VocabularyBuilder {
    let corpus = image_corpus(n_images, 42);
    let extractors = standard_extractors();
    let mut b = VocabularyBuilder::new();
    for c in &corpus {
        for seg in grid_segments(&c.image, 3) {
            for ex in &extractors {
                b.add(ex.space(), ex.extract(&seg.image).into_values());
            }
        }
    }
    b
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_clustering");
    group.sample_size(10);
    for &n in &[24usize, 48] {
        let builder = feature_builder(n);
        group.bench_with_input(BenchmarkId::new("autoclass_bic", n), &n, |b, _| {
            b.iter(|| {
                builder.build_autoclass(&AutoClass::new(AutoClassConfig::default())).total_terms()
            })
        });
        group.bench_with_input(BenchmarkId::new("kmeans_fixed_k", n), &n, |b, _| {
            b.iter(|| builder.build_kmeans(6, 42).total_terms())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
