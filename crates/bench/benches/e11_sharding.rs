//! E11 — sharded scatter-gather retrieval (ROADMAP: scale-out beyond one
//! kernel instance).
//!
//! Two workloads over a 2k-document corpus (the report binary runs the
//! full 10k-document version):
//!
//! * `query`: top-10 text retrieval against a single node and against
//!   clusters of 1/2/4 shards. The 1-shard cluster must track the single
//!   node closely — its only extra work is the router hop and the
//!   local→global oid remap — and results are bit-identical everywhere
//!   thanks to statistics-pinned shard projections.
//! * `build`: cluster construction at 1/2/4 shards, which runs the ingest
//!   pipeline once globally and then projects each shard from it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mirror_bench::{cluster_corpus, cluster_node_config};
use mirror_core::serve::RetrievalRequest;
use mirror_core::shard::{ClusterConfig, MirrorCluster};
use mirror_core::{MirrorDbms, Retriever};

const DOCS: usize = 2_000;

fn bench(c: &mut Criterion) {
    let corpus = cluster_corpus(DOCS, 42);
    let node = cluster_node_config();
    let req = RetrievalRequest::text("sunset glow evening", 10);

    let mut single = MirrorDbms::new(node.clone());
    single.ingest(&corpus).unwrap();
    let want = single.retrieve(&req).unwrap();

    let mut group = c.benchmark_group("e11_query");
    group.sample_size(10);
    group.bench_function("single_node", |b| b.iter(|| single.retrieve(&req).unwrap()));
    for &shards in &[1usize, 2, 4] {
        let cluster = MirrorCluster::build_with(
            &corpus,
            ClusterConfig { shards, replicas: 1, node: node.clone(), ..Default::default() },
        )
        .unwrap();
        assert_eq!(cluster.retrieve(&req).unwrap(), want, "cluster diverged at {shards} shards");
        group.bench_with_input(BenchmarkId::new("cluster", shards), &shards, |b, _| {
            b.iter(|| cluster.retrieve(&req).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e11_build");
    group.sample_size(3);
    for &shards in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("build", shards), &shards, |b, &shards| {
            b.iter(|| {
                MirrorCluster::build_with(
                    &corpus,
                    ClusterConfig { shards, replicas: 1, node: node.clone(), ..Default::default() },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
