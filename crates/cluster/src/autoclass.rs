//! The AutoClass substitute: EM-fitted diagonal-Gaussian mixtures with
//! Bayesian model selection over the number of classes.
//!
//! AutoClass performs unsupervised Bayesian classification: it fits finite
//! mixture models and compares the marginal likelihood of models with
//! different class counts. We approximate the marginal likelihood with the
//! Bayesian Information Criterion (BIC) — the standard large-sample
//! approximation — which preserves the behaviour the Mirror pipeline
//! depends on: the number of "visual terms" per feature space is chosen by
//! the data, not by the operator.

use crate::{check_dims, kmeans::kmeans};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for an AutoClass search.
#[derive(Debug, Clone)]
pub struct AutoClassConfig {
    /// Candidate class counts to score.
    pub k_range: std::ops::RangeInclusive<usize>,
    /// EM iterations per candidate.
    pub em_iters: usize,
    /// Variance floor (keeps EM numerically sane on degenerate data).
    pub var_floor: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AutoClassConfig {
    fn default() -> Self {
        AutoClassConfig { k_range: 2..=8, em_iters: 30, var_floor: 1e-4, seed: 17 }
    }
}

/// A fitted diagonal-Gaussian mixture.
#[derive(Debug, Clone)]
pub struct MixtureModel {
    /// Mixing weights, one per class.
    pub weights: Vec<f64>,
    /// Per-class means.
    pub means: Vec<Vec<f64>>,
    /// Per-class diagonal variances.
    pub variances: Vec<Vec<f64>>,
    /// Log-likelihood of the training data under the model.
    pub log_likelihood: f64,
    /// BIC score (higher is better here: `2·logL − params·ln n`).
    pub bic: f64,
}

impl MixtureModel {
    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.weights.len()
    }

    /// Log density of `x` under class `c`.
    fn class_log_density(&self, c: usize, x: &[f64]) -> f64 {
        let mut log_p = 0.0;
        for (i, &xi) in x.iter().enumerate() {
            let var = self.variances[c][i];
            let diff = xi - self.means[c][i];
            log_p += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + diff * diff / var);
        }
        log_p
    }

    /// Posterior class probabilities for a point (soft assignment —
    /// AutoClass's defining output).
    pub fn posterior(&self, x: &[f64]) -> Vec<f64> {
        let logs: Vec<f64> = (0..self.n_classes())
            .map(|c| self.weights[c].max(1e-300).ln() + self.class_log_density(c, x))
            .collect();
        let max = logs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = logs.iter().map(|l| (l - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / sum).collect()
    }

    /// Most probable class for a point.
    pub fn classify(&self, x: &[f64]) -> usize {
        let post = self.posterior(x);
        post.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap_or(0)
    }
}

/// The AutoClass-style clusterer.
#[derive(Debug, Clone, Default)]
pub struct AutoClass {
    /// Search configuration.
    pub config: AutoClassConfig,
}

impl AutoClass {
    /// Create with a configuration.
    pub fn new(config: AutoClassConfig) -> Self {
        AutoClass { config }
    }

    /// Fit mixtures for every candidate class count and return the model
    /// with the best BIC. `None` on degenerate input.
    pub fn fit(&self, points: &[Vec<f64>]) -> Option<MixtureModel> {
        let d = check_dims(points)?;
        let n = points.len();
        let mut best: Option<MixtureModel> = None;
        for k in self.config.k_range.clone() {
            if k > n {
                break;
            }
            let model = self.fit_k(points, d, k)?;
            let better = match &best {
                None => true,
                Some(b) => model.bic > b.bic,
            };
            if better {
                best = Some(model);
            }
        }
        best
    }

    /// Fit a mixture with exactly `k` classes (EM initialised from
    /// k-means).
    pub fn fit_k(&self, points: &[Vec<f64>], d: usize, k: usize) -> Option<MixtureModel> {
        let n = points.len();
        let init = kmeans(points, k, self.config.seed, 20)?;
        let k = init.centroids.len();
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x5eed);

        let mut weights = vec![1.0 / k as f64; k];
        let mut means = init.centroids.clone();
        // initial variances from the k-means partition
        let mut variances = vec![vec![0.0f64; d]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&init.assignment) {
            counts[a] += 1;
            for i in 0..d {
                let diff = p[i] - means[a][i];
                variances[a][i] += diff * diff;
            }
        }
        for c in 0..k {
            for v in &mut variances[c] {
                *v = (*v / counts[c].max(1) as f64).max(self.config.var_floor);
            }
        }

        let mut log_likelihood = f64::NEG_INFINITY;
        let mut resp = vec![vec![0f64; k]; n];
        for _ in 0..self.config.em_iters {
            // E step
            let model = MixtureModel {
                weights: weights.clone(),
                means: means.clone(),
                variances: variances.clone(),
                log_likelihood: 0.0,
                bic: 0.0,
            };
            let mut ll = 0.0;
            for (i, p) in points.iter().enumerate() {
                let logs: Vec<f64> = (0..k)
                    .map(|c| weights[c].max(1e-300).ln() + model.class_log_density(c, p))
                    .collect();
                let max = logs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let sum_exp: f64 = logs.iter().map(|l| (l - max).exp()).sum();
                ll += max + sum_exp.ln();
                for c in 0..k {
                    resp[i][c] = (logs[c] - max).exp() / sum_exp;
                }
            }
            // M step
            for c in 0..k {
                let nc: f64 = resp.iter().map(|r| r[c]).sum();
                if nc < 1e-9 {
                    // dead class: re-seed on a random point
                    let p = &points[rng.gen_range(0..n)];
                    means[c] = p.clone();
                    variances[c] = vec![1.0; d];
                    weights[c] = 1.0 / n as f64;
                    continue;
                }
                weights[c] = nc / n as f64;
                for i in 0..d {
                    let mu: f64 =
                        points.iter().zip(&resp).map(|(p, r)| r[c] * p[i]).sum::<f64>() / nc;
                    means[c][i] = mu;
                }
                for i in 0..d {
                    let var: f64 = points
                        .iter()
                        .zip(&resp)
                        .map(|(p, r)| {
                            let diff = p[i] - means[c][i];
                            r[c] * diff * diff
                        })
                        .sum::<f64>()
                        / nc;
                    variances[c][i] = var.max(self.config.var_floor);
                }
            }
            // convergence check
            if (ll - log_likelihood).abs() < 1e-6 {
                log_likelihood = ll;
                break;
            }
            log_likelihood = ll;
        }

        // BIC = 2·logL − params·ln n, params = k−1 weights + 2·k·d
        let params = (k - 1) as f64 + (2 * k * d) as f64;
        let bic = 2.0 * log_likelihood - params * (n as f64).ln();
        Some(MixtureModel { weights, means, variances, log_likelihood, bic })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_data::three_blobs;

    #[test]
    fn model_selection_finds_three_blobs() {
        let (pts, _) = three_blobs(40, 21);
        let model = AutoClass::default().fit(&pts).unwrap();
        assert_eq!(model.n_classes(), 3, "BIC chose {} classes", model.n_classes());
    }

    #[test]
    fn posteriors_sum_to_one_and_are_confident_at_centres() {
        let (pts, _) = three_blobs(40, 22);
        let model = AutoClass::default().fit(&pts).unwrap();
        let post = model.posterior(&[0.0, 0.0]);
        assert!((post.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(post.iter().cloned().fold(0.0, f64::max) > 0.95);
    }

    #[test]
    fn classify_groups_blob_members_together() {
        let (pts, labels) = three_blobs(30, 23);
        let model = AutoClass::default().fit(&pts).unwrap();
        for ci in 0..3 {
            let assigned: std::collections::HashSet<usize> = pts
                .iter()
                .zip(&labels)
                .filter(|(_, &l)| l == ci)
                .map(|(p, _)| model.classify(p))
                .collect();
            assert_eq!(assigned.len(), 1, "true blob {ci} split across {assigned:?}");
        }
    }

    #[test]
    fn likelihood_increases_with_em() {
        let (pts, _) = three_blobs(30, 24);
        let ac = AutoClass::new(AutoClassConfig { em_iters: 1, ..Default::default() });
        let one = ac.fit_k(&pts, 2, 3).unwrap();
        let ac2 = AutoClass::new(AutoClassConfig { em_iters: 25, ..Default::default() });
        let many = ac2.fit_k(&pts, 2, 3).unwrap();
        assert!(many.log_likelihood >= one.log_likelihood - 1e-6);
    }

    #[test]
    fn bic_penalises_overfitting() {
        let (pts, _) = three_blobs(40, 25);
        let ac = AutoClass::default();
        let k3 = ac.fit_k(&pts, 2, 3).unwrap();
        let k8 = ac.fit_k(&pts, 2, 8).unwrap();
        assert!(k3.bic > k8.bic, "BIC {} vs {}", k3.bic, k8.bic);
    }

    #[test]
    fn degenerate_inputs() {
        let ac = AutoClass::default();
        assert!(ac.fit(&[]).is_none());
        // fewer points than minimum k: still returns something when k≤n
        let pts = vec![vec![0.0], vec![1.0], vec![5.0]];
        let m = ac.fit(&pts);
        assert!(m.is_some());
    }

    #[test]
    fn variance_floor_prevents_collapse() {
        // identical points would otherwise drive variance to zero
        let pts = vec![vec![1.0, 1.0]; 10];
        let ac = AutoClass::default();
        let m = ac.fit_k(&pts, 2, 2).unwrap();
        for c in 0..m.n_classes() {
            for &v in &m.variances[c] {
                assert!(v >= ac.config.var_floor);
            }
        }
        assert!(m.log_likelihood.is_finite());
    }

    #[test]
    fn deterministic_given_seed() {
        let (pts, _) = three_blobs(25, 26);
        let a = AutoClass::default().fit(&pts).unwrap();
        let b = AutoClass::default().fit(&pts).unwrap();
        assert_eq!(a.n_classes(), b.n_classes());
        assert_eq!(a.means, b.means);
    }
}
