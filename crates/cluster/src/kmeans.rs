//! k-means with k-means++ seeding — the hard-clustering baseline.

use crate::check_dims;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Per-point cluster assignment.
    pub assignment: Vec<usize>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// Iterations executed.
    pub iterations: usize,
}

impl KMeansResult {
    /// Assign a new point to its nearest centroid.
    pub fn predict(&self, point: &[f64]) -> usize {
        nearest(&self.centroids, point).0
    }
}

/// Run k-means. Deterministic given `seed`. Returns `None` for degenerate
/// input (no points, inconsistent dims, or `k == 0`).
pub fn kmeans(points: &[Vec<f64>], k: usize, seed: u64, max_iter: usize) -> Option<KMeansResult> {
    let d = check_dims(points)?;
    if k == 0 {
        return None;
    }
    let k = k.min(points.len());
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ seeding
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    while centroids.len() < k {
        let d2: Vec<f64> = points.iter().map(|p| nearest(&centroids, p).1.powi(2)).collect();
        let total: f64 = d2.iter().sum();
        if total == 0.0 {
            // all points identical to chosen centroids; duplicate one
            centroids.push(points[rng.gen_range(0..points.len())].clone());
            continue;
        }
        let mut target = rng.gen::<f64>() * total;
        let mut chosen = points.len() - 1;
        for (i, &w) in d2.iter().enumerate() {
            if target <= w {
                chosen = i;
                break;
            }
            target -= w;
        }
        centroids.push(points[chosen].clone());
    }

    let mut assignment = vec![0usize; points.len()];
    let mut iterations = 0;
    for it in 0..max_iter {
        iterations = it + 1;
        // assign
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let (c, _) = nearest(&centroids, p);
            if assignment[i] != c {
                assignment[i] = c;
                changed = true;
            }
        }
        // update
        let mut sums = vec![vec![0f64; d]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&assignment) {
            counts[a] += 1;
            for (s, &x) in sums[a].iter_mut().zip(p) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for s in &mut sums[c] {
                    *s /= counts[c] as f64;
                }
                centroids[c] = sums[c].clone();
            }
            // empty clusters keep their old centroid
        }
        if !changed && it > 0 {
            break;
        }
    }
    let inertia = points.iter().zip(&assignment).map(|(p, &a)| dist2(p, &centroids[a])).sum();
    Some(KMeansResult { centroids, assignment, inertia, iterations })
}

fn nearest(centroids: &[Vec<f64>], p: &[f64]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = dist2(p, c);
        if d < best.1 {
            best = (i, d);
        }
    }
    (best.0, best.1.sqrt())
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_data::three_blobs;

    #[test]
    fn recovers_separated_blobs() {
        let (pts, labels) = three_blobs(30, 3);
        let r = kmeans(&pts, 3, 0, 50).unwrap();
        // points with the same true label must share a cluster
        for ci in 0..3 {
            let assigned: std::collections::HashSet<usize> = pts
                .iter()
                .zip(&labels)
                .zip(&r.assignment)
                .filter(|((_, &l), _)| l == ci)
                .map(|(_, &a)| a)
                .collect();
            assert_eq!(assigned.len(), 1, "true cluster {ci} split: {assigned:?}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (pts, _) = three_blobs(20, 5);
        let a = kmeans(&pts, 3, 9, 50).unwrap();
        let b = kmeans(&pts, 3, 9, 50).unwrap();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn predict_matches_assignment() {
        let (pts, _) = three_blobs(20, 5);
        let r = kmeans(&pts, 3, 1, 50).unwrap();
        for (p, &a) in pts.iter().zip(&r.assignment) {
            assert_eq!(r.predict(p), a);
        }
    }

    #[test]
    fn k_larger_than_points_is_clamped() {
        let pts = vec![vec![0.0], vec![10.0]];
        let r = kmeans(&pts, 10, 0, 10).unwrap();
        assert_eq!(r.centroids.len(), 2);
        assert!(r.inertia < 1e-12);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(kmeans(&[], 3, 0, 10).is_none());
        assert!(kmeans(&[vec![1.0]], 0, 0, 10).is_none());
        assert!(kmeans(&[vec![1.0], vec![1.0, 2.0]], 2, 0, 10).is_none());
    }

    #[test]
    fn identical_points_yield_zero_inertia() {
        let pts = vec![vec![2.0, 2.0]; 8];
        let r = kmeans(&pts, 3, 4, 20).unwrap();
        assert!(r.inertia < 1e-12);
    }

    #[test]
    fn more_clusters_never_increase_inertia() {
        let (pts, _) = three_blobs(20, 11);
        let i2 = kmeans(&pts, 2, 0, 100).unwrap().inertia;
        let i3 = kmeans(&pts, 3, 0, 100).unwrap().inertia;
        assert!(i3 <= i2 + 1e-9, "{i3} > {i2}");
    }
}
