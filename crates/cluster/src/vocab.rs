//! Visual vocabularies: clusters as words.
//!
//! "We further use the identified clusters as if they are words in text
//! retrieval; they become the basic blocks of 'meaning' for multimedia
//! information retrieval." A [`VisualVocabulary`] holds one fitted model
//! per feature space and maps feature vectors to visual-term strings like
//! `gabor_21`.

use crate::autoclass::{AutoClass, MixtureModel};
use crate::kmeans::{kmeans, KMeansResult};
use std::collections::HashMap;

/// A fitted per-space quantiser.
#[derive(Debug, Clone)]
pub enum SpaceModel {
    /// AutoClass-style mixture (soft, BIC-selected class count).
    Mixture(MixtureModel),
    /// k-means baseline (hard, fixed k).
    KMeans(KMeansResult),
}

impl SpaceModel {
    /// Number of clusters (distinct visual terms) in this space.
    pub fn n_clusters(&self) -> usize {
        match self {
            SpaceModel::Mixture(m) => m.n_classes(),
            SpaceModel::KMeans(k) => k.centroids.len(),
        }
    }

    /// Quantise a vector to its cluster id.
    pub fn classify(&self, x: &[f64]) -> usize {
        match self {
            SpaceModel::Mixture(m) => m.classify(x),
            SpaceModel::KMeans(k) => k.predict(x),
        }
    }
}

/// A set of per-feature-space quantisers producing visual terms.
#[derive(Debug, Clone, Default)]
pub struct VisualVocabulary {
    spaces: HashMap<String, SpaceModel>,
}

impl VisualVocabulary {
    /// Create an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a model for a feature space.
    pub fn insert(&mut self, space: impl Into<String>, model: SpaceModel) {
        self.spaces.insert(space.into(), model);
    }

    /// The model for a space.
    pub fn model(&self, space: &str) -> Option<&SpaceModel> {
        self.spaces.get(space)
    }

    /// Feature-space names, sorted.
    pub fn spaces(&self) -> Vec<String> {
        let mut v: Vec<String> = self.spaces.keys().cloned().collect();
        v.sort();
        v
    }

    /// Total number of visual terms across all spaces.
    pub fn total_terms(&self) -> usize {
        self.spaces.values().map(SpaceModel::n_clusters).sum()
    }

    /// The visual term of a vector in a space (`gabor_21`), or `None` for
    /// an unknown space.
    pub fn term_of(&self, space: &str, x: &[f64]) -> Option<String> {
        let model = self.spaces.get(space)?;
        Some(format!("{space}_{}", model.classify(x)))
    }

    /// All possible terms of a space (`space_0 … space_{k−1}`).
    pub fn terms_of_space(&self, space: &str) -> Vec<String> {
        match self.spaces.get(space) {
            Some(m) => (0..m.n_clusters()).map(|c| format!("{space}_{c}")).collect(),
            None => Vec::new(),
        }
    }
}

/// Builds a vocabulary by clustering per-space training vectors.
#[derive(Debug, Default)]
pub struct VocabularyBuilder {
    samples: HashMap<String, Vec<Vec<f64>>>,
}

impl VocabularyBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a training vector for a feature space.
    pub fn add(&mut self, space: &str, vector: Vec<f64>) {
        self.samples.entry(space.to_string()).or_default().push(vector);
    }

    /// Number of samples collected for a space.
    pub fn sample_count(&self, space: &str) -> usize {
        self.samples.get(space).map_or(0, Vec::len)
    }

    /// Cluster every space with AutoClass (BIC-selected class counts).
    pub fn build_autoclass(&self, ac: &AutoClass) -> VisualVocabulary {
        let mut vocab = VisualVocabulary::new();
        for (space, pts) in &self.samples {
            if let Some(model) = ac.fit(pts) {
                vocab.insert(space.clone(), SpaceModel::Mixture(model));
            }
        }
        vocab
    }

    /// Cluster every space with k-means at a fixed `k` (baseline).
    pub fn build_kmeans(&self, k: usize, seed: u64) -> VisualVocabulary {
        let mut vocab = VisualVocabulary::new();
        for (space, pts) in &self.samples {
            if let Some(model) = kmeans(pts, k, seed, 50) {
                vocab.insert(space.clone(), SpaceModel::KMeans(model));
            }
        }
        vocab
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_data::three_blobs;

    fn builder() -> VocabularyBuilder {
        let (pts, _) = three_blobs(25, 31);
        let mut b = VocabularyBuilder::new();
        for p in pts {
            b.add("rgb", p);
        }
        let (pts2, _) = three_blobs(25, 32);
        for p in pts2 {
            b.add("gabor", p);
        }
        b
    }

    #[test]
    fn autoclass_vocabulary_has_data_chosen_sizes() {
        let vocab = builder().build_autoclass(&AutoClass::default());
        assert_eq!(vocab.spaces(), vec!["gabor".to_string(), "rgb".to_string()]);
        assert_eq!(vocab.model("rgb").unwrap().n_clusters(), 3);
        assert_eq!(vocab.total_terms(), 6);
    }

    #[test]
    fn terms_are_space_prefixed() {
        let vocab = builder().build_kmeans(3, 0);
        let t = vocab.term_of("gabor", &[8.0, 8.0]).unwrap();
        assert!(t.starts_with("gabor_"), "{t}");
        assert!(vocab.term_of("unknown", &[0.0, 0.0]).is_none());
        let all = vocab.terms_of_space("rgb");
        assert_eq!(all.len(), 3);
        assert!(all.contains(&"rgb_0".to_string()));
    }

    #[test]
    fn same_blob_maps_to_same_term() {
        let vocab = builder().build_autoclass(&AutoClass::default());
        let a = vocab.term_of("rgb", &[0.1, 0.1]).unwrap();
        let b = vocab.term_of("rgb", &[-0.1, 0.2]).unwrap();
        let c = vocab.term_of("rgb", &[8.0, 8.1]).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sample_counting() {
        let b = builder();
        assert_eq!(b.sample_count("rgb"), 75);
        assert_eq!(b.sample_count("none"), 0);
    }

    #[test]
    fn empty_builder_produces_empty_vocab() {
        let vocab = VocabularyBuilder::new().build_kmeans(4, 0);
        assert!(vocab.spaces().is_empty());
        assert_eq!(vocab.total_terms(), 0);
    }
}
