//! # cluster — AutoClass-style Bayesian clustering
//!
//! The Mirror demo clustered every feature space with AutoClass (Cheeseman
//! & Stutz's Bayesian classification system) and used the clusters as
//! "visual terms" — the basic blocks of *meaning* for multimedia IR.
//! AutoClass itself is unavailable; its defining behaviours are
//!
//! 1. soft assignment under a finite mixture model, and
//! 2. automatic selection of the number of classes by Bayesian model
//!    comparison.
//!
//! [`autoclass`] reproduces both with an EM-fitted diagonal-Gaussian
//! mixture and BIC-based model selection over a range of class counts.
//! [`kmeans()`] provides the hard-assignment baseline for the clustering
//! ablation (E8), and [`vocab`] turns fitted models into the
//! `space_cluster` visual-term strings (`gabor_21`) that flow into
//! `CONTREP<Image>`.

#![warn(missing_docs)]

pub mod autoclass;
pub mod kmeans;
pub mod vocab;

pub use autoclass::{AutoClass, AutoClassConfig, MixtureModel};
pub use kmeans::{kmeans, KMeansResult};
pub use vocab::{VisualVocabulary, VocabularyBuilder};

/// A dataset: rows of equal-dimensional points.
pub type Points = Vec<Vec<f64>>;

/// Validate that all points share one dimensionality; returns it.
pub(crate) fn check_dims(points: &[Vec<f64>]) -> Option<usize> {
    let d = points.first()?.len();
    if d == 0 || points.iter().any(|p| p.len() != d) {
        return None;
    }
    Some(d)
}

#[cfg(test)]
pub(crate) mod test_data {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Three well-separated Gaussian blobs in 2D.
    pub fn three_blobs(n_per: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let centers = [[0.0, 0.0], [8.0, 8.0], [0.0, 9.0]];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for (ci, c) in centers.iter().enumerate() {
            for _ in 0..n_per {
                pts.push(vec![c[0] + rng.gen_range(-0.8..0.8), c[1] + rng.gen_range(-0.8..0.8)]);
                labels.push(ci);
            }
        }
        (pts, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_dims_behaviour() {
        assert_eq!(check_dims(&[vec![1.0, 2.0], vec![3.0, 4.0]]), Some(2));
        assert_eq!(check_dims(&[]), None);
        assert_eq!(check_dims(&[vec![]]), None);
        assert_eq!(check_dims(&[vec![1.0], vec![1.0, 2.0]]), None);
    }
}
