//! Error type shared by all kernel operations.

use std::fmt;

/// Result alias used throughout the kernel.
pub type Result<T> = std::result::Result<T, MonetError>;

/// Errors raised by BAT-algebra operations, the catalog and the executor.
#[derive(Debug, Clone, PartialEq)]
pub enum MonetError {
    /// Two columns that must have equal length differ in length.
    LengthMismatch {
        /// Length of the first operand.
        left: usize,
        /// Length of the second operand.
        right: usize,
    },
    /// An operation received a column of the wrong type.
    TypeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Expected column type description.
        expected: &'static str,
        /// Actual column type description.
        found: &'static str,
    },
    /// A named BAT was not found in the catalog.
    UnknownBat(String),
    /// A custom physical operator was not found in the registry.
    UnknownOp(String),
    /// A custom operator was invoked with bad arity or parameters.
    BadOpInvocation {
        /// Operator name.
        op: String,
        /// Human-readable description of the problem.
        msg: String,
    },
    /// Index out of bounds on a positional access.
    OutOfBounds {
        /// Requested index.
        index: usize,
        /// Column length.
        len: usize,
    },
    /// A value could not be interpreted in the required domain.
    BadValue(String),
    /// An I/O operation in the storage backend failed (or a fault was
    /// injected there by a test backend).
    Io(String),
    /// A persisted file declares a format version this build does not
    /// speak. Raised *before* any payload is decoded, so a version skew
    /// can never be misread as data.
    FormatVersion {
        /// Version found in the file header.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// On-disk bytes failed validation: a checksum mismatch, bad magic, a
    /// torn structure, or an out-of-range reference. Corrupt data is
    /// reported through this variant and never silently served.
    Corrupt {
        /// What was being read (file, page, record …).
        what: String,
        /// Why it was rejected.
        detail: String,
    },
}

impl fmt::Display for MonetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonetError::LengthMismatch { left, right } => {
                write!(f, "column length mismatch: {left} vs {right}")
            }
            MonetError::TypeMismatch { op, expected, found } => {
                write!(f, "{op}: expected {expected} column, found {found}")
            }
            MonetError::UnknownBat(name) => write!(f, "unknown BAT '{name}'"),
            MonetError::UnknownOp(name) => write!(f, "unknown physical operator '{name}'"),
            MonetError::BadOpInvocation { op, msg } => {
                write!(f, "bad invocation of operator '{op}': {msg}")
            }
            MonetError::OutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for column of length {len}")
            }
            MonetError::BadValue(msg) => write!(f, "bad value: {msg}"),
            MonetError::Io(msg) => write!(f, "storage i/o: {msg}"),
            MonetError::FormatVersion { found, expected } => {
                write!(f, "unsupported format version {found} (this build reads {expected})")
            }
            MonetError::Corrupt { what, detail } => {
                write!(f, "corrupt {what}: {detail}")
            }
        }
    }
}

impl std::error::Error for MonetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = MonetError::LengthMismatch { left: 3, right: 5 };
        assert!(e.to_string().contains("3 vs 5"));
        let e = MonetError::UnknownBat("foo".into());
        assert!(e.to_string().contains("foo"));
        let e = MonetError::TypeMismatch { op: "join", expected: "oid", found: "str" };
        assert!(e.to_string().contains("join"));
    }
}
