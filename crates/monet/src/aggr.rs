//! Scalar and grouped aggregation.
//!
//! Grouped aggregation is the kernel half of Moa's nested `map[sum(THIS)]`
//! pattern: after flattening, "sum the inner set of each object" becomes a
//! single `grouped_agg` over `[oid, value]` guided by a `[oid, group]`
//! mapping — one set-at-a-time operator instead of one query per object.

use crate::bat::Bat;
use crate::column::Column;
use crate::error::{MonetError, Result};
use crate::fxhash::FxHashMap;
use crate::join::key_at;
use crate::value::{Oid, Val};

/// Aggregate kinds supported by scalar and grouped aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Agg {
    /// Sum of values (int stays int, float stays float).
    Sum,
    /// Row count.
    Count,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
    /// Arithmetic mean (always float).
    Avg,
}

impl std::fmt::Display for Agg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Agg::Sum => "sum",
            Agg::Count => "count",
            Agg::Min => "min",
            Agg::Max => "max",
            Agg::Avg => "avg",
        };
        f.write_str(s)
    }
}

impl Bat {
    /// Aggregate the whole tail to a single value. Empty BATs yield the
    /// aggregate's identity where one exists (`Sum → 0`, `Count → 0`) and
    /// an error for `Min`/`Max`/`Avg`.
    pub fn agg_tail(&self, agg: Agg) -> Result<Val> {
        match agg {
            Agg::Count => return Ok(Val::Int(self.count() as i64)),
            Agg::Sum if self.is_empty() => {
                return Ok(match self.tail() {
                    Column::Float(_) => Val::Float(0.0),
                    _ => Val::Int(0),
                })
            }
            _ if self.is_empty() => {
                return Err(MonetError::BadValue(format!("{agg} of empty BAT")))
            }
            _ => {}
        }
        match self.tail() {
            Column::Int(v) => Ok(match agg {
                Agg::Sum => Val::Int(v.iter().sum()),
                Agg::Min => Val::Int(*v.iter().min().expect("non-empty")),
                Agg::Max => Val::Int(*v.iter().max().expect("non-empty")),
                Agg::Avg => Val::Float(v.iter().sum::<i64>() as f64 / v.len() as f64),
                Agg::Count => unreachable!(),
            }),
            Column::Float(v) => Ok(match agg {
                Agg::Sum => Val::Float(v.iter().sum()),
                Agg::Min => Val::Float(v.iter().fold(f64::INFINITY, |a, &b| a.min(b))),
                Agg::Max => Val::Float(v.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))),
                Agg::Avg => Val::Float(v.iter().sum::<f64>() / v.len() as f64),
                Agg::Count => unreachable!(),
            }),
            other => Err(MonetError::TypeMismatch {
                op: "agg_tail",
                expected: "int|float",
                found: other.ty_str(),
            }),
        }
    }

    /// Grouped aggregation.
    ///
    /// `self` is a `[key, value]` BAT; `groups` maps the same keys to group
    /// ids (`[key, gid]` with gids dense `0..n_groups`). Returns
    /// `[gid(void), aggregate]` with one row per group id up to the maximum
    /// gid in `groups`; groups with no contributing rows get the identity
    /// (0 for `Sum`/`Count`) or are an error for `Min`/`Max`/`Avg`-of-none
    /// — those yield 0.0 to keep ranking pipelines total.
    ///
    /// Fast path: when both heads are identical void sequences the
    /// alignment is positional; otherwise keys are matched by hash.
    pub fn grouped_agg(&self, groups: &Bat, agg: Agg) -> Result<Bat> {
        if groups.is_empty() {
            return Ok(Bat::dense(Column::Float(Vec::new())));
        }
        let n_groups = match groups.tail().min_max() {
            Some((_, mx)) => {
                mx.as_oid().ok_or_else(|| MonetError::BadValue("group ids must be oids".into()))?
                    as usize
                    + 1
            }
            None => 0,
        };
        // Resolve, per row of self, its group id.
        let gid_of_row: Vec<Option<Oid>> =
            if let (Some(s1), Some(s2)) = (self.head().void_start(), groups.head().void_start()) {
                // positional alignment of two dense heads
                let g = groups.tail();
                (0..self.count())
                    .map(|i| {
                        let oid = s1 + i as Oid;
                        let j = oid.checked_sub(s2).map(|d| d as usize);
                        match j {
                            Some(j) if j < g.len() => g.oid_at(j).ok(),
                            _ => None,
                        }
                    })
                    .collect()
            } else {
                // hash the group mapping: key -> gid
                let mut table: FxHashMap<_, Oid> = FxHashMap::default();
                let gh = groups.head();
                let gt = groups.tail();
                for j in 0..groups.count() {
                    table.insert(key_at(gh, j), gt.oid_at(j)?);
                }
                let sh = self.head();
                (0..self.count()).map(|i| table.get(&key_at(sh, i)).copied()).collect()
            };

        let mut sums = vec![0.0f64; n_groups];
        let mut counts = vec![0u64; n_groups];
        let mut mins = vec![f64::INFINITY; n_groups];
        let mut maxs = vec![f64::NEG_INFINITY; n_groups];
        let vals = self.tail();
        for (i, gid) in gid_of_row.iter().enumerate() {
            let Some(g) = gid else { continue };
            let g = *g as usize;
            let x = match vals {
                Column::Int(v) => v[i] as f64,
                Column::Float(v) => v[i],
                Column::Void { start, .. } => (*start + i as Oid) as f64,
                Column::Oid(v) => v[i] as f64,
                Column::Str(_) => {
                    if agg == Agg::Count {
                        0.0
                    } else {
                        return Err(MonetError::TypeMismatch {
                            op: "grouped_agg",
                            expected: "numeric",
                            found: "str",
                        });
                    }
                }
            };
            sums[g] += x;
            counts[g] += 1;
            if x < mins[g] {
                mins[g] = x;
            }
            if x > maxs[g] {
                maxs[g] = x;
            }
        }
        let out: Column = match agg {
            Agg::Count => Column::Int(counts.iter().map(|&c| c as i64).collect()),
            Agg::Sum => match vals {
                Column::Int(_) => Column::Int(sums.iter().map(|&s| s as i64).collect()),
                _ => Column::Float(sums),
            },
            Agg::Avg => Column::Float(
                sums.iter()
                    .zip(&counts)
                    .map(|(&s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
                    .collect(),
            ),
            Agg::Min => {
                Column::Float(mins.iter().map(|&m| if m.is_finite() { m } else { 0.0 }).collect())
            }
            Agg::Max => {
                Column::Float(maxs.iter().map(|&m| if m.is_finite() { m } else { 0.0 }).collect())
            }
        };
        Ok(Bat::dense(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bat::{bat_of_floats, bat_of_ints};

    #[test]
    fn scalar_aggregates() {
        let b = bat_of_ints(vec![1, 2, 3, 4]);
        assert_eq!(b.agg_tail(Agg::Sum).unwrap(), Val::Int(10));
        assert_eq!(b.agg_tail(Agg::Count).unwrap(), Val::Int(4));
        assert_eq!(b.agg_tail(Agg::Min).unwrap(), Val::Int(1));
        assert_eq!(b.agg_tail(Agg::Max).unwrap(), Val::Int(4));
        assert_eq!(b.agg_tail(Agg::Avg).unwrap(), Val::Float(2.5));
    }

    #[test]
    fn scalar_aggregates_float_and_empty() {
        let b = bat_of_floats(vec![0.25, 0.75]);
        assert_eq!(b.agg_tail(Agg::Sum).unwrap(), Val::Float(1.0));
        let e = bat_of_floats(vec![]);
        assert_eq!(e.agg_tail(Agg::Sum).unwrap(), Val::Float(0.0));
        assert_eq!(e.agg_tail(Agg::Count).unwrap(), Val::Int(0));
        assert!(e.agg_tail(Agg::Min).is_err());
    }

    #[test]
    fn grouped_sum_positional() {
        // values per row
        let vals = bat_of_floats(vec![0.1, 0.2, 0.3, 0.4]);
        // rows 0,2 -> group 0; rows 1,3 -> group 1
        let groups = Bat::dense(Column::Oid(vec![0, 1, 0, 1]));
        let out = vals.grouped_agg(&groups, Agg::Sum).unwrap();
        assert_eq!(out.count(), 2);
        let s0 = out.fetch(0).unwrap().1.as_float().unwrap();
        let s1 = out.fetch(1).unwrap().1.as_float().unwrap();
        assert!((s0 - 0.4).abs() < 1e-12);
        assert!((s1 - 0.6).abs() < 1e-12);
    }

    #[test]
    fn grouped_agg_hash_path_with_sparse_keys() {
        // keys are arbitrary oids, not positions
        let vals = Bat::new(Column::Oid(vec![10, 20, 10]), Column::Int(vec![1, 2, 4])).unwrap();
        let groups = Bat::new(Column::Oid(vec![10, 20]), Column::Oid(vec![0, 1])).unwrap();
        let out = vals.grouped_agg(&groups, Agg::Sum).unwrap();
        assert_eq!(out.fetch(0).unwrap().1, Val::Int(5));
        assert_eq!(out.fetch(1).unwrap().1, Val::Int(2));
    }

    #[test]
    fn grouped_count_includes_empty_groups() {
        let vals = Bat::dense(Column::Int(vec![5]));
        // group mapping says there are 3 groups but only row 0 (group 2) has data
        let groups = Bat::dense(Column::Oid(vec![2]));
        let out = vals.grouped_agg(&groups, Agg::Count).unwrap();
        assert_eq!(out.count(), 3);
        assert_eq!(out.fetch(0).unwrap().1, Val::Int(0));
        assert_eq!(out.fetch(2).unwrap().1, Val::Int(1));
    }

    #[test]
    fn grouped_min_max_avg() {
        let vals = bat_of_floats(vec![3.0, 1.0, 2.0]);
        let groups = Bat::dense(Column::Oid(vec![0, 0, 1]));
        let mins = vals.grouped_agg(&groups, Agg::Min).unwrap();
        assert_eq!(mins.fetch(0).unwrap().1, Val::Float(1.0));
        let maxs = vals.grouped_agg(&groups, Agg::Max).unwrap();
        assert_eq!(maxs.fetch(1).unwrap().1, Val::Float(2.0));
        let avgs = vals.grouped_agg(&groups, Agg::Avg).unwrap();
        assert_eq!(avgs.fetch(0).unwrap().1, Val::Float(2.0));
    }

    #[test]
    fn rows_without_group_are_skipped() {
        // self has key 99 not present in groups
        let vals = Bat::new(Column::Oid(vec![0, 99]), Column::Int(vec![1, 100])).unwrap();
        let groups = Bat::new(Column::Oid(vec![0]), Column::Oid(vec![0])).unwrap();
        let out = vals.grouped_agg(&groups, Agg::Sum).unwrap();
        assert_eq!(out.count(), 1);
        assert_eq!(out.fetch(0).unwrap().1, Val::Int(1));
    }
}
