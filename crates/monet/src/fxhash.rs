//! A fast, non-cryptographic hasher for internal hash tables.
//!
//! Join and group operators hash millions of small keys (oids, integers,
//! dictionary codes); SipHash's HashDoS protection is unnecessary inside the
//! kernel, so we use the well-known Fx multiply-rotate hash (as used by the
//! Rust compiler) implemented locally to keep the crate dependency-free.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fx hasher state.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) ^ rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the Fx hash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the Fx hash.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_stable_and_distinct() {
        let mut h1 = FxHasher::default();
        h1.write_u64(42);
        let mut h2 = FxHasher::default();
        h2.write_u64(42);
        assert_eq!(h1.finish(), h2.finish());

        let mut h3 = FxHasher::default();
        h3.write_u64(43);
        assert_ne!(h1.finish(), h3.finish());
    }

    #[test]
    fn byte_stream_tail_is_hashed() {
        let mut a = FxHasher::default();
        a.write(b"hello wor");
        let mut b = FxHasher::default();
        b.write(b"hello wox");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
    }
}
