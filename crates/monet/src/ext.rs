//! Physical-operator extensibility.
//!
//! The Mirror paper's key systems claim is that new *domain-specific*
//! operators (the probabilistic `getBL` of the inference network retrieval
//! model) can be added **at the physical level** without modifying the
//! kernel. This module is that seam: higher layers register named operator
//! implementations; plans invoke them through [`crate::plan::Plan::Custom`].

use crate::bat::Bat;
use crate::catalog::Catalog;
use crate::error::{MonetError, Result};
use crate::fxhash::FxHashMap;
use crate::value::Val;
use parking_lot::{Mutex, RwLock};
use std::sync::Arc;

/// Execution context handed to custom operators: access to the catalog so
/// operators can consult auxiliary BATs (statistics, dictionaries), the
/// executor's fragment-parallel degree (so operators can parallelise their
/// own work the same way the built-in operators do), and a note channel
/// that surfaces operator-specific diagnostics in EXPLAIN output.
pub struct OpCtx<'a> {
    /// The catalog of named BATs.
    pub catalog: &'a Catalog,
    /// Fragment-parallel degree the executor runs at (1 = serial). Custom
    /// operators may split their own work into that many spans.
    pub degree: usize,
    /// The executor's row threshold below which operators stay serial
    /// ([`crate::Executor::min_fragment_rows`]); custom operators should
    /// honour it like the built-in operators do.
    pub min_fragment_rows: usize,
    note: Mutex<Option<String>>,
}

impl<'a> OpCtx<'a> {
    /// Create a context over a catalog with an explicit parallel degree
    /// and the default serial-fallback threshold.
    pub fn new(catalog: &'a Catalog, degree: usize) -> Self {
        OpCtx {
            catalog,
            degree,
            min_fragment_rows: crate::fragment::DEFAULT_MIN_FRAGMENT_ROWS,
            note: Mutex::new(None),
        }
    }

    /// The degree an operator over `rows` input rows should fragment at:
    /// the configured degree when the input reaches the threshold, serial
    /// otherwise — the same policy the built-in operators apply.
    pub fn frag_degree(&self, rows: usize) -> usize {
        if self.degree > 1 && rows >= self.min_fragment_rows.max(2) {
            self.degree
        } else {
            1
        }
    }

    /// Attach a diagnostic note to this invocation; the executor records it
    /// in the node trace and [`crate::Executor::explain`] renders it next
    /// to the operator (e.g. `topk ×10 (pruned 840 docs)`).
    pub fn set_note(&self, note: impl Into<String>) {
        *self.note.lock() = Some(note.into());
    }

    /// Take the note left by the operator, if any (used by the executor).
    pub fn take_note(&self) -> Option<String> {
        self.note.lock().take()
    }
}

/// Signature of a custom physical operator: BAT inputs (already evaluated)
/// plus scalar parameters, producing one BAT.
pub type CustomOp = dyn Fn(&OpCtx<'_>, &[Arc<Bat>], &[Val]) -> Result<Bat> + Send + Sync + 'static;

/// A thread-safe registry of custom physical operators.
#[derive(Default)]
pub struct OpRegistry {
    ops: RwLock<FxHashMap<String, Arc<CustomOp>>>,
}

impl OpRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register operator `name`. Re-registration replaces the previous
    /// implementation (useful in tests).
    pub fn register<F>(&self, name: impl Into<String>, f: F)
    where
        F: Fn(&OpCtx<'_>, &[Arc<Bat>], &[Val]) -> Result<Bat> + Send + Sync + 'static,
    {
        self.ops.write().insert(name.into(), Arc::new(f));
    }

    /// Look up an operator.
    pub fn get(&self, name: &str) -> Result<Arc<CustomOp>> {
        self.ops.read().get(name).cloned().ok_or_else(|| MonetError::UnknownOp(name.to_string()))
    }

    /// True if `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.ops.read().contains_key(name)
    }

    /// Registered operator names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.ops.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Invoke operator `name` directly (outside a plan).
    pub fn invoke(
        &self,
        name: &str,
        ctx: &OpCtx<'_>,
        inputs: &[Arc<Bat>],
        params: &[Val],
    ) -> Result<Bat> {
        let op = self.get(name)?;
        op(ctx, inputs, params)
    }
}

impl std::fmt::Debug for OpRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpRegistry").field("ops", &self.names()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bat::bat_of_ints;
    use crate::column::Column;

    #[test]
    fn register_and_invoke() {
        let reg = OpRegistry::new();
        let cat = Catalog::new();
        reg.register("double", |_ctx, inputs, _params| {
            let input = &inputs[0];
            let vals = input.tail().int_slice()?;
            Ok(Bat::dense(Column::Int(vals.iter().map(|v| v * 2).collect())))
        });
        assert!(reg.contains("double"));
        let out = reg
            .invoke("double", &OpCtx::new(&cat, 1), &[Arc::new(bat_of_ints(vec![1, 2]))], &[])
            .unwrap();
        assert_eq!(out.tail().int_slice().unwrap(), &[2, 4]);
    }

    #[test]
    fn unknown_op_errors() {
        let reg = OpRegistry::new();
        let cat = Catalog::new();
        let err = reg.invoke("nope", &OpCtx::new(&cat, 1), &[], &[]);
        assert!(matches!(err, Err(MonetError::UnknownOp(_))));
    }

    #[test]
    fn operators_can_read_the_catalog() {
        let reg = OpRegistry::new();
        let cat = Catalog::new();
        cat.register("stats", bat_of_ints(vec![100]));
        reg.register("scaled", |ctx, _inputs, _params| {
            let stats = ctx.catalog.get("stats")?;
            let n = stats.tail().int_slice()?[0];
            Ok(bat_of_ints(vec![n * 3]))
        });
        let out = reg.invoke("scaled", &OpCtx::new(&cat, 1), &[], &[]).unwrap();
        assert_eq!(out.tail().int_slice().unwrap(), &[300]);
    }

    #[test]
    fn params_are_passed_through() {
        let reg = OpRegistry::new();
        let cat = Catalog::new();
        reg.register("fill", |_ctx, _inputs, params| {
            let n = params[0].as_int().ok_or_else(|| MonetError::BadOpInvocation {
                op: "fill".into(),
                msg: "need int".into(),
            })?;
            Ok(bat_of_ints(vec![7; n as usize]))
        });
        let out = reg.invoke("fill", &OpCtx::new(&cat, 1), &[], &[Val::Int(3)]).unwrap();
        assert_eq!(out.count(), 3);
    }
}
