//! Catalog persistence — Monet's disk-resident BATs.
//!
//! One file per BAT plus a manifest, written through the storage tier's
//! shared codec ([`crate::storage::codec`]). Format **v3**:
//!
//! ```text
//! [7B magic "MIRRBAT"][u8 version = 3][u16 endian sentinel 0xFEFF]
//! [head column][tail column][u64 checksum over both columns]
//! ```
//!
//! Columns serialise as a type tag, a length, and the values; string
//! dictionaries stay deduplicated on disk, with the code vector bitpacked
//! to the dictionary's width (v3), and are re-interned on load.
//! A file carrying any other version — the v2 raw-code columns as well as
//! the legacy `MIRRBAT1` v1 snapshots — is rejected with a typed
//! [`MonetError::FormatVersion`] *before* any payload is decoded, a
//! byte-swapped file trips the endianness sentinel, and a bit-flipped
//! payload fails the trailing checksum: garbage is never decoded into a
//! BAT.
//!
//! For page-granular durability with WAL recovery (what `MirrorDbms`
//! uses for `open()`), see [`crate::storage`]; this module remains the
//! simple whole-BAT snapshot path.

use crate::bat::Bat;
use crate::catalog::Catalog;
use crate::error::{MonetError, Result};
use crate::storage::codec::{
    checksum64, read_column, write_column, ByteReader, ByteWriter, ENDIAN_SENTINEL,
};
use std::path::Path;

const MAGIC: &[u8; 7] = b"MIRRBAT";
/// On-disk format version this build reads and writes.
pub const FORMAT_VERSION: u8 = 3;

fn io_err(e: std::io::Error) -> MonetError {
    MonetError::Io(e.to_string())
}

/// Serialise one BAT into the v3 file format.
fn encode_bat(bat: &Bat) -> Vec<u8> {
    let mut body = ByteWriter::new();
    write_column(&mut body, bat.head());
    write_column(&mut body, bat.tail());
    let body = body.into_bytes();
    let mut out = ByteWriter::new();
    out.bytes(MAGIC);
    out.u8(FORMAT_VERSION);
    out.u16(ENDIAN_SENTINEL);
    let sum = checksum64(&body);
    out.bytes(&body);
    out.u64(sum);
    out.into_bytes()
}

/// Decode one BAT file, validating magic, version, endianness and
/// checksum before any column bytes are interpreted.
fn decode_bat(bytes: &[u8], name: &str) -> Result<Bat> {
    let corrupt =
        |detail: String| MonetError::Corrupt { what: format!("BAT file for '{name}'"), detail };
    if bytes.len() < MAGIC.len() + 3 || &bytes[..MAGIC.len()] != MAGIC {
        return Err(corrupt("bad magic".into()));
    }
    let version = bytes[MAGIC.len()];
    // legacy v1 snapshots spelled the version into the magic ("MIRRBAT1")
    let found = if version == b'1' { 1 } else { version as u32 };
    if found != FORMAT_VERSION as u32 {
        return Err(MonetError::FormatVersion { found, expected: FORMAT_VERSION as u32 });
    }
    let mut r = ByteReader::new(&bytes[MAGIC.len() + 1..], "BAT file header");
    let sentinel = r.u16()?;
    if sentinel != ENDIAN_SENTINEL {
        return Err(corrupt(format!(
            "endianness sentinel {sentinel:#06x} (expected {ENDIAN_SENTINEL:#06x}) — \
             file written with a different byte order"
        )));
    }
    let rest = &bytes[MAGIC.len() + 3..];
    if rest.len() < 8 {
        return Err(corrupt("truncated before checksum".into()));
    }
    let (body, sum_bytes) = rest.split_at(rest.len() - 8);
    let stored = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
    if checksum64(body) != stored {
        return Err(corrupt("checksum mismatch".into()));
    }
    let mut r = ByteReader::new(body, "BAT columns");
    let head = read_column(&mut r)?;
    let tail = read_column(&mut r)?;
    if !r.is_exhausted() {
        return Err(corrupt(format!("{} trailing bytes after tail column", r.remaining())));
    }
    Ok(Bat::new(head, tail)?.analyze())
}

/// Map a BAT name to a safe file name.
fn file_name(bat_name: &str) -> String {
    let safe: String = bat_name
        .chars()
        .map(|c| if c.is_alphanumeric() || c == '_' || c == '-' { c } else { '%' })
        .collect();
    format!("{safe}.bat")
}

impl Catalog {
    /// Snapshot every registered BAT into `dir` (created if missing). A
    /// `manifest.txt` lists the stored names.
    pub fn save_dir(&self, dir: &Path) -> Result<usize> {
        std::fs::create_dir_all(dir).map_err(io_err)?;
        let names = self.names();
        let mut manifest = String::new();
        for name in &names {
            let bat = self.get(name)?;
            std::fs::write(dir.join(file_name(name)), encode_bat(&bat)).map_err(io_err)?;
            manifest.push_str(name);
            manifest.push('\n');
        }
        std::fs::write(dir.join("manifest.txt"), manifest).map_err(io_err)?;
        Ok(names.len())
    }

    /// Load every BAT named in `dir`'s manifest into this catalog
    /// (replacing same-named BATs). Property bits are recomputed exactly.
    pub fn load_dir(&self, dir: &Path) -> Result<usize> {
        let manifest = std::fs::read_to_string(dir.join("manifest.txt")).map_err(io_err)?;
        let mut loaded = 0;
        for name in manifest.lines().filter(|l| !l.is_empty()) {
            let bytes = std::fs::read(dir.join(file_name(name))).map_err(io_err)?;
            self.register(name, decode_bat(&bytes, name)?);
            loaded += 1;
        }
        Ok(loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bat::{bat_of_floats, bat_of_ints, bat_of_strs};
    use crate::column::Column;
    use crate::value::Val;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mirror_persist_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_all_column_types() {
        let dir = tmpdir("roundtrip");
        let cat = Catalog::new();
        cat.register("ints", bat_of_ints(vec![1, -5, 7]));
        cat.register("floats", bat_of_floats(vec![0.5, -2.25]));
        cat.register("strs", bat_of_strs(["alpha", "beta", "alpha"]));
        cat.register(
            "oids",
            Bat::new(Column::Oid(vec![9, 3]), Column::Void { start: 10, len: 2 }).unwrap(),
        );
        assert_eq!(cat.save_dir(&dir).unwrap(), 4);

        let restored = Catalog::new();
        assert_eq!(restored.load_dir(&dir).unwrap(), 4);
        assert_eq!(restored.get("ints").unwrap().to_pairs(), cat.get("ints").unwrap().to_pairs());
        assert_eq!(restored.get("strs").unwrap().fetch(2).unwrap().1, Val::from("alpha"));
        assert_eq!(restored.get("oids").unwrap().fetch(1).unwrap(), (Val::Oid(3), Val::Oid(11)));
        // dictionaries deduplicate after reload
        let s = restored.get("strs").unwrap();
        let col = s.tail().str_col().unwrap();
        assert_eq!(col.dict.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_recomputes_properties() {
        let dir = tmpdir("props");
        let cat = Catalog::new();
        cat.register("sorted", bat_of_ints(vec![1, 2, 3]));
        cat.save_dir(&dir).unwrap();
        let restored = Catalog::new();
        restored.load_dir(&dir).unwrap();
        let b = restored.get("sorted").unwrap();
        assert!(b.props().tail_sorted);
        assert!(b.props().head_sorted && b.props().head_key);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_file_is_rejected() {
        let dir = tmpdir("corrupt");
        let cat = Catalog::new();
        cat.register("x", bat_of_ints(vec![1]));
        cat.save_dir(&dir).unwrap();
        std::fs::write(dir.join(file_name("x")), b"garbage").unwrap();
        let restored = Catalog::new();
        assert!(matches!(restored.load_dir(&dir), Err(MonetError::Corrupt { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_payload_byte_fails_checksum() {
        let dir = tmpdir("bitflip");
        let cat = Catalog::new();
        cat.register("x", bat_of_ints(vec![42, 43, 44]));
        cat.save_dir(&dir).unwrap();
        let path = dir.join(file_name("x"));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let restored = Catalog::new();
        assert!(matches!(restored.load_dir(&dir), Err(MonetError::Corrupt { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_v1_snapshot_is_rejected_with_typed_version_error() {
        let dir = tmpdir("v1");
        std::fs::create_dir_all(&dir).unwrap();
        // a legacy file started with "MIRRBAT1" followed by raw columns
        std::fs::write(dir.join(file_name("old")), b"MIRRBAT1\x00\x01\x00\x00\x00\x03").unwrap();
        std::fs::write(dir.join("manifest.txt"), "old\n").unwrap();
        let restored = Catalog::new();
        assert_eq!(
            restored.load_dir(&dir).unwrap_err(),
            MonetError::FormatVersion { found: 1, expected: 3 }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn previous_v2_snapshot_is_rejected_with_typed_version_error() {
        let dir = tmpdir("v2");
        let cat = Catalog::new();
        cat.register("x", bat_of_strs(["a", "b"]));
        cat.save_dir(&dir).unwrap();
        let path = dir.join(file_name("x"));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[MAGIC.len()] = 2; // declare the raw-code column format
        std::fs::write(&path, &bytes).unwrap();
        let restored = Catalog::new();
        assert_eq!(
            restored.load_dir(&dir).unwrap_err(),
            MonetError::FormatVersion { found: 2, expected: 3 }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn future_version_is_rejected_before_decode() {
        let dir = tmpdir("future");
        let cat = Catalog::new();
        cat.register("x", bat_of_ints(vec![1]));
        cat.save_dir(&dir).unwrap();
        let path = dir.join(file_name("x"));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[MAGIC.len()] = 9; // declare format version 9
        std::fs::write(&path, &bytes).unwrap();
        let restored = Catalog::new();
        assert_eq!(
            restored.load_dir(&dir).unwrap_err(),
            MonetError::FormatVersion { found: 9, expected: 3 }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_swapped_file_trips_endian_sentinel() {
        let dir = tmpdir("endian");
        let cat = Catalog::new();
        cat.register("x", bat_of_ints(vec![1]));
        cat.save_dir(&dir).unwrap();
        let path = dir.join(file_name("x"));
        let mut bytes = std::fs::read(&path).unwrap();
        // swap the sentinel bytes as a big-endian writer would have laid them
        bytes.swap(MAGIC.len() + 1, MAGIC.len() + 2);
        std::fs::write(&path, &bytes).unwrap();
        let restored = Catalog::new();
        let err = restored.load_dir(&dir).unwrap_err();
        assert!(matches!(err, MonetError::Corrupt { .. }), "got {err:?}");
        assert!(err.to_string().contains("byte order"), "got {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_manifest_errors() {
        let restored = Catalog::new();
        assert!(restored.load_dir(Path::new("/nonexistent/mirror")).is_err());
    }

    #[test]
    fn odd_names_are_escaped() {
        let dir = tmpdir("names");
        let cat = Catalog::new();
        cat.register("Lib__annotation__post_d", bat_of_ints(vec![4]));
        cat.save_dir(&dir).unwrap();
        let restored = Catalog::new();
        restored.load_dir(&dir).unwrap();
        assert!(restored.contains("Lib__annotation__post_d"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
