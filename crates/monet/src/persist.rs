//! Catalog persistence — Monet's disk-resident BATs.
//!
//! A simple, dependency-free binary format: one file per BAT plus a
//! manifest. Columns serialise as a type tag, a length, and the raw
//! values; dictionaries are re-interned on load. Good enough to snapshot
//! and restore a library between sessions (crash-consistency is out of
//! scope, as it was for the research prototype).

use crate::bat::Bat;
use crate::catalog::Catalog;
use crate::column::{Column, StrCol};
use crate::error::{MonetError, Result};
use crate::strdict::StrDictBuilder;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"MIRRBAT1";

fn io_err(e: std::io::Error) -> MonetError {
    MonetError::BadValue(format!("io: {e}"))
}

/// Serialise one column into `out`.
fn write_column(out: &mut impl Write, c: &Column) -> Result<()> {
    match c {
        Column::Void { start, len } => {
            out.write_all(&[0u8]).map_err(io_err)?;
            out.write_all(&start.to_le_bytes()).map_err(io_err)?;
            out.write_all(&(*len as u64).to_le_bytes()).map_err(io_err)?;
        }
        Column::Oid(v) => {
            out.write_all(&[1u8]).map_err(io_err)?;
            out.write_all(&(v.len() as u64).to_le_bytes()).map_err(io_err)?;
            for x in v {
                out.write_all(&x.to_le_bytes()).map_err(io_err)?;
            }
        }
        Column::Int(v) => {
            out.write_all(&[2u8]).map_err(io_err)?;
            out.write_all(&(v.len() as u64).to_le_bytes()).map_err(io_err)?;
            for x in v {
                out.write_all(&x.to_le_bytes()).map_err(io_err)?;
            }
        }
        Column::Float(v) => {
            out.write_all(&[3u8]).map_err(io_err)?;
            out.write_all(&(v.len() as u64).to_le_bytes()).map_err(io_err)?;
            for x in v {
                out.write_all(&x.to_bits().to_le_bytes()).map_err(io_err)?;
            }
        }
        Column::Str(s) => {
            out.write_all(&[4u8]).map_err(io_err)?;
            out.write_all(&(s.codes.len() as u64).to_le_bytes()).map_err(io_err)?;
            for x in &s.codes {
                out.write_all(&x.to_le_bytes()).map_err(io_err)?;
            }
            out.write_all(&(s.dict.len() as u64).to_le_bytes()).map_err(io_err)?;
            for (_, st) in s.dict.iter() {
                let bytes = st.as_bytes();
                out.write_all(&(bytes.len() as u32).to_le_bytes()).map_err(io_err)?;
                out.write_all(bytes).map_err(io_err)?;
            }
        }
    }
    Ok(())
}

fn read_exact_buf(inp: &mut impl Read, n: usize) -> Result<Vec<u8>> {
    let mut buf = vec![0u8; n];
    inp.read_exact(&mut buf).map_err(io_err)?;
    Ok(buf)
}

fn read_u64(inp: &mut impl Read) -> Result<u64> {
    let b = read_exact_buf(inp, 8)?;
    Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
}

fn read_u32(inp: &mut impl Read) -> Result<u32> {
    let b = read_exact_buf(inp, 4)?;
    Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
}

/// Deserialise one column from `inp`.
fn read_column(inp: &mut impl Read) -> Result<Column> {
    let tag = read_exact_buf(inp, 1)?[0];
    Ok(match tag {
        0 => {
            let start = read_u32(inp)?;
            let len = read_u64(inp)? as usize;
            Column::Void { start, len }
        }
        1 => {
            let n = read_u64(inp)? as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(read_u32(inp)?);
            }
            Column::Oid(v)
        }
        2 => {
            let n = read_u64(inp)? as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                let b = read_exact_buf(inp, 8)?;
                v.push(i64::from_le_bytes(b.try_into().expect("8 bytes")));
            }
            Column::Int(v)
        }
        3 => {
            let n = read_u64(inp)? as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(f64::from_bits(read_u64(inp)?));
            }
            Column::Float(v)
        }
        4 => {
            let n = read_u64(inp)? as usize;
            let mut codes = Vec::with_capacity(n);
            for _ in 0..n {
                codes.push(read_u32(inp)?);
            }
            let dict_len = read_u64(inp)? as usize;
            let mut builder = StrDictBuilder::new();
            for _ in 0..dict_len {
                let slen = read_u32(inp)? as usize;
                let bytes = read_exact_buf(inp, slen)?;
                let s = String::from_utf8(bytes)
                    .map_err(|e| MonetError::BadValue(format!("bad utf8 in dict: {e}")))?;
                builder.intern(&s);
            }
            Column::Str(StrCol { codes, dict: builder.freeze() })
        }
        other => return Err(MonetError::BadValue(format!("unknown column tag {other}"))),
    })
}

/// Map a BAT name to a safe file name.
fn file_name(bat_name: &str) -> String {
    let safe: String = bat_name
        .chars()
        .map(|c| if c.is_alphanumeric() || c == '_' || c == '-' { c } else { '%' })
        .collect();
    format!("{safe}.bat")
}

impl Catalog {
    /// Snapshot every registered BAT into `dir` (created if missing). A
    /// `manifest.txt` lists the stored names.
    pub fn save_dir(&self, dir: &Path) -> Result<usize> {
        std::fs::create_dir_all(dir).map_err(io_err)?;
        let names = self.names();
        let mut manifest = String::new();
        for name in &names {
            let bat = self.get(name)?;
            let mut buf: Vec<u8> = Vec::new();
            buf.extend_from_slice(MAGIC);
            write_column(&mut buf, bat.head())?;
            write_column(&mut buf, bat.tail())?;
            std::fs::write(dir.join(file_name(name)), &buf).map_err(io_err)?;
            manifest.push_str(name);
            manifest.push('\n');
        }
        std::fs::write(dir.join("manifest.txt"), manifest).map_err(io_err)?;
        Ok(names.len())
    }

    /// Load every BAT named in `dir`'s manifest into this catalog
    /// (replacing same-named BATs). Property bits are recomputed exactly.
    pub fn load_dir(&self, dir: &Path) -> Result<usize> {
        let manifest = std::fs::read_to_string(dir.join("manifest.txt")).map_err(io_err)?;
        let mut loaded = 0;
        for name in manifest.lines().filter(|l| !l.is_empty()) {
            let bytes = std::fs::read(dir.join(file_name(name))).map_err(io_err)?;
            if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
                return Err(MonetError::BadValue(format!("bad magic in BAT file for '{name}'")));
            }
            let mut cursor = &bytes[MAGIC.len()..];
            let head = read_column(&mut cursor)?;
            let tail = read_column(&mut cursor)?;
            let bat = Bat::new(head, tail)?.analyze();
            self.register(name, bat);
            loaded += 1;
        }
        Ok(loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bat::{bat_of_floats, bat_of_ints, bat_of_strs};
    use crate::value::Val;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mirror_persist_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_all_column_types() {
        let dir = tmpdir("roundtrip");
        let cat = Catalog::new();
        cat.register("ints", bat_of_ints(vec![1, -5, 7]));
        cat.register("floats", bat_of_floats(vec![0.5, -2.25]));
        cat.register("strs", bat_of_strs(["alpha", "beta", "alpha"]));
        cat.register(
            "oids",
            Bat::new(Column::Oid(vec![9, 3]), Column::Void { start: 10, len: 2 }).unwrap(),
        );
        assert_eq!(cat.save_dir(&dir).unwrap(), 4);

        let restored = Catalog::new();
        assert_eq!(restored.load_dir(&dir).unwrap(), 4);
        assert_eq!(restored.get("ints").unwrap().to_pairs(), cat.get("ints").unwrap().to_pairs());
        assert_eq!(restored.get("strs").unwrap().fetch(2).unwrap().1, Val::from("alpha"));
        assert_eq!(restored.get("oids").unwrap().fetch(1).unwrap(), (Val::Oid(3), Val::Oid(11)));
        // dictionaries deduplicate after reload
        let s = restored.get("strs").unwrap();
        let col = s.tail().str_col().unwrap();
        assert_eq!(col.dict.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_recomputes_properties() {
        let dir = tmpdir("props");
        let cat = Catalog::new();
        cat.register("sorted", bat_of_ints(vec![1, 2, 3]));
        cat.save_dir(&dir).unwrap();
        let restored = Catalog::new();
        restored.load_dir(&dir).unwrap();
        let b = restored.get("sorted").unwrap();
        assert!(b.props().tail_sorted);
        assert!(b.props().head_sorted && b.props().head_key);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_file_is_rejected() {
        let dir = tmpdir("corrupt");
        let cat = Catalog::new();
        cat.register("x", bat_of_ints(vec![1]));
        cat.save_dir(&dir).unwrap();
        std::fs::write(dir.join(file_name("x")), b"garbage").unwrap();
        let restored = Catalog::new();
        assert!(restored.load_dir(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_manifest_errors() {
        let restored = Catalog::new();
        assert!(restored.load_dir(Path::new("/nonexistent/mirror")).is_err());
    }

    #[test]
    fn odd_names_are_escaped() {
        let dir = tmpdir("names");
        let cat = Catalog::new();
        cat.register("Lib__annotation__post_d", bat_of_ints(vec![4]));
        cat.save_dir(&dir).unwrap();
        let restored = Catalog::new();
        restored.load_dir(&dir).unwrap();
        assert!(restored.contains("Lib__annotation__post_d"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
