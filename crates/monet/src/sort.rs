//! Ordering operators: stable sort by tail, and top-N selection.
//!
//! `topn_tail` is the final step of every ranking query: it selects the k
//! best rows with a partial `select_nth_unstable` pass rather than a full
//! sort, so ranking cost stays linear in the collection for fixed k.

use crate::bat::Bat;
use crate::column::Column;
use crate::props::Props;
use crate::value::Val;
use std::cmp::Ordering;

/// Compare two rows of a column with a total order.
#[inline]
fn cmp_rows(c: &Column, a: usize, b: usize) -> Ordering {
    match c {
        Column::Void { .. } => a.cmp(&b),
        Column::Oid(v) => v[a].cmp(&v[b]),
        Column::Int(v) => v[a].cmp(&v[b]),
        Column::Float(v) => v[a].total_cmp(&v[b]),
        Column::Str(s) => s.get(a).cmp(s.get(b)),
    }
}

impl Bat {
    /// Stable sort by tail value. `desc` reverses the value order but keeps
    /// the sort stable with respect to input position.
    pub fn sort_tail(&self, desc: bool) -> Bat {
        let mut idx: Vec<u32> = (0..self.count() as u32).collect();
        let t = self.tail();
        idx.sort_by(|&a, &b| {
            let o = cmp_rows(t, a as usize, b as usize);
            if desc {
                o.reverse()
            } else {
                o
            }
        });
        let out = self.take(&idx);
        out.with_props(Props {
            tail_sorted: !desc,
            tail_key: self.props().tail_key,
            head_key: self.props().head_key,
            ..Props::default()
        })
    }

    /// The `k` rows with the greatest (`desc = true`) or least tails,
    /// returned in rank order. Uses a partial selection, not a full sort.
    pub fn topn_tail(&self, k: usize, desc: bool) -> Bat {
        let n = self.count();
        if k == 0 || n == 0 {
            return self.slice(0, 0);
        }
        if k >= n {
            return self.sort_tail(desc);
        }
        let t = self.tail();
        let mut idx: Vec<u32> = (0..n as u32).collect();
        let compare = |a: &u32, b: &u32| {
            let o = cmp_rows(t, *a as usize, *b as usize);
            if desc {
                o.reverse()
            } else {
                o
            }
        };
        idx.select_nth_unstable_by(k - 1, compare);
        idx.truncate(k);
        idx.sort_by(compare);
        let out = self.take(&idx);
        out.with_props(Props { tail_sorted: !desc, ..Props::default() })
    }

    /// Rank order of the tails: `[head, rank]` where rank 0 is the best
    /// (greatest tail when `desc`).
    pub fn rank_tail(&self, desc: bool) -> Bat {
        let sorted = self.sort_tail(desc);
        sorted.mark(0)
    }
}

/// Sort `(Val, Val)` pairs by tail — helper for comparing against BAT
/// results in tests and the naive interpreter.
pub fn sort_pairs_by_tail(mut pairs: Vec<(Val, Val)>, desc: bool) -> Vec<(Val, Val)> {
    pairs.sort_by(|x, y| {
        let o = x.1.total_cmp(&y.1);
        if desc {
            o.reverse()
        } else {
            o
        }
    });
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bat::{bat_of_floats, bat_of_ints, bat_of_strs};

    #[test]
    fn sort_ascending_and_descending() {
        let b = bat_of_ints(vec![3, 1, 2]);
        let asc = b.sort_tail(false);
        let tails: Vec<_> = asc.to_pairs().into_iter().map(|(_, t)| t).collect();
        assert_eq!(tails, vec![Val::Int(1), Val::Int(2), Val::Int(3)]);
        assert!(asc.props().tail_sorted);
        let desc = b.sort_tail(true);
        let tails: Vec<_> = desc.to_pairs().into_iter().map(|(_, t)| t).collect();
        assert_eq!(tails, vec![Val::Int(3), Val::Int(2), Val::Int(1)]);
    }

    #[test]
    fn sort_is_stable() {
        let b = Bat::new(Column::Oid(vec![10, 11, 12]), Column::Int(vec![1, 1, 0])).unwrap();
        let s = b.sort_tail(false);
        // equal keys 1,1 keep original head order 10 then 11
        assert_eq!(s.fetch(1).unwrap().0, Val::Oid(10));
        assert_eq!(s.fetch(2).unwrap().0, Val::Oid(11));
    }

    #[test]
    fn topn_returns_best_k_in_order() {
        let b = bat_of_floats(vec![0.3, 0.9, 0.1, 0.7, 0.5]);
        let top = b.topn_tail(2, true);
        let pairs = top.to_pairs();
        assert_eq!(pairs[0], (Val::Oid(1), Val::Float(0.9)));
        assert_eq!(pairs[1], (Val::Oid(3), Val::Float(0.7)));
    }

    #[test]
    fn topn_edge_cases() {
        let b = bat_of_ints(vec![5, 2]);
        assert_eq!(b.topn_tail(0, true).count(), 0);
        assert_eq!(b.topn_tail(10, true).count(), 2);
        let e = bat_of_ints(vec![]);
        assert_eq!(e.topn_tail(3, false).count(), 0);
    }

    #[test]
    fn topn_matches_full_sort() {
        let vals: Vec<i64> = (0..100).map(|i| (i * 37) % 100).collect();
        let b = bat_of_ints(vals);
        let full = b.sort_tail(true).slice(0, 10);
        let top = b.topn_tail(10, true);
        let f: Vec<_> = full.to_pairs().into_iter().map(|(_, t)| t).collect();
        let t: Vec<_> = top.to_pairs().into_iter().map(|(_, t)| t).collect();
        assert_eq!(f, t);
    }

    #[test]
    fn sort_strings() {
        let b = bat_of_strs(["pear", "apple", "plum"]);
        let s = b.sort_tail(false);
        assert_eq!(s.fetch(0).unwrap().1, Val::from("apple"));
    }

    #[test]
    fn rank_tail_assigns_dense_ranks() {
        let b = bat_of_floats(vec![0.2, 0.8, 0.5]);
        let r = b.rank_tail(true);
        // best row (oid 1) gets rank 0
        assert_eq!(r.fetch(0).unwrap(), (Val::Oid(1), Val::Oid(0)));
        assert_eq!(r.fetch(2).unwrap(), (Val::Oid(0), Val::Oid(2)));
    }
}
