//! Durable storage tier: checksummed columnar pages, a clock-eviction
//! buffer pool, and a write-ahead log with recovery-on-open.
//!
//! The layering, bottom-up:
//!
//! * [`backend`] — the [`StorageBackend`] trait (a flat namespace of
//!   byte files) with disk, in-memory, and fault-injecting
//!   implementations;
//! * [`codec`] — shared little-endian scalar/column (de)serialization
//!   with validated, allocation-bounded reads;
//! * [`page`] — fixed 4096-byte checksummed pages, the unit of I/O;
//! * [`pool`] — the clock (second-chance) buffer pool fronting page
//!   files;
//! * [`wal`] — CRC-framed, commit-terminated write-ahead logging;
//! * [`Store`] — the durable key → bytes map tying it together: shadow
//!   generation checkpoints, WAL replay on open, checksum-verified page
//!   reads.
//!
//! Higher layers (`monet::persist`, the `mirror` core's `durable`
//! module) serialize BATs, indexes and metadata through this tier. The
//! [`FaultFs`] backend makes crash consistency a tested property: the
//! crash-recovery suite kills ingest at every reachable write and
//! asserts recovery.

pub mod backend;
pub mod codec;
pub mod page;
pub mod pool;
pub mod wal;

mod store;

pub use backend::{BitFlip, DiskFs, FaultFs, FaultPlan, MemFs, StorageBackend};
pub use codec::{
    bits_for, checksum64, pack_u32s, packed_words, unpack_u32_at, unpack_u32s, ByteReader,
    ByteWriter, ENDIAN_SENTINEL,
};
pub use page::{PageKind, PAGE_HEADER, PAGE_PAYLOAD, PAGE_SIZE};
pub use pool::{BufferPool, PageKey, PoolStats};
pub use store::{RecoveryReport, Store, StoreOptions};
pub use wal::{Wal, WalReplay, WAL_FILE};
