//! A buffer pool with clock (second-chance) eviction.
//!
//! The pool fronts page files: readers ask for `(file, page)` and either
//! hit the cache or run the supplied loader, after which the decoded
//! payload is pinned into a clock ring. Eviction is the classic
//! second-chance sweep — each frame has a reference bit that a hit sets
//! and the clock hand clears; the first frame found with a clear bit is
//! evicted. A capacity of `0` means unbounded (no eviction), which the
//! property tests use as the "∞ pages" baseline.

use crate::fxhash::FxHashMap;
use parking_lot::Mutex;
use std::sync::Arc;

/// Identifies one cached page: a file id (the store uses the checkpoint
/// generation number) and the page's position within that file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageKey {
    /// File identifier (checkpoint generation for the page store).
    pub file: u64,
    /// Page number within the file.
    pub page: u64,
}

/// Cache hit/miss/eviction counters, readable at any time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that ran the loader.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
}

struct Frame {
    key: PageKey,
    payload: Arc<Vec<u8>>,
    referenced: bool,
}

struct PoolInner {
    frames: Vec<Frame>,
    by_key: FxHashMap<PageKey, usize>,
    hand: usize,
    stats: PoolStats,
}

/// A clock-eviction page cache. Thread-safe; loads outside the lock are
/// not deduplicated (two racing misses may both load — harmless since
/// loads are pure reads).
pub struct BufferPool {
    capacity: usize,
    inner: Mutex<PoolInner>,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("resident", &inner.frames.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl BufferPool {
    /// Create a pool holding at most `capacity` pages; `0` = unbounded.
    pub fn new(capacity: usize) -> Self {
        BufferPool {
            capacity,
            inner: Mutex::new(PoolInner {
                frames: Vec::new(),
                by_key: FxHashMap::default(),
                hand: 0,
                stats: PoolStats::default(),
            }),
        }
    }

    /// Configured capacity (`0` = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Fetch a page, running `load` on a miss.
    pub fn get_or_load<E>(
        &self,
        key: PageKey,
        load: impl FnOnce() -> std::result::Result<Vec<u8>, E>,
    ) -> std::result::Result<Arc<Vec<u8>>, E> {
        {
            let mut inner = self.inner.lock();
            if let Some(&slot) = inner.by_key.get(&key) {
                inner.stats.hits += 1;
                inner.frames[slot].referenced = true;
                return Ok(Arc::clone(&inner.frames[slot].payload));
            }
            inner.stats.misses += 1;
        }
        let payload = Arc::new(load()?);
        let mut inner = self.inner.lock();
        // a racing load may have inserted meanwhile — keep the resident copy
        if let Some(&slot) = inner.by_key.get(&key) {
            inner.frames[slot].referenced = true;
            return Ok(Arc::clone(&inner.frames[slot].payload));
        }
        if self.capacity > 0 && inner.frames.len() >= self.capacity {
            let victim = Self::advance_clock(&mut inner);
            let old_key = inner.frames[victim].key;
            inner.by_key.remove(&old_key);
            inner.by_key.insert(key, victim);
            inner.frames[victim] = Frame { key, payload: Arc::clone(&payload), referenced: true };
            inner.stats.evictions += 1;
        } else {
            let slot = inner.frames.len();
            inner.frames.push(Frame { key, payload: Arc::clone(&payload), referenced: true });
            inner.by_key.insert(key, slot);
        }
        Ok(payload)
    }

    /// Second-chance sweep: clear reference bits until a frame with a
    /// clear bit comes under the hand; that frame is the victim.
    fn advance_clock(inner: &mut PoolInner) -> usize {
        loop {
            let slot = inner.hand;
            inner.hand = (inner.hand + 1) % inner.frames.len();
            if inner.frames[slot].referenced {
                inner.frames[slot].referenced = false;
            } else {
                return slot;
            }
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats
    }

    /// Keys currently resident, in frame (insertion/replacement) order.
    /// Test hook for asserting eviction order.
    pub fn cached_keys(&self) -> Vec<PageKey> {
        self.inner.lock().frames.iter().map(|f| f.key).collect()
    }

    /// Drop every cached page (counters are kept).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.frames.clear();
        inner.by_key.clear();
        inner.hand = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(page: u64) -> PageKey {
        PageKey { file: 1, page }
    }

    fn load(pool: &BufferPool, page: u64) -> Arc<Vec<u8>> {
        pool.get_or_load::<std::convert::Infallible>(key(page), || Ok(vec![page as u8])).unwrap()
    }

    #[test]
    fn hit_returns_cached_bytes_without_reloading() {
        let pool = BufferPool::new(4);
        load(&pool, 7);
        let got = pool
            .get_or_load::<std::convert::Infallible>(key(7), || {
                panic!("loader must not run on a hit")
            })
            .unwrap();
        assert_eq!(*got, vec![7]);
        assert_eq!(pool.stats(), PoolStats { hits: 1, misses: 1, evictions: 0 });
    }

    #[test]
    fn clock_evicts_unreferenced_first() {
        let pool = BufferPool::new(3);
        load(&pool, 0);
        load(&pool, 1);
        load(&pool, 2);
        // all bits set: inserting 3 sweeps (clearing 1 and 2), evicts 0
        load(&pool, 3);
        // re-reference page 1 — its bit is set again, page 2's stays clear
        load(&pool, 1);
        // inserting 4: the hand passes referenced page 1 (second chance,
        // clearing its bit) and evicts unreferenced page 2 — even though
        // page 2 is *newer* than page 1, so FIFO would have kept it
        load(&pool, 4);
        let keys = pool.cached_keys();
        assert!(keys.contains(&key(1)), "touched page 1 must survive");
        assert!(keys.contains(&key(3)));
        assert!(keys.contains(&key(4)));
        assert!(!keys.contains(&key(2)), "cold page 2 must be the victim");
        assert_eq!(pool.stats().evictions, 2);
    }

    #[test]
    fn clock_gives_every_frame_a_second_chance() {
        let pool = BufferPool::new(2);
        load(&pool, 0);
        load(&pool, 1);
        // all bits set (set on insert). Inserting 2 sweeps: clears 0,
        // clears 1, wraps, evicts 0 (first clear bit under the hand).
        load(&pool, 2);
        let keys = pool.cached_keys();
        assert!(!keys.contains(&key(0)));
        assert!(keys.contains(&key(1)));
        assert!(keys.contains(&key(2)));
    }

    #[test]
    fn sequential_scan_over_small_pool_evicts_in_fifo_order() {
        let pool = BufferPool::new(2);
        for p in 0..5 {
            load(&pool, p);
        }
        // a pure scan never re-references, so the clock degenerates to
        // FIFO: the last two pages remain
        let mut keys = pool.cached_keys();
        keys.sort_by_key(|k| k.page);
        assert_eq!(keys, vec![key(3), key(4)]);
        assert_eq!(pool.stats(), PoolStats { hits: 0, misses: 5, evictions: 3 });
    }

    #[test]
    fn zero_capacity_means_unbounded() {
        let pool = BufferPool::new(0);
        for p in 0..100 {
            load(&pool, p);
        }
        assert_eq!(pool.cached_keys().len(), 100);
        assert_eq!(pool.stats().evictions, 0);
        // everything hits the second time around
        for p in 0..100 {
            load(&pool, p);
        }
        assert_eq!(pool.stats().hits, 100);
    }

    #[test]
    fn loader_error_propagates_and_caches_nothing() {
        let pool = BufferPool::new(2);
        let err = pool.get_or_load(key(1), || Err::<Vec<u8>, &str>("boom")).unwrap_err();
        assert_eq!(err, "boom");
        assert!(pool.cached_keys().is_empty());
        // a later successful load works
        load(&pool, 1);
        assert_eq!(pool.cached_keys(), vec![key(1)]);
    }

    #[test]
    fn clear_empties_cache_but_keeps_counters() {
        let pool = BufferPool::new(0);
        load(&pool, 1);
        load(&pool, 2);
        pool.clear();
        assert!(pool.cached_keys().is_empty());
        assert_eq!(pool.stats().misses, 2);
        load(&pool, 1); // reload after clear is a miss
        assert_eq!(pool.stats().misses, 3);
    }
}
