//! Little-endian binary codec shared by every durable structure.
//!
//! All on-disk formats in the storage tier (pages, WAL records, manifest
//! entries, persisted columns, the higher layers' index and vocabulary
//! blobs) are written through [`ByteWriter`] and read back through
//! [`ByteReader`]. The writer is infallible (it appends to memory); the
//! reader validates every length before touching the buffer and returns
//! [`MonetError::Corrupt`] instead of panicking, which is what lets torn
//! or bit-flipped bytes surface as typed errors all the way up the stack.
//!
//! Byte order is little-endian *by definition*: a big-endian writer would
//! be rejected by the endianness sentinel each file format embeds (see
//! [`ENDIAN_SENTINEL`]), not decoded into garbage.

use crate::column::{Column, StrCol};
use crate::error::{MonetError, Result};
use crate::fxhash::FxHasher;
use crate::strdict::StrDictBuilder;
use std::hash::Hasher;

/// The value every format writes (as `u16`) right after its magic; a
/// reader on a platform or build that disagrees about byte order would
/// see `0xFFFE` and reject the file instead of misreading every integer.
pub const ENDIAN_SENTINEL: u16 = 0xFEFF;

/// 64-bit content checksum used by pages and WAL records (Fx hash — fast,
/// non-cryptographic; we defend against torn writes and bit rot, not
/// adversaries).
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// An append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish and take the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append raw bytes verbatim.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16` (little-endian).
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (bit-exact roundtrip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes());
    }

    /// Append a length-prefixed byte blob.
    pub fn blob(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.bytes(b);
    }
}

/// A validating little-endian byte cursor over a borrowed buffer.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// What is being decoded — included in every error message.
    what: &'a str,
}

impl<'a> ByteReader<'a> {
    /// Create a reader over `buf`; `what` names the structure being
    /// decoded for error messages ("page payload", "WAL record" …).
    pub fn new(buf: &'a [u8], what: &'a str) -> Self {
        ByteReader { buf, pos: 0, what }
    }

    fn corrupt(&self, detail: impl Into<String>) -> MonetError {
        MonetError::Corrupt { what: self.what.to_string(), detail: detail.into() }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the whole buffer has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Take `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.corrupt(format!(
                "need {n} bytes at offset {}, only {} left",
                self.pos,
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Read a `u64` and convert it to `usize`, rejecting values that a
    /// hostile or corrupt length field could use to force an allocation.
    pub fn len64(&mut self, bound: usize) -> Result<usize> {
        let v = self.u64()?;
        if v > bound as u64 {
            return Err(self.corrupt(format!("length {v} exceeds bound {bound}")));
        }
        Ok(v as usize)
    }

    /// Read an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(self.corrupt(format!("string length {n} exceeds remaining bytes")));
        }
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|e| self.corrupt(format!("invalid utf-8: {e}")))
    }

    /// Read a length-prefixed byte blob.
    pub fn blob(&mut self) -> Result<Vec<u8>> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(self.corrupt(format!("blob length {n} exceeds remaining bytes")));
        }
        Ok(self.take(n)?.to_vec())
    }
}

// ---------------------------------------------------------------------------
// Bitpacking — fixed-width packing of u32 values into u64 words, the
// primitive under compressed posting blocks (`ir::postings`), packed
// dictionary codes (`crate::strdict::PackedCodes`) and the on-disk string
// columns below. Values are laid out LSB-first; a width of 0 encodes a run
// of zeros in zero words.
// ---------------------------------------------------------------------------

/// Number of bits needed to represent `max` (0 for `max == 0`).
#[inline]
pub const fn bits_for(max: u32) -> u32 {
    32 - max.leading_zeros()
}

/// Number of `u64` words holding `n` values of `width` bits each.
#[inline]
pub const fn packed_words(n: usize, width: u32) -> usize {
    (n * width as usize).div_ceil(64)
}

/// Append `values` to `words`, `width` bits each, starting at a fresh word
/// boundary. Values must fit in `width` bits (debug-asserted).
pub fn pack_u32s(words: &mut Vec<u64>, values: &[u32], width: u32) {
    if width == 0 {
        debug_assert!(values.iter().all(|&v| v == 0));
        return;
    }
    let base = words.len();
    words.resize(base + packed_words(values.len(), width), 0);
    let mut bit = 0usize;
    for &v in values {
        debug_assert!(width == 32 || u64::from(v) < (1u64 << width), "{v} overflows {width} bits");
        let w = base + (bit >> 6);
        let s = (bit & 63) as u32;
        words[w] |= (v as u64) << s;
        if s + width > 64 {
            words[w + 1] |= (v as u64) >> (64 - s);
        }
        bit += width as usize;
    }
}

/// Decode `n` values of `width` bits each from `words[start..]` (packed by
/// [`pack_u32s`]) into `out`, which is cleared first. The inner loop is
/// branch-light: one shift, one conditional spill-word OR, one mask.
pub fn unpack_u32s(words: &[u64], start: usize, n: usize, width: u32, out: &mut Vec<u32>) {
    out.clear();
    if width == 0 {
        out.resize(n, 0);
        return;
    }
    out.reserve(n);
    let mask = if width == 32 { u64::MAX >> 32 } else { (1u64 << width) - 1 };
    let mut bit = 0usize;
    for _ in 0..n {
        let w = start + (bit >> 6);
        let s = (bit & 63) as u32;
        let lo = words[w] >> s;
        let v = if s + width > 64 { lo | (words[w + 1] << (64 - s)) } else { lo };
        out.push((v & mask) as u32);
        bit += width as usize;
    }
}

/// Decode the single value at index `i` of a [`pack_u32s`] run.
#[inline]
pub fn unpack_u32_at(words: &[u64], start: usize, i: usize, width: u32) -> u32 {
    if width == 0 {
        return 0;
    }
    let mask = if width == 32 { u64::MAX >> 32 } else { (1u64 << width) - 1 };
    let bit = i * width as usize;
    let w = start + (bit >> 6);
    let s = (bit & 63) as u32;
    let lo = words[w] >> s;
    let v = if s + width > 64 { lo | (words[w + 1] << (64 - s)) } else { lo };
    (v & mask) as u32
}

// ---------------------------------------------------------------------------
// Column codec — the single serialisation of kernel columns, shared by the
// whole-BAT persistence layer (`crate::persist`) and the page store's
// columnar values. String columns stay dictionary-encoded on disk — and the
// codes themselves are bitpacked to the dictionary's width — with the
// deduplicated heap after the codes (`crate::strdict`).
// ---------------------------------------------------------------------------

/// Column type tags of the on-disk format.
mod tag {
    pub const VOID: u8 = 0;
    pub const OID: u8 = 1;
    pub const INT: u8 = 2;
    pub const FLOAT: u8 = 3;
    pub const STR: u8 = 4;
}

/// Serialise one column.
pub fn write_column(w: &mut ByteWriter, c: &Column) {
    match c {
        Column::Void { start, len } => {
            w.u8(tag::VOID);
            w.u32(*start);
            w.u64(*len as u64);
        }
        Column::Oid(v) => {
            w.u8(tag::OID);
            w.u64(v.len() as u64);
            for x in v {
                w.u32(*x);
            }
        }
        Column::Int(v) => {
            w.u8(tag::INT);
            w.u64(v.len() as u64);
            for x in v {
                w.u64(*x as u64);
            }
        }
        Column::Float(v) => {
            w.u8(tag::FLOAT);
            w.u64(v.len() as u64);
            for x in v {
                w.f64(*x);
            }
        }
        Column::Str(s) => {
            w.u8(tag::STR);
            w.u64(s.codes.len() as u64);
            let width = if s.dict.len() <= 1 { 0 } else { bits_for(s.dict.len() as u32 - 1) };
            w.u8(width as u8);
            let mut words = Vec::new();
            pack_u32s(&mut words, &s.codes, width);
            for word in &words {
                w.u64(*word);
            }
            w.u64(s.dict.len() as u64);
            for (_, st) in s.dict.iter() {
                w.str(st);
            }
        }
    }
}

/// Deserialise one column, validating lengths and dictionary codes.
pub fn read_column(r: &mut ByteReader<'_>) -> Result<Column> {
    let tag_byte = r.u8()?;
    Ok(match tag_byte {
        tag::VOID => {
            let start = r.u32()?;
            let len = r.len64(u32::MAX as usize)?;
            Column::Void { start, len }
        }
        tag::OID => {
            let n = r.len64(r.remaining() / 4)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.u32()?);
            }
            Column::Oid(v)
        }
        tag::INT => {
            let n = r.len64(r.remaining() / 8)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.u64()? as i64);
            }
            Column::Int(v)
        }
        tag::FLOAT => {
            let n = r.len64(r.remaining() / 8)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.f64()?);
            }
            Column::Float(v)
        }
        tag::STR => {
            // codes are bitpacked: with width ≥ 1 a code is at least one bit,
            // and the width-0 (single-entry dictionary) case is still bounded
            // proportionally to the file size rather than by the claim alone
            let n = r.len64(r.remaining().saturating_mul(64))?;
            let width = r.u8()? as u32;
            if width > 32 {
                return Err(MonetError::Corrupt {
                    what: "string column".to_string(),
                    detail: format!("code width {width} exceeds 32 bits"),
                });
            }
            let n_words = packed_words(n, width);
            if n_words.saturating_mul(8) > r.remaining() {
                return Err(MonetError::Corrupt {
                    what: "string column".to_string(),
                    detail: format!("{n_words} packed code words exceed remaining bytes"),
                });
            }
            let mut words = Vec::with_capacity(n_words);
            for _ in 0..n_words {
                words.push(r.u64()?);
            }
            let mut codes = Vec::new();
            unpack_u32s(&words, 0, n, width, &mut codes);
            let dict_len = r.len64(r.remaining())?;
            let mut builder = StrDictBuilder::new();
            for _ in 0..dict_len {
                builder.intern(&r.str()?);
            }
            // a corrupt code that escapes the dictionary would panic at
            // resolve time deep inside the kernel — reject it here
            if let Some(&bad) = codes.iter().find(|&&c| c as usize >= dict_len) {
                return Err(MonetError::Corrupt {
                    what: "string column".to_string(),
                    detail: format!("code {bad} outside dictionary of {dict_len} entries"),
                });
            }
            Column::Str(StrCol { codes, dict: builder.freeze() })
        }
        other => {
            return Err(MonetError::Corrupt {
                what: "column".to_string(),
                detail: format!("unknown column tag {other}"),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u16(ENDIAN_SENTINEL);
        w.u32(123_456);
        w.u64(u64::MAX - 5);
        w.f64(-0.125);
        w.str("héllo");
        w.blob(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "test");
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), ENDIAN_SENTINEL);
        assert_eq!(r.u32().unwrap(), 123_456);
        assert_eq!(r.u64().unwrap(), u64::MAX - 5);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.blob().unwrap(), vec![1, 2, 3]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let bytes = [1u8, 2];
        let mut r = ByteReader::new(&bytes, "frag");
        assert!(matches!(r.u64(), Err(MonetError::Corrupt { what, .. }) if what == "frag"));
    }

    #[test]
    fn oversized_length_is_rejected_not_allocated() {
        let mut w = ByteWriter::new();
        w.u64(u64::MAX); // ludicrous element count
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "len");
        assert!(r.len64(1024).is_err());
    }

    #[test]
    fn column_roundtrip_all_types() {
        let mut dict = StrDictBuilder::new();
        let codes = vec![dict.intern("a"), dict.intern("b"), dict.intern("a")];
        let cols = vec![
            Column::Void { start: 7, len: 3 },
            Column::Oid(vec![1, 5, 9]),
            Column::Int(vec![-3, 0, i64::MAX]),
            Column::Float(vec![0.5, -2.25, f64::MIN_POSITIVE]),
            Column::Str(StrCol { codes, dict: dict.freeze() }),
        ];
        for col in &cols {
            let mut w = ByteWriter::new();
            write_column(&mut w, col);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes, "column");
            let back = read_column(&mut r).unwrap();
            assert!(r.is_exhausted());
            match (col, &back) {
                (Column::Str(a), Column::Str(b)) => {
                    assert_eq!(a.codes, b.codes);
                    assert_eq!(a.dict.len(), b.dict.len());
                }
                (a, b) => assert_eq!(format!("{a:?}"), format!("{b:?}")),
            }
        }
    }

    #[test]
    fn string_codes_outside_dictionary_are_corrupt() {
        let mut w = ByteWriter::new();
        w.u8(4); // STR tag
        w.u64(1); // one code
        w.u8(4); // packed at 4 bits
        w.u64(9); // … pointing outside the dictionary
        w.u64(1); // one dict entry
        w.str("only");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "col");
        assert!(matches!(read_column(&mut r), Err(MonetError::Corrupt { .. })));
    }

    #[test]
    fn bitpack_roundtrip_every_width() {
        for width in 0u32..=32 {
            let max = if width == 0 { 0 } else { u32::MAX >> (32 - width) };
            let values: Vec<u32> = (0..97u32)
                .map(|i| if width == 0 { 0 } else { (i.wrapping_mul(2654435761)) % (max / 2 + 1) })
                .chain([0, max])
                .collect();
            assert!(values.iter().all(|&v| u64::from(v) <= u64::from(max)));
            let mut words = Vec::new();
            pack_u32s(&mut words, &values, width);
            assert_eq!(words.len(), packed_words(values.len(), width));
            let mut back = Vec::new();
            unpack_u32s(&words, 0, values.len(), width, &mut back);
            assert_eq!(back, values, "width {width}");
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(unpack_u32_at(&words, 0, i, width), v, "width {width} idx {i}");
            }
        }
    }

    #[test]
    fn bitpack_runs_start_on_word_boundaries() {
        // two runs appended back to back stay independently addressable
        let a = [1u32, 2, 3];
        let b = [7u32, 0, 7, 7];
        let mut words = Vec::new();
        pack_u32s(&mut words, &a, 2);
        let b_start = words.len();
        pack_u32s(&mut words, &b, 3);
        let mut out = Vec::new();
        unpack_u32s(&words, 0, a.len(), 2, &mut out);
        assert_eq!(out, a);
        unpack_u32s(&words, b_start, b.len(), 3, &mut out);
        assert_eq!(out, b);
    }

    #[test]
    fn bits_for_matches_definition() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(127), 7);
        assert_eq!(bits_for(128), 8);
        assert_eq!(bits_for(u32::MAX), 32);
    }

    #[test]
    fn checksum_is_stable_and_sensitive() {
        let a = checksum64(b"hello world");
        assert_eq!(a, checksum64(b"hello world"));
        assert_ne!(a, checksum64(b"hello worle"));
        assert_ne!(a, checksum64(b"hello worl"));
    }
}
