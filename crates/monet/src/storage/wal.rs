//! Write-ahead log: append-only records with CRC framing and a
//! commit-terminated transaction discipline.
//!
//! Record layout on disk (all little-endian):
//!
//! ```text
//! [u32 len][u64 crc][u8 kind][payload...]
//! ```
//!
//! `len` counts the kind byte plus the payload; `crc` is fx64 over the
//! kind byte and payload. Two kinds exist: `Put {key, value}` (kind 1)
//! and `Commit` (kind 2). Writers append the puts of a transaction and
//! then a commit record, syncing after the commit — a transaction is
//! durable exactly when its commit record is fully on disk.
//!
//! Replay scans from the start, buffering puts until a commit seals
//! them. A record that is truncated, short, or fails its CRC ends the
//! scan: it and everything after it (including any unsealed puts) is the
//! torn tail a crash left behind, and is discarded — counted, never
//! decoded.

use crate::error::Result;
use crate::storage::backend::StorageBackend;
use crate::storage::codec::checksum64;

/// Default WAL file name within a store's backend namespace.
pub const WAL_FILE: &str = "wal.log";

const KIND_PUT: u8 = 1;
const KIND_COMMIT: u8 = 2;
/// Allocation guard for a single record (16 MiB) — a corrupt length
/// field must not trigger an absurd allocation.
const MAX_RECORD: usize = 16 << 20;

/// Outcome of a [`Wal::replay`]: the committed effects plus an account
/// of what the scan discarded.
#[derive(Debug, Clone, Default)]
pub struct WalReplay {
    /// Committed `(key, value)` puts, in commit order. Later puts to the
    /// same key supersede earlier ones; the store applies them in order.
    pub puts: Vec<(String, Vec<u8>)>,
    /// Number of committed transactions replayed.
    pub transactions: usize,
    /// Whole records discarded: members of transactions never sealed by
    /// a commit.
    pub records_discarded: usize,
    /// Bytes of torn trailing garbage (a partly-written record).
    pub bytes_discarded: usize,
}

/// A write-ahead log over a [`StorageBackend`] file.
#[derive(Debug)]
pub struct Wal<'a> {
    backend: &'a dyn StorageBackend,
    file: String,
}

impl<'a> Wal<'a> {
    /// Handle to the log named `file` on `backend` (created on first append).
    pub fn new(backend: &'a dyn StorageBackend, file: impl Into<String>) -> Self {
        Wal { backend, file: file.into() }
    }

    fn frame(kind: u8, payload: &[u8]) -> Vec<u8> {
        let len = 1 + payload.len();
        let mut hashed = Vec::with_capacity(len);
        hashed.push(kind);
        hashed.extend_from_slice(payload);
        let crc = checksum64(&hashed);
        let mut rec = Vec::with_capacity(12 + len);
        rec.extend_from_slice(&(len as u32).to_le_bytes());
        rec.extend_from_slice(&crc.to_le_bytes());
        rec.extend_from_slice(&hashed);
        rec
    }

    /// Append a `Put {key, value}` record (not yet durable — unsealed
    /// until the next [`commit`](Self::commit)).
    pub fn append_put(&self, key: &str, value: &[u8]) -> Result<()> {
        let mut payload = Vec::with_capacity(8 + key.len() + value.len());
        payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
        payload.extend_from_slice(key.as_bytes());
        payload.extend_from_slice(&(value.len() as u32).to_le_bytes());
        payload.extend_from_slice(value);
        self.backend.append(&self.file, &Self::frame(KIND_PUT, &payload))
    }

    /// Append a commit record and sync — the durability point of every
    /// transaction written since the previous commit.
    pub fn commit(&self) -> Result<()> {
        self.backend.append(&self.file, &Self::frame(KIND_COMMIT, &[]))?;
        self.backend.sync(&self.file)
    }

    /// Scan the log, returning committed puts and discarding the torn
    /// tail. A missing log file is an empty log.
    pub fn replay(&self) -> Result<WalReplay> {
        let mut out = WalReplay::default();
        if !self.backend.exists(&self.file) {
            return Ok(out);
        }
        let bytes = self.backend.read(&self.file)?;
        let mut at = 0usize;
        let mut pending: Vec<(String, Vec<u8>)> = Vec::new();
        loop {
            if at == bytes.len() {
                break; // clean end
            }
            if bytes.len() - at < 12 {
                out.bytes_discarded = bytes.len() - at;
                break; // torn header
            }
            let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
            let crc = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().expect("8 bytes"));
            if len == 0 || len > MAX_RECORD || bytes.len() - at - 12 < len {
                out.bytes_discarded = bytes.len() - at;
                break; // torn or nonsense body
            }
            let body = &bytes[at + 12..at + 12 + len];
            if checksum64(body) != crc {
                out.bytes_discarded = bytes.len() - at;
                break; // bit rot or torn overwrite — stop trusting the tail
            }
            match body[0] {
                KIND_PUT => match Self::decode_put(&body[1..]) {
                    Some(kv) => pending.push(kv),
                    None => {
                        out.bytes_discarded = bytes.len() - at;
                        break;
                    }
                },
                KIND_COMMIT => {
                    out.transactions += 1;
                    out.puts.append(&mut pending);
                }
                _ => {
                    out.bytes_discarded = bytes.len() - at;
                    break;
                }
            }
            at += 12 + len;
        }
        out.records_discarded = pending.len();
        Ok(out)
    }

    fn decode_put(payload: &[u8]) -> Option<(String, Vec<u8>)> {
        if payload.len() < 4 {
            return None;
        }
        let klen = u32::from_le_bytes(payload[0..4].try_into().ok()?) as usize;
        if payload.len() < 4 + klen + 4 {
            return None;
        }
        let key = std::str::from_utf8(&payload[4..4 + klen]).ok()?.to_string();
        let vlen = u32::from_le_bytes(payload[4 + klen..8 + klen].try_into().ok()?) as usize;
        if payload.len() != 8 + klen + vlen {
            return None;
        }
        Some((key, payload[8 + klen..].to_vec()))
    }

    /// Truncate the log to empty (after a checkpoint has absorbed its
    /// effects) and sync.
    pub fn reset(&self) -> Result<()> {
        self.backend.write(&self.file, &[])?;
        self.backend.sync(&self.file)
    }

    /// Current log size in bytes (0 if the file does not exist yet).
    pub fn len(&self) -> Result<u64> {
        if !self.backend.exists(&self.file) {
            return Ok(0);
        }
        self.backend.file_len(&self.file)
    }

    /// True if the log holds no bytes.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::backend::MemFs;

    #[test]
    fn committed_transactions_replay_in_order() {
        let fs = MemFs::new();
        let wal = Wal::new(&fs, WAL_FILE);
        wal.append_put("a", b"1").unwrap();
        wal.append_put("b", b"2").unwrap();
        wal.commit().unwrap();
        wal.append_put("a", b"3").unwrap();
        wal.commit().unwrap();
        let r = wal.replay().unwrap();
        assert_eq!(r.transactions, 2);
        assert_eq!(
            r.puts,
            vec![
                ("a".into(), b"1".to_vec()),
                ("b".into(), b"2".to_vec()),
                ("a".into(), b"3".to_vec()),
            ]
        );
        assert_eq!(r.records_discarded, 0);
        assert_eq!(r.bytes_discarded, 0);
    }

    #[test]
    fn uncommitted_tail_is_discarded_not_replayed() {
        let fs = MemFs::new();
        let wal = Wal::new(&fs, WAL_FILE);
        wal.append_put("a", b"1").unwrap();
        wal.commit().unwrap();
        wal.append_put("b", b"2").unwrap(); // never committed
        let r = wal.replay().unwrap();
        assert_eq!(r.puts, vec![("a".into(), b"1".to_vec())]);
        assert_eq!(r.records_discarded, 1);
    }

    #[test]
    fn every_truncation_point_replays_a_committed_prefix() {
        let fs = MemFs::new();
        let wal = Wal::new(&fs, WAL_FILE);
        wal.append_put("k1", b"v1").unwrap();
        wal.commit().unwrap();
        wal.append_put("k2", b"v2").unwrap();
        wal.commit().unwrap();
        let full = fs.read(WAL_FILE).unwrap();
        for cut in 0..full.len() {
            fs.write(WAL_FILE, &full[..cut]).unwrap();
            let r = wal.replay().expect("replay never errors on truncation");
            // the replayed puts must be a committed prefix: [], [k1], or [k1,k2]
            match r.puts.len() {
                0 => {}
                1 => assert_eq!(r.puts[0].0, "k1"),
                2 => assert_eq!(r.puts[1].0, "k2"),
                n => panic!("impossible put count {n}"),
            }
            if cut < full.len() {
                assert!(
                    r.bytes_discarded > 0 || r.puts.len() < 2 || cut == full.len(),
                    "cut at {cut} silently dropped data"
                );
            }
        }
    }

    #[test]
    fn corrupted_record_ends_the_scan() {
        let fs = MemFs::new();
        let wal = Wal::new(&fs, WAL_FILE);
        wal.append_put("a", b"1").unwrap();
        wal.commit().unwrap();
        wal.append_put("b", b"2").unwrap();
        wal.commit().unwrap();
        let mut bytes = fs.read(WAL_FILE).unwrap();
        // flip a byte inside the second transaction's put record
        let second_tx_start = {
            // first record: 12 + (1 + 4+1+4+1) = 23; commit: 12 + 1 = 13
            23 + 13
        };
        bytes[second_tx_start + 14] ^= 0xFF;
        fs.write(WAL_FILE, &bytes).unwrap();
        let r = wal.replay().unwrap();
        assert_eq!(r.puts, vec![("a".into(), b"1".to_vec())]);
        assert!(r.bytes_discarded > 0);
    }

    #[test]
    fn reset_empties_the_log() {
        let fs = MemFs::new();
        let wal = Wal::new(&fs, WAL_FILE);
        wal.append_put("a", b"1").unwrap();
        wal.commit().unwrap();
        assert!(!wal.is_empty().unwrap());
        wal.reset().unwrap();
        assert!(wal.is_empty().unwrap());
        assert_eq!(wal.replay().unwrap().puts.len(), 0);
    }

    #[test]
    fn missing_log_is_an_empty_log() {
        let fs = MemFs::new();
        let wal = Wal::new(&fs, WAL_FILE);
        let r = wal.replay().unwrap();
        assert!(r.puts.is_empty());
        assert_eq!(wal.len().unwrap(), 0);
    }
}
