//! The page store: a durable key → bytes map built from checkpointed
//! page files plus a write-ahead log, fronted by the buffer pool.
//!
//! ## Layout
//!
//! A store occupies a flat [`StorageBackend`] namespace with:
//!
//! * `pages-{gen:06}.dat` — immutable checkpoint files ("generations").
//!   Each is a run of data pages (values chunked across pages in sorted
//!   key order), then manifest pages (key → page-range entries), then a
//!   single footer page locating the manifest.
//! * `wal.log` — puts committed since the last checkpoint.
//!
//! ## Crash safety without rename
//!
//! Checkpoints are *shadow generations*: a new `pages-{gen+1}.dat` is
//! written page-by-page and synced; only then is the WAL reset and old
//! generations removed. Opening scans for the **highest generation whose
//! footer and manifest validate** — a torn half-written generation simply
//! fails validation and the opener falls back to the previous one. WAL
//! replay over any base is idempotent (puts overwrite by key), so every
//! crash window — mid-checkpoint, after checkpoint but before WAL reset,
//! mid-removal of old gens — recovers to the committed state.
//!
//! ## Recovery state machine (on [`Store::open`])
//!
//! ```text
//! scan files ──▶ candidate gens (desc) ──▶ validate footer+manifest
//!      │                 │ all invalid/none        │ first valid
//!      ▼                 ▼                         ▼
//!   no gens          base = empty             base = gen
//!      └──────────────────┴──────────┬──────────────┘
//!                                    ▼
//!                        WAL replay (committed tail)
//!                                    ▼
//!                 overlay = replayed puts   +   report
//! ```

use crate::error::{MonetError, Result};
use crate::fxhash::FxHashMap;
use crate::storage::backend::StorageBackend;
use crate::storage::page::{decode_page, encode_page, PageKind, PAGE_PAYLOAD, PAGE_SIZE};
use crate::storage::pool::{BufferPool, PageKey, PoolStats};
use crate::storage::wal::{Wal, WAL_FILE};
use parking_lot::Mutex;
use std::sync::Arc;

const FOOTER_MAGIC: u32 = 0x4D46_5431; // "MFT1"

/// Tuning knobs for [`Store::open`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Buffer-pool capacity in pages; `0` = unbounded.
    pub pool_pages: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        // 4 MiB of 4 KiB pages by default
        StoreOptions { pool_pages: 1024 }
    }
}

/// What recovery found and did while opening a store.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Generation number of the base checkpoint used (`None` = empty base).
    pub base_generation: Option<u64>,
    /// Generations that failed validation and were skipped (torn
    /// checkpoints from a crash mid-write).
    pub generations_skipped: Vec<u64>,
    /// Committed transactions replayed from the WAL.
    pub wal_transactions: usize,
    /// Keys whose values came from the WAL overlay.
    pub wal_keys: usize,
    /// Uncommitted WAL records discarded.
    pub records_discarded: usize,
    /// Torn trailing WAL bytes discarded.
    pub bytes_discarded: usize,
}

#[derive(Debug, Clone)]
struct ManifestEntry {
    key: String,
    first_page: u64,
    byte_len: u64,
}

struct StoreInner {
    /// Current base generation (`None` until the first checkpoint).
    generation: Option<u64>,
    /// Key → location in the base generation file.
    manifest: FxHashMap<String, ManifestEntry>,
    /// Committed puts not yet checkpointed (WAL overlay).
    overlay: FxHashMap<String, Vec<u8>>,
    /// Puts staged by [`Store::put`], durable at the next [`Store::commit`].
    staged: Vec<(String, Vec<u8>)>,
    /// Highest generation number ever observed, valid or torn — the next
    /// checkpoint must go above it so a torn higher gen never shadows us.
    max_gen_seen: u64,
}

/// A durable key → bytes map: checkpointed page files + WAL, fronted by
/// a clock-eviction buffer pool. All reads of checkpointed data are
/// checksum-verified page reads; corrupt pages surface as
/// [`MonetError::Corrupt`], never as silently wrong bytes.
pub struct Store {
    backend: Arc<dyn StorageBackend>,
    pool: BufferPool,
    inner: Mutex<StoreInner>,
    recovery: RecoveryReport,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Store")
            .field("generation", &inner.generation)
            .field("manifest_keys", &inner.manifest.len())
            .field("overlay_keys", &inner.overlay.len())
            .field("pool", &self.pool)
            .finish()
    }
}

fn gen_file(generation: u64) -> String {
    format!("pages-{generation:06}.dat")
}

fn parse_gen(file: &str) -> Option<u64> {
    let rest = file.strip_prefix("pages-")?.strip_suffix(".dat")?;
    rest.parse().ok()
}

impl Store {
    /// Open a store, running recovery: pick the newest valid checkpoint
    /// generation, replay the WAL's committed tail over it, and discard
    /// any torn records. Never fails on a torn state — only on real I/O
    /// errors or an unreadable *valid-looking* structure.
    pub fn open(backend: Arc<dyn StorageBackend>, options: StoreOptions) -> Result<Self> {
        let mut report = RecoveryReport::default();
        let mut gens: Vec<u64> = backend.list()?.iter().filter_map(|f| parse_gen(f)).collect();
        gens.sort_unstable_by(|a, b| b.cmp(a)); // newest first
        let max_gen_seen = gens.first().copied().unwrap_or(0);

        let mut generation = None;
        let mut manifest = FxHashMap::default();
        for g in gens {
            match Self::load_manifest(backend.as_ref(), g) {
                Ok(entries) => {
                    manifest = entries.into_iter().map(|e| (e.key.clone(), e)).collect();
                    generation = Some(g);
                    break;
                }
                Err(_) => report.generations_skipped.push(g),
            }
        }
        report.base_generation = generation;

        let replay = Wal::new(backend.as_ref(), WAL_FILE).replay()?;
        report.wal_transactions = replay.transactions;
        report.records_discarded = replay.records_discarded;
        report.bytes_discarded = replay.bytes_discarded;
        let mut overlay = FxHashMap::default();
        for (k, v) in replay.puts {
            overlay.insert(k, v);
        }
        report.wal_keys = overlay.len();

        Ok(Store {
            pool: BufferPool::new(options.pool_pages),
            inner: Mutex::new(StoreInner {
                generation,
                manifest,
                overlay,
                staged: Vec::new(),
                max_gen_seen,
            }),
            backend,
            recovery: report,
        })
    }

    /// What recovery found while opening this store.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Buffer-pool counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// The backend this store writes through.
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    /// All keys currently visible (base ∪ overlay ∪ staged), sorted.
    pub fn keys(&self) -> Vec<String> {
        let inner = self.inner.lock();
        let mut keys: Vec<String> = inner
            .manifest
            .keys()
            .chain(inner.overlay.keys())
            .chain(inner.staged.iter().map(|(k, _)| k))
            .cloned()
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// True if `key` is visible.
    pub fn contains(&self, key: &str) -> bool {
        let inner = self.inner.lock();
        inner.staged.iter().any(|(k, _)| k == key)
            || inner.overlay.contains_key(key)
            || inner.manifest.contains_key(key)
    }

    /// Read a value. Staged puts win over the WAL overlay, which wins
    /// over the checkpointed base. Base reads go through the buffer pool
    /// page by page, each page checksum-verified.
    pub fn get(&self, key: &str) -> Result<Option<Vec<u8>>> {
        let (entry, generation) = {
            let inner = self.inner.lock();
            if let Some((_, v)) = inner.staged.iter().rev().find(|(k, _)| k == key) {
                return Ok(Some(v.clone()));
            }
            if let Some(v) = inner.overlay.get(key) {
                return Ok(Some(v.clone()));
            }
            match (&inner.generation, inner.manifest.get(key)) {
                (Some(g), Some(e)) => (e.clone(), *g),
                _ => return Ok(None),
            }
        };
        let mut value = Vec::with_capacity(entry.byte_len as usize);
        let file = gen_file(generation);
        let mut page_no = entry.first_page;
        while value.len() < entry.byte_len as usize {
            let payload = self.read_page(&file, generation, page_no, PageKind::Data)?;
            let need = entry.byte_len as usize - value.len();
            if payload.len() > need {
                return Err(MonetError::Corrupt {
                    what: format!("value '{key}'"),
                    detail: format!("page run longer than manifest byte_len {}", entry.byte_len),
                });
            }
            value.extend_from_slice(&payload);
            if payload.is_empty() && need > 0 {
                return Err(MonetError::Corrupt {
                    what: format!("value '{key}'"),
                    detail: "empty data page inside a value run".into(),
                });
            }
            page_no += 1;
        }
        Ok(Some(value))
    }

    /// Read one page via the pool, verifying checksum and kind.
    fn read_page(
        &self,
        file: &str,
        generation: u64,
        page_no: u64,
        expect_kind: PageKind,
    ) -> Result<Vec<u8>> {
        let cached = self.pool.get_or_load(
            PageKey { file: generation, page: page_no },
            || -> Result<Vec<u8>> {
                let raw = self.backend.read_at(file, page_no * PAGE_SIZE as u64, PAGE_SIZE)?;
                let (kind, payload) = decode_page(&raw, page_no as u32)?;
                if kind != expect_kind {
                    return Err(MonetError::Corrupt {
                        what: format!("page {page_no} of {file}"),
                        detail: format!("expected {expect_kind:?} page, found {kind:?}"),
                    });
                }
                Ok(payload)
            },
        )?;
        Ok(cached.as_ref().clone())
    }

    /// Stage a put. Nothing is durable until [`commit`](Self::commit).
    pub fn put(&self, key: impl Into<String>, value: Vec<u8>) {
        self.inner.lock().staged.push((key.into(), value));
    }

    /// Write all staged puts to the WAL as one transaction and sync.
    /// After this returns, the puts survive any crash.
    pub fn commit(&self) -> Result<()> {
        let staged = std::mem::take(&mut self.inner.lock().staged);
        if staged.is_empty() {
            return Ok(());
        }
        let wal = Wal::new(self.backend.as_ref(), WAL_FILE);
        for (k, v) in &staged {
            wal.append_put(k, v)?;
        }
        wal.commit()?;
        let mut inner = self.inner.lock();
        for (k, v) in staged {
            inner.overlay.insert(k, v);
        }
        Ok(())
    }

    /// Fold base + overlay into a fresh shadow generation, then reset the
    /// WAL and remove superseded generation files. Crash-safe at every
    /// step (see module docs). No-op when there is nothing to fold.
    pub fn checkpoint(&self) -> Result<()> {
        // materialize the full visible state (base ∪ overlay; staged
        // data is NOT checkpointed — commit first)
        let (pairs, old_gen, new_gen) = {
            let inner = self.inner.lock();
            if inner.overlay.is_empty() && inner.generation.is_some() {
                return Ok(()); // base already reflects everything
            }
            let mut keys: Vec<String> =
                inner.manifest.keys().chain(inner.overlay.keys()).cloned().collect();
            keys.sort_unstable();
            keys.dedup();
            (keys, inner.generation, inner.max_gen_seen + 1)
        };
        let mut resolved: Vec<(String, Vec<u8>)> = Vec::with_capacity(pairs.len());
        for key in pairs {
            if let Some(v) = self.get(&key)? {
                resolved.push((key, v));
            }
        }

        // lay out pages: data runs in key order, then manifest, then footer
        let mut pages: Vec<(PageKind, Vec<u8>)> = Vec::new();
        let mut entries: Vec<ManifestEntry> = Vec::with_capacity(resolved.len());
        for (key, value) in &resolved {
            let first_page = pages.len() as u64;
            if value.is_empty() {
                pages.push((PageKind::Data, Vec::new()));
            } else {
                for chunk in value.chunks(PAGE_PAYLOAD) {
                    pages.push((PageKind::Data, chunk.to_vec()));
                }
            }
            entries.push(ManifestEntry {
                key: key.clone(),
                first_page,
                byte_len: value.len() as u64,
            });
        }
        let manifest_bytes = Self::encode_manifest(&entries);
        let manifest_first = pages.len() as u64;
        if manifest_bytes.is_empty() {
            pages.push((PageKind::Manifest, Vec::new()));
        } else {
            for chunk in manifest_bytes.chunks(PAGE_PAYLOAD) {
                pages.push((PageKind::Manifest, chunk.to_vec()));
            }
        }
        let mut footer = Vec::with_capacity(44);
        footer.extend_from_slice(&FOOTER_MAGIC.to_le_bytes());
        footer.extend_from_slice(&new_gen.to_le_bytes());
        footer.extend_from_slice(&manifest_first.to_le_bytes());
        footer.extend_from_slice(&(pages.len() as u64 - manifest_first).to_le_bytes());
        footer.extend_from_slice(&(manifest_bytes.len() as u64).to_le_bytes());
        footer.extend_from_slice(&(entries.len() as u64).to_le_bytes());
        pages.push((PageKind::Footer, footer));

        // shadow write: the new generation becomes real only once its
        // footer page (written last) validates
        let file = gen_file(new_gen);
        self.backend.remove(&file)?; // clear any torn leftover at this gen
        for (page_no, (kind, payload)) in pages.iter().enumerate() {
            self.backend.append(&file, &encode_page(*kind, page_no as u32, payload))?;
        }
        self.backend.sync(&file)?;

        // swap in the new base, then retire the WAL and old generations.
        // A crash anywhere past the sync is safe: replaying the stale WAL
        // over the new base is idempotent, and a leftover old gen loses
        // to the newer valid one at open.
        {
            let mut inner = self.inner.lock();
            inner.generation = Some(new_gen);
            inner.max_gen_seen = new_gen;
            inner.manifest = entries.into_iter().map(|e| (e.key.clone(), e)).collect();
            inner.overlay.clear();
        }
        Wal::new(self.backend.as_ref(), WAL_FILE).reset()?;
        if let Some(g) = old_gen {
            self.backend.remove(&gen_file(g))?;
        }
        for f in self.backend.list()? {
            if let Some(g) = parse_gen(&f) {
                if g != new_gen {
                    self.backend.remove(&f)?;
                }
            }
        }
        Ok(())
    }

    fn encode_manifest(entries: &[ManifestEntry]) -> Vec<u8> {
        let mut out = Vec::new();
        for e in entries {
            out.extend_from_slice(&(e.key.len() as u32).to_le_bytes());
            out.extend_from_slice(e.key.as_bytes());
            out.extend_from_slice(&e.first_page.to_le_bytes());
            out.extend_from_slice(&e.byte_len.to_le_bytes());
        }
        out
    }

    /// Validate generation `g`'s footer and decode its manifest. Any
    /// failure means "this generation is torn — fall back".
    fn load_manifest(backend: &dyn StorageBackend, g: u64) -> Result<Vec<ManifestEntry>> {
        let file = gen_file(g);
        let len = backend.file_len(&file)?;
        if len < PAGE_SIZE as u64 || len % PAGE_SIZE as u64 != 0 {
            return Err(MonetError::Corrupt {
                what: file,
                detail: format!("file length {len} is not a whole number of pages"),
            });
        }
        let n_pages = len / PAGE_SIZE as u64;
        let footer_no = n_pages - 1;
        let raw = backend.read_at(&file, footer_no * PAGE_SIZE as u64, PAGE_SIZE)?;
        let (kind, payload) = decode_page(&raw, footer_no as u32)?;
        if kind != PageKind::Footer || payload.len() != 44 {
            return Err(MonetError::Corrupt {
                what: file,
                detail: "last page is not a valid footer".into(),
            });
        }
        let word = |at: usize| u64::from_le_bytes(payload[at..at + 8].try_into().expect("8 bytes"));
        let magic = u32::from_le_bytes(payload[0..4].try_into().expect("4 bytes"));
        let footer_gen = word(4);
        let manifest_first = word(12);
        let manifest_pages = word(20);
        let manifest_len = word(28) as usize;
        let n_entries = word(36) as usize;
        if magic != FOOTER_MAGIC || footer_gen != g {
            return Err(MonetError::Corrupt {
                what: file,
                detail: "footer magic/generation mismatch".into(),
            });
        }
        if manifest_first + manifest_pages != footer_no {
            return Err(MonetError::Corrupt {
                what: file,
                detail: "footer manifest range inconsistent with file size".into(),
            });
        }
        let mut manifest_bytes = Vec::with_capacity(manifest_len);
        for p in manifest_first..manifest_first + manifest_pages {
            let raw = backend.read_at(&file, p * PAGE_SIZE as u64, PAGE_SIZE)?;
            let (kind, payload) = decode_page(&raw, p as u32)?;
            if kind != PageKind::Manifest {
                return Err(MonetError::Corrupt {
                    what: file,
                    detail: format!("page {p} should be a manifest page"),
                });
            }
            manifest_bytes.extend_from_slice(&payload);
        }
        if manifest_bytes.len() != manifest_len {
            return Err(MonetError::Corrupt {
                what: file,
                detail: format!(
                    "manifest is {} bytes, footer says {manifest_len}",
                    manifest_bytes.len()
                ),
            });
        }
        let entries = Self::decode_manifest(&manifest_bytes, n_entries, &file)?;
        Ok(entries)
    }

    fn decode_manifest(bytes: &[u8], n_entries: usize, file: &str) -> Result<Vec<ManifestEntry>> {
        let corrupt = |detail: &str| MonetError::Corrupt {
            what: format!("manifest of {file}"),
            detail: detail.into(),
        };
        let mut entries = Vec::with_capacity(n_entries);
        let mut at = 0usize;
        for _ in 0..n_entries {
            if bytes.len() - at < 4 {
                return Err(corrupt("truncated entry header"));
            }
            let klen = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
            at += 4;
            if bytes.len() - at < klen + 16 {
                return Err(corrupt("truncated entry body"));
            }
            let key = std::str::from_utf8(&bytes[at..at + klen])
                .map_err(|_| corrupt("key is not utf-8"))?
                .to_string();
            at += klen;
            let first_page = u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
            let byte_len = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().expect("8 bytes"));
            at += 16;
            entries.push(ManifestEntry { key, first_page, byte_len });
        }
        if at != bytes.len() {
            return Err(corrupt("trailing bytes after last entry"));
        }
        Ok(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::backend::{FaultFs, FaultPlan, MemFs};

    fn mem_store(fs: &MemFs) -> Store {
        Store::open(Arc::new(fs.clone()), StoreOptions::default()).unwrap()
    }

    #[test]
    fn put_commit_get_roundtrip() {
        let fs = MemFs::new();
        let store = mem_store(&fs);
        store.put("alpha", b"one".to_vec());
        store.put("beta", vec![9u8; 10_000]); // spans multiple pages later
        assert_eq!(store.get("alpha").unwrap().unwrap(), b"one"); // staged read
        store.commit().unwrap();
        assert_eq!(store.get("alpha").unwrap().unwrap(), b"one");
        assert_eq!(store.get("beta").unwrap().unwrap(), vec![9u8; 10_000]);
        assert_eq!(store.get("gamma").unwrap(), None);
        assert_eq!(store.keys(), vec!["alpha".to_string(), "beta".to_string()]);
    }

    #[test]
    fn committed_data_survives_reopen_without_checkpoint() {
        let fs = MemFs::new();
        {
            let store = mem_store(&fs);
            store.put("k", b"v".to_vec());
            store.commit().unwrap();
        } // handle dropped = crash without checkpoint
        let store = mem_store(&fs);
        assert_eq!(store.get("k").unwrap().unwrap(), b"v");
        assert_eq!(store.recovery().wal_transactions, 1);
        assert_eq!(store.recovery().base_generation, None);
    }

    #[test]
    fn checkpoint_then_reopen_reads_pages_not_wal() {
        let fs = MemFs::new();
        {
            let store = mem_store(&fs);
            store.put("big", vec![3u8; 20_000]);
            store.put("small", b"s".to_vec());
            store.put("empty", Vec::new());
            store.commit().unwrap();
            store.checkpoint().unwrap();
        }
        let store = mem_store(&fs);
        assert_eq!(store.recovery().base_generation, Some(1));
        assert_eq!(store.recovery().wal_transactions, 0);
        assert_eq!(store.get("big").unwrap().unwrap(), vec![3u8; 20_000]);
        assert_eq!(store.get("small").unwrap().unwrap(), b"s");
        assert_eq!(store.get("empty").unwrap().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn wal_puts_after_checkpoint_overlay_the_base() {
        let fs = MemFs::new();
        {
            let store = mem_store(&fs);
            store.put("k", b"old".to_vec());
            store.commit().unwrap();
            store.checkpoint().unwrap();
            store.put("k", b"new".to_vec());
            store.commit().unwrap();
        }
        let store = mem_store(&fs);
        assert_eq!(store.get("k").unwrap().unwrap(), b"new");
    }

    #[test]
    fn torn_checkpoint_falls_back_to_previous_generation() {
        let fs = MemFs::new();
        {
            let store = mem_store(&fs);
            store.put("k", b"v1".to_vec());
            store.commit().unwrap();
            store.checkpoint().unwrap(); // gen 1
        }
        // fake a torn gen 2: some pages but no valid footer
        fs.append("pages-000002.dat", &vec![0u8; PAGE_SIZE * 2]).unwrap();
        let store = mem_store(&fs);
        assert_eq!(store.recovery().base_generation, Some(1));
        assert_eq!(store.recovery().generations_skipped, vec![2]);
        assert_eq!(store.get("k").unwrap().unwrap(), b"v1");
        // the next checkpoint must go to gen 3, above the torn gen 2
        store.put("k", b"v2".to_vec());
        store.commit().unwrap();
        store.checkpoint().unwrap();
        let store2 = mem_store(&fs);
        assert_eq!(store2.recovery().base_generation, Some(3));
        assert_eq!(store2.get("k").unwrap().unwrap(), b"v2");
    }

    #[test]
    fn flipped_page_byte_is_reported_never_served() {
        let fs = MemFs::new();
        {
            let store = mem_store(&fs);
            store.put("k", vec![7u8; 5000]);
            store.commit().unwrap();
            store.checkpoint().unwrap();
        }
        // corrupt a byte in the middle of the first data page's payload
        fs.corrupt("pages-000001.dat", 100, 0x01).unwrap();
        let store = mem_store(&fs);
        let err = store.get("k").unwrap_err();
        assert!(matches!(err, MonetError::Corrupt { .. }), "got {err:?}");
    }

    #[test]
    fn crash_mid_checkpoint_recovers_from_wal() {
        // learn the write count of a full fault-free run, then crash at
        // every mutating operation along the way and verify recovery
        let counter = Arc::new(FaultFs::new(Arc::new(MemFs::new()), FaultPlan::default()));
        {
            let store = Store::open(counter.clone(), StoreOptions::default()).unwrap();
            store.put("a", vec![1u8; 6000]);
            store.put("b", b"bee".to_vec());
            store.commit().unwrap();
            store.checkpoint().unwrap();
        }
        let n = counter.writes_issued();
        assert!(n > 3, "workload too small to be interesting: {n} writes");

        for crash_at in 0..n {
            for torn in [0usize, 3] {
                let disk = MemFs::new();
                let faulty = Arc::new(FaultFs::new(
                    Arc::new(disk.clone()),
                    FaultPlan {
                        crash_at_write: Some(crash_at),
                        torn_bytes: torn,
                        ..Default::default()
                    },
                ));
                let store = Store::open(faulty, StoreOptions::default()).unwrap();
                store.put("a", vec![1u8; 6000]);
                store.put("b", b"bee".to_vec());
                let committed = store.commit().is_ok();
                let _ = store.checkpoint(); // may crash — fine
                drop(store);
                // reopen on the survived bytes
                let store = mem_store(&disk);
                if committed {
                    assert_eq!(
                        store.get("a").unwrap().unwrap(),
                        vec![1u8; 6000],
                        "crash at write {crash_at} torn {torn} lost committed data"
                    );
                    assert_eq!(store.get("b").unwrap().unwrap(), b"bee");
                } else {
                    // crashed before commit: all-or-nothing
                    assert!(
                        store.get("a").unwrap().is_none(),
                        "crash at write {crash_at} leaked uncommitted data"
                    );
                }
            }
        }
    }

    #[test]
    fn small_pool_and_unbounded_pool_read_identically() {
        let fs = MemFs::new();
        {
            let store = mem_store(&fs);
            for i in 0..20 {
                store.put(format!("key-{i:02}"), vec![i as u8; 3000 + i * 137]);
            }
            store.commit().unwrap();
            store.checkpoint().unwrap();
        }
        let tiny = Store::open(Arc::new(fs.clone()), StoreOptions { pool_pages: 2 }).unwrap();
        let huge = Store::open(Arc::new(fs.clone()), StoreOptions { pool_pages: 0 }).unwrap();
        for i in (0..20).chain((0..20).rev()) {
            let key = format!("key-{i:02}");
            assert_eq!(tiny.get(&key).unwrap(), huge.get(&key).unwrap(), "key {key}");
        }
        assert!(tiny.pool_stats().evictions > 0, "tiny pool never evicted");
        assert_eq!(huge.pool_stats().evictions, 0);
    }

    #[test]
    fn checkpoint_is_idempotent_when_clean() {
        let fs = MemFs::new();
        let store = mem_store(&fs);
        store.put("k", b"v".to_vec());
        store.commit().unwrap();
        store.checkpoint().unwrap();
        let files_before = fs.list().unwrap();
        store.checkpoint().unwrap(); // nothing to fold — no-op
        assert_eq!(fs.list().unwrap(), files_before);
    }
}
