//! Fixed-size checksummed pages — the unit of I/O and caching.
//!
//! A page file is a sequence of 4096-byte pages. Every page carries a
//! 24-byte header:
//!
//! ```text
//! offset  size  field
//!      0     4  magic        0x4D50_4731 ("MPG1", little-endian)
//!      4     2  version      1
//!      6     2  kind         0 = Data, 1 = Manifest, 2 = Footer
//!      8     4  payload_len  bytes of payload actually used (≤ 4072)
//!     12     4  page_no      position of this page within its file
//!     16     8  checksum     fx64 over header[0..16] ++ payload
//! ```
//!
//! The checksum covers the header prefix *and* the used payload, so a
//! flipped bit anywhere meaningful — including in `page_no`, which pins
//! a page to its slot — is detected on read. Unused tail bytes are
//! zero-filled and excluded from the checksum so short payloads don't
//! pay to hash padding.

use crate::error::{MonetError, Result};
use crate::storage::codec::checksum64;

/// Size of every page on disk, in bytes.
pub const PAGE_SIZE: usize = 4096;
/// Bytes reserved for the page header.
pub const PAGE_HEADER: usize = 24;
/// Usable payload bytes per page.
pub const PAGE_PAYLOAD: usize = PAGE_SIZE - PAGE_HEADER;

const PAGE_MAGIC: u32 = 0x4D50_4731;
const PAGE_VERSION: u16 = 1;

/// What a page holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageKind {
    /// A chunk of a stored value.
    Data,
    /// A chunk of the file's key → page-range manifest.
    Manifest,
    /// The final page of a file: generation metadata locating the manifest.
    Footer,
}

impl PageKind {
    fn code(self) -> u16 {
        match self {
            PageKind::Data => 0,
            PageKind::Manifest => 1,
            PageKind::Footer => 2,
        }
    }

    fn from_code(code: u16) -> Option<Self> {
        match code {
            0 => Some(PageKind::Data),
            1 => Some(PageKind::Manifest),
            2 => Some(PageKind::Footer),
            _ => None,
        }
    }
}

/// Encode a payload into one `PAGE_SIZE` page. Panics if the payload
/// exceeds [`PAGE_PAYLOAD`] — callers chunk values before paging them.
pub fn encode_page(kind: PageKind, page_no: u32, payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= PAGE_PAYLOAD, "payload {} exceeds page capacity", payload.len());
    let mut page = vec![0u8; PAGE_SIZE];
    page[0..4].copy_from_slice(&PAGE_MAGIC.to_le_bytes());
    page[4..6].copy_from_slice(&PAGE_VERSION.to_le_bytes());
    page[6..8].copy_from_slice(&kind.code().to_le_bytes());
    page[8..12].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    page[12..16].copy_from_slice(&page_no.to_le_bytes());
    page[PAGE_HEADER..PAGE_HEADER + payload.len()].copy_from_slice(payload);
    let mut hashed = Vec::with_capacity(16 + payload.len());
    hashed.extend_from_slice(&page[0..16]);
    hashed.extend_from_slice(payload);
    page[16..24].copy_from_slice(&checksum64(&hashed).to_le_bytes());
    page
}

/// Decode and validate one page read from slot `expect_page_no`. Returns
/// the kind and the used payload. Any mismatch — magic, version, kind
/// code, length, slot, checksum — is a typed [`MonetError::Corrupt`] (or
/// [`MonetError::FormatVersion`] for a clean version skew).
pub fn decode_page(bytes: &[u8], expect_page_no: u32) -> Result<(PageKind, Vec<u8>)> {
    let corrupt =
        |detail: String| MonetError::Corrupt { what: format!("page {expect_page_no}"), detail };
    if bytes.len() != PAGE_SIZE {
        return Err(corrupt(format!("wrong size {} (expected {PAGE_SIZE})", bytes.len())));
    }
    let word =
        |at: usize| u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]);
    if word(0) != PAGE_MAGIC {
        return Err(corrupt(format!("bad magic {:#010x}", word(0))));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != PAGE_VERSION {
        return Err(MonetError::FormatVersion {
            found: version as u32,
            expected: PAGE_VERSION as u32,
        });
    }
    let kind_code = u16::from_le_bytes([bytes[6], bytes[7]]);
    let kind =
        PageKind::from_code(kind_code).ok_or_else(|| corrupt(format!("bad kind {kind_code}")))?;
    let payload_len = word(8) as usize;
    if payload_len > PAGE_PAYLOAD {
        return Err(corrupt(format!("payload_len {payload_len} exceeds capacity")));
    }
    let page_no = word(12);
    if page_no != expect_page_no {
        return Err(corrupt(format!("page stamped {page_no}, read from slot {expect_page_no}")));
    }
    let stored = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let mut hashed = Vec::with_capacity(16 + payload_len);
    hashed.extend_from_slice(&bytes[0..16]);
    hashed.extend_from_slice(&bytes[PAGE_HEADER..PAGE_HEADER + payload_len]);
    if checksum64(&hashed) != stored {
        return Err(corrupt("checksum mismatch".into()));
    }
    Ok((kind, bytes[PAGE_HEADER..PAGE_HEADER + payload_len].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds() {
        for (kind, payload) in [
            (PageKind::Data, vec![7u8; PAGE_PAYLOAD]),
            (PageKind::Manifest, b"manifest bytes".to_vec()),
            (PageKind::Footer, Vec::new()),
        ] {
            let page = encode_page(kind, 42, &payload);
            assert_eq!(page.len(), PAGE_SIZE);
            let (k, p) = decode_page(&page, 42).unwrap();
            assert_eq!(k, kind);
            assert_eq!(p, payload);
        }
    }

    #[test]
    fn every_flipped_byte_in_used_region_is_detected() {
        let payload = b"the quick brown fox".to_vec();
        let page = encode_page(PageKind::Data, 3, &payload);
        for at in 0..PAGE_HEADER + payload.len() {
            let mut bad = page.clone();
            bad[at] ^= 0x40;
            assert!(decode_page(&bad, 3).is_err(), "flip at byte {at} went undetected");
        }
    }

    #[test]
    fn wrong_slot_is_corrupt() {
        let page = encode_page(PageKind::Data, 5, b"x");
        let err = decode_page(&page, 6).unwrap_err();
        assert!(matches!(err, MonetError::Corrupt { .. }));
    }

    #[test]
    fn version_skew_is_typed() {
        let mut page = encode_page(PageKind::Data, 0, b"x");
        page[4..6].copy_from_slice(&9u16.to_le_bytes());
        // re-stamp checksum so only the version differs
        let mut hashed = Vec::new();
        hashed.extend_from_slice(&page[0..16]);
        hashed.extend_from_slice(b"x");
        let sum = checksum64(&hashed).to_le_bytes();
        page[16..24].copy_from_slice(&sum);
        let err = decode_page(&page, 0).unwrap_err();
        assert_eq!(err, MonetError::FormatVersion { found: 9, expected: 1 });
    }

    #[test]
    fn truncated_page_is_corrupt() {
        let page = encode_page(PageKind::Data, 0, b"payload");
        let err = decode_page(&page[..100], 0).unwrap_err();
        assert!(matches!(err, MonetError::Corrupt { .. }));
    }
}
