//! The storage backend abstraction: a flat namespace of byte files.
//!
//! Everything durable — page files, the write-ahead log — goes through
//! [`StorageBackend`], a deliberately small file-system surface. Three
//! implementations ship with the kernel:
//!
//! * [`DiskFs`] — real files under a root directory (production);
//! * [`MemFs`] — an in-memory map, cheaply cloneable so a test can keep a
//!   handle to "the disk" while the store's handle dies with a simulated
//!   crash;
//! * [`FaultFs`] — a deterministic fault injector wrapping any backend:
//!   crash at the Nth write (leaving a configurable torn prefix), flip a
//!   byte of a chosen write, then refuse all further I/O like a dead
//!   process would.
//!
//! The fault injector is what turns "crash-consistency" from a design
//! claim into a tested property: the crash-recovery suite replays ingest
//! against every reachable crash point and asserts recovery.

use crate::error::{MonetError, Result};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn io_err(file: &str, e: std::io::Error) -> MonetError {
    MonetError::Io(format!("{file}: {e}"))
}

/// A flat namespace of byte files — the only I/O surface the storage
/// tier uses. File names are simple (no path separators); the backend
/// owns their placement.
pub trait StorageBackend: Send + Sync + std::fmt::Debug {
    /// Read a whole file.
    fn read(&self, file: &str) -> Result<Vec<u8>>;

    /// Read exactly `len` bytes at byte offset `off`. Short files are an
    /// error, not a short read.
    fn read_at(&self, file: &str, off: u64, len: usize) -> Result<Vec<u8>>;

    /// Create or replace a file with `data`.
    fn write(&self, file: &str, data: &[u8]) -> Result<()>;

    /// Append `data` to a file (created if missing).
    fn append(&self, file: &str, data: &[u8]) -> Result<()>;

    /// Current length of a file in bytes.
    fn file_len(&self, file: &str) -> Result<u64>;

    /// True if the file exists.
    fn exists(&self, file: &str) -> bool;

    /// Delete a file (idempotent: deleting a missing file succeeds).
    fn remove(&self, file: &str) -> Result<()>;

    /// Flush a file's bytes to stable storage.
    fn sync(&self, file: &str) -> Result<()>;

    /// All file names, sorted.
    fn list(&self) -> Result<Vec<String>>;
}

// ---------------------------------------------------------------------------
// DiskFs
// ---------------------------------------------------------------------------

/// Real files under a root directory.
#[derive(Debug)]
pub struct DiskFs {
    root: PathBuf,
}

impl DiskFs {
    /// Open (creating if needed) a backend rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| io_err(&root.display().to_string(), e))?;
        Ok(DiskFs { root })
    }

    /// The root directory.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    fn path(&self, file: &str) -> PathBuf {
        debug_assert!(!file.contains(['/', '\\']), "backend file names are flat: {file}");
        self.root.join(file)
    }
}

impl StorageBackend for DiskFs {
    fn read(&self, file: &str) -> Result<Vec<u8>> {
        std::fs::read(self.path(file)).map_err(|e| io_err(file, e))
    }

    fn read_at(&self, file: &str, off: u64, len: usize) -> Result<Vec<u8>> {
        let mut f = std::fs::File::open(self.path(file)).map_err(|e| io_err(file, e))?;
        f.seek(SeekFrom::Start(off)).map_err(|e| io_err(file, e))?;
        let mut buf = vec![0u8; len];
        f.read_exact(&mut buf).map_err(|e| io_err(file, e))?;
        Ok(buf)
    }

    fn write(&self, file: &str, data: &[u8]) -> Result<()> {
        std::fs::write(self.path(file), data).map_err(|e| io_err(file, e))
    }

    fn append(&self, file: &str, data: &[u8]) -> Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(file))
            .map_err(|e| io_err(file, e))?;
        f.write_all(data).map_err(|e| io_err(file, e))
    }

    fn file_len(&self, file: &str) -> Result<u64> {
        Ok(std::fs::metadata(self.path(file)).map_err(|e| io_err(file, e))?.len())
    }

    fn exists(&self, file: &str) -> bool {
        self.path(file).exists()
    }

    fn remove(&self, file: &str) -> Result<()> {
        match std::fs::remove_file(self.path(file)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err(file, e)),
        }
    }

    fn sync(&self, file: &str) -> Result<()> {
        // opening read-only is enough to reach fsync on all platforms we
        // target; a missing file has nothing to sync
        match std::fs::File::open(self.path(file)) {
            Ok(f) => f.sync_all().map_err(|e| io_err(file, e)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err(file, e)),
        }
    }

    fn list(&self) -> Result<Vec<String>> {
        let mut names = Vec::new();
        let entries = std::fs::read_dir(&self.root)
            .map_err(|e| io_err(&self.root.display().to_string(), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("<dir entry>", e))?;
            if entry.file_type().map_err(|e| io_err("<dir entry>", e))?.is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }
}

// ---------------------------------------------------------------------------
// MemFs
// ---------------------------------------------------------------------------

/// An in-memory backend. Clones share the same underlying "disk", which
/// is how crash tests keep the surviving bytes after the crashed handle
/// is dropped.
#[derive(Debug, Clone, Default)]
pub struct MemFs {
    files: Arc<Mutex<BTreeMap<String, Vec<u8>>>>,
}

impl MemFs {
    /// Create an empty in-memory disk.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes held across all files (test/diagnostic aid).
    pub fn total_bytes(&self) -> usize {
        self.files.lock().values().map(Vec::len).sum()
    }

    /// An independent deep copy of the current disk image. Unlike
    /// `clone` (which shares the disk — that is how crash tests keep the
    /// surviving bytes), a fork lets a test corrupt or extend its own
    /// image without affecting a shared fixture.
    pub fn fork(&self) -> MemFs {
        MemFs { files: Arc::new(Mutex::new(self.files.lock().clone())) }
    }

    /// Mutate a file's bytes in place — the test hook behind "a cosmic
    /// ray flipped a bit in a page that was already durable".
    pub fn corrupt(&self, file: &str, offset: usize, xor_mask: u8) -> Result<()> {
        let mut files = self.files.lock();
        let data = files
            .get_mut(file)
            .ok_or_else(|| MonetError::Io(format!("{file}: no such file to corrupt")))?;
        if offset >= data.len() {
            return Err(MonetError::Io(format!("{file}: corrupt offset {offset} past end")));
        }
        data[offset] ^= xor_mask;
        Ok(())
    }
}

impl StorageBackend for MemFs {
    fn read(&self, file: &str) -> Result<Vec<u8>> {
        self.files
            .lock()
            .get(file)
            .cloned()
            .ok_or_else(|| MonetError::Io(format!("{file}: no such file")))
    }

    fn read_at(&self, file: &str, off: u64, len: usize) -> Result<Vec<u8>> {
        let files = self.files.lock();
        let data =
            files.get(file).ok_or_else(|| MonetError::Io(format!("{file}: no such file")))?;
        let off = off as usize;
        if off + len > data.len() {
            return Err(MonetError::Io(format!(
                "{file}: read [{off}, {}) past end {}",
                off + len,
                data.len()
            )));
        }
        Ok(data[off..off + len].to_vec())
    }

    fn write(&self, file: &str, data: &[u8]) -> Result<()> {
        self.files.lock().insert(file.to_string(), data.to_vec());
        Ok(())
    }

    fn append(&self, file: &str, data: &[u8]) -> Result<()> {
        self.files.lock().entry(file.to_string()).or_default().extend_from_slice(data);
        Ok(())
    }

    fn file_len(&self, file: &str) -> Result<u64> {
        self.files
            .lock()
            .get(file)
            .map(|d| d.len() as u64)
            .ok_or_else(|| MonetError::Io(format!("{file}: no such file")))
    }

    fn exists(&self, file: &str) -> bool {
        self.files.lock().contains_key(file)
    }

    fn remove(&self, file: &str) -> Result<()> {
        self.files.lock().remove(file);
        Ok(())
    }

    fn sync(&self, _file: &str) -> Result<()> {
        Ok(())
    }

    fn list(&self) -> Result<Vec<String>> {
        Ok(self.files.lock().keys().cloned().collect())
    }
}

// ---------------------------------------------------------------------------
// FaultFs
// ---------------------------------------------------------------------------

/// One silent byte corruption: XOR `mask` into byte `offset` of the
/// `write_index`-th mutating operation's payload before it lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitFlip {
    /// Zero-based index of the mutating operation to corrupt.
    pub write_index: u64,
    /// Byte offset within that operation's payload (clamped to its end).
    pub offset: usize,
    /// XOR mask (use a non-zero mask to actually flip something).
    pub mask: u8,
}

/// A deterministic fault plan for [`FaultFs`].
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Crash *on* the Nth (zero-based) mutating operation: the operation
    /// lands only its [`torn_bytes`](Self::torn_bytes) prefix, fails, and
    /// every later operation (reads included) fails too.
    pub crash_at_write: Option<u64>,
    /// How many payload bytes of the crashing write still reach the
    /// backend — models a torn sector write.
    pub torn_bytes: usize,
    /// Silent corruptions to apply along the way.
    pub flips: Vec<BitFlip>,
}

/// A fault-injecting wrapper around any backend. Mutating operations
/// (`write`, `append`, `remove`) are counted; the plan decides which one
/// tears and kills the "process", and which have a byte flipped. With an
/// empty plan it is a pure pass-through write counter, which is how tests
/// learn how many crash points a workload exposes.
#[derive(Debug)]
pub struct FaultFs {
    inner: Arc<dyn StorageBackend>,
    plan: FaultPlan,
    writes: AtomicU64,
    crashed: AtomicBool,
}

impl FaultFs {
    /// Wrap `inner` with a fault plan.
    pub fn new(inner: Arc<dyn StorageBackend>, plan: FaultPlan) -> Self {
        FaultFs { inner, plan, writes: AtomicU64::new(0), crashed: AtomicBool::new(false) }
    }

    /// Number of mutating operations issued so far.
    pub fn writes_issued(&self) -> u64 {
        self.writes.load(Ordering::SeqCst)
    }

    /// True once the injected crash has fired.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    fn check_alive(&self) -> Result<()> {
        if self.crashed() {
            return Err(MonetError::Io("injected crash: backend is dead".into()));
        }
        Ok(())
    }

    /// Account one mutating operation; returns the (possibly corrupted)
    /// payload to forward, or `None` if this operation crashes after
    /// landing `torn_bytes` of it.
    fn admit<'a>(&self, data: &'a [u8]) -> Result<(std::borrow::Cow<'a, [u8]>, bool)> {
        self.check_alive()?;
        let idx = self.writes.fetch_add(1, Ordering::SeqCst);
        if self.plan.crash_at_write == Some(idx) {
            self.crashed.store(true, Ordering::SeqCst);
            let torn = self.plan.torn_bytes.min(data.len());
            return Ok((std::borrow::Cow::Borrowed(&data[..torn]), true));
        }
        let mut out = std::borrow::Cow::Borrowed(data);
        for flip in &self.plan.flips {
            if flip.write_index == idx && !data.is_empty() {
                let buf = out.to_mut();
                let at = flip.offset.min(buf.len() - 1);
                buf[at] ^= flip.mask;
            }
        }
        Ok((out, false))
    }
}

impl StorageBackend for FaultFs {
    fn read(&self, file: &str) -> Result<Vec<u8>> {
        self.check_alive()?;
        self.inner.read(file)
    }

    fn read_at(&self, file: &str, off: u64, len: usize) -> Result<Vec<u8>> {
        self.check_alive()?;
        self.inner.read_at(file, off, len)
    }

    fn write(&self, file: &str, data: &[u8]) -> Result<()> {
        let (payload, crash) = self.admit(data)?;
        self.inner.write(file, &payload)?;
        if crash {
            return Err(MonetError::Io(format!("injected crash during write of '{file}'")));
        }
        Ok(())
    }

    fn append(&self, file: &str, data: &[u8]) -> Result<()> {
        let (payload, crash) = self.admit(data)?;
        self.inner.append(file, &payload)?;
        if crash {
            return Err(MonetError::Io(format!("injected crash during append to '{file}'")));
        }
        Ok(())
    }

    fn file_len(&self, file: &str) -> Result<u64> {
        self.check_alive()?;
        self.inner.file_len(file)
    }

    fn exists(&self, file: &str) -> bool {
        !self.crashed() && self.inner.exists(file)
    }

    fn remove(&self, file: &str) -> Result<()> {
        let (_, crash) = self.admit(&[])?;
        if crash {
            // the crash pre-empts the removal: the file survives
            return Err(MonetError::Io(format!("injected crash before remove of '{file}'")));
        }
        self.inner.remove(file)
    }

    fn sync(&self, file: &str) -> Result<()> {
        self.check_alive()?;
        self.inner.sync(file)
    }

    fn list(&self) -> Result<Vec<String>> {
        self.check_alive()?;
        self.inner.list()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(fs: &dyn StorageBackend) {
        fs.write("a.bin", b"hello").unwrap();
        fs.append("a.bin", b" world").unwrap();
        assert_eq!(fs.read("a.bin").unwrap(), b"hello world");
        assert_eq!(fs.read_at("a.bin", 6, 5).unwrap(), b"world");
        assert_eq!(fs.file_len("a.bin").unwrap(), 11);
        assert!(fs.exists("a.bin"));
        fs.sync("a.bin").unwrap();
        assert_eq!(fs.list().unwrap(), vec!["a.bin".to_string()]);
        fs.remove("a.bin").unwrap();
        assert!(!fs.exists("a.bin"));
        fs.remove("a.bin").unwrap(); // idempotent
        assert!(fs.read("a.bin").is_err());
        assert!(fs.read_at("missing", 0, 1).is_err());
    }

    #[test]
    fn memfs_contract() {
        roundtrip(&MemFs::new());
    }

    #[test]
    fn diskfs_contract() {
        let dir = std::env::temp_dir().join(format!("mirror_diskfs_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fs = DiskFs::new(&dir).unwrap();
        roundtrip(&fs);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memfs_clones_share_the_disk() {
        let a = MemFs::new();
        let b = a.clone();
        a.write("x", b"1").unwrap();
        assert_eq!(b.read("x").unwrap(), b"1");
    }

    #[test]
    fn faultfs_crashes_with_torn_prefix_then_stays_dead() {
        let disk = MemFs::new();
        let fs = FaultFs::new(
            Arc::new(disk.clone()),
            FaultPlan { crash_at_write: Some(1), torn_bytes: 2, ..Default::default() },
        );
        fs.write("f", b"first").unwrap(); // write 0 fine
        let err = fs.append("f", b"second").unwrap_err(); // write 1 crashes
        assert!(matches!(err, MonetError::Io(_)));
        assert!(fs.crashed());
        // two torn bytes of the second write landed
        assert_eq!(disk.read("f").unwrap(), b"firstse");
        // everything after the crash fails, reads included
        assert!(fs.read("f").is_err());
        assert!(fs.write("g", b"x").is_err());
        assert!(fs.sync("f").is_err());
        // …but the underlying disk still has the surviving bytes
        assert_eq!(disk.read("f").unwrap(), b"firstse");
    }

    #[test]
    fn faultfs_flips_exactly_the_planned_byte() {
        let disk = MemFs::new();
        let fs = FaultFs::new(
            Arc::new(disk.clone()),
            FaultPlan {
                flips: vec![BitFlip { write_index: 0, offset: 1, mask: 0xFF }],
                ..Default::default()
            },
        );
        fs.write("f", &[0, 0, 0]).unwrap();
        fs.write("g", &[0, 0]).unwrap();
        assert_eq!(disk.read("f").unwrap(), vec![0, 0xFF, 0]);
        assert_eq!(disk.read("g").unwrap(), vec![0, 0]); // only write 0 flipped
        assert_eq!(fs.writes_issued(), 2);
    }

    #[test]
    fn faultfs_passthrough_counts_writes() {
        let fs = FaultFs::new(Arc::new(MemFs::new()), FaultPlan::default());
        fs.write("a", b"x").unwrap();
        fs.append("a", b"y").unwrap();
        fs.remove("a").unwrap();
        assert_eq!(fs.writes_issued(), 3);
        assert!(!fs.crashed());
    }
}
