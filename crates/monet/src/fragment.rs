//! Horizontal fragmentation and data-parallel plan execution.
//!
//! The Mirror paper's "design for scalability" argument is that set-at-a-time
//! BAT algebra makes parallelism a *physical* concern: because every operator
//! consumes and produces whole columns, an operator can be split over
//! contiguous **oid-range fragments** of its input and the per-fragment
//! results merged, without the logical layer (Moa) knowing anything about it.
//! This module cashes that cheque:
//!
//! * [`bounds`] / [`fragments`] split a BAT into at most `degree` contiguous
//!   row ranges (for the dominant dense-headed BATs these are exactly
//!   oid ranges), each fragment carrying its own [`Props`] — slicing
//!   preserves sortedness and keyness, so per-fragment operator selection
//!   still works;
//! * `par_select`, `par_join`, `par_agg_tail`, `par_grouped_agg`,
//!   `par_project` and `par_mark` run one kernel operator per fragment on
//!   scoped threads and merge the partial results **in fragment order**, so
//!   output rows appear exactly as the serial operator would emit them;
//! * [`ParallelExecutor`] wraps the plan interpreter ([`Executor`]) with a
//!   configured degree, so whole plans transparently scale across cores.
//!
//! ## Merge discipline
//!
//! Selection and join fragments produce *global row positions*, which are
//! concatenated and gathered with a single `take` — the exact code path the
//! serial operator uses, so results are bit-identical. Scalar and grouped
//! aggregates use partial accumulators merged associatively; for integer
//! inputs (and floats holding integer values) this is also bit-identical.
//! For general floating-point sums the merge reassociates additions, so the
//! result may differ from serial in the last ulp — the same caveat every
//! parallel DBMS documents.
//!
//! Threads are spawned per fragmented operator via [`std::thread::scope`];
//! fragments borrow the input columns, so no data is copied for selection,
//! join probes, or scalar aggregation.

use crate::aggr::Agg;
use crate::bat::Bat;
use crate::catalog::Catalog;
use crate::column::Column;
use crate::error::{MonetError, Result};
use crate::ext::OpRegistry;
use crate::join::{build_hash_table, check_joinable, fetch_probe_span, hash_probe_span};
use crate::plan::{ExecStats, Executor, Plan, Pred};
use crate::props::Props;
use crate::select::{scan_range_span, scan_str_span, str_matching_flags};
use crate::value::{Oid, Val};
use std::ops::Bound;
use std::sync::Arc;

/// Default row threshold below which operators stay serial: fragmenting a
/// small BAT costs more in thread spawns than the scan saves.
pub const DEFAULT_MIN_FRAGMENT_ROWS: usize = 4096;

/// Resolve a requested parallelism degree: `0` means "use every core"
/// ([`std::thread::available_parallelism`]), anything else is taken as-is.
pub fn resolve_degree(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        requested
    }
}

/// Split `rows` into at most `degree` contiguous `[lo, hi)` ranges of
/// near-equal size. Every range is non-empty; fewer than `degree` ranges
/// are returned when there are fewer rows than fragments.
pub fn bounds(rows: usize, degree: usize) -> Vec<(usize, usize)> {
    let parts = degree.max(1).min(rows);
    if parts == 0 {
        return Vec::new();
    }
    let base = rows / parts;
    let extra = rows % parts;
    let mut out = Vec::with_capacity(parts);
    let mut lo = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push((lo, lo + len));
        lo += len;
    }
    out
}

/// Materialise the horizontal fragments of a BAT: one slice per range from
/// [`bounds`]. Each fragment keeps the parent's property bits (slicing
/// preserves sortedness and keyness), so fragment-local operator selection
/// — merge join, binary-search select — still fires.
pub fn fragments(b: &Bat, degree: usize) -> Vec<Bat> {
    bounds(b.count(), degree).into_iter().map(|(lo, hi)| b.slice(lo, hi)).collect()
}

/// Run `f` once per span on scoped threads, collecting results in span
/// order (deterministic merges need fragment order, not completion order).
fn par_spans<T, F>(spans: &[(usize, usize)], f: F) -> Vec<T>
where
    T: Send,
    F: Fn((usize, usize)) -> T + Sync,
{
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = spans.iter().map(|&span| scope.spawn(move || f(span))).collect();
        handles.into_iter().map(|h| h.join().expect("fragment worker panicked")).collect()
    })
}

/// Fragment-parallel selection: each fragment scans its row span for
/// qualifying positions; the concatenated positions feed one ordered gather,
/// exactly like the serial scan.
pub fn par_select(b: &Bat, pred: &Pred, degree: usize) -> Result<Bat> {
    let spans = bounds(b.count(), degree);
    if spans.len() <= 1 {
        return crate::plan::apply_pred(b, pred);
    }
    let parts: Vec<Result<Vec<u32>>> = match pred {
        Pred::StrContains(pat) => {
            let s = b.tail().str_col()?;
            let matching = str_matching_flags(s, pat);
            par_spans(&spans, |span| Ok(scan_str_span(s, &matching, span)))
        }
        Pred::Eq(v) => par_spans(&spans, |span| {
            scan_range_span(b.tail(), Bound::Included(v), Bound::Included(v), span)
        }),
        Pred::Range { lo, lo_incl, hi, hi_incl } => {
            let lo_b = match lo {
                None => Bound::Unbounded,
                Some(v) if *lo_incl => Bound::Included(v),
                Some(v) => Bound::Excluded(v),
            };
            let hi_b = match hi {
                None => Bound::Unbounded,
                Some(v) if *hi_incl => Bound::Included(v),
                Some(v) => Bound::Excluded(v),
            };
            par_spans(&spans, |span| scan_range_span(b.tail(), lo_b, hi_b, span))
        }
    };
    let mut positions = Vec::new();
    for p in parts {
        positions.extend(p?);
    }
    Ok(b.take_ordered(&positions))
}

/// Fragment-parallel join: the probe (left) side is split by row ranges and
/// every fragment probes the full build side — a positional test when the
/// build head is void, a shared read-only hash table otherwise. Matches are
/// emitted in probe-row order, so the merged output equals the serial join.
pub fn par_join(l: &Bat, r: &Bat, degree: usize) -> Result<Bat> {
    check_joinable("join", l.tail(), r.head())?;
    let spans = bounds(l.count(), degree);
    if spans.len() <= 1 {
        return l.join(r);
    }
    if let Column::Void { start, len } = *r.head() {
        let parts = par_spans(&spans, |span| fetch_probe_span(l.tail(), start, len, span));
        let (left_pos, right_pos) = concat_pairs(parts)?;
        let head = l.head().take(&left_pos);
        let tail = r.tail().take(&right_pos);
        let props = Props {
            head_sorted: l.props().head_sorted,
            head_key: l.props().head_key, // void build head is a key
            ..Props::default()
        };
        Ok(Bat::from_arcs(Arc::new(head), Arc::new(tail), props))
    } else {
        let table = build_hash_table(r.head());
        let parts = par_spans(&spans, |span| Ok(hash_probe_span(l.tail(), &table, span)));
        let (left_pos, right_pos) = concat_pairs(parts)?;
        let head = l.head().take(&left_pos);
        let tail = r.tail().take(&right_pos);
        Ok(Bat::from_arcs(Arc::new(head), Arc::new(tail), Props::unknown()))
    }
}

fn concat_pairs(parts: Vec<Result<(Vec<u32>, Vec<u32>)>>) -> Result<(Vec<u32>, Vec<u32>)> {
    let mut left = Vec::new();
    let mut right = Vec::new();
    for p in parts {
        let (l, r) = p?;
        left.extend(l);
        right.extend(r);
    }
    Ok((left, right))
}

/// Fragment-parallel scalar aggregation: each fragment folds its span into
/// `(sum, min, max)` partials, merged associatively. `Count` needs no scan
/// at all; empty BATs keep the serial identity/error semantics. Integer
/// partials stay in `i64` end-to-end, so integer results are bit-identical
/// to serial; float sums reassociate (see the module docs).
pub fn par_agg_tail(b: &Bat, agg: Agg, degree: usize) -> Result<Val> {
    if agg == Agg::Count {
        return Ok(Val::Int(b.count() as i64));
    }
    if b.is_empty() {
        return b.agg_tail(agg);
    }
    let spans = bounds(b.count(), degree);
    if spans.len() <= 1 {
        return b.agg_tail(agg);
    }
    match b.tail() {
        Column::Int(v) => {
            let partials: Vec<(i64, i64, i64)> = par_spans(&spans, |(lo, hi)| {
                let s = &v[lo..hi];
                (
                    s.iter().sum(),
                    *s.iter().min().expect("non-empty span"),
                    *s.iter().max().expect("non-empty span"),
                )
            });
            let sum: i64 = partials.iter().map(|p| p.0).sum();
            Ok(match agg {
                Agg::Sum => Val::Int(sum),
                Agg::Min => Val::Int(partials.iter().map(|p| p.1).min().expect("non-empty")),
                Agg::Max => Val::Int(partials.iter().map(|p| p.2).max().expect("non-empty")),
                Agg::Avg => Val::Float(sum as f64 / v.len() as f64),
                Agg::Count => unreachable!("handled above"),
            })
        }
        Column::Float(v) => {
            let partials: Vec<(f64, f64, f64)> = par_spans(&spans, |(lo, hi)| {
                let s = &v[lo..hi];
                (
                    s.iter().sum(),
                    s.iter().fold(f64::INFINITY, |a, &b| a.min(b)),
                    s.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b)),
                )
            });
            let sum: f64 = partials.iter().map(|p| p.0).sum();
            Ok(match agg {
                Agg::Sum => Val::Float(sum),
                Agg::Min => Val::Float(partials.iter().fold(f64::INFINITY, |a, p| a.min(p.1))),
                Agg::Max => Val::Float(partials.iter().fold(f64::NEG_INFINITY, |a, p| a.max(p.2))),
                Agg::Avg => Val::Float(sum / v.len() as f64),
                Agg::Count => unreachable!("handled above"),
            })
        }
        other => Err(MonetError::TypeMismatch {
            op: "agg_tail",
            expected: "int|float",
            found: other.ty_str(),
        }),
    }
}

/// Fragment-parallel grouped aggregation for the mergeable aggregates
/// (`Sum`, `Count`): each fragment of `values` aggregates against the full
/// group mapping, producing aligned `[gid(void), partial]` BATs that merge
/// by element-wise addition. Non-mergeable aggregates (`Min`/`Max`/`Avg`
/// use an empty-group sentinel that addition would corrupt) fall back to
/// the serial operator.
pub fn par_grouped_agg(values: &Bat, groups: &Bat, agg: Agg, degree: usize) -> Result<Bat> {
    if !matches!(agg, Agg::Sum | Agg::Count) {
        return values.grouped_agg(groups, agg);
    }
    let spans = bounds(values.count(), degree);
    if spans.len() <= 1 || groups.is_empty() {
        return values.grouped_agg(groups, agg);
    }
    let parts: Vec<Result<Bat>> =
        par_spans(&spans, |(lo, hi)| values.slice(lo, hi).grouped_agg(groups, agg));
    let mut acc_i: Option<Vec<i64>> = None;
    let mut acc_f: Option<Vec<f64>> = None;
    for part in parts {
        match part?.tail() {
            Column::Int(v) => match &mut acc_i {
                Some(acc) => {
                    for (a, &x) in acc.iter_mut().zip(v) {
                        *a += x;
                    }
                }
                None => acc_i = Some(v.clone()),
            },
            Column::Float(v) => match &mut acc_f {
                Some(acc) => {
                    for (a, &x) in acc.iter_mut().zip(v) {
                        *a += x;
                    }
                }
                None => acc_f = Some(v.clone()),
            },
            other => {
                return Err(MonetError::TypeMismatch {
                    op: "par_grouped_agg",
                    expected: "int|float",
                    found: other.ty_str(),
                })
            }
        }
    }
    let col = match (acc_i, acc_f) {
        (Some(v), None) => Column::Int(v),
        (None, Some(v)) => Column::Float(v),
        _ => {
            return Err(MonetError::BadValue(
                "grouped-aggregate fragments disagreed on output type".into(),
            ))
        }
    };
    Ok(Bat::dense(col))
}

/// Concatenate same-typed columns in a single pass — unlike a pairwise
/// fold, the growing prefix is never re-copied. Dense void chains stay
/// void; strings re-intern into the first fragment's dictionary.
fn concat_columns(parts: &[&Column]) -> Result<Column> {
    debug_assert!(!parts.is_empty());
    let total: usize = parts.iter().map(|c| c.len()).sum();
    // dense void chain → one void column, no materialisation
    if parts.iter().all(|c| c.is_void()) {
        let start = parts[0].void_start().expect("checked void");
        let mut next = start;
        if parts.iter().all(|c| {
            let chains = c.void_start() == Some(next);
            next += c.len() as Oid;
            chains
        }) {
            return Ok(Column::Void { start, len: total });
        }
    }
    match parts[0] {
        Column::Void { .. } | Column::Oid(_) => {
            let mut out: Vec<Oid> = Vec::with_capacity(total);
            for c in parts {
                out.extend(c.as_oids()?);
            }
            Ok(Column::Oid(out))
        }
        Column::Int(_) => {
            let mut out: Vec<i64> = Vec::with_capacity(total);
            for c in parts {
                out.extend_from_slice(c.int_slice()?);
            }
            Ok(Column::Int(out))
        }
        Column::Float(_) => {
            let mut out: Vec<f64> = Vec::with_capacity(total);
            for c in parts {
                out.extend_from_slice(c.float_slice()?);
            }
            Ok(Column::Float(out))
        }
        Column::Str(first) => {
            let mut builder = crate::strdict::StrDictBuilder::from_dict(&first.dict);
            let mut codes = Vec::with_capacity(total);
            codes.extend_from_slice(&first.codes);
            for c in &parts[1..] {
                let s = c.str_col()?;
                for &code in &s.codes {
                    codes.push(builder.intern(s.dict.resolve(code)));
                }
            }
            Ok(Column::Str(crate::column::StrCol { codes, dict: builder.freeze() }))
        }
    }
}

/// Fragment-parallel constant projection: each fragment materialises its
/// own constant tail; the merged tail shares the input's head columns.
///
/// The interpreter keeps `project` serial — a constant fill is pure memory
/// bandwidth, so fragmenting it buys nothing there — but explicitly
/// fragmented pipelines use this to project each fragment independently
/// and still merge to the serial result.
pub fn par_project(b: &Bat, v: &Val, degree: usize) -> Result<Bat> {
    let spans = bounds(b.count(), degree);
    if spans.len() <= 1 {
        return b.project(v);
    }
    let parts: Vec<Result<Bat>> = par_spans(&spans, |(lo, hi)| b.slice(lo, hi).project(v));
    let mut tails = Vec::with_capacity(parts.len());
    for p in parts {
        tails.push(p?);
    }
    let tail = concat_columns(&tails.iter().map(Bat::tail).collect::<Vec<_>>())?;
    Ok(Bat::from_arcs(
        b.head_arc(),
        Arc::new(tail),
        Props {
            head_sorted: b.props().head_sorted,
            head_key: b.props().head_key,
            tail_sorted: true,
            tail_key: b.count() <= 1,
        },
    ))
}

/// Fragment-parallel `mark`: fragment `i` marks from `base + lo_i`, so the
/// merged void tails chain densely back into `void(base..)`. Serial `mark`
/// is O(1) (it never materialises the tail), so the interpreter keeps it
/// serial; this exists so explicitly fragmented pipelines can mark each
/// fragment independently and still merge to the serial result.
pub fn par_mark(b: &Bat, base: Oid, degree: usize) -> Result<Bat> {
    let spans = bounds(b.count(), degree);
    if spans.len() <= 1 {
        return Ok(b.mark(base));
    }
    let parts: Vec<Bat> = par_spans(&spans, |(lo, hi)| b.slice(lo, hi).mark(base + lo as Oid));
    let head = concat_columns(&parts.iter().map(Bat::head).collect::<Vec<_>>())?;
    let tail = concat_columns(&parts.iter().map(Bat::tail).collect::<Vec<_>>())?;
    Ok(Bat::from_arcs(
        Arc::new(head),
        Arc::new(tail),
        Props {
            head_sorted: b.props().head_sorted,
            head_key: b.props().head_key,
            tail_sorted: true,
            tail_key: true,
        },
    ))
}

/// A plan interpreter with fragment-parallel operator execution.
///
/// Wraps [`Executor`] over the same shared [`Catalog`] and [`OpRegistry`],
/// with the parallelism degree resolved once at construction (`0` = one
/// thread per available core). The fragment-parallelisable operators —
/// `select`, `join` (probe side), `aggr` and `grouped_aggr`
/// (`Sum`/`Count`) — run per-fragment on scoped threads whenever their
/// input reaches [`min_fragment_rows`](Self::set_min_fragment_rows);
/// everything else executes serially, unchanged.
pub struct ParallelExecutor<'a> {
    inner: Executor<'a>,
}

impl<'a> ParallelExecutor<'a> {
    /// Create a parallel executor; `degree` 0 means one thread per core.
    pub fn new(catalog: &'a Catalog, registry: &'a OpRegistry, degree: usize) -> Self {
        let mut inner = Executor::new(catalog, registry);
        inner.degree = resolve_degree(degree);
        ParallelExecutor { inner }
    }

    /// The resolved parallelism degree.
    pub fn degree(&self) -> usize {
        self.inner.degree
    }

    /// Override the row threshold below which operators stay serial
    /// (default [`DEFAULT_MIN_FRAGMENT_ROWS`]; tests set it to 1 to force
    /// fragmentation on tiny inputs).
    pub fn set_min_fragment_rows(&mut self, rows: usize) {
        self.inner.min_fragment_rows = rows;
    }

    /// Toggle common-subexpression memoisation (defaults to on).
    pub fn set_memoize(&mut self, memoize: bool) {
        self.inner.memoize = memoize;
    }

    /// Execute a plan, returning the result BAT and execution statistics
    /// (including how many operators ran fragmented).
    pub fn run(&self, plan: &Plan) -> Result<(Arc<Bat>, ExecStats)> {
        self.inner.run(plan)
    }

    /// Execute and discard statistics.
    pub fn run_bat(&self, plan: &Plan) -> Result<Arc<Bat>> {
        self.inner.run_bat(plan)
    }

    /// EXPLAIN ANALYZE: execute and render the plan with per-operator row
    /// counts and fragmentation decisions.
    pub fn explain(&self, plan: &Plan) -> Result<String> {
        self.inner.explain(plan)
    }

    /// The wrapped serial interpreter.
    pub fn executor(&self) -> &Executor<'a> {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bat::{bat_of_floats, bat_of_ints, bat_of_strs};

    #[test]
    fn bounds_cover_and_partition() {
        assert_eq!(bounds(10, 3), vec![(0, 4), (4, 7), (7, 10)]);
        assert_eq!(bounds(2, 7), vec![(0, 1), (1, 2)]);
        assert_eq!(bounds(0, 4), Vec::<(usize, usize)>::new());
        assert_eq!(bounds(5, 1), vec![(0, 5)]);
    }

    #[test]
    fn fragments_preserve_props() {
        let b = bat_of_ints((0..100).collect()).analyze();
        let frags = fragments(&b, 4);
        assert_eq!(frags.len(), 4);
        assert_eq!(frags.iter().map(Bat::count).sum::<usize>(), 100);
        for f in &frags {
            assert!(f.props().tail_sorted && f.props().head_key);
        }
        // oid-range heads: fragment 1 starts where fragment 0 ended
        assert_eq!(frags[1].fetch(0).unwrap().0, Val::Oid(25));
    }

    #[test]
    fn par_select_matches_serial() {
        let vals: Vec<i64> = (0..1000).map(|i| (i * 37) % 101).collect();
        let b = bat_of_ints(vals);
        let pred = Pred::Range {
            lo: Some(Val::Int(10)),
            lo_incl: true,
            hi: Some(Val::Int(60)),
            hi_incl: false,
        };
        let serial = crate::plan::apply_pred(&b, &pred).unwrap();
        for d in [1, 2, 3, 8] {
            let par = par_select(&b, &pred, d).unwrap();
            assert_eq!(par.to_pairs(), serial.to_pairs(), "degree {d}");
        }
    }

    #[test]
    fn par_select_strings() {
        let b = bat_of_strs(["sunset beach", "forest", "beach house", "sea"].repeat(20));
        let pred = Pred::StrContains("beach".into());
        let serial = crate::plan::apply_pred(&b, &pred).unwrap();
        let par = par_select(&b, &pred, 3).unwrap();
        assert_eq!(par.to_pairs(), serial.to_pairs());
    }

    #[test]
    fn par_join_fetch_and_hash_match_serial() {
        // fetch path: dense build side
        let l = Bat::dense(Column::Oid((0..500).map(|i| (i * 7) % 600).collect()));
        let r = bat_of_ints((0..550).map(|i| i * 10).collect());
        let serial = l.join(&r).unwrap();
        let par = par_join(&l, &r, 4).unwrap();
        assert_eq!(par.to_pairs(), serial.to_pairs());
        // hash path: materialised build head with duplicates
        let r2 = Bat::new(
            Column::Oid((0..100).map(|i| i % 40).collect()),
            Column::Int((0..100).collect()),
        )
        .unwrap();
        let serial2 = l.join(&r2).unwrap();
        let par2 = par_join(&l, &r2, 4).unwrap();
        assert_eq!(par2.to_pairs(), serial2.to_pairs());
    }

    #[test]
    fn par_agg_matches_serial_for_all_kinds() {
        let ints = bat_of_ints((0..777).map(|i| (i * 13) % 97 - 48).collect());
        let floats = bat_of_floats((0..777).map(|i| ((i * 13) % 97) as f64).collect());
        for agg in [Agg::Sum, Agg::Count, Agg::Min, Agg::Max, Agg::Avg] {
            for d in [2, 5] {
                assert_eq!(
                    par_agg_tail(&ints, agg, d).unwrap(),
                    ints.agg_tail(agg).unwrap(),
                    "{agg} ints degree {d}"
                );
                assert_eq!(
                    par_agg_tail(&floats, agg, d).unwrap(),
                    floats.agg_tail(agg).unwrap(),
                    "{agg} floats degree {d}"
                );
            }
        }
    }

    #[test]
    fn par_grouped_agg_merges_partials() {
        let vals = bat_of_ints((0..300).map(|i| i % 7).collect());
        let groups = Bat::dense(Column::Oid((0..300).map(|i| (i % 5) as Oid).collect()));
        for agg in [Agg::Sum, Agg::Count] {
            let serial = vals.grouped_agg(&groups, agg).unwrap();
            let par = par_grouped_agg(&vals, &groups, agg, 4).unwrap();
            assert_eq!(par.to_pairs(), serial.to_pairs(), "{agg}");
        }
        // non-mergeable aggregates fall back to serial
        let mins = par_grouped_agg(&vals, &groups, Agg::Min, 4).unwrap();
        assert_eq!(mins.to_pairs(), vals.grouped_agg(&groups, Agg::Min).unwrap().to_pairs());
    }

    #[test]
    fn par_project_and_mark_match_serial() {
        let b = bat_of_ints((0..100).collect());
        let serial_p = b.project(&Val::Float(0.5)).unwrap();
        let par_p = par_project(&b, &Val::Float(0.5), 3).unwrap();
        assert_eq!(par_p.to_pairs(), serial_p.to_pairs());
        assert!(par_p.props().tail_sorted);

        let serial_m = b.mark(1000);
        let par_m = par_mark(&b, 1000, 3).unwrap();
        assert_eq!(par_m.to_pairs(), serial_m.to_pairs());
        assert!(par_m.tail().is_void(), "dense mark fragments should chain back to void");
        assert!(par_m.head().is_void(), "dense head fragments should chain back to void");

        // string constants exercise the dictionary re-interning merge
        let serial_s = b.project(&Val::from("tag")).unwrap();
        let par_s = par_project(&b, &Val::from("tag"), 4).unwrap();
        assert_eq!(par_s.to_pairs(), serial_s.to_pairs());
    }

    #[test]
    fn parallel_executor_runs_plans() {
        let cat = Catalog::new();
        cat.register("nums", bat_of_ints((0..10_000).map(|i| i % 100).collect()));
        let reg = OpRegistry::new();
        let mut ex = ParallelExecutor::new(&cat, &reg, 4);
        ex.set_min_fragment_rows(1);
        assert_eq!(ex.degree(), 4);
        let plan =
            Plan::Select { input: Box::new(Plan::load("nums")), pred: Pred::Eq(Val::Int(7)) };
        let (out, stats) = ex.run(&plan).unwrap();
        assert_eq!(out.count(), 100);
        assert!(stats.fragmented_ops >= 1, "select should have fragmented: {stats:?}");
        assert_eq!(stats.degree, 4);
    }

    #[test]
    fn resolve_degree_auto_is_positive() {
        assert!(resolve_degree(0) >= 1);
        assert_eq!(resolve_degree(3), 3);
    }
}
