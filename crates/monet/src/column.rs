//! Typed columns — the storage halves of a BAT.
//!
//! A column is a vector of values of one base type. The special *void*
//! column represents a dense, ascending oid sequence without materialising
//! it; dense-headed BATs (the overwhelmingly common case after flattening)
//! therefore store only their tail.

use crate::error::{MonetError, Result};
use crate::strdict::{StrDict, StrDictBuilder};
use crate::value::{MonetType, Oid, Val};
use std::sync::Arc;

/// A dictionary-encoded string column: fixed-width codes into a shared pool.
#[derive(Debug, Clone)]
pub struct StrCol {
    /// Per-row dictionary codes.
    pub codes: Vec<u32>,
    /// Shared string pool.
    pub dict: Arc<StrDict>,
}

impl StrCol {
    /// Build a string column from an iterator of string slices.
    pub fn from_strs<'a, I: IntoIterator<Item = &'a str>>(items: I) -> Self {
        let mut b = StrDictBuilder::new();
        let codes: Vec<u32> = items.into_iter().map(|s| b.intern(s)).collect();
        StrCol { codes, dict: b.freeze() }
    }

    /// Resolve row `i` to its string.
    #[inline]
    pub fn get(&self, i: usize) -> &str {
        self.dict.resolve(self.codes[i])
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }
}

/// A typed column.
#[derive(Debug, Clone)]
pub enum Column {
    /// Dense ascending oids `start, start+1, …` — never materialised.
    Void {
        /// First oid of the sequence.
        start: Oid,
        /// Number of oids.
        len: usize,
    },
    /// Materialised oid column.
    Oid(Vec<Oid>),
    /// Integer column.
    Int(Vec<i64>),
    /// Float column.
    Float(Vec<f64>),
    /// Dictionary-encoded string column.
    Str(StrCol),
}

impl Column {
    /// An empty column of the given type (void for oids).
    pub fn empty(ty: MonetType) -> Column {
        match ty {
            MonetType::Oid => Column::Oid(Vec::new()),
            MonetType::Int => Column::Int(Vec::new()),
            MonetType::Float => Column::Float(Vec::new()),
            MonetType::Str => Column::Str(StrCol::from_strs(std::iter::empty())),
        }
    }

    /// A void column `[start, start+len)`.
    pub fn void(start: Oid, len: usize) -> Column {
        Column::Void { start, len }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Void { len, .. } => *len,
            Column::Oid(v) => v.len(),
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(s) => s.len(),
        }
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The base type stored in this column.
    pub fn ty(&self) -> MonetType {
        match self {
            Column::Void { .. } | Column::Oid(_) => MonetType::Oid,
            Column::Int(_) => MonetType::Int,
            Column::Float(_) => MonetType::Float,
            Column::Str(_) => MonetType::Str,
        }
    }

    /// Human-readable type tag including voidness.
    pub fn ty_str(&self) -> &'static str {
        match self {
            Column::Void { .. } => "void",
            Column::Oid(_) => "oid",
            Column::Int(_) => "int",
            Column::Float(_) => "float",
            Column::Str(_) => "str",
        }
    }

    /// Fetch the value at row `i`.
    pub fn get(&self, i: usize) -> Result<Val> {
        if i >= self.len() {
            return Err(MonetError::OutOfBounds { index: i, len: self.len() });
        }
        Ok(match self {
            Column::Void { start, .. } => Val::Oid(start + i as Oid),
            Column::Oid(v) => Val::Oid(v[i]),
            Column::Int(v) => Val::Int(v[i]),
            Column::Float(v) => Val::Float(v[i]),
            Column::Str(s) => Val::Str(s.get(i).to_string()),
        })
    }

    /// Materialise the column as oids, if it is an oid/void column.
    pub fn as_oids(&self) -> Result<Vec<Oid>> {
        match self {
            Column::Void { start, len } => Ok((0..*len).map(|i| start + i as Oid).collect()),
            Column::Oid(v) => Ok(v.clone()),
            other => Err(MonetError::TypeMismatch {
                op: "as_oids",
                expected: "oid",
                found: other.ty_str(),
            }),
        }
    }

    /// Borrow the oid slice if materialised; `None` for void columns.
    pub fn oid_slice(&self) -> Option<&[Oid]> {
        match self {
            Column::Oid(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow the integer slice.
    pub fn int_slice(&self) -> Result<&[i64]> {
        match self {
            Column::Int(v) => Ok(v),
            other => Err(MonetError::TypeMismatch {
                op: "int_slice",
                expected: "int",
                found: other.ty_str(),
            }),
        }
    }

    /// Borrow the float slice.
    pub fn float_slice(&self) -> Result<&[f64]> {
        match self {
            Column::Float(v) => Ok(v),
            other => Err(MonetError::TypeMismatch {
                op: "float_slice",
                expected: "float",
                found: other.ty_str(),
            }),
        }
    }

    /// Borrow the string column.
    pub fn str_col(&self) -> Result<&StrCol> {
        match self {
            Column::Str(s) => Ok(s),
            other => Err(MonetError::TypeMismatch {
                op: "str_col",
                expected: "str",
                found: other.ty_str(),
            }),
        }
    }

    /// Oid at position `i` for oid-typed columns (fast path, no `Val`).
    #[inline]
    pub fn oid_at(&self, i: usize) -> Result<Oid> {
        match self {
            Column::Void { start, len } => {
                if i < *len {
                    Ok(start + i as Oid)
                } else {
                    Err(MonetError::OutOfBounds { index: i, len: *len })
                }
            }
            Column::Oid(v) => {
                v.get(i).copied().ok_or(MonetError::OutOfBounds { index: i, len: v.len() })
            }
            other => Err(MonetError::TypeMismatch {
                op: "oid_at",
                expected: "oid",
                found: other.ty_str(),
            }),
        }
    }

    /// Gather: build a new column from the rows at `positions`.
    pub fn take(&self, positions: &[u32]) -> Column {
        match self {
            Column::Void { start, .. } => {
                Column::Oid(positions.iter().map(|&p| start + p).collect())
            }
            Column::Oid(v) => Column::Oid(positions.iter().map(|&p| v[p as usize]).collect()),
            Column::Int(v) => Column::Int(positions.iter().map(|&p| v[p as usize]).collect()),
            Column::Float(v) => Column::Float(positions.iter().map(|&p| v[p as usize]).collect()),
            Column::Str(s) => Column::Str(StrCol {
                codes: positions.iter().map(|&p| s.codes[p as usize]).collect(),
                dict: Arc::clone(&s.dict),
            }),
        }
    }

    /// Contiguous sub-column `[lo, hi)`.
    pub fn slice(&self, lo: usize, hi: usize) -> Column {
        let hi = hi.min(self.len());
        let lo = lo.min(hi);
        match self {
            Column::Void { start, .. } => Column::Void { start: start + lo as Oid, len: hi - lo },
            Column::Oid(v) => Column::Oid(v[lo..hi].to_vec()),
            Column::Int(v) => Column::Int(v[lo..hi].to_vec()),
            Column::Float(v) => Column::Float(v[lo..hi].to_vec()),
            Column::Str(s) => {
                Column::Str(StrCol { codes: s.codes[lo..hi].to_vec(), dict: Arc::clone(&s.dict) })
            }
        }
    }

    /// Concatenate two columns of the same type. Void columns are
    /// materialised unless they chain densely.
    pub fn concat(&self, other: &Column) -> Result<Column> {
        match (self, other) {
            (Column::Void { start: s1, len: l1 }, Column::Void { start: s2, len: l2 })
                if *s2 as usize == *s1 as usize + *l1 =>
            {
                Ok(Column::Void { start: *s1, len: l1 + l2 })
            }
            (a, b) if a.ty() == MonetType::Oid && b.ty() == MonetType::Oid => {
                let mut v = a.as_oids()?;
                v.extend(b.as_oids()?);
                Ok(Column::Oid(v))
            }
            (Column::Int(a), Column::Int(b)) => {
                let mut v = a.clone();
                v.extend_from_slice(b);
                Ok(Column::Int(v))
            }
            (Column::Float(a), Column::Float(b)) => {
                let mut v = a.clone();
                v.extend_from_slice(b);
                Ok(Column::Float(v))
            }
            (Column::Str(a), Column::Str(b)) => {
                let mut builder = StrDictBuilder::from_dict(&a.dict);
                let mut codes = a.codes.clone();
                codes.reserve(b.codes.len());
                for &c in &b.codes {
                    codes.push(builder.intern(b.dict.resolve(c)));
                }
                Ok(Column::Str(StrCol { codes, dict: builder.freeze() }))
            }
            (a, b) => Err(MonetError::TypeMismatch {
                op: "concat",
                expected: a.ty_str(),
                found: b.ty_str(),
            }),
        }
    }

    /// Build a column from a homogeneous list of values.
    pub fn from_vals(vals: &[Val]) -> Result<Column> {
        let Some(first) = vals.first() else {
            return Ok(Column::Int(Vec::new()));
        };
        match first.ty() {
            MonetType::Oid => {
                let mut v = Vec::with_capacity(vals.len());
                for x in vals {
                    v.push(
                        x.as_oid().ok_or_else(|| {
                            MonetError::BadValue(format!("expected oid, got {x}"))
                        })?,
                    );
                }
                Ok(Column::Oid(v))
            }
            MonetType::Int => {
                let mut v = Vec::with_capacity(vals.len());
                for x in vals {
                    v.push(
                        x.as_int().ok_or_else(|| {
                            MonetError::BadValue(format!("expected int, got {x}"))
                        })?,
                    );
                }
                Ok(Column::Int(v))
            }
            MonetType::Float => {
                let mut v = Vec::with_capacity(vals.len());
                for x in vals {
                    v.push(
                        x.as_float().ok_or_else(|| {
                            MonetError::BadValue(format!("expected float, got {x}"))
                        })?,
                    );
                }
                Ok(Column::Float(v))
            }
            MonetType::Str => {
                let mut b = StrDictBuilder::new();
                let mut codes = Vec::with_capacity(vals.len());
                for x in vals {
                    let s = x
                        .as_str()
                        .ok_or_else(|| MonetError::BadValue(format!("expected str, got {x}")))?;
                    codes.push(b.intern(s));
                }
                Ok(Column::Str(StrCol { codes, dict: b.freeze() }))
            }
        }
    }

    /// True if tail values are non-decreasing under [`Val::total_cmp`].
    pub fn is_sorted(&self) -> bool {
        match self {
            Column::Void { .. } => true,
            Column::Oid(v) => v.windows(2).all(|w| w[0] <= w[1]),
            Column::Int(v) => v.windows(2).all(|w| w[0] <= w[1]),
            Column::Float(v) => v.windows(2).all(|w| w[0].total_cmp(&w[1]).is_le()),
            Column::Str(s) => {
                s.codes.windows(2).all(|w| s.dict.resolve(w[0]) <= s.dict.resolve(w[1]))
            }
        }
    }

    /// True if this column is a void (virtual dense oid) column.
    pub fn is_void(&self) -> bool {
        matches!(self, Column::Void { .. })
    }

    /// For a void column, its starting oid.
    pub fn void_start(&self) -> Option<Oid> {
        match self {
            Column::Void { start, .. } => Some(*start),
            _ => None,
        }
    }

    /// Minimum and maximum value, if the column is non-empty.
    pub fn min_max(&self) -> Option<(Val, Val)> {
        if self.is_empty() {
            return None;
        }
        match self {
            Column::Void { start, len } => {
                Some((Val::Oid(*start), Val::Oid(start + (*len as Oid) - 1)))
            }
            Column::Oid(v) => {
                let mn = *v.iter().min().unwrap();
                let mx = *v.iter().max().unwrap();
                Some((Val::Oid(mn), Val::Oid(mx)))
            }
            Column::Int(v) => {
                let mn = *v.iter().min().unwrap();
                let mx = *v.iter().max().unwrap();
                Some((Val::Int(mn), Val::Int(mx)))
            }
            Column::Float(v) => {
                let mut mn = f64::INFINITY;
                let mut mx = f64::NEG_INFINITY;
                for &x in v {
                    if x < mn {
                        mn = x;
                    }
                    if x > mx {
                        mx = x;
                    }
                }
                Some((Val::Float(mn), Val::Float(mx)))
            }
            Column::Str(s) => {
                let mut mn = s.get(0);
                let mut mx = s.get(0);
                for i in 1..s.len() {
                    let x = s.get(i);
                    if x < mn {
                        mn = x;
                    }
                    if x > mx {
                        mx = x;
                    }
                }
                Some((Val::Str(mn.to_string()), Val::Str(mx.to_string())))
            }
        }
    }

    /// Iterate over the values as `Val`s (allocates for strings; use the
    /// typed slices in hot paths).
    pub fn iter_vals(&self) -> impl Iterator<Item = Val> + '_ {
        (0..self.len()).map(move |i| self.get(i).expect("index in range"))
    }
}

impl From<Vec<i64>> for Column {
    fn from(v: Vec<i64>) -> Self {
        Column::Int(v)
    }
}

impl From<Vec<f64>> for Column {
    fn from(v: Vec<f64>) -> Self {
        Column::Float(v)
    }
}

impl From<Vec<Oid>> for Column {
    fn from(v: Vec<Oid>) -> Self {
        Column::Oid(v)
    }
}

impl<'a> FromIterator<&'a str> for Column {
    fn from_iter<I: IntoIterator<Item = &'a str>>(iter: I) -> Self {
        Column::Str(StrCol::from_strs(iter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn void_column_basics() {
        let c = Column::void(10, 4);
        assert_eq!(c.len(), 4);
        assert_eq!(c.get(0).unwrap(), Val::Oid(10));
        assert_eq!(c.get(3).unwrap(), Val::Oid(13));
        assert!(c.get(4).is_err());
        assert_eq!(c.as_oids().unwrap(), vec![10, 11, 12, 13]);
        assert!(c.is_void());
        assert!(c.is_sorted());
    }

    #[test]
    fn take_gathers_rows() {
        let c: Column = vec![5i64, 6, 7, 8].into();
        let t = c.take(&[3, 0, 0]);
        assert_eq!(t.int_slice().unwrap(), &[8, 5, 5]);
        let v = Column::void(100, 5).take(&[4, 1]);
        assert_eq!(v.as_oids().unwrap(), vec![104, 101]);
    }

    #[test]
    fn str_column_roundtrip_and_take() {
        let c: Column = ["a", "b", "a", "c"].into_iter().collect();
        assert_eq!(c.get(2).unwrap(), Val::from("a"));
        let s = c.str_col().unwrap();
        assert_eq!(s.dict.len(), 3); // deduplicated
        let t = c.take(&[3, 2]);
        assert_eq!(t.get(0).unwrap(), Val::from("c"));
        assert_eq!(t.get(1).unwrap(), Val::from("a"));
    }

    #[test]
    fn slice_keeps_voidness() {
        let c = Column::void(7, 10).slice(2, 5);
        assert_eq!(c.as_oids().unwrap(), vec![9, 10, 11]);
        assert!(c.is_void());
        let c2: Column = vec![1i64, 2, 3].into();
        assert_eq!(c2.slice(1, 99).int_slice().unwrap(), &[2, 3]);
    }

    #[test]
    fn concat_dense_voids_stays_void() {
        let a = Column::void(0, 3);
        let b = Column::void(3, 2);
        let c = a.concat(&b).unwrap();
        assert!(c.is_void());
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn concat_str_reinterns() {
        let a: Column = ["x", "y"].into_iter().collect();
        let b: Column = ["y", "z"].into_iter().collect();
        let c = a.concat(&b).unwrap();
        let s = c.str_col().unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.get(1), "y");
        assert_eq!(s.get(2), "y");
        assert_eq!(s.codes[1], s.codes[2]); // shared code after re-intern
        assert_eq!(s.dict.len(), 3);
    }

    #[test]
    fn concat_type_mismatch_errors() {
        let a: Column = vec![1i64].into();
        let b: Column = vec![1.0f64].into();
        assert!(a.concat(&b).is_err());
    }

    #[test]
    fn from_vals_all_types() {
        let ints = Column::from_vals(&[Val::Int(1), Val::Int(2)]).unwrap();
        assert_eq!(ints.int_slice().unwrap(), &[1, 2]);
        let strs = Column::from_vals(&[Val::from("p"), Val::from("q")]).unwrap();
        assert_eq!(strs.get(1).unwrap(), Val::from("q"));
        let bad = Column::from_vals(&[Val::Int(1), Val::from("x")]);
        assert!(bad.is_err());
    }

    #[test]
    fn min_max() {
        let c: Column = vec![3i64, 1, 7].into();
        assert_eq!(c.min_max().unwrap(), (Val::Int(1), Val::Int(7)));
        assert_eq!(Column::void(5, 3).min_max().unwrap(), (Val::Oid(5), Val::Oid(7)));
        assert!(Column::Int(vec![]).min_max().is_none());
    }

    #[test]
    fn sortedness_detection() {
        let sorted: Column = vec![1i64, 2, 2, 9].into();
        assert!(sorted.is_sorted());
        let unsorted: Column = vec![2i64, 1].into();
        assert!(!unsorted.is_sorted());
    }
}
