//! # monet — a binary-relational (BAT) kernel
//!
//! This crate reimplements, from scratch in Rust, the physical database
//! layer that the Mirror MMDBMS (de Vries et al., VLDB 1999) inherited from
//! the Monet extensible database system: a *binary-relational* data model in
//! which every piece of data lives in a **Binary Association Table** (BAT),
//! a two-column table of `[head, tail]` associations.
//!
//! The kernel provides:
//!
//! * typed columns ([`Column`]) over object identifiers, integers, floats
//!   and dictionary-encoded strings, including the *void* (virtual oid)
//!   column that makes dense-headed BATs free to represent;
//! * the classic BAT algebra ([`Bat`]): `select`, `join` (hash, merge and
//!   positional *fetch* variants), `semijoin`, `reverse`, `mirror`, `mark`,
//!   `group`, `unique`, grouped and scalar aggregates, `sort`, `slice`,
//!   top-N and the key-based set operations `kunion`/`kdiff`/`kintersect`;
//! * a named-BAT catalog ([`catalog::Catalog`]), the equivalent of Monet's
//!   BAT buffer pool;
//! * a physical query plan representation ([`plan::Plan`]) with an
//!   interpreting executor that records per-operator statistics and
//!   supports common-subexpression memoisation;
//! * an extension registry ([`ext::OpRegistry`]) through which higher
//!   layers register new *physical operators* — exactly how the Mirror
//!   paper's probabilistic `getBL` operator is added without the kernel
//!   knowing anything about information retrieval;
//! * horizontal fragmentation and data-parallel operator execution
//!   ([`fragment`]): `select`, `join` (probe side), aggregates and
//!   projection split into oid-range fragments that run on scoped threads
//!   and merge value-identically to the serial path — the
//!   [`ParallelExecutor`] scales whole plans across cores;
//! * a durable storage tier ([`storage`]): checksummed 4 KiB columnar
//!   pages behind a clock-eviction buffer pool, a write-ahead log with
//!   recovery-on-open, shadow-generation checkpoints, and a
//!   [`StorageBackend`] trait with disk, in-memory and fault-injecting
//!   implementations so crash consistency is a tested property.
//!
//! Set-at-a-time execution over these operators is what the paper calls
//! "design for scalability"; the Moa layer (crate `mirror-moa`) flattens
//! logical object-algebra expressions into [`plan::Plan`]s over this
//! kernel.

#![warn(missing_docs)]

pub mod aggr;
pub mod bat;
pub mod catalog;
pub mod column;
pub mod error;
pub mod ext;
pub mod fragment;
pub mod fxhash;
pub mod group;
pub mod join;
pub mod persist;
pub mod plan;
pub mod props;
pub mod select;
pub mod setops;
pub mod sort;
pub mod storage;
pub mod strdict;
pub mod value;

pub use aggr::Agg;
pub use bat::Bat;
pub use catalog::Catalog;
pub use column::Column;
pub use error::{MonetError, Result};
pub use ext::{OpCtx, OpRegistry};
pub use fragment::ParallelExecutor;
pub use plan::{ArithOp, ExecStats, Executor, NodeTrace, Plan, Pred};
pub use props::{summarize, ColSummary, Props};
pub use storage::{
    BufferPool, DiskFs, FaultFs, FaultPlan, MemFs, RecoveryReport, StorageBackend, Store,
    StoreOptions,
};
pub use strdict::{DictColumn, PackedCodes, StrDict};
pub use value::{MonetType, Oid, Val};
