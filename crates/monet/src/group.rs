//! Grouping and duplicate elimination.
//!
//! `group` assigns a dense group id to every row by tail value (Monet's
//! `CTgroup`); `tail_distinct` materialises one representative row per
//! distinct tail. Group ids are issued in order of first occurrence, so a
//! sorted input yields sorted group ids.

use crate::bat::Bat;
use crate::column::Column;
use crate::error::Result;
use crate::fxhash::FxHashMap;
use crate::join::key_at;
use crate::props::Props;
use crate::value::Oid;
use std::sync::Arc;

impl Bat {
    /// Group rows by tail value.
    ///
    /// Returns `(map, groups)` where `map = [head, group-id]` assigns each
    /// input row its group, and `groups = [group-id, tail]` holds one
    /// representative tail value per group (in first-occurrence order).
    pub fn group(&self) -> Result<(Bat, Bat)> {
        let t = self.tail();
        let mut ids: FxHashMap<_, Oid> = FxHashMap::default();
        let mut gids: Vec<Oid> = Vec::with_capacity(t.len());
        let mut reps: Vec<u32> = Vec::new();
        for i in 0..t.len() {
            let k = key_at(t, i);
            let next = ids.len() as Oid;
            let gid = *ids.entry(k).or_insert_with(|| {
                reps.push(i as u32);
                next
            });
            gids.push(gid);
        }
        let map = Bat::from_arcs(
            self.head_arc(),
            Arc::new(Column::Oid(gids)),
            Props {
                head_sorted: self.props().head_sorted,
                head_key: self.props().head_key,
                ..Props::default()
            },
        );
        let groups = Bat::from_arcs(
            Arc::new(Column::void(0, reps.len())),
            Arc::new(t.take(&reps)),
            Props { head_sorted: true, head_key: true, tail_key: true, ..Props::default() },
        );
        Ok((map, groups))
    }

    /// One row per distinct tail value: `[void, distinct tails]` in
    /// first-occurrence order.
    pub fn tail_distinct(&self) -> Result<Bat> {
        let (_, groups) = self.group()?;
        Ok(groups)
    }

    /// Number of distinct tail values.
    pub fn tail_cardinality(&self) -> Result<usize> {
        Ok(self.tail_distinct()?.count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bat::{bat_of_ints, bat_of_strs};
    use crate::value::Val;

    #[test]
    fn group_assigns_dense_ids_by_first_occurrence() {
        let b = bat_of_strs(["x", "y", "x", "z", "y"]);
        let (map, groups) = b.group().unwrap();
        let gids: Vec<_> = map.to_pairs().into_iter().map(|(_, g)| g).collect();
        assert_eq!(gids, vec![Val::Oid(0), Val::Oid(1), Val::Oid(0), Val::Oid(2), Val::Oid(1)]);
        assert_eq!(groups.count(), 3);
        assert_eq!(groups.fetch(0).unwrap().1, Val::from("x"));
        assert_eq!(groups.fetch(2).unwrap().1, Val::from("z"));
        assert!(groups.props().tail_key);
    }

    #[test]
    fn group_preserves_heads() {
        let b = Bat::new(Column::Oid(vec![7, 8, 9]), Column::Int(vec![1, 1, 2])).unwrap();
        let (map, _) = b.group().unwrap();
        assert_eq!(map.fetch(0).unwrap(), (Val::Oid(7), Val::Oid(0)));
        assert_eq!(map.fetch(2).unwrap(), (Val::Oid(9), Val::Oid(1)));
    }

    #[test]
    fn distinct_and_cardinality() {
        let b = bat_of_ints(vec![4, 4, 4, 2]);
        assert_eq!(b.tail_cardinality().unwrap(), 2);
        let d = b.tail_distinct().unwrap();
        let tails: Vec<_> = d.to_pairs().into_iter().map(|(_, t)| t).collect();
        assert_eq!(tails, vec![Val::Int(4), Val::Int(2)]);
    }

    #[test]
    fn group_empty_bat() {
        let b = bat_of_ints(vec![]);
        let (map, groups) = b.group().unwrap();
        assert_eq!(map.count(), 0);
        assert_eq!(groups.count(), 0);
    }

    #[test]
    fn group_floats_by_bit_pattern() {
        let b = crate::bat::bat_of_floats(vec![0.5, 0.5, 1.5]);
        assert_eq!(b.tail_cardinality().unwrap(), 2);
    }
}
