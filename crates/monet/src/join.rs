//! Join operators.
//!
//! `join(L, R)` matches `L.tail` against `R.head` and yields
//! `[L.head, R.tail]` — the fundamental recombination step for flattened
//! objects. Three strategies are chosen from the operands' properties:
//!
//! * **fetch join** — `R.head` is void: each `L.tail` oid indexes `R.tail`
//!   positionally (this is Monet's `leftfetchjoin`, the workhorse of
//!   attribute projection after flattening);
//! * **merge join** — both join columns oid-typed and sorted;
//! * **hash join** — the general case, hashing the smaller semantics-free
//!   build side (`R.head`).

use crate::bat::Bat;
use crate::column::Column;
use crate::error::{MonetError, Result};
use crate::fxhash::FxHashMap;
use crate::props::Props;
use crate::value::Oid;
use std::sync::Arc;

/// A borrowed join key: numerics normalise to `u64`, strings borrow the
/// dictionary entry, so hashing never allocates.
#[derive(Hash, PartialEq, Eq, Clone, Copy, Debug)]
pub(crate) enum KeyRef<'a> {
    /// Numeric key (oid widened, int reinterpreted, float by bit pattern).
    N(u64),
    /// String key.
    S(&'a str),
}

/// Extract the join key at row `i` of a column.
#[inline]
pub(crate) fn key_at(c: &Column, i: usize) -> KeyRef<'_> {
    match c {
        Column::Void { start, .. } => KeyRef::N((*start + i as Oid) as u64),
        Column::Oid(v) => KeyRef::N(v[i] as u64),
        Column::Int(v) => KeyRef::N(v[i] as u64),
        Column::Float(v) => KeyRef::N(v[i].to_bits()),
        Column::Str(s) => KeyRef::S(s.get(i)),
    }
}

/// Check that two columns can be joined on value equality.
pub(crate) fn check_joinable(op: &'static str, a: &Column, b: &Column) -> Result<()> {
    if a.ty() == b.ty() {
        Ok(())
    } else {
        Err(MonetError::TypeMismatch { op, expected: a.ty_str(), found: b.ty_str() })
    }
}

/// Probe the row span `[span.0, span.1)` of an oid-typed probe column
/// against a void build head `[start, start+len)`. Returns global
/// `(left, right)` position pairs in probe-row order; both the serial fetch
/// join and each parallel fragment funnel through here.
pub(crate) fn fetch_probe_span(
    lt: &Column,
    start: Oid,
    len: usize,
    span: (usize, usize),
) -> Result<(Vec<u32>, Vec<u32>)> {
    let (lo, hi) = span;
    let mut left_pos: Vec<u32> = Vec::with_capacity(hi - lo);
    let mut right_pos: Vec<u32> = Vec::with_capacity(hi - lo);
    match lt {
        Column::Void { start: s2, .. } => {
            for i in lo..hi {
                let o = s2 + i as Oid;
                if o >= start && ((o - start) as usize) < len {
                    left_pos.push(i as u32);
                    right_pos.push(o - start);
                }
            }
        }
        Column::Oid(v) => {
            for (i, &o) in v[lo..hi].iter().enumerate() {
                if o >= start && ((o - start) as usize) < len {
                    left_pos.push((lo + i) as u32);
                    right_pos.push(o - start);
                }
            }
        }
        other_col => {
            return Err(MonetError::TypeMismatch {
                op: "fetch_join",
                expected: "oid",
                found: other_col.ty_str(),
            })
        }
    }
    Ok((left_pos, right_pos))
}

/// Build the hash-join table on a build-side head: key → positions (in
/// ascending build order, which keeps fragment output identical to serial).
pub(crate) fn build_hash_table(rh: &Column) -> FxHashMap<KeyRef<'_>, Vec<u32>> {
    let mut table: FxHashMap<KeyRef<'_>, Vec<u32>> = FxHashMap::default();
    for j in 0..rh.len() {
        table.entry(key_at(rh, j)).or_default().push(j as u32);
    }
    table
}

/// Probe the row span `[span.0, span.1)` of a probe column against a
/// prebuilt hash table; returns global `(left, right)` position pairs.
pub(crate) fn hash_probe_span<'a>(
    lt: &'a Column,
    table: &FxHashMap<KeyRef<'a>, Vec<u32>>,
    span: (usize, usize),
) -> (Vec<u32>, Vec<u32>) {
    let mut left_pos = Vec::new();
    let mut right_pos = Vec::new();
    for i in span.0..span.1 {
        if let Some(matches) = table.get(&key_at(lt, i)) {
            for &j in matches {
                left_pos.push(i as u32);
                right_pos.push(j);
            }
        }
    }
    (left_pos, right_pos)
}

impl Bat {
    /// `join(self, other)`: `[self.head, other.tail]` where
    /// `self.tail == other.head`. Produces one output row per matching
    /// pair (duplicates multiply).
    pub fn join(&self, other: &Bat) -> Result<Bat> {
        check_joinable("join", self.tail(), other.head())?;
        // Positional fetch join when the build side has a void head.
        if let Column::Void { start, len } = *other.head() {
            return self.fetch_join(other, start, len);
        }
        // Merge join when both sides are sorted oid columns.
        if self.props().tail_sorted
            && other.props().head_sorted
            && self.tail().oid_slice().is_some()
            && other.head().oid_slice().is_some()
        {
            return self.merge_join(other);
        }
        self.hash_join(other)
    }

    /// Positional join against a void-headed BAT (`leftfetchjoin`).
    ///
    /// Every `self.tail` oid inside `[start, start+len)` fetches
    /// `other.tail[oid - start]`; oids outside the range simply do not
    /// match (inner-join semantics).
    pub fn fetch_join(&self, other: &Bat, start: Oid, len: usize) -> Result<Bat> {
        let (left_pos, right_pos) = fetch_probe_span(self.tail(), start, len, (0, self.count()))?;
        let head = self.head().take(&left_pos);
        let tail = other.tail().take(&right_pos);
        let props = Props {
            head_sorted: self.props().head_sorted,
            head_key: self.props().head_key, // void build head is a key
            ..Props::default()
        };
        Ok(Bat::from_arcs(Arc::new(head), Arc::new(tail), props))
    }

    fn merge_join(&self, other: &Bat) -> Result<Bat> {
        let lt = self.tail().oid_slice().expect("checked oid");
        let rh = other.head().oid_slice().expect("checked oid");
        let mut left_pos = Vec::new();
        let mut right_pos = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < lt.len() && j < rh.len() {
            if lt[i] < rh[j] {
                i += 1;
            } else if lt[i] > rh[j] {
                j += 1;
            } else {
                // equal run: emit the cross product of the two runs
                let v = lt[i];
                let i0 = i;
                while i < lt.len() && lt[i] == v {
                    i += 1;
                }
                let j0 = j;
                while j < rh.len() && rh[j] == v {
                    j += 1;
                }
                for a in i0..i {
                    for b in j0..j {
                        left_pos.push(a as u32);
                        right_pos.push(b as u32);
                    }
                }
            }
        }
        let head = self.head().take(&left_pos);
        let tail = other.tail().take(&right_pos);
        Ok(Bat::from_arcs(Arc::new(head), Arc::new(tail), Props::unknown()))
    }

    fn hash_join(&self, other: &Bat) -> Result<Bat> {
        let table = build_hash_table(other.head());
        let (left_pos, right_pos) = hash_probe_span(self.tail(), &table, (0, self.count()));
        let head = self.head().take(&left_pos);
        let tail = other.tail().take(&right_pos);
        Ok(Bat::from_arcs(Arc::new(head), Arc::new(tail), Props::unknown()))
    }

    /// `semijoin(self, other)`: the rows of `self` whose **head** occurs in
    /// `other`'s head (Monet semantics — restrict a BAT to a set of oids).
    pub fn semijoin(&self, other: &Bat) -> Result<Bat> {
        check_joinable("semijoin", self.head(), other.head())?;
        // Void probe side: range test.
        if let Column::Void { start, len } = *other.head() {
            let end = start as u64 + len as u64;
            return self.select_head_where(|k| match k {
                KeyRef::N(x) => x >= start as u64 && x < end,
                KeyRef::S(_) => false,
            });
        }
        let mut set: crate::fxhash::FxHashSet<KeyRef<'_>> = Default::default();
        let oh = other.head();
        for j in 0..oh.len() {
            set.insert(key_at(oh, j));
        }
        self.select_head_where(|k| set.contains(&k))
    }

    /// Keep rows whose head key satisfies `pred` (internal helper shared
    /// with the set operations).
    pub(crate) fn select_head_where<F: FnMut(KeyRef<'_>) -> bool>(
        &self,
        mut pred: F,
    ) -> Result<Bat> {
        let h = self.head();
        let positions: Vec<u32> =
            (0..h.len()).filter(|&i| pred(key_at(h, i))).map(|i| i as u32).collect();
        Ok(self.take_ordered(&positions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bat::{bat_of_ints, bat_of_strs};
    use crate::value::Val;

    /// join of [void, oid] with [void, int] exercises the fetch path.
    #[test]
    fn fetch_join_projects_attributes() {
        // map: doc -> author oid
        let doc_author = Bat::dense(Column::Oid(vec![2, 0, 1, 0]));
        // author oid -> name
        let names = bat_of_strs(["ann", "bob", "cas"]);
        let joined = doc_author.join(&names).unwrap();
        assert_eq!(joined.count(), 4);
        assert_eq!(joined.fetch(0).unwrap(), (Val::Oid(0), Val::from("cas")));
        assert_eq!(joined.fetch(3).unwrap(), (Val::Oid(3), Val::from("ann")));
        assert!(joined.props().head_sorted);
    }

    #[test]
    fn fetch_join_drops_out_of_range() {
        let l = Bat::dense(Column::Oid(vec![0, 9]));
        let r = bat_of_ints(vec![100, 200]);
        let j = l.join(&r).unwrap();
        assert_eq!(j.count(), 1);
        assert_eq!(j.fetch(0).unwrap(), (Val::Oid(0), Val::Int(100)));
    }

    #[test]
    fn hash_join_with_duplicates() {
        let l = Bat::new(Column::void(0, 3), Column::Int(vec![7, 8, 7])).unwrap();
        let r = Bat::new(Column::Int(vec![7, 7, 9]), Column::Int(vec![70, 71, 90])).unwrap();
        let j = l.join(&r).unwrap();
        // rows 0 and 2 of l match rows 0,1 of r → 4 pairs
        assert_eq!(j.count(), 4);
        let tails: Vec<_> = j.to_pairs().into_iter().map(|(_, t)| t).collect();
        assert_eq!(tails, vec![Val::Int(70), Val::Int(71), Val::Int(70), Val::Int(71)]);
    }

    #[test]
    fn merge_join_on_sorted_oids() {
        let l = Bat::new(Column::void(0, 4), Column::Oid(vec![1, 2, 2, 5])).unwrap().analyze();
        let r = Bat::new(Column::Oid(vec![2, 2, 5, 6]), Column::Int(vec![20, 21, 50, 60]))
            .unwrap()
            .analyze();
        assert!(l.props().tail_sorted && r.props().head_sorted);
        let j = l.join(&r).unwrap();
        let tails: Vec<_> = j.to_pairs().into_iter().map(|(_, t)| t).collect();
        assert_eq!(
            tails,
            vec![Val::Int(20), Val::Int(21), Val::Int(20), Val::Int(21), Val::Int(50)]
        );
    }

    #[test]
    fn string_join_across_dictionaries() {
        let l =
            Bat::new(Column::void(0, 3), ["red", "blue", "red"].into_iter().collect::<Column>())
                .unwrap();
        let r = Bat::new(["blue", "red"].into_iter().collect::<Column>(), Column::Int(vec![1, 2]))
            .unwrap();
        let j = l.join(&r).unwrap();
        assert_eq!(j.count(), 3);
        assert_eq!(j.fetch(0).unwrap(), (Val::Oid(0), Val::Int(2)));
        assert_eq!(j.fetch(1).unwrap(), (Val::Oid(1), Val::Int(1)));
    }

    #[test]
    fn join_type_mismatch() {
        let l = bat_of_ints(vec![1]);
        let r = bat_of_strs(["x"]);
        assert!(l.join(&r.reverse()).is_err());
    }

    #[test]
    fn semijoin_restricts_by_head() {
        let l = Bat::new(Column::Oid(vec![0, 1, 2, 3]), Column::Int(vec![10, 11, 12, 13])).unwrap();
        let r = Bat::new(Column::Oid(vec![1, 3]), Column::Int(vec![0, 0])).unwrap();
        let s = l.semijoin(&r).unwrap();
        let tails: Vec<_> = s.to_pairs().into_iter().map(|(_, t)| t).collect();
        assert_eq!(tails, vec![Val::Int(11), Val::Int(13)]);
    }

    #[test]
    fn semijoin_against_void_range() {
        let l = Bat::new(Column::Oid(vec![0, 5, 9]), Column::Int(vec![1, 2, 3])).unwrap();
        let r = Bat::dense(Column::Int(vec![0; 6])); // heads 0..6
        let s = l.semijoin(&r).unwrap();
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn empty_join_inputs() {
        let l = bat_of_ints(vec![]);
        let r = Bat::new(Column::Int(vec![]), Column::Int(vec![])).unwrap();
        let j = l.join(&r.reverse()).unwrap_or_else(|_| bat_of_ints(vec![]));
        assert_eq!(j.count(), 0);
    }
}
