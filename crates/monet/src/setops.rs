//! Key-based set operations over BAT heads (Monet's `kunion`, `kdiff`,
//! `kintersect`).
//!
//! A BAT whose head is a key behaves as a set of oid-keyed facts; these
//! operators combine two such BATs by head membership. They are used by the
//! Moa layer for set-valued attributes and by combined IR/data-retrieval
//! plans (e.g. restrict a ranking to documents surviving a relational
//! selection).

use crate::bat::Bat;
use crate::error::Result;
use crate::fxhash::FxHashSet;
use crate::join::{check_joinable, key_at, KeyRef};

impl Bat {
    /// Rows of `self` whose head does **not** occur among `other`'s heads.
    pub fn kdiff(&self, other: &Bat) -> Result<Bat> {
        if other.is_empty() {
            return Ok(self.clone());
        }
        check_joinable("kdiff", self.head(), other.head())?;
        let set = head_set(other);
        self.select_head_where(|k| !set.contains(&k))
    }

    /// Rows of `self` whose head occurs among `other`'s heads.
    /// (Equivalent to [`Bat::semijoin`]; kept under its MIL name.)
    pub fn kintersect(&self, other: &Bat) -> Result<Bat> {
        self.semijoin(other)
    }

    /// All rows of `self` plus the rows of `other` whose head does not
    /// occur in `self`. On duplicate heads, `self`'s association wins.
    pub fn kunion(&self, other: &Bat) -> Result<Bat> {
        if other.is_empty() {
            return Ok(self.clone());
        }
        if self.is_empty() {
            return Ok(other.clone());
        }
        check_joinable("kunion", self.head(), other.head())?;
        let fresh = other.kdiff(self)?;
        self.append(&fresh)
    }
}

fn head_set(bat: &Bat) -> FxHashSet<KeyRef<'_>> {
    let h = bat.head();
    (0..h.len()).map(|i| key_at(h, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::value::Val;

    fn keyed(heads: Vec<u32>, tails: Vec<i64>) -> Bat {
        Bat::new(Column::Oid(heads), Column::Int(tails)).unwrap()
    }

    #[test]
    fn kdiff_removes_common_heads() {
        let a = keyed(vec![1, 2, 3], vec![10, 20, 30]);
        let b = keyed(vec![2], vec![0]);
        let d = a.kdiff(&b).unwrap();
        let heads: Vec<_> = d.to_pairs().into_iter().map(|(h, _)| h).collect();
        assert_eq!(heads, vec![Val::Oid(1), Val::Oid(3)]);
    }

    #[test]
    fn kdiff_with_empty_rhs_is_identity() {
        let a = keyed(vec![1], vec![10]);
        let b = keyed(vec![], vec![]);
        assert_eq!(a.kdiff(&b).unwrap().count(), 1);
    }

    #[test]
    fn kintersect_keeps_common_heads() {
        let a = keyed(vec![1, 2, 3], vec![10, 20, 30]);
        let b = keyed(vec![3, 1], vec![0, 0]);
        let i = a.kintersect(&b).unwrap();
        let heads: Vec<_> = i.to_pairs().into_iter().map(|(h, _)| h).collect();
        assert_eq!(heads, vec![Val::Oid(1), Val::Oid(3)]);
    }

    #[test]
    fn kunion_prefers_left_on_conflict() {
        let a = keyed(vec![1, 2], vec![10, 20]);
        let b = keyed(vec![2, 3], vec![99, 30]);
        let u = a.kunion(&b).unwrap();
        assert_eq!(u.count(), 3);
        let pairs = u.to_pairs();
        assert!(pairs.contains(&(Val::Oid(2), Val::Int(20)))); // left's value
        assert!(pairs.contains(&(Val::Oid(3), Val::Int(30))));
    }

    #[test]
    fn kunion_with_empty_sides() {
        let a = keyed(vec![1], vec![10]);
        let e = keyed(vec![], vec![]);
        assert_eq!(a.kunion(&e).unwrap().count(), 1);
        assert_eq!(e.kunion(&a).unwrap().count(), 1);
    }

    #[test]
    fn setops_respect_types() {
        let a = keyed(vec![1], vec![10]);
        let b = crate::bat::bat_of_strs(["x"]).reverse(); // str head
        assert!(a.kdiff(&b).is_err());
    }
}
