//! The BAT catalog — Monet's "BAT buffer pool" (BBP).
//!
//! Named, shared, immutable BATs. The Moa layer registers the flattened
//! columns of every logical collection here; daemons and the executor look
//! them up by name. Replacement is atomic (register overwrites), which is
//! how ingest pipelines publish new versions of a collection.

use crate::bat::Bat;
use crate::error::{MonetError, Result};
use crate::fxhash::FxHashMap;
use parking_lot::RwLock;
use std::sync::Arc;

/// A thread-safe registry of named BATs.
#[derive(Default)]
pub struct Catalog {
    bats: RwLock<FxHashMap<String, Arc<Bat>>>,
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a BAT under `name`.
    pub fn register(&self, name: impl Into<String>, bat: Bat) -> Arc<Bat> {
        let arc = Arc::new(bat);
        self.bats.write().insert(name.into(), Arc::clone(&arc));
        arc
    }

    /// Register a pre-shared BAT handle.
    pub fn register_arc(&self, name: impl Into<String>, bat: Arc<Bat>) {
        self.bats.write().insert(name.into(), bat);
    }

    /// Look up a BAT by name.
    pub fn get(&self, name: &str) -> Result<Arc<Bat>> {
        self.bats.read().get(name).cloned().ok_or_else(|| MonetError::UnknownBat(name.to_string()))
    }

    /// True if `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.bats.read().contains_key(name)
    }

    /// Remove a BAT; returns it if it existed.
    pub fn drop_bat(&self, name: &str) -> Option<Arc<Bat>> {
        self.bats.write().remove(name)
    }

    /// Names of all registered BATs, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.bats.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of registered BATs.
    pub fn len(&self) -> usize {
        self.bats.read().len()
    }

    /// True if no BATs are registered.
    pub fn is_empty(&self) -> bool {
        self.bats.read().is_empty()
    }

    /// Total number of associations across all registered BATs — a cheap
    /// size indicator for monitoring and the report binary.
    pub fn total_rows(&self) -> usize {
        self.bats.read().values().map(|b| b.count()).sum()
    }

    /// Remove every BAT whose name starts with `prefix`; returns how many
    /// were dropped. Used when re-ingesting a collection.
    pub fn drop_prefix(&self, prefix: &str) -> usize {
        let mut map = self.bats.write();
        let doomed: Vec<String> = map.keys().filter(|k| k.starts_with(prefix)).cloned().collect();
        for k in &doomed {
            map.remove(k);
        }
        doomed.len()
    }
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Catalog").field("bats", &self.names()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bat::bat_of_ints;

    #[test]
    fn register_and_get() {
        let c = Catalog::new();
        c.register("a", bat_of_ints(vec![1, 2]));
        assert!(c.contains("a"));
        assert_eq!(c.get("a").unwrap().count(), 2);
        assert!(matches!(c.get("b"), Err(MonetError::UnknownBat(_))));
    }

    #[test]
    fn register_replaces_atomically() {
        let c = Catalog::new();
        c.register("a", bat_of_ints(vec![1]));
        let old = c.get("a").unwrap();
        c.register("a", bat_of_ints(vec![1, 2, 3]));
        assert_eq!(c.get("a").unwrap().count(), 3);
        // old handle still usable by readers that grabbed it earlier
        assert_eq!(old.count(), 1);
    }

    #[test]
    fn names_and_drop() {
        let c = Catalog::new();
        c.register("z", bat_of_ints(vec![]));
        c.register("a", bat_of_ints(vec![]));
        assert_eq!(c.names(), vec!["a".to_string(), "z".to_string()]);
        assert!(c.drop_bat("a").is_some());
        assert!(c.drop_bat("a").is_none());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn drop_prefix_bulk() {
        let c = Catalog::new();
        c.register("lib_url", bat_of_ints(vec![]));
        c.register("lib_ann", bat_of_ints(vec![]));
        c.register("other", bat_of_ints(vec![]));
        assert_eq!(c.drop_prefix("lib_"), 2);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn total_rows_sums() {
        let c = Catalog::new();
        c.register("a", bat_of_ints(vec![1, 2]));
        c.register("b", bat_of_ints(vec![3]));
        assert_eq!(c.total_rows(), 3);
    }

    #[test]
    fn catalog_is_sync_across_threads() {
        let c = Arc::new(Catalog::new());
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || {
            c2.register("t", bat_of_ints(vec![42]));
        });
        h.join().unwrap();
        assert_eq!(c.get("t").unwrap().count(), 1);
    }
}
