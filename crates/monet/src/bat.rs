//! The Binary Association Table.
//!
//! A [`Bat`] is an ordered collection of `(head, tail)` pairs. Columns are
//! reference-counted so structural operations (`reverse`, `mirror`, slicing
//! the catalog) share storage instead of copying it.

use crate::column::Column;
use crate::error::{MonetError, Result};
use crate::props::Props;
use crate::value::{MonetType, Oid, Val};
use std::fmt;
use std::sync::Arc;

/// A Binary Association Table: two equal-length columns plus property bits.
#[derive(Debug, Clone)]
pub struct Bat {
    head: Arc<Column>,
    tail: Arc<Column>,
    props: Props,
}

impl Bat {
    /// Create a BAT from two columns of equal length. Property bits for
    /// void columns are derived automatically; everything else starts
    /// unknown (use [`Bat::analyze`] or [`Bat::with_props`]).
    pub fn new(head: Column, tail: Column) -> Result<Bat> {
        if head.len() != tail.len() {
            return Err(MonetError::LengthMismatch { left: head.len(), right: tail.len() });
        }
        let props = Props {
            head_sorted: head.is_void(),
            head_key: head.is_void(),
            tail_sorted: tail.is_void(),
            tail_key: tail.is_void(),
        };
        Ok(Bat { head: Arc::new(head), tail: Arc::new(tail), props })
    }

    /// Create a dense-headed BAT `[void(0..n), tail]`.
    pub fn dense(tail: Column) -> Bat {
        let len = tail.len();
        Bat {
            head: Arc::new(Column::void(0, len)),
            tail: Arc::new(tail),
            props: Props::dense_head(),
        }
    }

    /// Create a dense-headed BAT whose head starts at `start`.
    pub fn dense_from(start: Oid, tail: Column) -> Bat {
        let len = tail.len();
        Bat {
            head: Arc::new(Column::void(start, len)),
            tail: Arc::new(tail),
            props: Props::dense_head(),
        }
    }

    /// Create a BAT from pre-shared columns (internal fast path).
    pub(crate) fn from_arcs(head: Arc<Column>, tail: Arc<Column>, props: Props) -> Bat {
        debug_assert_eq!(head.len(), tail.len());
        Bat { head, tail, props }
    }

    /// Replace the property bits (caller asserts they hold).
    pub fn with_props(mut self, props: Props) -> Bat {
        self.props = props;
        self
    }

    /// Scan both columns and set the sorted/key property bits exactly.
    pub fn analyze(mut self) -> Bat {
        self.props.head_sorted = self.head.is_sorted();
        self.props.tail_sorted = self.tail.is_sorted();
        self.props.head_key = column_is_key(&self.head);
        self.props.tail_key = column_is_key(&self.tail);
        self
    }

    /// The head column.
    pub fn head(&self) -> &Column {
        &self.head
    }

    /// The tail column.
    pub fn tail(&self) -> &Column {
        &self.tail
    }

    /// Shared handle to the head column.
    pub fn head_arc(&self) -> Arc<Column> {
        Arc::clone(&self.head)
    }

    /// Shared handle to the tail column.
    pub fn tail_arc(&self) -> Arc<Column> {
        Arc::clone(&self.tail)
    }

    /// Property bits.
    pub fn props(&self) -> Props {
        self.props
    }

    /// Number of associations (rows).
    pub fn count(&self) -> usize {
        self.head.len()
    }

    /// True if the BAT holds no associations.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// `(head type, tail type)`.
    pub fn types(&self) -> (MonetType, MonetType) {
        (self.head.ty(), self.tail.ty())
    }

    /// Fetch row `i` as a `(head, tail)` pair of values.
    pub fn fetch(&self, i: usize) -> Result<(Val, Val)> {
        Ok((self.head.get(i)?, self.tail.get(i)?))
    }

    /// `reverse(b)`: swap head and tail. O(1) thanks to shared columns.
    pub fn reverse(&self) -> Bat {
        Bat {
            head: Arc::clone(&self.tail),
            tail: Arc::clone(&self.head),
            props: self.props.reversed(),
        }
    }

    /// `mirror(b)`: `[head, head]`.
    pub fn mirror(&self) -> Bat {
        Bat {
            head: Arc::clone(&self.head),
            tail: Arc::clone(&self.head),
            props: Props {
                head_sorted: self.props.head_sorted,
                tail_sorted: self.props.head_sorted,
                head_key: self.props.head_key,
                tail_key: self.props.head_key,
            },
        }
    }

    /// `mark(b, base)`: `[head, void(base..)]` — assign fresh dense oids.
    pub fn mark(&self, base: Oid) -> Bat {
        Bat {
            head: Arc::clone(&self.head),
            tail: Arc::new(Column::void(base, self.count())),
            props: Props {
                head_sorted: self.props.head_sorted,
                head_key: self.props.head_key,
                tail_sorted: true,
                tail_key: true,
            },
        }
    }

    /// `project(b, v)`: `[head, const v]` (materialised).
    pub fn project(&self, v: &Val) -> Result<Bat> {
        let vals = vec![v.clone(); self.count()];
        let tail = Column::from_vals(&vals)?;
        Ok(Bat {
            head: Arc::clone(&self.head),
            tail: Arc::new(tail),
            props: Props {
                head_sorted: self.props.head_sorted,
                head_key: self.props.head_key,
                tail_sorted: true,
                tail_key: self.count() <= 1,
            },
        })
    }

    /// `slice(b, lo, hi)`: rows `[lo, hi)` in BAT order.
    pub fn slice(&self, lo: usize, hi: usize) -> Bat {
        let head = self.head.slice(lo, hi);
        let tail = self.tail.slice(lo, hi);
        Bat {
            head: Arc::new(head),
            tail: Arc::new(tail),
            props: self.props, // sortedness/keyness survive slicing
        }
    }

    /// Gather rows by position into a new BAT.
    pub fn take(&self, positions: &[u32]) -> Bat {
        Bat {
            head: Arc::new(self.head.take(positions)),
            tail: Arc::new(self.tail.take(positions)),
            props: Props::unknown(),
        }
    }

    /// Append another BAT's associations (types must match).
    pub fn append(&self, other: &Bat) -> Result<Bat> {
        let head = self.head.concat(&other.head)?;
        let tail = self.tail.concat(&other.tail)?;
        Bat::new(head, tail)
    }

    /// Pretty-print up to `limit` rows (for debugging and the examples).
    pub fn display(&self, limit: usize) -> String {
        let mut out = String::new();
        let n = self.count().min(limit);
        out.push_str(&format!(
            "# BAT [{}, {}] {} rows\n",
            self.head.ty_str(),
            self.tail.ty_str(),
            self.count()
        ));
        for i in 0..n {
            let (h, t) = self.fetch(i).expect("row in range");
            out.push_str(&format!("  [ {h}, {t} ]\n"));
        }
        if self.count() > limit {
            out.push_str(&format!("  … {} more\n", self.count() - limit));
        }
        out
    }

    /// Collect the BAT into `(Val, Val)` pairs — convenience for tests.
    pub fn to_pairs(&self) -> Vec<(Val, Val)> {
        (0..self.count()).map(|i| self.fetch(i).expect("row in range")).collect()
    }
}

impl fmt::Display for Bat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display(20))
    }
}

/// Exact key (all-distinct) check for a column.
fn column_is_key(c: &Column) -> bool {
    use crate::fxhash::FxHashSet;
    match c {
        Column::Void { .. } => true,
        Column::Oid(v) => {
            let mut seen: FxHashSet<Oid> = FxHashSet::default();
            v.iter().all(|&x| seen.insert(x))
        }
        Column::Int(v) => {
            let mut seen: FxHashSet<i64> = FxHashSet::default();
            v.iter().all(|&x| seen.insert(x))
        }
        Column::Float(v) => {
            let mut seen: FxHashSet<u64> = FxHashSet::default();
            v.iter().all(|&x| seen.insert(x.to_bits()))
        }
        Column::Str(s) => {
            let mut seen: FxHashSet<u32> = FxHashSet::default();
            // codes may repeat only if rows repeat; dict is deduplicated
            s.codes.iter().all(|&x| seen.insert(x))
        }
    }
}

/// Build a dense-headed BAT over integers — test/bench convenience.
pub fn bat_of_ints(vals: Vec<i64>) -> Bat {
    Bat::dense(Column::Int(vals))
}

/// Build a dense-headed BAT over floats — test/bench convenience.
pub fn bat_of_floats(vals: Vec<f64>) -> Bat {
    Bat::dense(Column::Float(vals))
}

/// Build a dense-headed BAT over strings — test/bench convenience.
pub fn bat_of_strs<'a, I: IntoIterator<Item = &'a str>>(vals: I) -> Bat {
    Bat::dense(vals.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_length_mismatch() {
        let r = Bat::new(Column::void(0, 2), Column::Int(vec![1]));
        assert!(matches!(r, Err(MonetError::LengthMismatch { .. })));
    }

    #[test]
    fn dense_bat_has_void_head() {
        let b = bat_of_ints(vec![10, 20, 30]);
        assert!(b.head().is_void());
        assert!(b.props().head_key && b.props().head_sorted);
        assert_eq!(b.fetch(1).unwrap(), (Val::Oid(1), Val::Int(20)));
    }

    #[test]
    fn reverse_is_cheap_and_involutive() {
        let b = bat_of_ints(vec![5, 6]);
        let r = b.reverse();
        assert_eq!(r.fetch(0).unwrap(), (Val::Int(5), Val::Oid(0)));
        assert!(r.props().tail_sorted && r.props().tail_key);
        let rr = r.reverse();
        assert_eq!(rr.to_pairs(), b.to_pairs());
    }

    #[test]
    fn mirror_and_mark() {
        let b = bat_of_strs(["a", "b"]);
        let m = b.mirror();
        assert_eq!(m.fetch(1).unwrap(), (Val::Oid(1), Val::Oid(1)));
        let k = b.mark(100);
        assert_eq!(k.fetch(0).unwrap(), (Val::Oid(0), Val::Oid(100)));
        assert!(k.props().tail_key);
    }

    #[test]
    fn project_constant() {
        let b = bat_of_ints(vec![1, 2, 3]);
        let p = b.project(&Val::Float(0.5)).unwrap();
        assert_eq!(p.fetch(2).unwrap(), (Val::Oid(2), Val::Float(0.5)));
        assert!(p.props().tail_sorted);
    }

    #[test]
    fn slice_and_take() {
        let b = bat_of_ints(vec![9, 8, 7, 6]);
        let s = b.slice(1, 3);
        assert_eq!(s.to_pairs(), vec![(Val::Oid(1), Val::Int(8)), (Val::Oid(2), Val::Int(7))]);
        let t = b.take(&[3, 0]);
        assert_eq!(t.to_pairs(), vec![(Val::Oid(3), Val::Int(6)), (Val::Oid(0), Val::Int(9))]);
    }

    #[test]
    fn append_merges() {
        let a = bat_of_ints(vec![1]);
        let b = Bat::dense_from(1, Column::Int(vec![2]));
        let c = a.append(&b).unwrap();
        assert_eq!(c.count(), 2);
        assert!(c.head().is_void()); // dense chains stay void
    }

    #[test]
    fn analyze_sets_exact_props() {
        let b = Bat::new(Column::Oid(vec![3, 1, 2]), Column::Int(vec![1, 1, 2])).unwrap().analyze();
        assert!(!b.props().head_sorted);
        assert!(b.props().head_key);
        assert!(b.props().tail_sorted);
        assert!(!b.props().tail_key);
    }

    #[test]
    fn display_truncates() {
        let b = bat_of_ints((0..30).collect());
        let s = b.display(5);
        assert!(s.contains("… 25 more"));
    }
}
