//! Selection operators: filter a BAT by a predicate on its tail.
//!
//! Selections return the qualifying `(head, tail)` pairs — the MIL
//! convention — so downstream operators can project either column with
//! `reverse`/`mirror`. Range selections on sorted tails use binary search.

use crate::bat::Bat;
use crate::column::Column;
use crate::error::Result;
use crate::props::Props;
use crate::value::Val;
use std::ops::Bound;

impl Bat {
    /// Rows whose tail equals `v`.
    pub fn select_eq(&self, v: &Val) -> Result<Bat> {
        self.select_range(Bound::Included(v), Bound::Included(v))
    }

    /// Rows whose tail lies within the given bounds (by [`Val::total_cmp`]).
    pub fn select_range(&self, lo: Bound<&Val>, hi: Bound<&Val>) -> Result<Bat> {
        // Sorted-tail fast path: binary search the window, then slice.
        if self.props().tail_sorted && !matches!(self.tail(), Column::Str(_)) {
            let (a, b) = sorted_window(self.tail(), lo, hi)?;
            let mut out = self.slice(a, b);
            // slicing preserves sortedness and keyness
            out = out.with_props(self.props());
            return Ok(out);
        }
        let positions = scan_range(self.tail(), lo, hi)?;
        Ok(self.take_ordered(&positions))
    }

    /// Rows whose (string) tail contains `pat` as a substring.
    pub fn select_str_contains(&self, pat: &str) -> Result<Bat> {
        let s = self.tail().str_col()?;
        // Evaluate the predicate once per *dictionary entry*, then scan codes.
        let mut matching = vec![false; s.dict.len()];
        for (code, st) in s.dict.iter() {
            matching[code as usize] = st.contains(pat);
        }
        let positions: Vec<u32> = s
            .codes
            .iter()
            .enumerate()
            .filter(|(_, &c)| matching[c as usize])
            .map(|(i, _)| i as u32)
            .collect();
        Ok(self.take_ordered(&positions))
    }

    /// Rows whose tail satisfies an arbitrary predicate (slow path — used
    /// by the naive object-at-a-time interpreter and tests).
    pub fn select_where<F: FnMut(&Val) -> bool>(&self, mut pred: F) -> Result<Bat> {
        let mut positions = Vec::new();
        for i in 0..self.count() {
            if pred(&self.tail().get(i)?) {
                positions.push(i as u32);
            }
        }
        Ok(self.take_ordered(&positions))
    }

    /// Gather by strictly increasing positions, preserving order-derived
    /// properties of both columns.
    pub(crate) fn take_ordered(&self, positions: &[u32]) -> Bat {
        let out = self.take(positions);
        out.with_props(Props {
            head_sorted: self.props().head_sorted,
            tail_sorted: self.props().tail_sorted,
            head_key: self.props().head_key,
            tail_key: self.props().tail_key,
        })
    }
}

/// Binary-search the `[lo, hi)` row window of a sorted numeric column.
fn sorted_window(c: &Column, lo: Bound<&Val>, hi: Bound<&Val>) -> Result<(usize, usize)> {
    let n = c.len();
    let cmp_at = |i: usize, v: &Val| -> std::cmp::Ordering {
        c.get(i).expect("index in range").total_cmp(v)
    };
    let lower = |v: &Val, inclusive: bool| -> usize {
        // first index where (tail > v) or (tail >= v if inclusive)
        let mut lo_i = 0usize;
        let mut hi_i = n;
        while lo_i < hi_i {
            let mid = (lo_i + hi_i) / 2;
            let ord = cmp_at(mid, v);
            let keep_left = if inclusive { ord.is_lt() } else { ord.is_le() };
            if keep_left {
                lo_i = mid + 1;
            } else {
                hi_i = mid;
            }
        }
        lo_i
    };
    let a = match lo {
        Bound::Unbounded => 0,
        Bound::Included(v) => lower(v, true),
        Bound::Excluded(v) => lower(v, false),
    };
    let b = match hi {
        Bound::Unbounded => n,
        Bound::Included(v) => lower(v, false),
        Bound::Excluded(v) => lower(v, true),
    };
    Ok((a, b.max(a)))
}

/// Scan an arbitrary column for rows within bounds.
fn scan_range(c: &Column, lo: Bound<&Val>, hi: Bound<&Val>) -> Result<Vec<u32>> {
    let in_lo = |v: &Val| match lo {
        Bound::Unbounded => true,
        Bound::Included(b) => v.total_cmp(b).is_ge(),
        Bound::Excluded(b) => v.total_cmp(b).is_gt(),
    };
    let in_hi = |v: &Val| match hi {
        Bound::Unbounded => true,
        Bound::Included(b) => v.total_cmp(b).is_le(),
        Bound::Excluded(b) => v.total_cmp(b).is_lt(),
    };
    // Typed scans avoid constructing Vals in the common numeric cases.
    let mut positions = Vec::new();
    match c {
        Column::Int(v) => {
            let lo_i = int_bound(lo);
            let hi_i = int_bound(hi);
            for (i, &x) in v.iter().enumerate() {
                if lo_i.is_none_or(|(b, inc)| if inc { x >= b } else { x > b })
                    && hi_i.is_none_or(|(b, inc)| if inc { x <= b } else { x < b })
                {
                    positions.push(i as u32);
                }
            }
        }
        Column::Float(v) => {
            let lo_f = float_bound(lo);
            let hi_f = float_bound(hi);
            for (i, &x) in v.iter().enumerate() {
                if lo_f.is_none_or(|(b, inc)| if inc { x >= b } else { x > b })
                    && hi_f.is_none_or(|(b, inc)| if inc { x <= b } else { x < b })
                {
                    positions.push(i as u32);
                }
            }
        }
        _ => {
            for i in 0..c.len() {
                let v = c.get(i)?;
                if in_lo(&v) && in_hi(&v) {
                    positions.push(i as u32);
                }
            }
        }
    }
    Ok(positions)
}

fn int_bound(b: Bound<&Val>) -> Option<(i64, bool)> {
    match b {
        Bound::Unbounded => None,
        Bound::Included(v) => v.as_int().map(|x| (x, true)),
        Bound::Excluded(v) => v.as_int().map(|x| (x, false)),
    }
}

fn float_bound(b: Bound<&Val>) -> Option<(f64, bool)> {
    match b {
        Bound::Unbounded => None,
        Bound::Included(v) => v.as_float().map(|x| (x, true)),
        Bound::Excluded(v) => v.as_float().map(|x| (x, false)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bat::{bat_of_ints, bat_of_strs};

    #[test]
    fn select_eq_ints() {
        let b = bat_of_ints(vec![5, 7, 5, 9]);
        let r = b.select_eq(&Val::Int(5)).unwrap();
        assert_eq!(r.count(), 2);
        assert_eq!(r.fetch(0).unwrap().0, Val::Oid(0));
        assert_eq!(r.fetch(1).unwrap().0, Val::Oid(2));
    }

    #[test]
    fn select_range_unsorted_scan() {
        let b = bat_of_ints(vec![10, 3, 7, 8, 1]);
        let r =
            b.select_range(Bound::Included(&Val::Int(3)), Bound::Excluded(&Val::Int(8))).unwrap();
        let tails: Vec<_> = r.to_pairs().into_iter().map(|(_, t)| t).collect();
        assert_eq!(tails, vec![Val::Int(3), Val::Int(7)]);
    }

    #[test]
    fn select_range_sorted_binary_search() {
        let b = bat_of_ints(vec![1, 3, 3, 5, 9]).analyze();
        assert!(b.props().tail_sorted);
        let r =
            b.select_range(Bound::Included(&Val::Int(3)), Bound::Included(&Val::Int(5))).unwrap();
        let tails: Vec<_> = r.to_pairs().into_iter().map(|(_, t)| t).collect();
        assert_eq!(tails, vec![Val::Int(3), Val::Int(3), Val::Int(5)]);
        // heads must point at original rows
        assert_eq!(r.fetch(0).unwrap().0, Val::Oid(1));
    }

    #[test]
    fn select_range_sorted_excluded_bounds() {
        let b = bat_of_ints(vec![1, 3, 3, 5, 9]).analyze();
        let r =
            b.select_range(Bound::Excluded(&Val::Int(3)), Bound::Excluded(&Val::Int(9))).unwrap();
        let tails: Vec<_> = r.to_pairs().into_iter().map(|(_, t)| t).collect();
        assert_eq!(tails, vec![Val::Int(5)]);
    }

    #[test]
    fn select_range_empty_window() {
        let b = bat_of_ints(vec![1, 2, 3]).analyze();
        let r =
            b.select_range(Bound::Included(&Val::Int(10)), Bound::Included(&Val::Int(20))).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn select_floats() {
        let b = crate::bat::bat_of_floats(vec![0.1, 0.9, 0.5]);
        let r = b.select_range(Bound::Included(&Val::Float(0.4)), Bound::Unbounded).unwrap();
        assert_eq!(r.count(), 2);
    }

    #[test]
    fn select_str_contains_uses_dictionary() {
        let b = bat_of_strs(["sunset beach", "forest", "beach house", "forest"]);
        let r = b.select_str_contains("beach").unwrap();
        assert_eq!(r.count(), 2);
        let r2 = b.select_str_contains("forest").unwrap();
        assert_eq!(r2.count(), 2);
    }

    #[test]
    fn select_where_arbitrary_predicate() {
        let b = bat_of_ints(vec![1, 2, 3, 4]);
        let r = b.select_where(|v| v.as_int().unwrap() % 2 == 0).unwrap();
        assert_eq!(r.count(), 2);
    }

    #[test]
    fn select_eq_strings() {
        let b = bat_of_strs(["a", "b", "a"]);
        let r = b.select_eq(&Val::from("a")).unwrap();
        assert_eq!(r.count(), 2);
    }
}
