//! Selection operators: filter a BAT by a predicate on its tail.
//!
//! Selections return the qualifying `(head, tail)` pairs — the MIL
//! convention — so downstream operators can project either column with
//! `reverse`/`mirror`. Range selections on sorted tails use binary search.

use crate::bat::Bat;
use crate::column::Column;
use crate::error::Result;
use crate::props::Props;
use crate::value::Val;
use std::ops::Bound;

impl Bat {
    /// Rows whose tail equals `v`.
    pub fn select_eq(&self, v: &Val) -> Result<Bat> {
        self.select_range(Bound::Included(v), Bound::Included(v))
    }

    /// Rows whose tail lies within the given bounds (by [`Val::total_cmp`]).
    pub fn select_range(&self, lo: Bound<&Val>, hi: Bound<&Val>) -> Result<Bat> {
        // Sorted-tail fast path: binary search the window, then slice.
        if self.props().tail_sorted && !matches!(self.tail(), Column::Str(_)) {
            let (a, b) = sorted_window(self.tail(), lo, hi)?;
            let mut out = self.slice(a, b);
            // slicing preserves sortedness and keyness
            out = out.with_props(self.props());
            return Ok(out);
        }
        let positions = scan_range_span(self.tail(), lo, hi, (0, self.count()))?;
        Ok(self.take_ordered(&positions))
    }

    /// Rows whose (string) tail contains `pat` as a substring.
    pub fn select_str_contains(&self, pat: &str) -> Result<Bat> {
        let s = self.tail().str_col()?;
        let matching = str_matching_flags(s, pat);
        let positions = scan_str_span(s, &matching, (0, s.len()));
        Ok(self.take_ordered(&positions))
    }

    /// Rows whose tail satisfies an arbitrary predicate (slow path — used
    /// by the naive object-at-a-time interpreter and tests).
    pub fn select_where<F: FnMut(&Val) -> bool>(&self, mut pred: F) -> Result<Bat> {
        let mut positions = Vec::new();
        for i in 0..self.count() {
            if pred(&self.tail().get(i)?) {
                positions.push(i as u32);
            }
        }
        Ok(self.take_ordered(&positions))
    }

    /// Gather by strictly increasing positions, preserving order-derived
    /// properties of both columns.
    pub(crate) fn take_ordered(&self, positions: &[u32]) -> Bat {
        let out = self.take(positions);
        out.with_props(Props {
            head_sorted: self.props().head_sorted,
            tail_sorted: self.props().tail_sorted,
            head_key: self.props().head_key,
            tail_key: self.props().tail_key,
        })
    }
}

/// Binary-search the `[lo, hi)` row window of a sorted numeric column.
fn sorted_window(c: &Column, lo: Bound<&Val>, hi: Bound<&Val>) -> Result<(usize, usize)> {
    let n = c.len();
    let cmp_at = |i: usize, v: &Val| -> std::cmp::Ordering {
        c.get(i).expect("index in range").total_cmp(v)
    };
    let lower = |v: &Val, inclusive: bool| -> usize {
        // first index where (tail > v) or (tail >= v if inclusive)
        let mut lo_i = 0usize;
        let mut hi_i = n;
        while lo_i < hi_i {
            let mid = (lo_i + hi_i) / 2;
            let ord = cmp_at(mid, v);
            let keep_left = if inclusive { ord.is_lt() } else { ord.is_le() };
            if keep_left {
                lo_i = mid + 1;
            } else {
                hi_i = mid;
            }
        }
        lo_i
    };
    let a = match lo {
        Bound::Unbounded => 0,
        Bound::Included(v) => lower(v, true),
        Bound::Excluded(v) => lower(v, false),
    };
    let b = match hi {
        Bound::Unbounded => n,
        Bound::Included(v) => lower(v, false),
        Bound::Excluded(v) => lower(v, true),
    };
    Ok((a, b.max(a)))
}

/// Substring-match flag per dictionary entry — evaluated once per distinct
/// string, shared by every scan span.
pub(crate) fn str_matching_flags(s: &crate::column::StrCol, pat: &str) -> Vec<bool> {
    let mut matching = vec![false; s.dict.len()];
    for (code, st) in s.dict.iter() {
        matching[code as usize] = st.contains(pat);
    }
    matching
}

/// Scan the code span `[span.0, span.1)` of a string column for rows whose
/// dictionary entry matched; positions are global row indices.
pub(crate) fn scan_str_span(
    s: &crate::column::StrCol,
    matching: &[bool],
    span: (usize, usize),
) -> Vec<u32> {
    s.codes[span.0..span.1]
        .iter()
        .enumerate()
        .filter(|(_, &c)| matching[c as usize])
        .map(|(i, _)| (span.0 + i) as u32)
        .collect()
}

/// Scan the row span `[span.0, span.1)` of an arbitrary column for rows
/// within bounds; positions are global row indices. The full-column serial
/// scan and each parallel fragment both funnel through here, so fragmented
/// selection is value-identical to serial by construction.
pub(crate) fn scan_range_span(
    c: &Column,
    lo: Bound<&Val>,
    hi: Bound<&Val>,
    span: (usize, usize),
) -> Result<Vec<u32>> {
    let in_lo = |v: &Val| match lo {
        Bound::Unbounded => true,
        Bound::Included(b) => v.total_cmp(b).is_ge(),
        Bound::Excluded(b) => v.total_cmp(b).is_gt(),
    };
    let in_hi = |v: &Val| match hi {
        Bound::Unbounded => true,
        Bound::Included(b) => v.total_cmp(b).is_le(),
        Bound::Excluded(b) => v.total_cmp(b).is_lt(),
    };
    let (start, end) = span;
    // Typed scans avoid constructing Vals in the common numeric cases; the
    // branchless accumulation (unconditional write, predicated advance)
    // sidesteps the branch mispredictions a push-per-match scan suffers at
    // mid selectivities — ~6× faster on random 50%-selective data.
    match c {
        Column::Int(v) => {
            // exclusive integer bounds tighten to inclusive ones, leaving a
            // two-comparison test with no per-element Option juggling
            let lo_eff = match int_bound(lo) {
                None => i64::MIN,
                Some((b, true)) => b,
                Some((b, false)) => b.saturating_add(1),
            };
            let hi_eff = match int_bound(hi) {
                None => i64::MAX,
                Some((b, true)) => b,
                Some((b, false)) => b.saturating_sub(1),
            };
            // degenerate exclusive bounds at the i64 extremes keep nothing
            if matches!(int_bound(lo), Some((i64::MAX, false)))
                || matches!(int_bound(hi), Some((i64::MIN, false)))
            {
                return Ok(Vec::new());
            }
            let mut buf = vec![0u32; end - start];
            let mut k = 0usize;
            for (i, &x) in v[start..end].iter().enumerate() {
                buf[k] = (start + i) as u32;
                k += usize::from((x >= lo_eff) & (x <= hi_eff));
            }
            buf.truncate(k);
            Ok(buf)
        }
        Column::Float(v) => {
            // an absent bound imposes no constraint at all — in particular
            // it must keep NaN rows, which every comparison would reject
            let lo_f = float_bound(lo);
            let hi_f = float_bound(hi);
            let lo_any = lo_f.is_none();
            let hi_any = hi_f.is_none();
            let (lo_v, lo_inc) = lo_f.unwrap_or((f64::NEG_INFINITY, true));
            let (hi_v, hi_inc) = hi_f.unwrap_or((f64::INFINITY, true));
            let mut buf = vec![0u32; end - start];
            let mut k = 0usize;
            for (i, &x) in v[start..end].iter().enumerate() {
                buf[k] = (start + i) as u32;
                let above = lo_any | (x > lo_v) | (lo_inc & (x == lo_v));
                let below = hi_any | (x < hi_v) | (hi_inc & (x == hi_v));
                k += usize::from(above & below);
            }
            buf.truncate(k);
            Ok(buf)
        }
        _ => {
            let mut positions = Vec::new();
            for i in start..end {
                let v = c.get(i)?;
                if in_lo(&v) && in_hi(&v) {
                    positions.push(i as u32);
                }
            }
            Ok(positions)
        }
    }
}

fn int_bound(b: Bound<&Val>) -> Option<(i64, bool)> {
    match b {
        Bound::Unbounded => None,
        Bound::Included(v) => v.as_int().map(|x| (x, true)),
        Bound::Excluded(v) => v.as_int().map(|x| (x, false)),
    }
}

fn float_bound(b: Bound<&Val>) -> Option<(f64, bool)> {
    match b {
        Bound::Unbounded => None,
        Bound::Included(v) => v.as_float().map(|x| (x, true)),
        Bound::Excluded(v) => v.as_float().map(|x| (x, false)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bat::{bat_of_ints, bat_of_strs};

    #[test]
    fn select_eq_ints() {
        let b = bat_of_ints(vec![5, 7, 5, 9]);
        let r = b.select_eq(&Val::Int(5)).unwrap();
        assert_eq!(r.count(), 2);
        assert_eq!(r.fetch(0).unwrap().0, Val::Oid(0));
        assert_eq!(r.fetch(1).unwrap().0, Val::Oid(2));
    }

    #[test]
    fn select_range_unsorted_scan() {
        let b = bat_of_ints(vec![10, 3, 7, 8, 1]);
        let r =
            b.select_range(Bound::Included(&Val::Int(3)), Bound::Excluded(&Val::Int(8))).unwrap();
        let tails: Vec<_> = r.to_pairs().into_iter().map(|(_, t)| t).collect();
        assert_eq!(tails, vec![Val::Int(3), Val::Int(7)]);
    }

    #[test]
    fn select_range_sorted_binary_search() {
        let b = bat_of_ints(vec![1, 3, 3, 5, 9]).analyze();
        assert!(b.props().tail_sorted);
        let r =
            b.select_range(Bound::Included(&Val::Int(3)), Bound::Included(&Val::Int(5))).unwrap();
        let tails: Vec<_> = r.to_pairs().into_iter().map(|(_, t)| t).collect();
        assert_eq!(tails, vec![Val::Int(3), Val::Int(3), Val::Int(5)]);
        // heads must point at original rows
        assert_eq!(r.fetch(0).unwrap().0, Val::Oid(1));
    }

    #[test]
    fn select_range_sorted_excluded_bounds() {
        let b = bat_of_ints(vec![1, 3, 3, 5, 9]).analyze();
        let r =
            b.select_range(Bound::Excluded(&Val::Int(3)), Bound::Excluded(&Val::Int(9))).unwrap();
        let tails: Vec<_> = r.to_pairs().into_iter().map(|(_, t)| t).collect();
        assert_eq!(tails, vec![Val::Int(5)]);
    }

    #[test]
    fn select_range_empty_window() {
        let b = bat_of_ints(vec![1, 2, 3]).analyze();
        let r =
            b.select_range(Bound::Included(&Val::Int(10)), Bound::Included(&Val::Int(20))).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn select_floats() {
        let b = crate::bat::bat_of_floats(vec![0.1, 0.9, 0.5]);
        let r = b.select_range(Bound::Included(&Val::Float(0.4)), Bound::Unbounded).unwrap();
        assert_eq!(r.count(), 2);
    }

    #[test]
    fn select_str_contains_uses_dictionary() {
        let b = bat_of_strs(["sunset beach", "forest", "beach house", "forest"]);
        let r = b.select_str_contains("beach").unwrap();
        assert_eq!(r.count(), 2);
        let r2 = b.select_str_contains("forest").unwrap();
        assert_eq!(r2.count(), 2);
    }

    #[test]
    fn unbounded_select_keeps_nan_rows() {
        let b = crate::bat::bat_of_floats(vec![0.1, f64::NAN, 0.9]);
        // no bounds: no constraint — NaN rows must survive
        let all = b.select_range(Bound::Unbounded, Bound::Unbounded).unwrap();
        assert_eq!(all.count(), 3);
        // any real bound rejects NaN (comparisons are false), as before
        let some = b.select_range(Bound::Included(&Val::Float(0.0)), Bound::Unbounded).unwrap();
        assert_eq!(some.count(), 2);
    }

    #[test]
    fn select_where_arbitrary_predicate() {
        let b = bat_of_ints(vec![1, 2, 3, 4]);
        let r = b.select_where(|v| v.as_int().unwrap() % 2 == 0).unwrap();
        assert_eq!(r.count(), 2);
    }

    #[test]
    fn select_eq_strings() {
        let b = bat_of_strs(["a", "b", "a"]);
        let r = b.select_eq(&Val::from("a")).unwrap();
        assert_eq!(r.count(), 2);
    }
}
