//! BAT property bits.
//!
//! Monet tracks simple physical properties per BAT and uses them to choose
//! operator implementations (e.g. merge join over hash join when both
//! operands are tail-sorted, positional fetch when a head is void). We keep
//! the same four bits. Properties are *conservative*: a cleared bit means
//! "unknown", never "false and exploited".

use crate::bat::Bat;
use crate::fxhash::FxHashSet;

/// Physical properties of a BAT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Props {
    /// Head values are non-decreasing.
    pub head_sorted: bool,
    /// Tail values are non-decreasing.
    pub tail_sorted: bool,
    /// Head values are all distinct (a key).
    pub head_key: bool,
    /// Tail values are all distinct.
    pub tail_key: bool,
}

impl Props {
    /// Properties of a dense-headed BAT: the void head is sorted and a key.
    pub fn dense_head() -> Props {
        Props { head_sorted: true, head_key: true, ..Props::default() }
    }

    /// Properties with every bit cleared ("nothing known").
    pub fn unknown() -> Props {
        Props::default()
    }

    /// Swap head and tail property bits (used by `reverse`).
    pub fn reversed(self) -> Props {
        Props {
            head_sorted: self.tail_sorted,
            tail_sorted: self.head_sorted,
            head_key: self.tail_key,
            tail_key: self.head_key,
        }
    }
}

/// Cap on the number of tail values sampled by [`summarize`]. Sampling is
/// stride-based (deterministic), so summaries are reproducible across runs.
pub const SUMMARY_SAMPLE_CAP: usize = 65_536;

/// Ingest-time statistical summary of one BAT's tail column, consumed by the
/// logical layer's cost estimator (selection ordering, semijoin placement,
/// parallel-degree choice).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ColSummary {
    /// Row count.
    pub rows: u64,
    /// Estimated number of distinct tail values. Conservative: when the
    /// stride sample saturates (every sampled value distinct) the column is
    /// assumed mostly unique; otherwise the sampled distinct count is used
    /// as a lower bound.
    pub ndv: u64,
    /// Smallest sampled numeric tail value (`None` for string tails).
    pub min: Option<f64>,
    /// Largest sampled numeric tail value (`None` for string tails).
    pub max: Option<f64>,
    /// The BAT's physical property bits at summary time.
    pub props: Props,
}

/// Summarise a BAT's tail for the statistics catalog: row count, estimated
/// NDV, and numeric min/max, all from a deterministic stride sample of at
/// most [`SUMMARY_SAMPLE_CAP`] values.
pub fn summarize(bat: &Bat) -> ColSummary {
    let n = bat.count();
    let tail = bat.tail();
    let stride = (n / SUMMARY_SAMPLE_CAP).max(1);
    let mut distinct: FxHashSet<u64> = FxHashSet::default();
    let mut sampled = 0u64;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut numeric = true;
    let mut i = 0usize;
    while i < n {
        if let Ok(v) = tail.get(i) {
            distinct.insert(v.fingerprint());
            match v.as_float() {
                Some(x) => {
                    min = min.min(x);
                    max = max.max(x);
                }
                None => numeric = false,
            }
        }
        sampled += 1;
        i += stride;
    }
    let ndv = if sampled > 0 && distinct.len() as u64 == sampled {
        n as u64 // sample saturated: treat as (near-)unique
    } else {
        distinct.len() as u64
    };
    ColSummary {
        rows: n as u64,
        ndv,
        min: (numeric && sampled > 0).then_some(min),
        max: (numeric && sampled > 0).then_some(max),
        props: bat.props(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    #[test]
    fn reversed_swaps_bits() {
        let p = Props { head_sorted: true, tail_sorted: false, head_key: true, tail_key: false };
        let r = p.reversed();
        assert!(r.tail_sorted && r.tail_key);
        assert!(!r.head_sorted && !r.head_key);
        assert_eq!(r.reversed(), p);
    }

    #[test]
    fn dense_head_props() {
        let p = Props::dense_head();
        assert!(p.head_sorted && p.head_key);
        assert!(!p.tail_sorted && !p.tail_key);
    }

    #[test]
    fn summarize_small_numeric_column_is_exact() {
        let b = Bat::dense(Column::Int(vec![3, 1, 3, 7]));
        let s = summarize(&b);
        assert_eq!(s.rows, 4);
        assert_eq!(s.ndv, 3);
        assert_eq!(s.min, Some(1.0));
        assert_eq!(s.max, Some(7.0));
    }

    #[test]
    fn summarize_unique_column_saturates_to_rows() {
        let b = Bat::dense(Column::Int((0..100).collect()));
        let s = summarize(&b);
        assert_eq!(s.ndv, 100);
    }

    #[test]
    fn summarize_string_column_has_no_bounds() {
        let b = Bat::dense(Column::Str(crate::column::StrCol::from_strs(["a", "b", "a"])));
        let s = summarize(&b);
        assert_eq!(s.rows, 3);
        assert_eq!(s.ndv, 2);
        assert_eq!(s.min, None);
        assert_eq!(s.max, None);
    }

    #[test]
    fn summarize_empty_bat() {
        let b = Bat::dense(Column::Int(vec![]));
        let s = summarize(&b);
        assert_eq!(s.rows, 0);
        assert_eq!(s.ndv, 0);
        assert_eq!(s.min, None);
    }
}
