//! BAT property bits.
//!
//! Monet tracks simple physical properties per BAT and uses them to choose
//! operator implementations (e.g. merge join over hash join when both
//! operands are tail-sorted, positional fetch when a head is void). We keep
//! the same four bits. Properties are *conservative*: a cleared bit means
//! "unknown", never "false and exploited".

/// Physical properties of a BAT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Props {
    /// Head values are non-decreasing.
    pub head_sorted: bool,
    /// Tail values are non-decreasing.
    pub tail_sorted: bool,
    /// Head values are all distinct (a key).
    pub head_key: bool,
    /// Tail values are all distinct.
    pub tail_key: bool,
}

impl Props {
    /// Properties of a dense-headed BAT: the void head is sorted and a key.
    pub fn dense_head() -> Props {
        Props { head_sorted: true, head_key: true, ..Props::default() }
    }

    /// Properties with every bit cleared ("nothing known").
    pub fn unknown() -> Props {
        Props::default()
    }

    /// Swap head and tail property bits (used by `reverse`).
    pub fn reversed(self) -> Props {
        Props {
            head_sorted: self.tail_sorted,
            tail_sorted: self.head_sorted,
            head_key: self.tail_key,
            tail_key: self.head_key,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reversed_swaps_bits() {
        let p = Props { head_sorted: true, tail_sorted: false, head_key: true, tail_key: false };
        let r = p.reversed();
        assert!(r.tail_sorted && r.tail_key);
        assert!(!r.head_sorted && !r.head_key);
        assert_eq!(r.reversed(), p);
    }

    #[test]
    fn dense_head_props() {
        let p = Props::dense_head();
        assert!(p.head_sorted && p.head_key);
        assert!(!p.tail_sorted && !p.tail_key);
    }
}
