//! Dictionary encoding for string columns.
//!
//! Monet stores variable-width values in a separate heap with the column
//! holding fixed-width references. We model that heap as a deduplicating
//! string dictionary shared (via `Arc`) between columns derived from one
//! another, so projections and selections never copy string data.

use crate::fxhash::FxHashMap;
use std::sync::Arc;

/// An immutable, deduplicated pool of strings.
///
/// Codes are dense `u32` indices in insertion order. Dictionaries are
/// constructed through [`StrDictBuilder`] and then frozen; all column
/// operations share the frozen dictionary.
#[derive(Debug, Default)]
pub struct StrDict {
    strings: Vec<Box<str>>,
}

impl StrDict {
    /// Number of distinct strings in the pool.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Resolve a code to its string. Panics on an invalid code, which would
    /// indicate kernel corruption (codes are only minted by the builder).
    #[inline]
    pub fn resolve(&self, code: u32) -> &str {
        &self.strings[code as usize]
    }

    /// Look up the code of `s`, if present. Linear in the dictionary only
    /// when called on a frozen dict without index; intended for tests and
    /// small lookups — bulk lookups should go through [`StrDictBuilder`].
    pub fn lookup(&self, s: &str) -> Option<u32> {
        self.strings.iter().position(|t| &**t == s).map(|i| i as u32)
    }

    /// Iterate over `(code, string)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.strings.iter().enumerate().map(|(i, s)| (i as u32, &**s))
    }
}

/// Incremental builder for [`StrDict`], deduplicating on insert.
#[derive(Debug, Default)]
pub struct StrDictBuilder {
    strings: Vec<Box<str>>,
    index: FxHashMap<Box<str>, u32>,
}

impl StrDictBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a builder pre-seeded with the contents of an existing
    /// dictionary (codes are preserved).
    pub fn from_dict(dict: &StrDict) -> Self {
        let mut b = Self::new();
        for (code, s) in dict.iter() {
            b.strings.push(s.into());
            b.index.insert(s.into(), code);
        }
        b
    }

    /// Intern `s`, returning its (possibly pre-existing) code.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&code) = self.index.get(s) {
            return code;
        }
        let code = self.strings.len() as u32;
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.index.insert(boxed, code);
        code
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Freeze into an immutable shared dictionary.
    pub fn freeze(self) -> Arc<StrDict> {
        Arc::new(StrDict { strings: self.strings })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_deduplicates() {
        let mut b = StrDictBuilder::new();
        let a = b.intern("apple");
        let p = b.intern("pear");
        let a2 = b.intern("apple");
        assert_eq!(a, a2);
        assert_ne!(a, p);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn freeze_and_resolve() {
        let mut b = StrDictBuilder::new();
        b.intern("x");
        b.intern("y");
        let d = b.freeze();
        assert_eq!(d.resolve(0), "x");
        assert_eq!(d.resolve(1), "y");
        assert_eq!(d.lookup("y"), Some(1));
        assert_eq!(d.lookup("z"), None);
    }

    #[test]
    fn from_dict_preserves_codes() {
        let mut b = StrDictBuilder::new();
        b.intern("a");
        b.intern("b");
        let d = b.freeze();
        let mut b2 = StrDictBuilder::from_dict(&d);
        assert_eq!(b2.intern("a"), 0);
        assert_eq!(b2.intern("c"), 2);
    }

    #[test]
    fn iter_yields_in_code_order() {
        let mut b = StrDictBuilder::new();
        b.intern("p");
        b.intern("q");
        let d = b.freeze();
        let all: Vec<_> = d.iter().collect();
        assert_eq!(all, vec![(0, "p"), (1, "q")]);
    }
}
