//! Dictionary encoding for string columns.
//!
//! Monet stores variable-width values in a separate heap with the column
//! holding fixed-width references. We model that heap as a deduplicating
//! string dictionary shared (via `Arc`) between columns derived from one
//! another, so projections and selections never copy string data.
//!
//! On top of the plain `Vec<u32>` code vectors the kernel operates on,
//! this module provides the fully compressed forms built on the storage
//! codec's bitpacking primitives ([`crate::storage::codec`]):
//! [`PackedCodes`] holds a code vector at the dictionary's bit width
//! (a 9-entry dictionary costs 4 bits per row instead of 32), and
//! [`DictColumn`] pairs packed codes with their dictionary into a
//! self-contained dictionary-compressed column that serialises through
//! the same codec the durable tier uses.

use crate::error::{MonetError, Result};
use crate::fxhash::FxHashMap;
use crate::storage::codec::{
    bits_for, pack_u32s, packed_words, unpack_u32_at, unpack_u32s, ByteReader, ByteWriter,
};
use std::sync::Arc;

/// An immutable, deduplicated pool of strings.
///
/// Codes are dense `u32` indices in insertion order. Dictionaries are
/// constructed through [`StrDictBuilder`] and then frozen; all column
/// operations share the frozen dictionary.
#[derive(Debug, Default)]
pub struct StrDict {
    strings: Vec<Box<str>>,
}

impl StrDict {
    /// Number of distinct strings in the pool.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Resolve a code to its string. Panics on an invalid code, which would
    /// indicate kernel corruption (codes are only minted by the builder).
    #[inline]
    pub fn resolve(&self, code: u32) -> &str {
        &self.strings[code as usize]
    }

    /// Look up the code of `s`, if present. Linear in the dictionary only
    /// when called on a frozen dict without index; intended for tests and
    /// small lookups — bulk lookups should go through [`StrDictBuilder`].
    pub fn lookup(&self, s: &str) -> Option<u32> {
        self.strings.iter().position(|t| &**t == s).map(|i| i as u32)
    }

    /// Iterate over `(code, string)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.strings.iter().enumerate().map(|(i, s)| (i as u32, &**s))
    }
}

/// Incremental builder for [`StrDict`], deduplicating on insert.
#[derive(Debug, Default)]
pub struct StrDictBuilder {
    strings: Vec<Box<str>>,
    index: FxHashMap<Box<str>, u32>,
}

impl StrDictBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a builder pre-seeded with the contents of an existing
    /// dictionary (codes are preserved).
    pub fn from_dict(dict: &StrDict) -> Self {
        let mut b = Self::new();
        for (code, s) in dict.iter() {
            b.strings.push(s.into());
            b.index.insert(s.into(), code);
        }
        b
    }

    /// Intern `s`, returning its (possibly pre-existing) code.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&code) = self.index.get(s) {
            return code;
        }
        let code = self.strings.len() as u32;
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.index.insert(boxed, code);
        code
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Freeze into an immutable shared dictionary.
    pub fn freeze(self) -> Arc<StrDict> {
        Arc::new(StrDict { strings: self.strings })
    }
}

/// A bitpacked vector of dictionary codes: every code occupies exactly
/// `width` bits, where `width` is the smallest width that represents the
/// greatest code present. Immutable once built.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PackedCodes {
    words: Vec<u64>,
    len: usize,
    width: u32,
}

impl PackedCodes {
    /// Pack a code vector at the width of its greatest value.
    pub fn from_codes(codes: &[u32]) -> PackedCodes {
        let width = bits_for(codes.iter().copied().max().unwrap_or(0));
        let mut words = Vec::new();
        pack_u32s(&mut words, codes, width);
        PackedCodes { words, len: codes.len(), width }
    }

    /// Number of codes held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no code is held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bits per code.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The code at row `i`. Panics when `i` is out of range, like slice
    /// indexing.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        assert!(i < self.len, "code index {i} out of range {}", self.len);
        unpack_u32_at(&self.words, 0, i, self.width)
    }

    /// Decode every code back into a plain vector.
    pub fn to_vec(&self) -> Vec<u32> {
        let mut out = Vec::new();
        unpack_u32s(&self.words, 0, self.len, self.width, &mut out);
        out
    }

    /// Bytes of heap memory held by the packed representation.
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Serialise into the storage codec.
    pub fn write_to(&self, w: &mut ByteWriter) {
        w.u64(self.len as u64);
        w.u8(self.width as u8);
        for word in &self.words {
            w.u64(*word);
        }
    }

    /// Deserialise codes packed by [`write_to`](Self::write_to), validating
    /// the width and word count before allocating.
    pub fn read_from(r: &mut ByteReader<'_>) -> Result<PackedCodes> {
        let len = r.len64(r.remaining().saturating_mul(64))?;
        let width = r.u8()? as u32;
        if width > 32 {
            return Err(MonetError::Corrupt {
                what: "packed codes".to_string(),
                detail: format!("code width {width} exceeds 32 bits"),
            });
        }
        let n_words = packed_words(len, width);
        if n_words.saturating_mul(8) > r.remaining() {
            return Err(MonetError::Corrupt {
                what: "packed codes".to_string(),
                detail: format!("{n_words} packed words exceed remaining bytes"),
            });
        }
        let mut words = Vec::with_capacity(n_words);
        for _ in 0..n_words {
            words.push(r.u64()?);
        }
        Ok(PackedCodes { words, len, width })
    }
}

/// A self-contained dictionary-compressed string column: bitpacked codes
/// plus the shared dictionary they index. This is the fully compressed
/// form of the kernel's `StrCol` — same dictionary sharing, but the code
/// vector shrinks from 32 bits per row to the dictionary's width.
#[derive(Debug, Clone)]
pub struct DictColumn {
    codes: PackedCodes,
    dict: Arc<StrDict>,
}

impl DictColumn {
    /// Build by interning `values` into a fresh dictionary.
    pub fn from_strings<S: AsRef<str>>(values: impl IntoIterator<Item = S>) -> DictColumn {
        let mut builder = StrDictBuilder::new();
        let codes: Vec<u32> = values.into_iter().map(|s| builder.intern(s.as_ref())).collect();
        DictColumn { codes: PackedCodes::from_codes(&codes), dict: builder.freeze() }
    }

    /// Build from an existing code vector and its dictionary. Panics when a
    /// code escapes the dictionary (codes are minted by the builder, so an
    /// escapee indicates kernel corruption).
    pub fn from_parts(codes: &[u32], dict: Arc<StrDict>) -> DictColumn {
        assert!(
            codes.iter().all(|&c| (c as usize) < dict.len()),
            "code outside dictionary of {} entries",
            dict.len()
        );
        DictColumn { codes: PackedCodes::from_codes(codes), dict }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The packed code vector.
    pub fn codes(&self) -> &PackedCodes {
        &self.codes
    }

    /// The shared dictionary.
    pub fn dict(&self) -> &Arc<StrDict> {
        &self.dict
    }

    /// Resolve row `i` to its string.
    #[inline]
    pub fn get(&self, i: usize) -> &str {
        self.dict.resolve(self.codes.get(i))
    }

    /// Bytes of heap memory held (packed codes + dictionary strings).
    pub fn heap_bytes(&self) -> usize {
        self.codes.heap_bytes() + self.dict.iter().map(|(_, s)| s.len()).sum::<usize>()
    }

    /// Serialise into the storage codec (codes, then dictionary strings).
    pub fn write_to(&self, w: &mut ByteWriter) {
        self.codes.write_to(w);
        w.u64(self.dict.len() as u64);
        for (_, s) in self.dict.iter() {
            w.str(s);
        }
    }

    /// Deserialise a column written by [`write_to`](Self::write_to),
    /// rejecting codes that escape the dictionary.
    pub fn read_from(r: &mut ByteReader<'_>) -> Result<DictColumn> {
        let codes = PackedCodes::read_from(r)?;
        let dict_len = r.len64(r.remaining())?;
        let mut builder = StrDictBuilder::new();
        for _ in 0..dict_len {
            builder.intern(&r.str()?);
        }
        for i in 0..codes.len() {
            let c = codes.get(i);
            if c as usize >= dict_len {
                return Err(MonetError::Corrupt {
                    what: "dictionary column".to_string(),
                    detail: format!("code {c} outside dictionary of {dict_len} entries"),
                });
            }
        }
        Ok(DictColumn { codes, dict: builder.freeze() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_deduplicates() {
        let mut b = StrDictBuilder::new();
        let a = b.intern("apple");
        let p = b.intern("pear");
        let a2 = b.intern("apple");
        assert_eq!(a, a2);
        assert_ne!(a, p);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn freeze_and_resolve() {
        let mut b = StrDictBuilder::new();
        b.intern("x");
        b.intern("y");
        let d = b.freeze();
        assert_eq!(d.resolve(0), "x");
        assert_eq!(d.resolve(1), "y");
        assert_eq!(d.lookup("y"), Some(1));
        assert_eq!(d.lookup("z"), None);
    }

    #[test]
    fn from_dict_preserves_codes() {
        let mut b = StrDictBuilder::new();
        b.intern("a");
        b.intern("b");
        let d = b.freeze();
        let mut b2 = StrDictBuilder::from_dict(&d);
        assert_eq!(b2.intern("a"), 0);
        assert_eq!(b2.intern("c"), 2);
    }

    #[test]
    fn iter_yields_in_code_order() {
        let mut b = StrDictBuilder::new();
        b.intern("p");
        b.intern("q");
        let d = b.freeze();
        let all: Vec<_> = d.iter().collect();
        assert_eq!(all, vec![(0, "p"), (1, "q")]);
    }

    #[test]
    fn packed_codes_roundtrip_and_width() {
        let codes = [0u32, 5, 2, 7, 7, 0];
        let packed = PackedCodes::from_codes(&codes);
        assert_eq!(packed.width(), 3);
        assert_eq!(packed.len(), codes.len());
        assert_eq!(packed.to_vec(), codes);
        for (i, &c) in codes.iter().enumerate() {
            assert_eq!(packed.get(i), c);
        }
        // uniform columns pack to zero bits
        let zeros = PackedCodes::from_codes(&[0, 0, 0, 0]);
        assert_eq!(zeros.width(), 0);
        assert_eq!(zeros.heap_bytes(), 0);
        assert_eq!(zeros.to_vec(), vec![0; 4]);
    }

    #[test]
    fn packed_codes_serialise_through_the_codec() {
        let packed = PackedCodes::from_codes(&[9, 1, 4, 4, 0, 9]);
        let mut w = ByteWriter::new();
        packed.write_to(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "codes");
        let back = PackedCodes::read_from(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back, packed);
        // truncation is a typed error, not a panic
        let mut r = ByteReader::new(&bytes[..bytes.len() - 1], "codes");
        assert!(PackedCodes::read_from(&mut r).is_err());
    }

    #[test]
    fn dict_column_compresses_and_resolves() {
        let values = ["sunset", "beach", "sunset", "mist", "beach", "sunset"];
        let col = DictColumn::from_strings(values);
        assert_eq!(col.len(), 6);
        assert_eq!(col.dict().len(), 3);
        assert_eq!(col.codes().width(), 2);
        for (i, v) in values.iter().enumerate() {
            assert_eq!(col.get(i), *v);
        }
        // 6 rows at 2 bits fit one word; the raw code vector took 24 bytes
        assert!(col.codes().heap_bytes() < values.len() * 4);
    }

    #[test]
    fn dict_column_roundtrips_and_rejects_escaping_codes() {
        let col = DictColumn::from_strings(["a", "b", "c", "a"]);
        let mut w = ByteWriter::new();
        col.write_to(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "col");
        let back = DictColumn::read_from(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back.len(), col.len());
        for i in 0..col.len() {
            assert_eq!(back.get(i), col.get(i));
        }
        // a column whose codes escape its dictionary is corrupt
        let mut w = ByteWriter::new();
        PackedCodes::from_codes(&[3]).write_to(&mut w);
        w.u64(1); // only one dictionary entry
        w.str("only");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "col");
        assert!(matches!(DictColumn::read_from(&mut r), Err(MonetError::Corrupt { .. })));
    }

    #[test]
    fn dict_column_from_parts_shares_the_dictionary() {
        let mut b = StrDictBuilder::new();
        let codes = vec![b.intern("x"), b.intern("y"), b.intern("x")];
        let dict = b.freeze();
        let col = DictColumn::from_parts(&codes, Arc::clone(&dict));
        assert_eq!(col.get(2), "x");
        assert!(Arc::ptr_eq(col.dict(), &dict));
    }
}
