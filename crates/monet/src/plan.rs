//! Physical query plans and their interpreting executor.
//!
//! A [`Plan`] is a tree of BAT-algebra operators; the Moa layer produces
//! these by flattening logical object-algebra expressions. The [`Executor`]
//! interprets a plan against a [`Catalog`] and an [`OpRegistry`], recording
//! per-operator statistics (operator invocations, rows produced, wall
//! time) and optionally memoising common subexpressions — the mechanism
//! behind the optimizer ablation experiment (E2).
//!
//! When [`Executor::degree`] is raised above 1 (directly, or via
//! [`crate::fragment::ParallelExecutor`]), the fragment-parallelisable
//! operators — `select`, `join` (probe side), `aggr` and `grouped_aggr`
//! (`Sum`/`Count`) — execute per oid-range fragment on scoped threads and
//! merge, as long as their input reaches [`Executor::min_fragment_rows`];
//! `project` and `mark` stay serial because constant/void fills are pure
//! memory bandwidth. [`Executor::explain`] shows, per operator, whether it
//! actually ran fragmented and at what degree.

use crate::aggr::Agg;
use crate::bat::Bat;
use crate::catalog::Catalog;
use crate::column::Column;
use crate::error::{MonetError, Result};
use crate::ext::{OpCtx, OpRegistry};
use crate::fxhash::FxHashMap;
use crate::value::{Oid, Val};
use std::fmt::Write as _;
use std::hash::Hasher;
use std::ops::Bound;
use std::sync::Arc;
use std::time::Instant;

/// Tail predicate of a `Select` node.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// Tail equals the value.
    Eq(Val),
    /// Tail within the (optional) bounds.
    Range {
        /// Lower bound, if any.
        lo: Option<Val>,
        /// Lower bound inclusive?
        lo_incl: bool,
        /// Upper bound, if any.
        hi: Option<Val>,
        /// Upper bound inclusive?
        hi_incl: bool,
    },
    /// String tail contains the pattern.
    StrContains(String),
}

/// Element-wise arithmetic between two aligned `[oid, number]` BATs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (yields float).
    Div,
}

/// Re-export of the aggregate kind used in plans.
pub type AggKind = Agg;

/// A physical plan node.
#[derive(Debug, Clone)]
pub enum Plan {
    /// Load a named BAT from the catalog.
    Load(String),
    /// Literal BAT.
    Const(Arc<Bat>),
    /// Filter rows by a tail predicate.
    Select {
        /// Input plan.
        input: Box<Plan>,
        /// Predicate applied to the tail.
        pred: Pred,
    },
    /// `[L.head, R.tail]` on `L.tail == R.head`.
    Join {
        /// Probe side.
        left: Box<Plan>,
        /// Build side.
        right: Box<Plan>,
    },
    /// Rows of `left` whose head occurs among `right`'s heads.
    Semijoin {
        /// Restricted side.
        left: Box<Plan>,
        /// Filter side.
        right: Box<Plan>,
    },
    /// Swap head and tail.
    Reverse(Box<Plan>),
    /// `[head, head]`.
    Mirror(Box<Plan>),
    /// `[head, void(base..)]`.
    Mark {
        /// Input plan.
        input: Box<Plan>,
        /// First fresh oid.
        base: Oid,
    },
    /// `[head, const]`.
    ProjectConst {
        /// Input plan.
        input: Box<Plan>,
        /// The constant.
        val: Val,
    },
    /// Scalar aggregate of the tail → 1-row dense BAT.
    Aggr {
        /// Input plan.
        input: Box<Plan>,
        /// Aggregate kind.
        agg: Agg,
    },
    /// Grouped aggregate: `values` is `[key, number]`, `groups` is
    /// `[key, gid]`; result `[gid, agg]`.
    GroupedAggr {
        /// The `[key, value]` input.
        values: Box<Plan>,
        /// The `[key, gid]` mapping.
        groups: Box<Plan>,
        /// Aggregate kind.
        agg: Agg,
    },
    /// Stable sort by tail.
    SortTail {
        /// Input plan.
        input: Box<Plan>,
        /// Descending?
        desc: bool,
    },
    /// Best-k rows by tail.
    TopN {
        /// Input plan.
        input: Box<Plan>,
        /// How many rows to keep.
        k: usize,
        /// Take greatest tails first?
        desc: bool,
    },
    /// Rows `[lo, hi)`.
    Slice {
        /// Input plan.
        input: Box<Plan>,
        /// First row.
        lo: usize,
        /// One-past-last row.
        hi: usize,
    },
    /// One row per distinct tail.
    Distinct(Box<Plan>),
    /// Key-based union (left wins on duplicates).
    KUnion {
        /// Left operand.
        left: Box<Plan>,
        /// Right operand.
        right: Box<Plan>,
    },
    /// Rows of left whose head is absent from right.
    KDiff {
        /// Left operand.
        left: Box<Plan>,
        /// Right operand.
        right: Box<Plan>,
    },
    /// Element-wise arithmetic between two `[oid, number]` BATs aligned on
    /// head.
    Arith {
        /// Left operand.
        left: Box<Plan>,
        /// Right operand.
        right: Box<Plan>,
        /// The operation.
        op: ArithOp,
    },
    /// Tail `op` constant.
    ArithConst {
        /// Input plan.
        input: Box<Plan>,
        /// The operation.
        op: ArithOp,
        /// The constant (right operand).
        val: Val,
    },
    /// Invoke a registered custom operator.
    Custom {
        /// Operator name in the [`OpRegistry`].
        op: String,
        /// BAT inputs.
        inputs: Vec<Plan>,
        /// Scalar parameters.
        params: Vec<Val>,
    },
}

impl Plan {
    /// Load node helper.
    pub fn load(name: impl Into<String>) -> Plan {
        Plan::Load(name.into())
    }

    /// Structural fingerprint for memoisation. Collisions are possible in
    /// principle but would require engineered inputs; the memo also stores
    /// only within a single execution.
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::fxhash::FxHasher::default();
        self.hash_into(&mut h);
        h.finish()
    }

    fn hash_into(&self, h: &mut crate::fxhash::FxHasher) {
        match self {
            Plan::Load(n) => {
                h.write_u8(1);
                h.write(n.as_bytes());
            }
            Plan::Const(b) => {
                h.write_u8(2);
                h.write_usize(Arc::as_ptr(b) as usize);
            }
            Plan::Select { input, pred } => {
                h.write_u8(3);
                input.hash_into(h);
                match pred {
                    Pred::Eq(v) => {
                        h.write_u8(0);
                        h.write_u64(v.fingerprint());
                    }
                    Pred::Range { lo, lo_incl, hi, hi_incl } => {
                        h.write_u8(1);
                        h.write_u8(u8::from(*lo_incl) | (u8::from(*hi_incl) << 1));
                        h.write_u64(lo.as_ref().map_or(0, Val::fingerprint));
                        h.write_u64(hi.as_ref().map_or(0, Val::fingerprint));
                    }
                    Pred::StrContains(s) => {
                        h.write_u8(2);
                        h.write(s.as_bytes());
                    }
                }
            }
            Plan::Join { left, right } => {
                h.write_u8(4);
                left.hash_into(h);
                right.hash_into(h);
            }
            Plan::Semijoin { left, right } => {
                h.write_u8(5);
                left.hash_into(h);
                right.hash_into(h);
            }
            Plan::Reverse(p) => {
                h.write_u8(6);
                p.hash_into(h);
            }
            Plan::Mirror(p) => {
                h.write_u8(7);
                p.hash_into(h);
            }
            Plan::Mark { input, base } => {
                h.write_u8(8);
                input.hash_into(h);
                h.write_u32(*base);
            }
            Plan::ProjectConst { input, val } => {
                h.write_u8(9);
                input.hash_into(h);
                h.write_u64(val.fingerprint());
            }
            Plan::Aggr { input, agg } => {
                h.write_u8(10);
                input.hash_into(h);
                h.write_u8(*agg as u8);
            }
            Plan::GroupedAggr { values, groups, agg } => {
                h.write_u8(11);
                values.hash_into(h);
                groups.hash_into(h);
                h.write_u8(*agg as u8);
            }
            Plan::SortTail { input, desc } => {
                h.write_u8(12);
                input.hash_into(h);
                h.write_u8(u8::from(*desc));
            }
            Plan::TopN { input, k, desc } => {
                h.write_u8(13);
                input.hash_into(h);
                h.write_usize(*k);
                h.write_u8(u8::from(*desc));
            }
            Plan::Slice { input, lo, hi } => {
                h.write_u8(14);
                input.hash_into(h);
                h.write_usize(*lo);
                h.write_usize(*hi);
            }
            Plan::Distinct(p) => {
                h.write_u8(15);
                p.hash_into(h);
            }
            Plan::KUnion { left, right } => {
                h.write_u8(16);
                left.hash_into(h);
                right.hash_into(h);
            }
            Plan::KDiff { left, right } => {
                h.write_u8(17);
                left.hash_into(h);
                right.hash_into(h);
            }
            Plan::Arith { left, right, op } => {
                h.write_u8(18);
                left.hash_into(h);
                right.hash_into(h);
                h.write_u8(*op as u8);
            }
            Plan::ArithConst { input, op, val } => {
                h.write_u8(19);
                input.hash_into(h);
                h.write_u8(*op as u8);
                h.write_u64(val.fingerprint());
            }
            Plan::Custom { op, inputs, params } => {
                h.write_u8(20);
                h.write(op.as_bytes());
                for i in inputs {
                    i.hash_into(h);
                }
                for p in params {
                    h.write_u64(p.fingerprint());
                }
            }
        }
    }

    /// Operator mnemonic for statistics and EXPLAIN output.
    pub fn op_name(&self) -> &'static str {
        match self {
            Plan::Load(_) => "load",
            Plan::Const(_) => "const",
            Plan::Select { .. } => "select",
            Plan::Join { .. } => "join",
            Plan::Semijoin { .. } => "semijoin",
            Plan::Reverse(_) => "reverse",
            Plan::Mirror(_) => "mirror",
            Plan::Mark { .. } => "mark",
            Plan::ProjectConst { .. } => "project",
            Plan::Aggr { .. } => "aggr",
            Plan::GroupedAggr { .. } => "grouped_aggr",
            Plan::SortTail { .. } => "sort",
            Plan::TopN { .. } => "topn",
            Plan::Slice { .. } => "slice",
            Plan::Distinct(_) => "distinct",
            Plan::KUnion { .. } => "kunion",
            Plan::KDiff { .. } => "kdiff",
            Plan::Arith { .. } => "arith",
            Plan::ArithConst { .. } => "arith_const",
            Plan::Custom { .. } => "custom",
        }
    }

    /// Direct children of this node.
    pub fn children(&self) -> Vec<&Plan> {
        match self {
            Plan::Load(_) | Plan::Const(_) => vec![],
            Plan::Select { input, .. }
            | Plan::Reverse(input)
            | Plan::Mirror(input)
            | Plan::Mark { input, .. }
            | Plan::ProjectConst { input, .. }
            | Plan::Aggr { input, .. }
            | Plan::SortTail { input, .. }
            | Plan::TopN { input, .. }
            | Plan::Slice { input, .. }
            | Plan::Distinct(input)
            | Plan::ArithConst { input, .. } => vec![input],
            Plan::Join { left, right }
            | Plan::Semijoin { left, right }
            | Plan::KUnion { left, right }
            | Plan::KDiff { left, right }
            | Plan::Arith { left, right, .. } => vec![left, right],
            Plan::GroupedAggr { values, groups, .. } => vec![values, groups],
            Plan::Custom { inputs, .. } => inputs.iter().collect(),
        }
    }

    /// Number of operator nodes in the plan.
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(|c| c.size()).sum::<usize>()
    }

    /// Indented EXPLAIN rendering of the plan tree.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0, None);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize, trace: Option<&ExecStats>) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        let label = match self {
            Plan::Load(n) => format!("load({n})"),
            Plan::Const(b) => format!("const[{} rows]", b.count()),
            Plan::Select { pred, .. } => format!("select[{pred:?}]"),
            Plan::Custom { op, params, .. } => format!("custom[{op}]({params:?})"),
            Plan::Aggr { agg, .. } => format!("aggr[{agg}]"),
            Plan::GroupedAggr { agg, .. } => format!("grouped_aggr[{agg}]"),
            Plan::TopN { k, desc, .. } => format!("topn[k={k}, desc={desc}]"),
            other => other.op_name().to_string(),
        };
        out.push_str(&label);
        if let Some(stats) = trace {
            if let Some(t) = stats.node_trace.get(&self.fingerprint()) {
                let est = t.est_rows.map(|e| format!("est≈{e}, ")).unwrap_or_default();
                if t.degree > 1 {
                    let _ = write!(out, "  [{est}rows={}, fragmented ×{}]", t.rows, t.degree);
                } else {
                    let _ = write!(out, "  [{est}rows={}, serial]", t.rows);
                }
                if let Some(note) = &t.note {
                    let _ = write!(out, "  {note}");
                }
            }
        }
        out.push('\n');
        for c in self.children() {
            c.explain_into(out, depth + 1, trace);
        }
    }
}

/// What one plan node did during execution: rows it produced, the
/// fragmentation degree it ran at (1 = serial), and any diagnostic note a
/// custom operator attached via [`crate::OpCtx::set_note`].
#[derive(Debug, Clone)]
pub struct NodeTrace {
    /// Rows the operator produced.
    pub rows: u64,
    /// Optimiser-estimated output rows, when the caller supplied
    /// [`Executor::est_rows`] for this node — rendered by EXPLAIN as
    /// `est≈N` next to the actual count.
    pub est_rows: Option<u64>,
    /// Fragmentation degree the operator actually used (1 = serial).
    pub degree: usize,
    /// Operator-supplied note (custom operators only), rendered by
    /// [`Executor::explain`] next to the row/fragmentation annotation.
    pub note: Option<String>,
}

/// Counters collected during one plan execution.
#[derive(Debug, Default, Clone)]
pub struct ExecStats {
    /// `(operator, invocations)` pairs.
    pub op_counts: FxHashMap<&'static str, u64>,
    /// Total rows produced by all operators.
    pub rows_produced: u64,
    /// Memo hits (subexpressions served from cache).
    pub memo_hits: u64,
    /// Total operators evaluated (memo hits excluded).
    pub ops_evaluated: u64,
    /// Operators that ran fragment-parallel (degree > 1).
    pub fragmented_ops: u64,
    /// The executor's configured parallelism degree.
    pub degree: usize,
    /// Per-node execution trace, keyed by plan fingerprint — feeds
    /// [`Executor::explain`].
    pub node_trace: FxHashMap<u64, NodeTrace>,
    /// Wall time of the full execution in nanoseconds.
    pub wall_ns: u128,
}

impl ExecStats {
    /// Notes attached by custom operators during execution (e.g. the fused
    /// top-k operator's `topk ×k (pruned N docs)`), in no particular order.
    pub fn notes(&self) -> Vec<String> {
        self.node_trace.values().filter_map(|t| t.note.clone()).collect()
    }

    /// Short single-line summary.
    pub fn summary(&self) -> String {
        format!(
            "{} ops ({} fragmented), {} rows, {} memo hits, {:.3} ms",
            self.ops_evaluated,
            self.fragmented_ops,
            self.rows_produced,
            self.memo_hits,
            self.wall_ns as f64 / 1e6
        )
    }
}

/// Plan interpreter.
pub struct Executor<'a> {
    catalog: &'a Catalog,
    registry: &'a OpRegistry,
    /// Enable common-subexpression memoisation within one `run`.
    pub memoize: bool,
    /// Fragment-parallel degree for the parallelisable operators; 1 (the
    /// default) executes everything serially. Use
    /// [`crate::fragment::resolve_degree`] to map 0/auto to the core count.
    pub degree: usize,
    /// Inputs smaller than this stay serial regardless of `degree`.
    pub min_fragment_rows: usize,
    /// Optimiser-estimated output cardinalities keyed by plan fingerprint
    /// (supplied by the logical layer's statistics catalog). Recorded into
    /// each [`NodeTrace`] so EXPLAIN shows estimated vs actual rows.
    pub est_rows: Option<Arc<FxHashMap<u64, u64>>>,
    /// Per-node parallel-degree caps keyed by plan fingerprint. A hint can
    /// only *lower* the degree an operator fragments at (estimate-driven
    /// "don't bother parallelising a tiny intermediate"), never raise it
    /// above [`Executor::degree`].
    pub degree_hints: Option<Arc<FxHashMap<u64, usize>>>,
}

impl<'a> Executor<'a> {
    /// Create an executor over a catalog and operator registry; memoisation
    /// defaults to on, execution to serial.
    pub fn new(catalog: &'a Catalog, registry: &'a OpRegistry) -> Self {
        Executor {
            catalog,
            registry,
            memoize: true,
            degree: 1,
            min_fragment_rows: crate::fragment::DEFAULT_MIN_FRAGMENT_ROWS,
            est_rows: None,
            degree_hints: None,
        }
    }

    /// Execute a plan, returning the result BAT and execution statistics.
    pub fn run(&self, plan: &Plan) -> Result<(Arc<Bat>, ExecStats)> {
        let mut stats = ExecStats { degree: self.degree, ..ExecStats::default() };
        let mut memo: FxHashMap<u64, Arc<Bat>> = FxHashMap::default();
        let start = Instant::now();
        let out = self.eval(plan, &mut stats, &mut memo)?;
        stats.wall_ns = start.elapsed().as_nanos();
        Ok((out, stats))
    }

    /// Execute and discard statistics.
    pub fn run_bat(&self, plan: &Plan) -> Result<Arc<Bat>> {
        Ok(self.run(plan)?.0)
    }

    /// EXPLAIN ANALYZE: execute the plan, then render the tree with each
    /// operator annotated by the rows it produced and whether it ran
    /// fragmented (`fragmented ×N`) or serially.
    pub fn explain(&self, plan: &Plan) -> Result<String> {
        let (_, stats) = self.run(plan)?;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "-- degree {} · {} of {} ops fragmented --",
            self.degree, stats.fragmented_ops, stats.ops_evaluated
        );
        plan.explain_into(&mut out, 0, Some(&stats));
        Ok(out)
    }

    /// The fragmentation degree the operator with fingerprint `fp` over
    /// `rows` input rows should use: the configured degree — capped by any
    /// per-node [`Executor::degree_hints`] entry — when parallelism is on
    /// and the input is big enough, 1 (serial) otherwise.
    fn frag_degree(&self, fp: u64, rows: usize) -> usize {
        let mut degree = self.degree;
        if let Some(hints) = &self.degree_hints {
            if let Some(&cap) = hints.get(&fp) {
                degree = degree.min(cap.max(1));
            }
        }
        if degree > 1 && rows >= self.min_fragment_rows.max(2) {
            degree
        } else {
            1
        }
    }

    fn eval(
        &self,
        plan: &Plan,
        stats: &mut ExecStats,
        memo: &mut FxHashMap<u64, Arc<Bat>>,
    ) -> Result<Arc<Bat>> {
        let fp = plan.fingerprint();
        if self.memoize {
            if let Some(hit) = memo.get(&fp) {
                stats.memo_hits += 1;
                return Ok(Arc::clone(hit));
            }
        }
        // Degree this node actually fragments at; set by the parallelisable
        // operator arms, recorded in the node trace below.
        let mut frag = 1usize;
        // Diagnostic note a custom operator attached to this invocation.
        let mut note: Option<String> = None;
        let out: Arc<Bat> = match plan {
            Plan::Load(name) => self.catalog.get(name)?,
            Plan::Const(b) => Arc::clone(b),
            Plan::Select { input, pred } => {
                let b = self.eval(input, stats, memo)?;
                // sorted numeric tails binary-search in O(log n); scanning
                // them in parallel fragments would only be slower
                let scan_bound = b.props().tail_sorted && !matches!(b.tail(), Column::Str(_));
                let d = self.frag_degree(fp, b.count());
                if d > 1 && !scan_bound {
                    frag = d;
                    Arc::new(crate::fragment::par_select(&b, pred, d)?)
                } else {
                    Arc::new(apply_pred(&b, pred)?)
                }
            }
            Plan::Join { left, right } => {
                let l = self.eval(left, stats, memo)?;
                let r = self.eval(right, stats, memo)?;
                let d = self.frag_degree(fp, l.count());
                if d > 1 {
                    frag = d;
                    Arc::new(crate::fragment::par_join(&l, &r, d)?)
                } else {
                    Arc::new(l.join(&r)?)
                }
            }
            Plan::Semijoin { left, right } => {
                let l = self.eval(left, stats, memo)?;
                let r = self.eval(right, stats, memo)?;
                Arc::new(l.semijoin(&r)?)
            }
            Plan::Reverse(p) => Arc::new(self.eval(p, stats, memo)?.reverse()),
            Plan::Mirror(p) => Arc::new(self.eval(p, stats, memo)?.mirror()),
            Plan::Mark { input, base } => Arc::new(self.eval(input, stats, memo)?.mark(*base)),
            // project (like mark) stays serial: a constant fill is pure
            // memory bandwidth, so fragmenting it only adds merge copies —
            // fragment::par_project exists for explicitly fragmented
            // pipelines, not for this interpreter
            Plan::ProjectConst { input, val } => {
                Arc::new(self.eval(input, stats, memo)?.project(val)?)
            }
            Plan::Aggr { input, agg } => {
                let b = self.eval(input, stats, memo)?;
                let d = self.frag_degree(fp, b.count());
                let v = if d > 1 && *agg != Agg::Count {
                    frag = d;
                    crate::fragment::par_agg_tail(&b, *agg, d)?
                } else {
                    b.agg_tail(*agg)?
                };
                Arc::new(Bat::dense(Column::from_vals(&[v])?))
            }
            Plan::GroupedAggr { values, groups, agg } => {
                let v = self.eval(values, stats, memo)?;
                let g = self.eval(groups, stats, memo)?;
                let d = self.frag_degree(fp, v.count());
                if d > 1 && matches!(agg, Agg::Sum | Agg::Count) {
                    frag = d;
                    Arc::new(crate::fragment::par_grouped_agg(&v, &g, *agg, d)?)
                } else {
                    Arc::new(v.grouped_agg(&g, *agg)?)
                }
            }
            Plan::SortTail { input, desc } => {
                Arc::new(self.eval(input, stats, memo)?.sort_tail(*desc))
            }
            Plan::TopN { input, k, desc } => {
                Arc::new(self.eval(input, stats, memo)?.topn_tail(*k, *desc))
            }
            Plan::Slice { input, lo, hi } => {
                Arc::new(self.eval(input, stats, memo)?.slice(*lo, *hi))
            }
            Plan::Distinct(p) => Arc::new(self.eval(p, stats, memo)?.tail_distinct()?),
            Plan::KUnion { left, right } => {
                let l = self.eval(left, stats, memo)?;
                let r = self.eval(right, stats, memo)?;
                Arc::new(l.kunion(&r)?)
            }
            Plan::KDiff { left, right } => {
                let l = self.eval(left, stats, memo)?;
                let r = self.eval(right, stats, memo)?;
                Arc::new(l.kdiff(&r)?)
            }
            Plan::Arith { left, right, op } => {
                let l = self.eval(left, stats, memo)?;
                let r = self.eval(right, stats, memo)?;
                Arc::new(arith(&l, &r, *op)?)
            }
            Plan::ArithConst { input, op, val } => {
                let b = self.eval(input, stats, memo)?;
                Arc::new(arith_const(&b, *op, val)?)
            }
            Plan::Custom { op, inputs, params } => {
                let mut ins = Vec::with_capacity(inputs.len());
                for i in inputs {
                    ins.push(self.eval(i, stats, memo)?);
                }
                let f = self.registry.get(op)?;
                let mut ctx = OpCtx::new(self.catalog, self.degree);
                ctx.min_fragment_rows = self.min_fragment_rows;
                let out = Arc::new(f(&ctx, &ins, params)?);
                note = ctx.take_note();
                out
            }
        };
        stats.ops_evaluated += 1;
        stats.rows_produced += out.count() as u64;
        *stats.op_counts.entry(plan.op_name()).or_insert(0) += 1;
        if frag > 1 {
            stats.fragmented_ops += 1;
        }
        let est_rows = self.est_rows.as_ref().and_then(|m| m.get(&fp).copied());
        stats
            .node_trace
            .insert(fp, NodeTrace { rows: out.count() as u64, est_rows, degree: frag, note });
        if self.memoize {
            memo.insert(fp, Arc::clone(&out));
        }
        Ok(out)
    }
}

pub(crate) fn apply_pred(b: &Bat, pred: &Pred) -> Result<Bat> {
    match pred {
        Pred::Eq(v) => b.select_eq(v),
        Pred::Range { lo, lo_incl, hi, hi_incl } => {
            let lo_b = match lo {
                None => Bound::Unbounded,
                Some(v) if *lo_incl => Bound::Included(v),
                Some(v) => Bound::Excluded(v),
            };
            let hi_b = match hi {
                None => Bound::Unbounded,
                Some(v) if *hi_incl => Bound::Included(v),
                Some(v) => Bound::Excluded(v),
            };
            b.select_range(lo_b, hi_b)
        }
        Pred::StrContains(p) => b.select_str_contains(p),
    }
}

/// Numeric value at row `i` of a column.
#[inline]
fn num_at(c: &Column, i: usize) -> Result<f64> {
    match c {
        Column::Int(v) => Ok(v[i] as f64),
        Column::Float(v) => Ok(v[i]),
        Column::Oid(v) => Ok(v[i] as f64),
        Column::Void { start, .. } => Ok((*start + i as Oid) as f64),
        Column::Str(_) => {
            Err(MonetError::TypeMismatch { op: "arith", expected: "numeric", found: "str" })
        }
    }
}

fn apply_op(a: f64, b: f64, op: ArithOp) -> f64 {
    match op {
        ArithOp::Add => a + b,
        ArithOp::Sub => a - b,
        ArithOp::Mul => a * b,
        ArithOp::Div => a / b,
    }
}

/// Element-wise arithmetic, aligning rows by head.
fn arith(l: &Bat, r: &Bat, op: ArithOp) -> Result<Bat> {
    // Positional fast path: identical void heads.
    let aligned = match (l.head().void_start(), r.head().void_start()) {
        (Some(a), Some(b)) => a == b && l.count() == r.count(),
        _ => false,
    };
    if aligned {
        let n = l.count();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(apply_op(num_at(l.tail(), i)?, num_at(r.tail(), i)?, op));
        }
        return Ok(Bat::from_arcs(
            l.head_arc(),
            Arc::new(Column::Float(out)),
            crate::props::Props { head_sorted: true, head_key: true, ..Default::default() },
        ));
    }
    // General path: match rows by head key, keeping l's order.
    use crate::join::key_at;
    let mut table: FxHashMap<_, f64> = FxHashMap::default();
    let rh = r.head();
    for j in 0..r.count() {
        table.insert(key_at(rh, j), num_at(r.tail(), j)?);
    }
    let lh = l.head();
    let mut keep = Vec::new();
    let mut vals = Vec::new();
    for i in 0..l.count() {
        if let Some(&rv) = table.get(&key_at(lh, i)) {
            keep.push(i as u32);
            vals.push(apply_op(num_at(l.tail(), i)?, rv, op));
        }
    }
    let head = l.head().take(&keep);
    Bat::new(head, Column::Float(vals))
}

fn arith_const(b: &Bat, op: ArithOp, val: &Val) -> Result<Bat> {
    let c = val
        .as_float()
        .ok_or_else(|| MonetError::BadValue(format!("arith_const needs number, got {val}")))?;
    let n = b.count();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(apply_op(num_at(b.tail(), i)?, c, op));
    }
    Ok(Bat::from_arcs(
        b.head_arc(),
        Arc::new(Column::Float(out)),
        crate::props::Props {
            head_sorted: b.props().head_sorted,
            head_key: b.props().head_key,
            ..Default::default()
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bat::{bat_of_floats, bat_of_ints};

    fn setup() -> (Catalog, OpRegistry) {
        let cat = Catalog::new();
        cat.register("nums", bat_of_ints(vec![4, 1, 3, 2]));
        cat.register("beliefs", bat_of_floats(vec![0.4, 0.9, 0.6, 0.2]));
        (cat, OpRegistry::new())
    }

    #[test]
    fn load_select_topn_pipeline() {
        let (cat, reg) = setup();
        let exec = Executor::new(&cat, &reg);
        let plan = Plan::TopN {
            input: Box::new(Plan::Select {
                input: Box::new(Plan::load("nums")),
                pred: Pred::Range { lo: Some(Val::Int(2)), lo_incl: true, hi: None, hi_incl: true },
            }),
            k: 2,
            desc: true,
        };
        let (out, stats) = exec.run(&plan).unwrap();
        let tails: Vec<_> = out.to_pairs().into_iter().map(|(_, t)| t).collect();
        assert_eq!(tails, vec![Val::Int(4), Val::Int(3)]);
        assert_eq!(stats.op_counts["select"], 1);
        assert!(stats.wall_ns > 0);
    }

    #[test]
    fn memoisation_deduplicates_shared_subplans() {
        let (cat, reg) = setup();
        let exec = Executor::new(&cat, &reg);
        let shared =
            Plan::Select { input: Box::new(Plan::load("nums")), pred: Pred::Eq(Val::Int(3)) };
        let plan = Plan::KUnion { left: Box::new(shared.clone()), right: Box::new(shared) };
        let (_, stats) = exec.run(&plan).unwrap();
        assert_eq!(stats.memo_hits, 1);

        let mut exec2 = Executor::new(&cat, &reg);
        exec2.memoize = false;
        let plan2 = Plan::KUnion {
            left: Box::new(Plan::load("nums")),
            right: Box::new(Plan::load("nums")),
        };
        let (_, stats2) = exec2.run(&plan2).unwrap();
        assert_eq!(stats2.memo_hits, 0);
    }

    #[test]
    fn aggr_to_single_row() {
        let (cat, reg) = setup();
        let exec = Executor::new(&cat, &reg);
        let plan = Plan::Aggr { input: Box::new(Plan::load("nums")), agg: Agg::Sum };
        let out = exec.run_bat(&plan).unwrap();
        assert_eq!(out.count(), 1);
        assert_eq!(out.fetch(0).unwrap().1, Val::Int(10));
    }

    #[test]
    fn arith_positional_and_const() {
        let (cat, reg) = setup();
        let exec = Executor::new(&cat, &reg);
        let plan = Plan::Arith {
            left: Box::new(Plan::load("beliefs")),
            right: Box::new(Plan::load("beliefs")),
            op: ArithOp::Add,
        };
        let out = exec.run_bat(&plan).unwrap();
        assert_eq!(out.fetch(1).unwrap().1, Val::Float(1.8));

        let plan2 = Plan::ArithConst {
            input: Box::new(Plan::load("beliefs")),
            op: ArithOp::Mul,
            val: Val::Float(10.0),
        };
        let out2 = exec.run_bat(&plan2).unwrap();
        assert_eq!(out2.fetch(3).unwrap().1, Val::Float(2.0));
    }

    #[test]
    fn custom_ops_execute_in_plans() {
        let (cat, reg) = setup();
        reg.register("halve", |_ctx, inputs, _| {
            let v = inputs[0].tail().float_slice()?;
            Ok(Bat::dense(Column::Float(v.iter().map(|x| x / 2.0).collect())))
        });
        let exec = Executor::new(&cat, &reg);
        let plan = Plan::Custom {
            op: "halve".into(),
            inputs: vec![Plan::load("beliefs")],
            params: vec![],
        };
        let out = exec.run_bat(&plan).unwrap();
        assert_eq!(out.fetch(0).unwrap().1, Val::Float(0.2));
    }

    #[test]
    fn unknown_load_and_op_error() {
        let (cat, reg) = setup();
        let exec = Executor::new(&cat, &reg);
        assert!(exec.run_bat(&Plan::load("missing")).is_err());
        let bad = Plan::Custom { op: "nope".into(), inputs: vec![], params: vec![] };
        assert!(exec.run_bat(&bad).is_err());
    }

    #[test]
    fn explain_renders_tree() {
        let plan = Plan::TopN {
            input: Box::new(Plan::Join {
                left: Box::new(Plan::load("a")),
                right: Box::new(Plan::load("b")),
            }),
            k: 5,
            desc: true,
        };
        let text = plan.explain();
        assert!(text.contains("topn"));
        assert!(text.contains("  join"));
        assert!(text.contains("    load(a)"));
        assert_eq!(plan.size(), 4);
    }

    #[test]
    fn fingerprints_distinguish_plans() {
        let a = Plan::load("x");
        let b = Plan::load("y");
        assert_ne!(a.fingerprint(), b.fingerprint());
        let s1 = Plan::Select { input: Box::new(a.clone()), pred: Pred::Eq(Val::Int(1)) };
        let s2 = Plan::Select { input: Box::new(a), pred: Pred::Eq(Val::Int(2)) };
        assert_ne!(s1.fingerprint(), s2.fingerprint());
        assert_eq!(s1.fingerprint(), s1.clone().fingerprint());
    }

    #[test]
    fn grouped_aggr_in_plan() {
        let cat = Catalog::new();
        let reg = OpRegistry::new();
        cat.register("vals", bat_of_floats(vec![0.5, 0.5, 1.0]));
        cat.register("map", Bat::dense(Column::Oid(vec![0, 0, 1])));
        let exec = Executor::new(&cat, &reg);
        let plan = Plan::GroupedAggr {
            values: Box::new(Plan::load("vals")),
            groups: Box::new(Plan::load("map")),
            agg: Agg::Sum,
        };
        let out = exec.run_bat(&plan).unwrap();
        assert_eq!(out.fetch(0).unwrap().1, Val::Float(1.0));
        assert_eq!(out.fetch(1).unwrap().1, Val::Float(1.0));
    }
}
