//! Base types and scalar values of the binary-relational kernel.
//!
//! Monet's extensibility story starts from a small set of physical base
//! types; everything richer (URLs, text, images) is mapped onto these by the
//! logical layer. We provide object identifiers, 64-bit integers, 64-bit
//! floats and strings.

use std::cmp::Ordering;
use std::fmt;

/// Object identifier. Dense oid sequences are represented by *void* columns
/// and never materialised.
pub type Oid = u32;

/// The physical base types known to the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MonetType {
    /// Object identifier.
    Oid,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string (dictionary encoded in columns).
    Str,
}

impl fmt::Display for MonetType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MonetType::Oid => "oid",
            MonetType::Int => "int",
            MonetType::Float => "float",
            MonetType::Str => "str",
        };
        f.write_str(s)
    }
}

/// A scalar value of one of the base types.
#[derive(Debug, Clone, PartialEq)]
pub enum Val {
    /// Object identifier value.
    Oid(Oid),
    /// Integer value.
    Int(i64),
    /// Float value.
    Float(f64),
    /// String value.
    Str(String),
}

impl Val {
    /// The base type of this value.
    pub fn ty(&self) -> MonetType {
        match self {
            Val::Oid(_) => MonetType::Oid,
            Val::Int(_) => MonetType::Int,
            Val::Float(_) => MonetType::Float,
            Val::Str(_) => MonetType::Str,
        }
    }

    /// Total order over values of the same type; values of different types
    /// order by type tag (oid < int < float < str). Floats use IEEE total
    /// ordering so that sorting is well defined even with NaNs.
    pub fn total_cmp(&self, other: &Val) -> Ordering {
        use Val::*;
        match (self, other) {
            (Oid(a), Oid(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Val::Oid(_) => 0,
            Val::Int(_) => 1,
            Val::Float(_) => 2,
            Val::Str(_) => 3,
        }
    }

    /// Interpret this value as an oid, if possible.
    pub fn as_oid(&self) -> Option<Oid> {
        match self {
            Val::Oid(o) => Some(*o),
            Val::Int(i) if *i >= 0 && *i <= u32::MAX as i64 => Some(*i as Oid),
            _ => None,
        }
    }

    /// Interpret this value as an integer, if possible.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Val::Int(i) => Some(*i),
            Val::Oid(o) => Some(*o as i64),
            _ => None,
        }
    }

    /// Interpret this value as a float (ints widen), if possible.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Val::Float(x) => Some(*x),
            Val::Int(i) => Some(*i as f64),
            Val::Oid(o) => Some(*o as f64),
            _ => None,
        }
    }

    /// Interpret this value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Val::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Stable 64-bit fingerprint of the value (used for plan memoisation).
    pub fn fingerprint(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = crate::fxhash::FxHasher::default();
        match self {
            Val::Oid(o) => {
                h.write_u8(0);
                h.write_u32(*o);
            }
            Val::Int(i) => {
                h.write_u8(1);
                h.write_u64(*i as u64);
            }
            Val::Float(x) => {
                h.write_u8(2);
                h.write_u64(x.to_bits());
            }
            Val::Str(s) => {
                h.write_u8(3);
                h.write(s.as_bytes());
            }
        }
        h.finish()
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Oid(o) => write!(f, "{o}@0"),
            Val::Int(i) => write!(f, "{i}"),
            Val::Float(x) => write!(f, "{x}"),
            Val::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Val {
    fn from(v: i64) -> Self {
        Val::Int(v)
    }
}

impl From<f64> for Val {
    fn from(v: f64) -> Self {
        Val::Float(v)
    }
}

impl From<&str> for Val {
    fn from(v: &str) -> Self {
        Val::Str(v.to_string())
    }
}

impl From<String> for Val {
    fn from(v: String) -> Self {
        Val::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_of_values() {
        assert_eq!(Val::Oid(1).ty(), MonetType::Oid);
        assert_eq!(Val::Int(1).ty(), MonetType::Int);
        assert_eq!(Val::Float(1.0).ty(), MonetType::Float);
        assert_eq!(Val::from("x").ty(), MonetType::Str);
    }

    #[test]
    fn total_cmp_orders_within_and_across_types() {
        assert_eq!(Val::Int(1).total_cmp(&Val::Int(2)), Ordering::Less);
        assert_eq!(Val::Float(2.0).total_cmp(&Val::Float(1.0)), Ordering::Greater);
        assert_eq!(Val::from("a").total_cmp(&Val::from("b")), Ordering::Less);
        // cross-type: oid < str
        assert_eq!(Val::Oid(9).total_cmp(&Val::from("a")), Ordering::Less);
    }

    #[test]
    fn conversions() {
        assert_eq!(Val::Int(7).as_float(), Some(7.0));
        assert_eq!(Val::Oid(7).as_int(), Some(7));
        assert_eq!(Val::Int(-1).as_oid(), None);
        assert_eq!(Val::from("s").as_str(), Some("s"));
        assert_eq!(Val::from("s").as_float(), None);
    }

    #[test]
    fn fingerprints_differ_by_type_and_value() {
        assert_ne!(Val::Int(1).fingerprint(), Val::Oid(1).fingerprint());
        assert_ne!(Val::Int(1).fingerprint(), Val::Int(2).fingerprint());
        assert_eq!(Val::Float(0.5).fingerprint(), Val::Float(0.5).fingerprint());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Val::Int(3).to_string(), "3");
        assert_eq!(Val::Oid(3).to_string(), "3@0");
        assert_eq!(Val::from("hi").to_string(), "\"hi\"");
    }
}
