//! # mirror-core — the Mirror DBMS facade
//!
//! The Mirror DBMS "provides the basic functionality for probabilistic
//! inference, multimedia data types, and feature extraction techniques,
//! just like traditional database systems provide the basic functionality
//! to build administrative applications". This crate assembles the whole
//! architecture:
//!
//! * the Moa object algebra over the binary-relational kernel
//!   (`mirror-moa` / `mirror-monet`), with `CONTREP` registered
//!   (`mirror-ir`);
//! * the ingest pipeline of Section 5 ([`ingest`]): crawl → segment →
//!   extract features (two colour + four texture daemons) → cluster each
//!   feature space AutoClass-style → emit visual terms → build
//!   `ImageLibraryInternal` with `CONTREP<Text>` and `CONTREP<Image>`
//!   attributes → mine the association thesaurus (dual coding);
//! * the retrieval application ([`query`]): text, visual, dual-coded and
//!   combined structure+content queries — the paper's Moa query shapes,
//!   built as typed request plans behind the unified [`Retriever`] trait;
//! * the concurrent serving layer ([`serve`]): typed
//!   [`serve::RetrievalRequest`]s over an immutable snapshot, executed
//!   directly or through the [`serve::MirrorServer`] worker pool, with the
//!   ranking plan fused into a streaming top-k operator;
//! * scale-out ([`shard`]): a [`shard::MirrorCluster`] that partitions the
//!   corpus across shards, scatters requests through per-shard replica
//!   routers, and gathers per-shard heaps into the bit-identical global
//!   top-k;
//! * the open-loop workload harness ([`workload`]): seeded mixed-traffic
//!   generation at a fixed arrival rate against the serving layer's
//!   bounded admission queue, reporting p50/p99 and SLO headroom;
//! * relevance feedback ([`feedback`]) and retrieval evaluation
//!   ([`eval`]).

#![warn(missing_docs)]

pub mod durable;
pub mod eval;
pub mod feedback;
pub mod ingest;
pub mod live;
pub mod query;
pub mod retriever;
pub mod serve;
pub mod shard;
pub mod workload;

pub use live::{GenerationStats, LiveCluster, LiveMirror, LiveReader, MergePolicy, MutableCorpus};
pub use retriever::{RetrievalError, RetrievalResult, Retriever};
pub use workload::{TrafficMix, WorkloadConfig, WorkloadGen, WorkloadReport};

use cluster::VisualVocabulary;
use ir::ContrepStore;
use moa::{Env, MoaEngine, OptConfig};
use std::sync::Arc;
use thesaurus::{AssocMeasure, AssociationThesaurus};

/// Which clustering algorithm quantises the feature spaces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Clustering {
    /// AutoClass substitute: EM mixture + BIC model selection.
    AutoClass,
    /// k-means baseline with a fixed k per space.
    KMeans(usize),
}

/// Configuration of a Mirror instance.
#[derive(Debug, Clone)]
pub struct MirrorConfig {
    /// Grid side for the segmentation daemon.
    pub grid: usize,
    /// Clustering algorithm for the visual vocabularies.
    pub clustering: Clustering,
    /// Association measure for the thesaurus.
    pub assoc: AssocMeasure,
    /// Associations taken per query term during expansion.
    pub expand_per_term: usize,
    /// Maximum visual terms per expanded query.
    pub expand_max_terms: usize,
    /// Keep raw rows for the naive-interpreter baseline (costs memory).
    pub keep_raw: bool,
    /// Fragment-parallel execution degree for query plans: `0` = auto (one
    /// thread per available core), `1` = serial, `n` = exactly `n` threads
    /// per fragmented operator.
    pub parallelism: usize,
    /// Seed for all stochastic stages.
    pub seed: u64,
}

impl Default for MirrorConfig {
    fn default() -> Self {
        MirrorConfig {
            grid: 3,
            clustering: Clustering::AutoClass,
            assoc: AssocMeasure::Emim,
            expand_per_term: 4,
            expand_max_terms: 12,
            keep_raw: false,
            parallelism: 0,
            seed: 42,
        }
    }
}

/// Per-document bookkeeping kept by the facade (URLs for display,
/// ground-truth theme for evaluation only).
#[derive(Debug, Clone)]
pub struct DocMeta {
    /// Source URL.
    pub url: String,
    /// Whether the document arrived with an annotation.
    pub annotated: bool,
    /// Ground-truth theme index (evaluation only — the system never ranks
    /// with it).
    pub theme: usize,
}

/// One row of `ImageLibraryInternal` in its ingested (post-extraction)
/// form: everything needed to rebuild the internal collection *without*
/// the original pixels. This is the unit the durable storage tier
/// persists — a cold [`MirrorDbms::open`] reloads these rows instead of
/// re-crawling, re-segmenting and re-clustering the corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct LibraryRow {
    /// Source URL.
    pub url: String,
    /// Raw annotation text (`None` for unannotated documents).
    pub annotation: Option<String>,
    /// Space-separated visual terms of all the document's segments.
    pub vterms: String,
    /// Ground-truth theme index (evaluation only).
    pub theme: usize,
}

/// The assembled Mirror DBMS.
pub struct MirrorDbms {
    env: Arc<Env>,
    store: Arc<ContrepStore>,
    engine: MoaEngine,
    config: MirrorConfig,
    vocab: Option<VisualVocabulary>,
    thesaurus: Option<AssociationThesaurus>,
    docs: Vec<DocMeta>,
    /// The ingested library rows (URL, annotation, visual terms, theme) —
    /// the durable form of the collection, retained so [`durable`] can
    /// persist the instance without the original images.
    lib_rows: Vec<LibraryRow>,
}

/// Name of the internal collection built by ingest (the paper's
/// `ImageLibraryInternal`).
pub const INTERNAL: &str = "ImageLibraryInternal";

impl MirrorDbms {
    /// Create an empty instance.
    pub fn new(config: MirrorConfig) -> Self {
        let mut env = Env::new();
        env.keep_raw = config.keep_raw;
        let store = ir::register_contrep(&env);
        let env = Arc::new(env);
        let opt = OptConfig { parallelism: config.parallelism, ..OptConfig::default() };
        let engine = MoaEngine::with_opt(Arc::clone(&env), opt);
        MirrorDbms {
            env,
            store,
            engine,
            config,
            vocab: None,
            thesaurus: None,
            docs: Vec::new(),
            lib_rows: Vec::new(),
        }
    }

    /// Create with default configuration.
    pub fn with_defaults() -> Self {
        Self::new(MirrorConfig::default())
    }

    /// Build an instance directly from ingested library rows, reusing a
    /// previously-built visual vocabulary / thesaurus. This is the
    /// batch-rebuild primitive of the live-ingest tier: a delta merge
    /// folds the surviving rows of a snapshot into a fresh compressed
    /// generation through exactly the same loader the durable tier uses,
    /// so the merged generation is bit-identical to a cold re-ingest.
    pub fn from_rows(
        config: MirrorConfig,
        rows: Vec<LibraryRow>,
        vocab: Option<VisualVocabulary>,
        thesaurus: Option<AssociationThesaurus>,
    ) -> moa::Result<Self> {
        let mut db = MirrorDbms::new(config);
        db.load_library_rows(rows)?;
        if let (Some(v), Some(t)) = (vocab, thesaurus) {
            db.set_ingest_outputs(v, t);
        }
        Ok(db)
    }

    /// The logical environment (schemas, catalog, registries).
    pub fn env(&self) -> &Arc<Env> {
        &self.env
    }

    /// The content-representation store.
    pub fn store(&self) -> &Arc<ContrepStore> {
        &self.store
    }

    /// The Moa engine (run arbitrary Moa queries against the library).
    pub fn engine(&self) -> &MoaEngine {
        &self.engine
    }

    /// Replace the optimiser configuration of the embedded engine.
    pub fn set_opt(&mut self, opt: OptConfig) {
        self.engine = MoaEngine::with_opt(Arc::clone(&self.env), opt);
    }

    /// The configuration.
    pub fn config(&self) -> &MirrorConfig {
        &self.config
    }

    /// The visual vocabulary (after ingest).
    pub fn vocabulary(&self) -> Option<&VisualVocabulary> {
        self.vocab.as_ref()
    }

    /// The association thesaurus (after ingest).
    pub fn thesaurus(&self) -> Option<&AssociationThesaurus> {
        self.thesaurus.as_ref()
    }

    /// Document metadata in oid order.
    pub fn docs(&self) -> &[DocMeta] {
        &self.docs
    }

    /// The ingested library rows in oid order (empty before ingest) —
    /// what the durable storage tier persists and reloads.
    pub fn library_rows(&self) -> &[LibraryRow] {
        &self.lib_rows
    }

    /// Number of ingested documents.
    pub fn n_docs(&self) -> usize {
        self.docs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_instance_is_empty() {
        let db = MirrorDbms::with_defaults();
        assert_eq!(db.n_docs(), 0);
        assert!(db.vocabulary().is_none());
        assert!(db.thesaurus().is_none());
        assert!(db.env().structures().contains("CONTREP"));
    }

    #[test]
    fn config_roundtrip() {
        let cfg = MirrorConfig { grid: 4, clustering: Clustering::KMeans(5), ..Default::default() };
        let db = MirrorDbms::new(cfg.clone());
        assert_eq!(db.config().grid, 4);
        assert_eq!(db.config().clustering, Clustering::KMeans(5));
    }
}
