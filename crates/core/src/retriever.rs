//! The unified retrieval API: one [`Retriever`] trait over every backend.
//!
//! PR 3 made retrieval request-scoped; this module makes it
//! *backend-scoped*: a [`Retriever`] is anything that can execute a typed
//! [`RetrievalRequest`] — a single [`MirrorDbms`] node, a sharded
//! [`MirrorCluster`](crate::shard::MirrorCluster) with replica routing, or
//! any future backend. The facade query methods (`query_text`,
//! `query_dual`, …) are *provided* methods of the trait, so the serving
//! layer ([`crate::serve::MirrorServer`]), the examples and the relevance
//! feedback loop run unchanged against either backend.
//!
//! Errors on this path are structured ([`RetrievalError`]) so callers —
//! the replica router above all — can match on error *kind*: only a
//! [`RetrievalError::ShardUnavailable`] is worth retrying on another
//! replica; a compile error would fail identically everywhere.

use crate::feedback::FeedbackQuery;
use crate::query::RankedResult;
use crate::serve::RetrievalRequest;
use crate::MirrorDbms;
use moa::MoaError;

/// Structured errors of the public retrieval path.
#[derive(Debug, Clone, PartialEq)]
pub enum RetrievalError {
    /// A shard could not serve the request: the selected replica was down
    /// and the retry (if any replica was left) failed too. Retryable —
    /// the router uses this variant to decide to fail over.
    ShardUnavailable {
        /// Index of the shard that could not be reached.
        shard: usize,
        /// What happened on the way there.
        detail: String,
    },
    /// The request's relational filter is malformed (for example an empty
    /// pattern, which would silently match every document). Not
    /// retryable: the same request fails on every replica.
    BadFilter(String),
    /// The request failed to compile or execute in the algebra layers.
    /// Not retryable for the same reason.
    Compile(MoaError),
    /// The durable storage tier failed: an I/O error, a checksum-rejected
    /// page, or a format-version mismatch. Carries the kernel error so
    /// callers can distinguish corruption from plain I/O.
    Storage(monet::MonetError),
    /// A durable store exists but its save never completed (the process
    /// died mid-save and the completion marker is absent). The store is
    /// openable at the kernel level — re-running the save will converge —
    /// but there is no consistent instance to serve queries from.
    IncompleteState {
        /// What was found (and what was missing).
        detail: String,
    },
    /// The serving tier shed this request at admission: the server's
    /// bounded queue was full, so the request was rejected immediately
    /// instead of being buffered into unbounded latency. The client
    /// should back off and resubmit; the request itself is fine.
    Overloaded {
        /// Queue depth at the moment of rejection (the configured bound).
        queue_depth: usize,
    },
}

impl std::fmt::Display for RetrievalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetrievalError::ShardUnavailable { shard, detail } => {
                write!(f, "shard {shard} unavailable: {detail}")
            }
            RetrievalError::BadFilter(m) => write!(f, "bad filter: {m}"),
            RetrievalError::Compile(e) => write!(f, "query failed: {e}"),
            RetrievalError::Storage(e) => write!(f, "storage failure: {e}"),
            RetrievalError::IncompleteState { detail } => {
                write!(f, "durable store is incomplete: {detail}")
            }
            RetrievalError::Overloaded { queue_depth } => {
                write!(f, "server overloaded: admission queue full at depth {queue_depth}")
            }
        }
    }
}

impl std::error::Error for RetrievalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RetrievalError::Compile(e) => Some(e),
            RetrievalError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MoaError> for RetrievalError {
    fn from(e: MoaError) -> Self {
        RetrievalError::Compile(e)
    }
}

impl From<monet::MonetError> for RetrievalError {
    fn from(e: monet::MonetError) -> Self {
        RetrievalError::Storage(e)
    }
}

impl RetrievalError {
    /// Whether another replica could plausibly serve the same request —
    /// the router's retry predicate.
    pub fn is_retryable(&self) -> bool {
        matches!(self, RetrievalError::ShardUnavailable { .. })
    }
}

/// Result alias for the public retrieval path.
pub type RetrievalResult<T> = std::result::Result<T, RetrievalError>;

/// A retrieval backend: anything that executes typed
/// [`RetrievalRequest`]s over an ingested corpus.
///
/// [`MirrorDbms`] implements it by compiling the request to a Moa plan and
/// running it on the embedded engine;
/// [`MirrorCluster`](crate::shard::MirrorCluster) implements it by
/// scattering the request across shards (through each shard's replica
/// router) and merging the per-shard top-k heaps. Every facade query
/// method is a provided method over [`retrieve`](Retriever::retrieve), so
/// backends get the whole query surface for free:
///
/// ```no_run
/// use mirror_core::{MirrorDbms, Retriever};
/// # let db = MirrorDbms::with_defaults();
/// let hits = db.query_text("sunset beach", 10).unwrap();
/// ```
pub trait Retriever: Send + Sync {
    /// Execute a typed retrieval request.
    fn retrieve(&self, req: &RetrievalRequest) -> RetrievalResult<Vec<RankedResult>>;

    /// Number of documents in the (whole) corpus this backend serves.
    fn n_docs(&self) -> usize;

    /// Free-text retrieval over the annotation channel only — Section 3's
    /// `map[sum(THIS)](map[getBL(THIS.annotation, query, stats)](Lib))`.
    fn query_text(&self, text: &str, k: usize) -> RetrievalResult<Vec<RankedResult>> {
        self.retrieve(&RetrievalRequest::text(text, k))
    }

    /// Visual retrieval: a weighted visual-term query against the image
    /// channel — Section 5.2's
    /// `map[sum(THIS)](map[getBL(THIS.image, query, stats)](Lib))`.
    fn query_visual(
        &self,
        visual_terms: &[(String, f64)],
        k: usize,
    ) -> RetrievalResult<Vec<RankedResult>> {
        self.retrieve(&RetrievalRequest::visual(visual_terms.to_vec(), k))
    }

    /// Dual-coded retrieval: the text query is expanded through the
    /// association thesaurus into visual terms; both channels contribute
    /// evidence, mixed with weight `visual_mix ∈ [0, 1]`.
    fn query_dual(
        &self,
        text: &str,
        visual_mix: f64,
        k: usize,
    ) -> RetrievalResult<Vec<RankedResult>> {
        self.retrieve(&RetrievalRequest::dual(text, visual_mix, k))
    }

    /// Combined data/content retrieval: rank only the documents whose URL
    /// contains `url_filter` — a relational selection composed with
    /// probabilistic ranking in one request. The filter is a typed
    /// literal: quotes and backslashes in it are data, not Moa syntax.
    fn query_text_filtered(
        &self,
        text: &str,
        url_filter: &str,
        k: usize,
    ) -> RetrievalResult<Vec<RankedResult>> {
        self.retrieve(&RetrievalRequest::text(text, k).with_filter(url_filter))
    }

    /// Run a dual-channel feedback query state through the typed serving
    /// path (an empty visual channel falls back to text-only ranking).
    fn run_feedback_query(
        &self,
        query: &FeedbackQuery,
        visual_mix: f64,
        k: usize,
    ) -> RetrievalResult<Vec<RankedResult>> {
        self.retrieve(&RetrievalRequest::dual_terms(
            query.text.clone(),
            query.visual.clone(),
            visual_mix,
            k,
        ))
    }
}

impl Retriever for MirrorDbms {
    fn retrieve(&self, req: &RetrievalRequest) -> RetrievalResult<Vec<RankedResult>> {
        req.validate()?;
        self.retrieve_local(req).map_err(RetrievalError::from)
    }

    fn n_docs(&self) -> usize {
        self.docs().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moa_errors_convert_into_compile_kind() {
        let err: RetrievalError = MoaError::Unknown("thesaurus".into()).into();
        assert!(matches!(err, RetrievalError::Compile(MoaError::Unknown(_))));
        assert!(!err.is_retryable());
        assert!(err.to_string().contains("thesaurus"));
    }

    #[test]
    fn only_shard_unavailable_is_retryable() {
        let down = RetrievalError::ShardUnavailable { shard: 2, detail: "replica 0 down".into() };
        assert!(down.is_retryable());
        assert!(down.to_string().contains("shard 2"));
        assert!(!RetrievalError::BadFilter("empty".into()).is_retryable());
    }

    #[test]
    fn overloaded_is_typed_and_not_router_retryable() {
        // load shedding is a backpressure signal for the *client* (back
        // off and resubmit), not the replica router's failover predicate
        let err = RetrievalError::Overloaded { queue_depth: 64 };
        assert!(!err.is_retryable());
        assert!(err.to_string().contains("depth 64"));
    }

    #[test]
    fn un_ingested_instance_reports_compile_errors() {
        let db = MirrorDbms::with_defaults();
        // dual retrieval needs the thesaurus an ingest would have built
        let err = db.query_dual("sunset", 0.5, 5).unwrap_err();
        assert!(matches!(err, RetrievalError::Compile(_)));
    }
}
