//! Retrieval evaluation: the measures the experiment harness reports.
//!
//! Ground truth comes from the corpus simulator's themes; the DBMS itself
//! never sees them.

use monet::Oid;

/// Precision@k: fraction of the first `k` ranked oids that are relevant.
/// When fewer than `k` results exist, the denominator stays `k` (missing
/// results count as misses), matching standard IR practice.
pub fn precision_at_k<F: Fn(Oid) -> bool>(ranked: &[Oid], relevant: F, k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let hits = ranked.iter().take(k).filter(|&&o| relevant(o)).count();
    hits as f64 / k as f64
}

/// Recall@k given the total number of relevant documents.
pub fn recall_at_k<F: Fn(Oid) -> bool>(
    ranked: &[Oid],
    relevant: F,
    k: usize,
    n_relevant: usize,
) -> f64 {
    if n_relevant == 0 {
        return 0.0;
    }
    let hits = ranked.iter().take(k).filter(|&&o| relevant(o)).count();
    hits as f64 / n_relevant as f64
}

/// Average precision of a ranking (uninterpolated), given the total number
/// of relevant documents.
pub fn average_precision<F: Fn(Oid) -> bool>(
    ranked: &[Oid],
    relevant: F,
    n_relevant: usize,
) -> f64 {
    if n_relevant == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (i, &oid) in ranked.iter().enumerate() {
        if relevant(oid) {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    sum / n_relevant as f64
}

/// Mean of a slice (0 for empty input) — for averaging over query sets.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_counts_prefix_hits() {
        let ranked = vec![0, 1, 2, 3];
        let rel = |o: Oid| o.is_multiple_of(2);
        assert_eq!(precision_at_k(&ranked, rel, 2), 0.5);
        assert_eq!(precision_at_k(&ranked, rel, 4), 0.5);
        assert_eq!(precision_at_k(&ranked, rel, 0), 0.0);
        // short result list: missing entries are misses
        assert_eq!(precision_at_k(&[0], rel, 4), 0.25);
    }

    #[test]
    fn recall_uses_relevant_total() {
        let ranked = vec![0, 1, 2];
        let rel = |o: Oid| o < 2;
        assert_eq!(recall_at_k(&ranked, rel, 3, 4), 0.5);
        assert_eq!(recall_at_k(&ranked, rel, 1, 4), 0.25);
        assert_eq!(recall_at_k(&ranked, rel, 3, 0), 0.0);
    }

    #[test]
    fn average_precision_perfect_and_worst() {
        let rel = |o: Oid| o < 2;
        // perfect ranking: relevant docs first
        assert!((average_precision(&[0, 1, 5, 6], rel, 2) - 1.0).abs() < 1e-12);
        // relevant docs at the very end of a 4-list
        let ap = average_precision(&[5, 6, 0, 1], rel, 2);
        assert!((ap - (1.0 / 3.0 + 2.0 / 4.0) / 2.0).abs() < 1e-12);
        assert_eq!(average_precision(&[], rel, 0), 0.0);
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }
}
