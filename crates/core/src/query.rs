//! The retrieval application: querying the digital image library.
//!
//! All retrieval runs through the paper's Moa queries against
//! `ImageLibraryInternal`; the facade only tokenises input, binds query
//! variables, and sorts the resulting belief column.

use crate::{MirrorDbms, INTERNAL};
use ir::text::tokenize_stemmed;
use moa::{MoaError, QueryOutput};
use monet::Oid;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fresh per-request query-variable names, so concurrent queries never
/// clobber each other's bindings in the shared environment.
static QUERY_SEQ: AtomicU64 = AtomicU64::new(0);

pub(crate) fn fresh_query_name(channel: &str) -> String {
    format!("q{}_{channel}", QUERY_SEQ.fetch_add(1, Ordering::Relaxed))
}

/// One ranked retrieval result.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedResult {
    /// Document oid.
    pub oid: Oid,
    /// Source URL.
    pub url: String,
    /// Combined belief.
    pub score: f64,
}

impl MirrorDbms {
    /// Free-text retrieval over the annotation channel only — Section 3's
    /// `map[sum(THIS)](map[getBL(THIS.annotation, query, stats)](Lib))`.
    pub fn query_text(&self, text: &str, k: usize) -> moa::Result<Vec<RankedResult>> {
        let terms = weighted_terms(text);
        let q = fresh_query_name("t");
        self.env().bind_query(&q, terms);
        let out = self
            .engine()
            .query(&format!("map[sum(THIS)](map[getBL(THIS.annotation, {q}, stats)]({INTERNAL}))"));
        self.env().unbind_query(&q);
        self.ranked(out?, k)
    }

    /// Visual retrieval: a weighted visual-term query against the image
    /// channel — Section 5.2's
    /// `map[sum(THIS)](map[getBL(THIS.image, query, stats)](Lib))`.
    pub fn query_visual(
        &self,
        visual_terms: &[(String, f64)],
        k: usize,
    ) -> moa::Result<Vec<RankedResult>> {
        let q = fresh_query_name("v");
        self.env().bind_query(&q, visual_terms.to_vec());
        let out = self
            .engine()
            .query(&format!("map[sum(THIS)](map[getBL(THIS.image, {q}, stats)]({INTERNAL}))"));
        self.env().unbind_query(&q);
        self.ranked(out?, k)
    }

    /// Dual-coded retrieval: the text query is expanded through the
    /// association thesaurus into visual terms; both channels contribute
    /// evidence, mixed with weight `visual_mix ∈ [0, 1]`. The combination
    /// itself is a single Moa expression over both CONTREP attributes —
    /// "refer to both structure and content of multimedia data in a single
    /// query".
    pub fn query_dual(
        &self,
        text: &str,
        visual_mix: f64,
        k: usize,
    ) -> moa::Result<Vec<RankedResult>> {
        let th =
            self.thesaurus().ok_or_else(|| MoaError::Unknown("thesaurus (ingest first)".into()))?;
        let text_terms = weighted_terms(text);
        let visual_terms =
            th.expand(&text_terms, self.config().expand_per_term, self.config().expand_max_terms);
        if visual_terms.is_empty() {
            return self.query_text(text, k);
        }
        let tq = fresh_query_name("t");
        let vq = fresh_query_name("v");
        self.env().bind_query(&tq, text_terms);
        self.env().bind_query(&vq, visual_terms);
        let tw = 1.0 - visual_mix;
        let out = self.engine().query(&format!(
            "map[sum(getBL(THIS.annotation, {tq}, stats)) * {tw}
                 + sum(getBL(THIS.image, {vq}, stats)) * {visual_mix}]({INTERNAL})"
        ));
        self.env().unbind_query(&tq);
        self.env().unbind_query(&vq);
        self.ranked(out?, k)
    }

    /// Combined data/content retrieval: rank only the documents whose URL
    /// contains `url_filter` — a relational selection composed with
    /// probabilistic ranking in one expression.
    pub fn query_text_filtered(
        &self,
        text: &str,
        url_filter: &str,
        k: usize,
    ) -> moa::Result<Vec<RankedResult>> {
        let terms = weighted_terms(text);
        let q = fresh_query_name("t");
        self.env().bind_query(&q, terms);
        let out = self.engine().query(&format!(
            "map[sum(THIS)](map[getBL(THIS.annotation, {q}, stats)](
               select[contains(THIS.source, \"{url_filter}\")]({INTERNAL})))"
        ));
        self.env().unbind_query(&q);
        self.ranked(out?, k)
    }

    /// Run a raw Moa query string against the library.
    pub fn moa_query(&self, src: &str) -> moa::Result<QueryOutput> {
        self.engine().query(src)
    }

    fn ranked(&self, out: QueryOutput, k: usize) -> moa::Result<Vec<RankedResult>> {
        let pairs = match out {
            QueryOutput::Pairs(p) => p,
            other => return Err(MoaError::Type(format!("ranking query returned {other:?}"))),
        };
        let mut ranked: Vec<RankedResult> = pairs
            .into_iter()
            .filter_map(|(oid, v)| {
                let score = v.as_float()?;
                let url = self.docs().get(oid as usize)?.url.clone();
                Some(RankedResult { oid, url, score })
            })
            .filter(|r| r.score > 0.0)
            .collect();
        ranked.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.oid.cmp(&b.oid)));
        ranked.truncate(k);
        Ok(ranked)
    }
}

/// Tokenise free text into unit-weight query terms.
pub fn weighted_terms(text: &str) -> Vec<(String, f64)> {
    tokenize_stemmed(text).into_iter().map(|t| (t, 1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use media::{RobotConfig, WebRobot};

    fn db() -> &'static MirrorDbms {
        static DB: std::sync::OnceLock<MirrorDbms> = std::sync::OnceLock::new();
        DB.get_or_init(|| {
            let mut db = MirrorDbms::with_defaults();
            let corpus = WebRobot::new(RobotConfig {
                n_images: 40,
                image_size: 24,
                unannotated_fraction: 0.25,
                seed: 11,
            })
            .crawl();
            db.ingest(&corpus).unwrap();
            db
        })
    }

    #[test]
    fn text_query_prefers_matching_theme() {
        let db = db();
        let results = db.query_text("sunset glow evening", 10).unwrap();
        assert!(!results.is_empty());
        // the majority of the top results should be sunset-themed
        let themes: Vec<usize> =
            results.iter().take(5).map(|r| db.docs()[r.oid as usize].theme).collect();
        let sunset_hits = themes.iter().filter(|&&t| t == 0).count();
        assert!(sunset_hits >= 3, "top-5 themes {themes:?}");
        // scores are sorted descending
        for w in results.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn visual_query_runs_over_image_channel() {
        let db = db();
        // borrow the visual terms of doc 0 via the thesaurus expansion
        let exp = db.thesaurus().unwrap().expand(&weighted_terms("sunset"), 4, 8);
        assert!(!exp.is_empty());
        let results = db.query_visual(&exp, 10).unwrap();
        assert!(!results.is_empty());
    }

    #[test]
    fn dual_query_finds_unannotated_documents() {
        let db = db();
        let dual = db.query_dual("sunset glow", 0.6, 40).unwrap();
        // un-annotated sunset images are reachable only via the visual
        // channel; dual retrieval must surface at least one
        let unannotated_hit = dual.iter().any(|r| !db.docs()[r.oid as usize].annotated);
        assert!(unannotated_hit, "dual retrieval found no un-annotated documents");
    }

    #[test]
    fn filtered_query_respects_the_relational_predicate() {
        let db = db();
        let results = db.query_text_filtered("sunset", "/sunset/", 20).unwrap();
        assert!(!results.is_empty());
        for r in &results {
            assert!(r.url.contains("/sunset/"), "{}", r.url);
        }
    }

    #[test]
    fn unknown_terms_return_empty() {
        let db = db();
        let results = db.query_text("xylophone quantum", 5).unwrap();
        assert!(results.is_empty());
    }

    #[test]
    fn k_truncates() {
        let db = db();
        let results = db.query_text("sunset", 3).unwrap();
        assert!(results.len() <= 3);
    }

    #[test]
    fn moa_query_passthrough() {
        let db = db();
        let out = db.moa_query(&format!("count({INTERNAL})")).unwrap();
        assert_eq!(out.scalar().and_then(|v| v.as_int()), Some(40));
    }
}
