//! The retrieval application: querying the digital image library.
//!
//! The facade query methods (`query_text`, `query_dual`, …) live on the
//! [`Retriever`](crate::retriever::Retriever) trait as provided methods
//! over the typed serving path ([`crate::serve::RetrievalRequest`] →
//! [`Retriever::retrieve`](crate::retriever::Retriever::retrieve)), so
//! they work identically against a single [`MirrorDbms`] node and a
//! sharded [`MirrorCluster`](crate::shard::MirrorCluster). This module
//! keeps the result type, the shared ranking post-pass, and the raw Moa
//! escape hatch.

use crate::MirrorDbms;
use ir::text::tokenize_stemmed;
use moa::{MoaError, QueryOutput};
use monet::Oid;

/// One ranked retrieval result.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedResult {
    /// Document oid.
    pub oid: Oid,
    /// Source URL.
    pub url: String,
    /// Combined belief.
    pub score: f64,
}

impl MirrorDbms {
    /// Run a raw Moa query string against the library.
    #[deprecated(
        since = "0.6.0",
        note = "stringly-typed entry point; build a typed `serve::RetrievalRequest` and call \
                `Retriever::retrieve`, or use `engine().query(..)` for raw algebra experiments"
    )]
    pub fn moa_query(&self, src: &str) -> moa::Result<QueryOutput> {
        self.engine().query(src)
    }

    /// Turn a belief column into ranked results: drop zero scores, sort by
    /// score (ties by oid), truncate to k, attach URLs.
    pub(crate) fn ranked(&self, out: QueryOutput, k: usize) -> moa::Result<Vec<RankedResult>> {
        let pairs = match out {
            QueryOutput::Pairs(p) => p,
            other => return Err(MoaError::Type(format!("ranking query returned {other:?}"))),
        };
        let mut ranked: Vec<RankedResult> = pairs
            .into_iter()
            .filter_map(|(oid, v)| {
                let score = v.as_float()?;
                let url = self.docs().get(oid as usize)?.url.clone();
                Some(RankedResult { oid, url, score })
            })
            .filter(|r| r.score > 0.0)
            .collect();
        ranked.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.oid.cmp(&b.oid)));
        ranked.truncate(k);
        Ok(ranked)
    }
}

/// Tokenise free text into unit-weight query terms.
pub fn weighted_terms(text: &str) -> Vec<(String, f64)> {
    tokenize_stemmed(text).into_iter().map(|t| (t, 1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retriever::Retriever;
    use crate::INTERNAL;
    use media::{RobotConfig, WebRobot};

    fn db() -> &'static MirrorDbms {
        static DB: std::sync::OnceLock<MirrorDbms> = std::sync::OnceLock::new();
        DB.get_or_init(|| {
            let mut db = MirrorDbms::with_defaults();
            let corpus = WebRobot::new(RobotConfig {
                n_images: 40,
                image_size: 24,
                unannotated_fraction: 0.25,
                seed: 11,
            })
            .crawl();
            db.ingest(&corpus).unwrap();
            db
        })
    }

    #[test]
    fn text_query_prefers_matching_theme() {
        let db = db();
        let results = db.query_text("sunset glow evening", 10).unwrap();
        assert!(!results.is_empty());
        // the majority of the top results should be sunset-themed
        let themes: Vec<usize> =
            results.iter().take(5).map(|r| db.docs()[r.oid as usize].theme).collect();
        let sunset_hits = themes.iter().filter(|&&t| t == 0).count();
        assert!(sunset_hits >= 3, "top-5 themes {themes:?}");
        // scores are sorted descending
        for w in results.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn visual_query_runs_over_image_channel() {
        let db = db();
        // borrow the visual terms of doc 0 via the thesaurus expansion
        let exp = db.thesaurus().unwrap().expand(&weighted_terms("sunset"), 4, 8);
        assert!(!exp.is_empty());
        let results = db.query_visual(&exp, 10).unwrap();
        assert!(!results.is_empty());
    }

    #[test]
    fn dual_query_finds_unannotated_documents() {
        let db = db();
        let dual = db.query_dual("sunset glow", 0.6, 40).unwrap();
        // un-annotated sunset images are reachable only via the visual
        // channel; dual retrieval must surface at least one
        let unannotated_hit = dual.iter().any(|r| !db.docs()[r.oid as usize].annotated);
        assert!(unannotated_hit, "dual retrieval found no un-annotated documents");
    }

    #[test]
    fn filtered_query_respects_the_relational_predicate() {
        let db = db();
        let results = db.query_text_filtered("sunset", "/sunset/", 20).unwrap();
        assert!(!results.is_empty());
        for r in &results {
            assert!(r.url.contains("/sunset/"), "{}", r.url);
        }
    }

    #[test]
    fn filter_with_quotes_and_backslashes_is_inert() {
        let db = db();
        // regression: the old format!-spliced query let a quote in the
        // filter terminate the string literal mid-expression
        let results = db.query_text_filtered("sunset", "a\"b", 10).unwrap();
        assert!(results.is_empty());
        let results = db.query_text_filtered("sunset", "\\\"", 10).unwrap();
        assert!(results.is_empty());
    }

    #[test]
    fn unknown_terms_return_empty() {
        let db = db();
        let results = db.query_text("xylophone quantum", 5).unwrap();
        assert!(results.is_empty());
    }

    #[test]
    fn k_truncates() {
        let db = db();
        let results = db.query_text("sunset", 3).unwrap();
        assert!(results.len() <= 3);
    }

    #[test]
    fn topk_equals_full_ranking_prefix() {
        let db = db();
        let full = db.query_text("sunset glow evening", 40).unwrap();
        for k in [1usize, 3, 10] {
            let top = db.query_text("sunset glow evening", k).unwrap();
            assert_eq!(top.as_slice(), &full[..k.min(full.len())], "k={k}");
        }
    }

    #[test]
    #[allow(deprecated)]
    fn moa_query_passthrough() {
        let db = db();
        let out = db.moa_query(&format!("count({INTERNAL})")).unwrap();
        assert_eq!(out.scalar().and_then(|v| v.as_int()), Some(40));
    }
}
