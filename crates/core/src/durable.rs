//! Durable instances: save an ingested [`MirrorDbms`] (or a whole
//! [`MirrorCluster`]) into the kernel's page-granular storage tier and
//! cold-open it later without re-ingesting.
//!
//! ## What is persisted
//!
//! Ingest's expensive stages — segmentation, feature extraction,
//! clustering — happen *before* the library rows exist, so the durable
//! form is pixel-free:
//!
//! | key                | value                                           |
//! |--------------------|-------------------------------------------------|
//! | `meta/format`      | store format version + endianness sentinel      |
//! | `meta/config`      | the [`MirrorConfig`]                            |
//! | `meta/library`     | document count, row-batch count                 |
//! | `rows/{i:06}`      | library rows, dictionary-encoded columnar batch |
//! | `idx/annotation`   | serialised text-channel [`ir::InvertedIndex`]   |
//! | `idx/image`        | serialised image-channel index                  |
//! | `aux/vocab`        | the visual vocabulary (per-space models)        |
//! | `aux/thesaurus`    | the association thesaurus entries               |
//! | `meta/complete`    | save-completion marker — written **last**       |
//!
//! Each group is one WAL transaction; the completion marker commits
//! last. A crash mid-save therefore leaves a store that *recovers* at
//! the kernel level (the committed prefix replays, torn records are
//! discarded) but reports [`RetrievalError::IncompleteState`] at this
//! level — re-running the save writes the same keys and converges.
//! After the marker a [`monet::Store::checkpoint`] folds the WAL into
//! checksummed 4 KiB pages.
//!
//! ## Bit-identity
//!
//! `open` rebuilds the collection from the rows through the same
//! deterministic path ingest used, then *overwrites* the CONTREP indexes
//! with the serialised ones — so a reopened shard keeps its pinned
//! global statistics and every reopened instance ranks bit-identically
//! to the instance that saved. The crash-recovery suite asserts exactly
//! that, for arbitrary injected crash points.
//!
//! ## Live layout
//!
//! A *live* store (see [`crate::live`]) extends the layout with
//! generations and a per-operation delta WAL:
//!
//! | key                     | value                                      |
//! |-------------------------|--------------------------------------------|
//! | `live/gen-{n:06}/<key>` | a full instance layout under a gen prefix  |
//! | `live/op-{seq:016}`     | one logged write (insert batch / delete)   |
//! | `live/current`          | pointer: generation number + base sequence |
//!
//! Each op record is its own WAL transaction, committed *before* the
//! write becomes visible in memory. A merge persists the whole new
//! generation under its prefix first and flips `live/current` last, so
//! the pointer only ever names a complete generation; ops with
//! `seq > base_seq` replay on top of it at open. Orphans left by a
//! crashed merge (a partial `live/gen-*` payload, ops already folded in)
//! are ignored by open and overwritten by the next merge.

use crate::live::WriteOp;
use crate::retriever::{RetrievalError, RetrievalResult};
use crate::shard::{ClusterConfig, MirrorCluster, Partitioning};
use crate::{Clustering, DocMeta, LibraryRow, MirrorConfig, MirrorDbms, INTERNAL};
use cluster::vocab::SpaceModel;
use cluster::{KMeansResult, MixtureModel, VisualVocabulary};
use ir::InvertedIndex;
use monet::storage::{ByteReader, ByteWriter, ENDIAN_SENTINEL};
use monet::{DiskFs, MonetError, Oid, StorageBackend, Store, StoreOptions};
use std::path::Path;
use std::sync::Arc;
use thesaurus::{AssocMeasure, AssociationThesaurus};

/// Version of the durable store layout this build reads and writes.
/// v2 carries the block-compressed inverted-index blobs
/// ([`ir::INDEX_FORMAT_VERSION`] 2); v1 stores are rejected on open.
pub const STORE_FORMAT: u32 = 2;

/// Library rows per columnar batch.
const BATCH: usize = 512;

mod key {
    pub const FORMAT: &str = "meta/format";
    pub const CONFIG: &str = "meta/config";
    pub const LIBRARY: &str = "meta/library";
    pub const COMPLETE: &str = "meta/complete";
    pub const IDX_ANNOTATION: &str = "idx/annotation";
    pub const IDX_IMAGE: &str = "idx/image";
    pub const VOCAB: &str = "aux/vocab";
    pub const THESAURUS: &str = "aux/thesaurus";

    pub fn rows(batch: usize) -> String {
        format!("rows/{batch:06}")
    }
}

fn corrupt(what: &str, detail: impl Into<String>) -> MonetError {
    MonetError::Corrupt { what: what.to_string(), detail: detail.into() }
}

/// Read a required key, mapping absence to [`MonetError::Corrupt`] (the
/// completion marker guaranteed it was written).
fn must_get(store: &Store, key: &str) -> Result<Vec<u8>, MonetError> {
    store.get(key)?.ok_or_else(|| corrupt(key, "key missing from a complete store"))
}

// ---------------------------------------------------------------------------
// Value codecs
// ---------------------------------------------------------------------------

fn encode_format() -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(STORE_FORMAT);
    w.u16(ENDIAN_SENTINEL);
    w.into_bytes()
}

fn check_format(bytes: &[u8]) -> Result<(), MonetError> {
    let mut r = ByteReader::new(bytes, key::FORMAT);
    let found = r.u32()?;
    if found != STORE_FORMAT {
        return Err(MonetError::FormatVersion { found, expected: STORE_FORMAT });
    }
    let sentinel = r.u16()?;
    if sentinel != ENDIAN_SENTINEL {
        return Err(corrupt(
            key::FORMAT,
            format!("endianness sentinel {sentinel:#06x} — written with a different byte order"),
        ));
    }
    Ok(())
}

fn encode_config(c: &MirrorConfig) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(c.grid as u64);
    match c.clustering {
        Clustering::AutoClass => w.u8(0),
        Clustering::KMeans(k) => {
            w.u8(1);
            w.u64(k as u64);
        }
    }
    w.u8(match c.assoc {
        AssocMeasure::Emim => 0,
        AssocMeasure::ChiSquare => 1,
        AssocMeasure::JointCount => 2,
    });
    w.u64(c.expand_per_term as u64);
    w.u64(c.expand_max_terms as u64);
    w.u8(c.keep_raw as u8);
    w.u64(c.parallelism as u64);
    w.u64(c.seed);
    w.into_bytes()
}

fn decode_config(bytes: &[u8]) -> Result<MirrorConfig, MonetError> {
    let mut r = ByteReader::new(bytes, key::CONFIG);
    let grid = r.u64()? as usize;
    let clustering = match r.u8()? {
        0 => Clustering::AutoClass,
        1 => Clustering::KMeans(r.u64()? as usize),
        t => return Err(corrupt(key::CONFIG, format!("bad clustering tag {t}"))),
    };
    let assoc = match r.u8()? {
        0 => AssocMeasure::Emim,
        1 => AssocMeasure::ChiSquare,
        2 => AssocMeasure::JointCount,
        t => return Err(corrupt(key::CONFIG, format!("bad assoc tag {t}"))),
    };
    Ok(MirrorConfig {
        grid,
        clustering,
        assoc,
        expand_per_term: r.u64()? as usize,
        expand_max_terms: r.u64()? as usize,
        keep_raw: r.u8()? != 0,
        parallelism: r.u64()? as usize,
        seed: r.u64()?,
    })
}

/// One columnar batch of library rows: each field is a kernel column, so
/// URLs, annotations and visual-term strings land dictionary-encoded on
/// disk exactly like every other string column.
fn encode_rows(rows: &[LibraryRow]) -> Vec<u8> {
    use monet::strdict::StrDictBuilder;
    use monet::Column;
    fn str_col(it: impl Iterator<Item = String>) -> Column {
        let mut b = StrDictBuilder::new();
        let codes: Vec<u32> = it.map(|s| b.intern(&s)).collect();
        Column::Str(monet::column::StrCol { codes, dict: b.freeze() })
    }
    let mut w = ByteWriter::new();
    w.u64(rows.len() as u64);
    let cols = [
        str_col(rows.iter().map(|r| r.url.clone())),
        str_col(rows.iter().map(|r| r.annotation.clone().unwrap_or_default())),
        Column::Int(rows.iter().map(|r| r.annotation.is_some() as i64).collect()),
        str_col(rows.iter().map(|r| r.vterms.clone())),
        Column::Int(rows.iter().map(|r| r.theme as i64).collect()),
    ];
    for col in &cols {
        monet::storage::codec::write_column(&mut w, col);
    }
    w.into_bytes()
}

fn decode_rows(bytes: &[u8], what: &str) -> Result<Vec<LibraryRow>, MonetError> {
    let mut r = ByteReader::new(bytes, "library rows");
    let n = r.len64(bytes.len())?;
    let mut cols = Vec::with_capacity(5);
    for _ in 0..5 {
        cols.push(monet::storage::codec::read_column(&mut r)?);
    }
    if !r.is_exhausted() {
        return Err(corrupt(what, "trailing bytes after columns"));
    }
    let str_at = |col: &monet::Column, i: usize| -> Result<String, MonetError> {
        match col.get(i)? {
            monet::Val::Str(s) => Ok(s),
            other => Err(corrupt(what, format!("row {i}: expected string, got {other:?}"))),
        }
    };
    let int_at = |col: &monet::Column, i: usize| -> Result<i64, MonetError> {
        match col.get(i)? {
            monet::Val::Int(v) => Ok(v),
            other => Err(corrupt(what, format!("row {i}: expected int, got {other:?}"))),
        }
    };
    if cols.iter().any(|c| c.len() != n) {
        return Err(corrupt(what, "column lengths disagree with row count"));
    }
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        let annotated = int_at(&cols[2], i)? != 0;
        let ann_text = str_at(&cols[1], i)?;
        rows.push(LibraryRow {
            url: str_at(&cols[0], i)?,
            annotation: annotated.then_some(ann_text),
            vterms: str_at(&cols[3], i)?,
            theme: int_at(&cols[4], i)? as usize,
        });
    }
    Ok(rows)
}

fn write_f64s(w: &mut ByteWriter, v: &[f64]) {
    w.u64(v.len() as u64);
    for &x in v {
        w.f64(x);
    }
}

fn read_f64s(r: &mut ByteReader<'_>) -> Result<Vec<f64>, MonetError> {
    let n = r.len64(r.remaining() / 8)?;
    (0..n).map(|_| r.f64()).collect()
}

fn write_mat(w: &mut ByteWriter, m: &[Vec<f64>]) {
    w.u64(m.len() as u64);
    for row in m {
        write_f64s(w, row);
    }
}

fn read_mat(r: &mut ByteReader<'_>) -> Result<Vec<Vec<f64>>, MonetError> {
    let n = r.len64(r.remaining() / 8)?;
    (0..n).map(|_| read_f64s(r)).collect()
}

/// An optional vocabulary: presence byte, then per-space models in
/// sorted space order (deterministic bytes — a redone save rewrites
/// byte-identical values).
fn encode_vocab(vocab: Option<&VisualVocabulary>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    let Some(vocab) = vocab else {
        w.u8(0);
        return w.into_bytes();
    };
    w.u8(1);
    let spaces = vocab.spaces();
    w.u64(spaces.len() as u64);
    for space in &spaces {
        w.str(space);
        match vocab.model(space).expect("space listed by vocab") {
            SpaceModel::Mixture(m) => {
                w.u8(0);
                write_f64s(&mut w, &m.weights);
                write_mat(&mut w, &m.means);
                write_mat(&mut w, &m.variances);
                w.f64(m.log_likelihood);
                w.f64(m.bic);
            }
            SpaceModel::KMeans(k) => {
                w.u8(1);
                write_mat(&mut w, &k.centroids);
                w.u64(k.assignment.len() as u64);
                for &a in &k.assignment {
                    w.u64(a as u64);
                }
                w.f64(k.inertia);
                w.u64(k.iterations as u64);
            }
        }
    }
    w.into_bytes()
}

fn decode_vocab(bytes: &[u8]) -> Result<Option<VisualVocabulary>, MonetError> {
    let mut r = ByteReader::new(bytes, key::VOCAB);
    if r.u8()? == 0 {
        return Ok(None);
    }
    let n_spaces = r.len64(r.remaining())?;
    let mut vocab = VisualVocabulary::new();
    for _ in 0..n_spaces {
        let space = r.str()?;
        let model = match r.u8()? {
            0 => SpaceModel::Mixture(MixtureModel {
                weights: read_f64s(&mut r)?,
                means: read_mat(&mut r)?,
                variances: read_mat(&mut r)?,
                log_likelihood: r.f64()?,
                bic: r.f64()?,
            }),
            1 => {
                let centroids = read_mat(&mut r)?;
                let n = r.len64(r.remaining() / 8)?;
                let assignment =
                    (0..n).map(|_| r.u64().map(|v| v as usize)).collect::<Result<_, _>>()?;
                SpaceModel::KMeans(KMeansResult {
                    centroids,
                    assignment,
                    inertia: r.f64()?,
                    iterations: r.u64()? as usize,
                })
            }
            t => return Err(corrupt(key::VOCAB, format!("bad model tag {t}"))),
        };
        vocab.insert(space, model);
    }
    Ok(Some(vocab))
}

fn encode_thesaurus(th: Option<&AssociationThesaurus>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    let Some(th) = th else {
        w.u8(0);
        return w.into_bytes();
    };
    w.u8(1);
    w.u8(match th.measure() {
        AssocMeasure::Emim => 0,
        AssocMeasure::ChiSquare => 1,
        AssocMeasure::JointCount => 2,
    });
    let entries = th.entries();
    w.u64(entries.len() as u64);
    for (t, v, s) in &entries {
        w.str(t);
        w.str(v);
        w.f64(*s);
    }
    w.into_bytes()
}

fn decode_thesaurus(bytes: &[u8]) -> Result<Option<AssociationThesaurus>, MonetError> {
    let mut r = ByteReader::new(bytes, key::THESAURUS);
    if r.u8()? == 0 {
        return Ok(None);
    }
    let measure = match r.u8()? {
        0 => AssocMeasure::Emim,
        1 => AssocMeasure::ChiSquare,
        2 => AssocMeasure::JointCount,
        t => return Err(corrupt(key::THESAURUS, format!("bad measure tag {t}"))),
    };
    let n = r.len64(r.remaining())?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push((r.str()?, r.str()?, r.f64()?));
    }
    Ok(Some(AssociationThesaurus::from_entries(measure, entries)))
}

/// Serialise an optional index with a presence byte.
fn encode_index(idx: Option<&InvertedIndex>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match idx {
        None => w.u8(0),
        Some(idx) => {
            w.u8(1);
            w.bytes(&idx.to_bytes());
        }
    }
    w.into_bytes()
}

fn decode_index(bytes: &[u8], what: &str) -> Result<Option<InvertedIndex>, MonetError> {
    if bytes.is_empty() {
        return Err(corrupt(what, "empty index value"));
    }
    match bytes[0] {
        0 => Ok(None),
        1 => InvertedIndex::from_bytes(&bytes[1..]).map(Some),
        t => Err(corrupt(what, format!("bad presence byte {t}"))),
    }
}

// ---------------------------------------------------------------------------
// MirrorDbms save / open
// ---------------------------------------------------------------------------

impl MirrorDbms {
    /// Persist this instance into a durable store at `dir` (created if
    /// needed) and checkpoint it into page files. See the module docs
    /// for the layout and crash-safety discipline.
    pub fn save(&self, dir: impl AsRef<Path>) -> RetrievalResult<()> {
        let backend: Arc<dyn StorageBackend> = Arc::new(DiskFs::new(dir.as_ref())?);
        let store = Store::open(backend, StoreOptions::default())?;
        self.save_to(&store)?;
        store.checkpoint()?;
        Ok(())
    }

    /// Persist this instance into an already-open store. Every logical
    /// group is one WAL transaction; the completion marker commits last,
    /// so a crash at any point leaves either a complete save or a store
    /// that reports [`RetrievalError::IncompleteState`] on open.
    /// Re-running after a crash writes the same keys and converges.
    /// (The caller decides when to [`monet::Store::checkpoint`].)
    pub fn save_to(&self, store: &Store) -> RetrievalResult<()> {
        save_instance(self, store, "")
    }

    /// Cold-open a persisted instance from `dir` without re-ingest:
    /// kernel-level recovery (newest valid checkpoint + WAL replay) runs
    /// first, then the instance is rebuilt from the stored rows and the
    /// serialised indexes. Ranks bit-identically to the saved instance.
    pub fn open(dir: impl AsRef<Path>) -> RetrievalResult<Self> {
        let backend: Arc<dyn StorageBackend> = Arc::new(DiskFs::new(dir.as_ref())?);
        Self::open_from(&Store::open(backend, StoreOptions::default())?)
    }

    /// Rebuild an instance from an already-open (recovered) store.
    pub fn open_from(store: &Store) -> RetrievalResult<Self> {
        open_instance(store, "")
    }
}

/// Persist an instance's full layout under `prefix` (`""` is the legacy
/// root layout; live generations use `live/gen-{n:06}/`). Every logical
/// group is one WAL transaction, the completion marker commits last.
pub(crate) fn save_instance(db: &MirrorDbms, store: &Store, prefix: &str) -> RetrievalResult<()> {
    let k = |name: &str| format!("{prefix}{name}");
    store.put(k(key::FORMAT), encode_format());
    store.put(k(key::CONFIG), encode_config(db.config()));
    store.commit()?;

    let rows = db.library_rows();
    let n_batches = rows.len().div_ceil(BATCH);
    for (i, chunk) in rows.chunks(BATCH).enumerate() {
        store.put(k(&key::rows(i)), encode_rows(chunk));
        store.commit()?;
    }

    let ann = db.store().get(&format!("{INTERNAL}__annotation"));
    let img = db.store().get(&format!("{INTERNAL}__image"));
    store.put(k(key::IDX_ANNOTATION), encode_index(ann.as_deref()));
    store.put(k(key::IDX_IMAGE), encode_index(img.as_deref()));
    store.commit()?;

    store.put(k(key::VOCAB), encode_vocab(db.vocabulary()));
    store.put(k(key::THESAURUS), encode_thesaurus(db.thesaurus()));
    store.commit()?;

    let mut lib = ByteWriter::new();
    lib.u64(rows.len() as u64);
    lib.u64(n_batches as u64);
    store.put(k(key::LIBRARY), lib.into_bytes());
    let mut done = ByteWriter::new();
    done.u8(1);
    store.put(k(key::COMPLETE), done.into_bytes());
    store.commit()?;
    Ok(())
}

/// Rebuild an instance from the layout under `prefix` in an already-open
/// (recovered) store.
pub(crate) fn open_instance(store: &Store, prefix: &str) -> RetrievalResult<MirrorDbms> {
    let k = |name: &str| format!("{prefix}{name}");
    match store.get(&k(key::COMPLETE))? {
        Some(_) => {}
        None => {
            return Err(RetrievalError::IncompleteState {
                detail: format!(
                    "no completion marker under {prefix:?}; {} keys recovered \
                     ({} WAL transactions) — the save never finished, re-run it",
                    store.keys().len(),
                    store.recovery().wal_transactions,
                ),
            })
        }
    }
    check_format(&must_get(store, &k(key::FORMAT))?)?;
    let config = decode_config(&must_get(store, &k(key::CONFIG))?)?;
    let (n_docs, n_batches) = {
        let bytes = must_get(store, &k(key::LIBRARY))?;
        let mut r = ByteReader::new(&bytes, key::LIBRARY);
        (r.u64()? as usize, r.u64()? as usize)
    };
    let mut rows = Vec::with_capacity(n_docs);
    for i in 0..n_batches {
        let kb = k(&key::rows(i));
        rows.extend(decode_rows(&must_get(store, &kb)?, &kb)?);
    }
    if rows.len() != n_docs {
        return Err(RetrievalError::Storage(corrupt(
            key::LIBRARY,
            format!("{} rows decoded, library metadata says {n_docs}", rows.len()),
        )));
    }

    let mut db = MirrorDbms::new(config);
    db.load_library_rows(rows)?;
    // overwrite the deterministically rebuilt indexes with the saved
    // ones: identical for a self-contained node, and required for a
    // shard, whose indexes pin the parent collection's statistics
    let ann_key = format!("{INTERNAL}__annotation");
    let img_key = format!("{INTERNAL}__image");
    if let Some(idx) =
        decode_index(&must_get(store, &k(key::IDX_ANNOTATION))?, key::IDX_ANNOTATION)?
    {
        db.store().insert(ann_key, idx);
    }
    if let Some(idx) = decode_index(&must_get(store, &k(key::IDX_IMAGE))?, key::IDX_IMAGE)? {
        db.store().insert(img_key, idx);
    }
    let vocab = decode_vocab(&must_get(store, &k(key::VOCAB))?)?;
    let thesaurus = decode_thesaurus(&must_get(store, &k(key::THESAURUS))?)?;
    if let (Some(v), Some(t)) = (vocab, thesaurus) {
        db.set_ingest_outputs(v, t);
    }
    Ok(db)
}

// ---------------------------------------------------------------------------
// Live persistence: generation pointer + delta WAL
// ---------------------------------------------------------------------------

mod live_key {
    pub const CURRENT: &str = "live/current";
    pub const OP_PREFIX: &str = "live/op-";

    pub fn op(seq: u64) -> String {
        format!("{OP_PREFIX}{seq:016}")
    }
}

/// Key prefix a live generation's instance layout is saved under.
pub(crate) fn live_gen_prefix(gen_no: u64) -> String {
    format!("live/gen-{gen_no:06}/")
}

/// Read the `live/current` pointer: `(generation number, base sequence)`,
/// or `None` if the store holds no live instance.
pub(crate) fn live_pointer(store: &Store) -> RetrievalResult<Option<(u64, u64)>> {
    match store.get(live_key::CURRENT)? {
        None => Ok(None),
        Some(bytes) => {
            let mut r = ByteReader::new(&bytes, live_key::CURRENT);
            Ok(Some((r.u64()?, r.u64()?)))
        }
    }
}

/// Flip the `live/current` pointer in one WAL transaction — the atomic
/// commit point of a merge.
pub(crate) fn live_set_pointer(store: &Store, gen_no: u64, base_seq: u64) -> RetrievalResult<()> {
    let mut w = ByteWriter::new();
    w.u64(gen_no);
    w.u64(base_seq);
    store.put(live_key::CURRENT, w.into_bytes());
    store.commit()?;
    Ok(())
}

/// Append one delta op as its own committed WAL transaction. Called
/// *before* the op becomes visible in memory: a write is only ever
/// acknowledged once it is durable.
pub(crate) fn live_append_op(store: &Store, seq: u64, op: &WriteOp) -> RetrievalResult<()> {
    let mut w = ByteWriter::new();
    match op {
        WriteOp::Insert(rows) => {
            w.u8(0);
            w.bytes(&encode_rows(rows));
        }
        WriteOp::Delete(url) => {
            w.u8(1);
            w.str(url);
        }
    }
    store.put(live_key::op(seq), w.into_bytes());
    store.commit()?;
    Ok(())
}

/// Read every committed delta op with `seq > base_seq`, ascending.
pub(crate) fn live_ops_after(store: &Store, base_seq: u64) -> RetrievalResult<Vec<(u64, WriteOp)>> {
    let mut ops = Vec::new();
    for key in store.keys() {
        let Some(digits) = key.strip_prefix(live_key::OP_PREFIX) else { continue };
        let seq: u64 =
            digits.parse().map_err(|_| corrupt(&key, "unparseable op sequence number"))?;
        if seq <= base_seq {
            continue;
        }
        let bytes = must_get(store, &key)?;
        let mut r = ByteReader::new(&bytes, &key);
        let op = match r.u8()? {
            0 => WriteOp::Insert(decode_rows(r.take(r.remaining())?, &key)?),
            1 => WriteOp::Delete(r.str()?),
            t => return Err(corrupt(&key, format!("bad op tag {t}")).into()),
        };
        ops.push((seq, op));
    }
    ops.sort_unstable_by_key(|&(seq, _)| seq);
    Ok(ops)
}

// ---------------------------------------------------------------------------
// MirrorCluster save / open
// ---------------------------------------------------------------------------

mod cluster_key {
    pub const FORMAT: &str = "meta/format";
    pub const CONFIG: &str = "meta/cluster";
    pub const LAYOUT: &str = "meta/layout";
    pub const COMPLETE: &str = "meta/complete";
}

fn encode_cluster_config(c: &ClusterConfig) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(c.shards as u64);
    w.u64(c.replicas as u64);
    w.u8(match c.partitioning {
        Partitioning::Hash => 0,
        Partitioning::Content => 1,
    });
    w.bytes(&encode_config(&c.node));
    w.into_bytes()
}

fn decode_cluster_config(bytes: &[u8]) -> Result<ClusterConfig, MonetError> {
    let mut r = ByteReader::new(bytes, cluster_key::CONFIG);
    let shards = r.u64()? as usize;
    let replicas = r.u64()? as usize;
    let partitioning = match r.u8()? {
        0 => Partitioning::Hash,
        1 => Partitioning::Content,
        t => return Err(corrupt(cluster_key::CONFIG, format!("bad partitioning tag {t}"))),
    };
    let node = decode_config(r.take(r.remaining())?)?;
    Ok(ClusterConfig { shards, replicas, partitioning, node })
}

/// Layout: per shard the ascending global doc ids, plus the global
/// per-document metadata.
fn encode_layout(global_ids: &[Vec<Oid>], docs: &[DocMeta]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(global_ids.len() as u64);
    for ids in global_ids {
        w.u64(ids.len() as u64);
        for &id in ids {
            w.u32(id);
        }
    }
    w.u64(docs.len() as u64);
    for d in docs {
        w.str(&d.url);
        w.u8(d.annotated as u8);
        w.u64(d.theme as u64);
    }
    w.into_bytes()
}

type Layout = (Vec<Vec<Oid>>, Vec<DocMeta>);

fn decode_layout(bytes: &[u8]) -> Result<Layout, MonetError> {
    let mut r = ByteReader::new(bytes, cluster_key::LAYOUT);
    let n_shards = r.len64(r.remaining())?;
    let mut global_ids = Vec::with_capacity(n_shards);
    for _ in 0..n_shards {
        let n = r.len64(r.remaining() / 4)?;
        let ids: Vec<Oid> = (0..n).map(|_| r.u32()).collect::<Result<_, _>>()?;
        if !ids.windows(2).all(|w| w[0] < w[1]) {
            return Err(corrupt(cluster_key::LAYOUT, "shard doc ids not strictly ascending"));
        }
        global_ids.push(ids);
    }
    let n_docs = r.len64(r.remaining())?;
    let mut docs = Vec::with_capacity(n_docs);
    for _ in 0..n_docs {
        docs.push(DocMeta { url: r.str()?, annotated: r.u8()? != 0, theme: r.u64()? as usize });
    }
    Ok((global_ids, docs))
}

impl MirrorCluster {
    /// Persist the whole cluster under `dir`: the layout and
    /// configuration in `dir/cluster`, and each shard as an independent
    /// durable store in `dir/shard-{i:03}` — a shard directory is a
    /// complete store of its own (rows, statistics-pinned indexes,
    /// vocabulary, thesaurus) that any node can open without the others.
    pub fn save(&self, dir: impl AsRef<Path>) -> RetrievalResult<()> {
        let dir = dir.as_ref();
        for (i, node) in self.nodes().iter().enumerate() {
            node.save(dir.join(format!("shard-{i:03}")))?;
        }
        let backend: Arc<dyn StorageBackend> = Arc::new(DiskFs::new(dir.join("cluster"))?);
        let store = Store::open(backend, StoreOptions::default())?;
        store.put(cluster_key::FORMAT, encode_format());
        store.put(cluster_key::CONFIG, encode_cluster_config(self.config()));
        store.put(cluster_key::LAYOUT, encode_layout(self.global_ids(), self.docs()));
        store.commit()?;
        let mut done = ByteWriter::new();
        done.u8(1);
        store.put(cluster_key::COMPLETE, done.into_bytes());
        store.commit()?;
        store.checkpoint()?;
        Ok(())
    }

    /// Cold-open a persisted cluster from `dir`: shards reopen
    /// independently (each runs its own kernel-level recovery) and are
    /// stood back up behind fresh replica routers. Rankings are
    /// bit-identical to the cluster that saved.
    pub fn open(dir: impl AsRef<Path>) -> RetrievalResult<Self> {
        let dir = dir.as_ref();
        let backend: Arc<dyn StorageBackend> = Arc::new(DiskFs::new(dir.join("cluster"))?);
        let store = Store::open(backend, StoreOptions::default())?;
        if store.get(cluster_key::COMPLETE)?.is_none() {
            return Err(RetrievalError::IncompleteState {
                detail: "cluster store has no completion marker — the save never finished".into(),
            });
        }
        check_format(&must_get(&store, cluster_key::FORMAT)?)?;
        let config = decode_cluster_config(&must_get(&store, cluster_key::CONFIG)?)?;
        let (global_ids, docs) = decode_layout(&must_get(&store, cluster_key::LAYOUT)?)?;
        if global_ids.len() != config.shards {
            return Err(RetrievalError::Storage(corrupt(
                cluster_key::LAYOUT,
                format!("{} shard lists for {} shards", global_ids.len(), config.shards),
            )));
        }
        let mut nodes = Vec::with_capacity(config.shards);
        for i in 0..config.shards {
            let node =
                MirrorDbms::open(dir.join(format!("shard-{i:03}"))).map_err(|e| match e {
                    RetrievalError::IncompleteState { detail } => {
                        RetrievalError::IncompleteState { detail: format!("shard {i}: {detail}") }
                    }
                    other => other,
                })?;
            nodes.push(Arc::new(node));
        }
        Ok(MirrorCluster::from_parts(config, nodes, global_ids, docs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_codec_roundtrip() {
        for cfg in [
            MirrorConfig::default(),
            MirrorConfig {
                grid: 5,
                clustering: Clustering::KMeans(7),
                assoc: AssocMeasure::ChiSquare,
                expand_per_term: 2,
                expand_max_terms: 3,
                keep_raw: true,
                parallelism: 4,
                seed: 99,
            },
        ] {
            let back = decode_config(&encode_config(&cfg)).unwrap();
            assert_eq!(format!("{back:?}"), format!("{cfg:?}"));
        }
    }

    #[test]
    fn rows_codec_roundtrip() {
        let rows = vec![
            LibraryRow {
                url: "http://a/1".into(),
                annotation: Some("sunset over the sea".into()),
                vterms: "rgb_0 gabor_2".into(),
                theme: 3,
            },
            LibraryRow {
                url: "http://a/2".into(),
                annotation: None,
                vterms: "rgb_1".into(),
                theme: 0,
            },
            LibraryRow {
                url: "http://a/3".into(),
                annotation: Some(String::new()), // annotated but empty
                vterms: String::new(),
                theme: 7,
            },
        ];
        let back = decode_rows(&encode_rows(&rows), "test").unwrap();
        assert_eq!(back, rows);
    }

    #[test]
    fn empty_vocab_and_thesaurus_roundtrip_as_none() {
        assert!(decode_vocab(&encode_vocab(None)).unwrap().is_none());
        assert!(decode_thesaurus(&encode_thesaurus(None)).unwrap().is_none());
    }

    #[test]
    fn format_check_rejects_other_versions() {
        let mut w = ByteWriter::new();
        w.u32(STORE_FORMAT + 1);
        w.u16(ENDIAN_SENTINEL);
        assert_eq!(
            check_format(&w.into_bytes()).unwrap_err(),
            MonetError::FormatVersion { found: STORE_FORMAT + 1, expected: STORE_FORMAT }
        );
    }

    #[test]
    fn truncated_rows_batch_is_corrupt() {
        let rows =
            vec![LibraryRow { url: "u".into(), annotation: None, vterms: "v".into(), theme: 1 }];
        let bytes = encode_rows(&rows);
        for cut in [0, 4, bytes.len() - 1] {
            assert!(decode_rows(&bytes[..cut], "t").is_err(), "cut {cut}");
        }
    }
}
