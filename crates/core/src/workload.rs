//! Open-loop serving harness: drive a [`MirrorServer`] at a fixed
//! arrival rate and measure what the paper promises to survive.
//!
//! The paper closes on "heavy traffic from millions of users"; the honest
//! way to measure that claim is an *open-loop* workload — requests arrive
//! on a Poisson clock at a configured QPS whether or not earlier requests
//! have finished, exactly as independent users behave. (A closed loop,
//! where each client waits for its response before sending the next,
//! self-throttles under overload and hides the latency cliff this harness
//! exists to find.) The generator is seeded with the vendored `rand`
//! `StdRng`, so the *request stream* — traffic classes, terms, filters,
//! write placement — is bit-reproducible across runs; only the wall-clock
//! timings vary.
//!
//! Overload is part of the contract, not a failure: the server's bounded
//! admission queue sheds excess arrivals with a typed
//! [`RetrievalError::Overloaded`], which the harness counts separately
//! from server-side errors. The [`WorkloadReport`] folds the server's
//! whole-run latency histogram into p50/p99 and an SLO headroom figure:
//! `(slo − p99) / slo`, negative when the tail has blown the budget.

use crate::retriever::{RetrievalError, Retriever};
use crate::serve::{MirrorServer, PendingRetrieval, RetrievalRequest};
use crate::LibraryRow;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Relative weights of the four query classes a generated stream mixes.
/// Weights need not sum to 1; they are normalised at draw time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficMix {
    /// Plain free-text retrieval (annotation channel).
    pub text: f64,
    /// Dual-coded retrieval (thesaurus-expanded visual channel mixed in).
    pub dual: f64,
    /// Combined data/content retrieval (text query + URL filter).
    pub filtered: f64,
    /// Relevance-feedback shape: explicit weighted terms on both channels.
    pub feedback: f64,
}

impl Default for TrafficMix {
    fn default() -> Self {
        TrafficMix { text: 0.5, dual: 0.2, filtered: 0.2, feedback: 0.1 }
    }
}

/// Configuration of one open-loop run.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Seed for the arrival clock and every request draw.
    pub seed: u64,
    /// Target arrival rate, requests per second (Poisson arrivals:
    /// exponential inter-arrival gaps with mean `1/qps`).
    pub qps: f64,
    /// Total requests to offer.
    pub requests: usize,
    /// Top-k budget on every generated request.
    pub k: usize,
    /// Query-class weights.
    pub mix: TrafficMix,
    /// Visual-channel weight for dual/feedback requests.
    pub dual_mix: f64,
    /// Latency SLO the report judges p99 against, in milliseconds.
    pub slo_ms: f64,
    /// Interleave one write batch every this many queries (`0` = no
    /// writes). Only [`WorkloadGen::run_with_writes`] acts on it.
    pub write_every: usize,
    /// Rows per interleaved write batch.
    pub write_batch: usize,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 7,
            qps: 200.0,
            requests: 200,
            k: 10,
            mix: TrafficMix::default(),
            dual_mix: 0.5,
            slo_ms: 50.0,
            write_every: 0,
            write_batch: 4,
        }
    }
}

/// What one open-loop run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadReport {
    /// Requests offered (submitted or shed at admission).
    pub offered: u64,
    /// Requests that completed with results.
    pub completed: u64,
    /// Requests shed at admission ([`RetrievalError::Overloaded`]).
    pub rejected: u64,
    /// Requests that failed server-side for any other reason.
    pub errors: u64,
    /// Write batches applied (only under
    /// [`WorkloadGen::run_with_writes`]).
    pub writes: u64,
    /// Arrival rate actually achieved over the submit window, per second.
    pub achieved_qps: f64,
    /// Mean served latency, milliseconds.
    pub mean_ms: f64,
    /// Median served latency (whole-run histogram), milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile served latency (whole-run histogram), milliseconds.
    pub p99_ms: f64,
    /// Worst served latency, milliseconds.
    pub max_ms: f64,
    /// The SLO the run was judged against, milliseconds.
    pub slo_ms: f64,
    /// `(slo − p99) / slo`: fraction of the latency budget left at the
    /// tail. Negative when p99 has blown through the SLO.
    pub slo_headroom: f64,
}

impl WorkloadReport {
    /// One-line human summary (examples and the soak gate print this).
    pub fn summary(&self) -> String {
        format!(
            "offered {} @ {:.0} qps: {} ok / {} shed / {} err; \
             p50 {:.2} ms, p99 {:.2} ms (SLO {:.0} ms, headroom {:+.0}%)",
            self.offered,
            self.achieved_qps,
            self.completed,
            self.rejected,
            self.errors,
            self.p50_ms,
            self.p99_ms,
            self.slo_ms,
            self.slo_headroom * 100.0
        )
    }
}

/// The seeded request generator and open-loop driver.
pub struct WorkloadGen {
    cfg: WorkloadConfig,
    rng: StdRng,
    terms: Vec<String>,
    filters: Vec<String>,
    visual_terms: Vec<String>,
}

impl WorkloadGen {
    /// Build a generator drawing query terms from `terms` (typically the
    /// most frequent annotation terms of the ingested corpus).
    pub fn new(cfg: WorkloadConfig, terms: Vec<String>) -> Self {
        assert!(!terms.is_empty(), "the workload needs at least one query term");
        assert!(cfg.qps > 0.0, "arrival rate must be positive");
        let rng = StdRng::seed_from_u64(cfg.seed);
        WorkloadGen { cfg, rng, terms, filters: Vec::new(), visual_terms: Vec::new() }
    }

    /// URL substrings for the filtered-query class (empty pool downgrades
    /// filtered draws to plain text queries).
    pub fn with_filters(mut self, filters: Vec<String>) -> Self {
        self.filters = filters;
        self
    }

    /// Visual-term pool for the feedback-query class (empty pool makes
    /// feedback draws rank text-only, which is the documented fallback).
    pub fn with_visual_terms(mut self, visual_terms: Vec<String>) -> Self {
        self.visual_terms = visual_terms;
        self
    }

    /// The configuration this generator runs with.
    pub fn config(&self) -> &WorkloadConfig {
        &self.cfg
    }

    /// Exponential inter-arrival gap for a Poisson process at `cfg.qps`.
    fn inter_arrival(&mut self) -> Duration {
        let u: f64 = self.rng.gen();
        Duration::from_secs_f64(-(1.0_f64 - u).ln() / self.cfg.qps)
    }

    fn pick_terms(&mut self, pool: Pool, n: usize) -> Vec<(String, f64)> {
        let pool = match pool {
            Pool::Text => &self.terms,
            Pool::Visual => &self.visual_terms,
        };
        if pool.is_empty() {
            return Vec::new();
        }
        (0..n).map(|_| (pool[self.rng.gen_range(0..pool.len())].clone(), 1.0)).collect()
    }

    /// Draw the next request of the stream — deterministic per seed.
    pub fn next_request(&mut self) -> RetrievalRequest {
        let m = self.cfg.mix;
        let total = m.text + m.dual + m.filtered + m.feedback;
        let draw: f64 = self.rng.gen::<f64>() * total;
        let k = self.cfg.k;
        let n_terms = self.rng.gen_range(1..=3usize);
        if draw < m.text || total <= 0.0 {
            let terms = self.pick_terms(Pool::Text, n_terms);
            RetrievalRequest::text_terms(terms, k)
        } else if draw < m.text + m.dual {
            let text: Vec<String> =
                self.pick_terms(Pool::Text, n_terms).into_iter().map(|(t, _)| t).collect();
            RetrievalRequest::dual(&text.join(" "), self.cfg.dual_mix, k)
        } else if draw < m.text + m.dual + m.filtered {
            let req = RetrievalRequest::text_terms(self.pick_terms(Pool::Text, n_terms), k);
            if self.filters.is_empty() {
                req
            } else {
                let f = self.filters[self.rng.gen_range(0..self.filters.len())].clone();
                req.with_filter(f)
            }
        } else {
            let text = self.pick_terms(Pool::Text, n_terms);
            let visual = self.pick_terms(Pool::Visual, 2.min(self.visual_terms.len()));
            RetrievalRequest::dual_terms(text, visual, self.cfg.dual_mix, k)
        }
    }

    /// Drive `server` open-loop with query traffic only.
    pub fn run<R: Retriever + 'static>(&mut self, server: &MirrorServer<R>) -> WorkloadReport {
        self.drive(server, |_, _| 0)
    }

    /// Drive `server` open-loop with queries plus interleaved live
    /// writes: every `cfg.write_every` queries, `cfg.write_batch` rows
    /// are taken round-robin from `rows` and appended through the
    /// server's mutable backend on the submitting thread (MVCC isolation
    /// means queries keep streaming while the write installs).
    pub fn run_with_writes<R: crate::live::MutableCorpus + 'static>(
        &mut self,
        server: &MirrorServer<R>,
        rows: &[LibraryRow],
    ) -> WorkloadReport {
        let every = self.cfg.write_every;
        let batch = self.cfg.write_batch.max(1);
        let mut cursor = 0usize;
        self.drive(server, |srv, i| {
            if every == 0 || rows.is_empty() || i == 0 || i % every != 0 {
                return 0;
            }
            let take: Vec<LibraryRow> =
                (0..batch).map(|j| rows[(cursor + j) % rows.len()].clone()).collect();
            cursor += batch;
            if srv.insert_rows(take).is_ok() {
                1
            } else {
                0
            }
        })
    }

    /// The open loop itself: sleep to the next Poisson arrival, submit
    /// without waiting (admission control decides fate), drain at the
    /// end. `side` runs on the submitting thread after each arrival and
    /// returns how many write batches it applied.
    fn drive<R: Retriever + 'static>(
        &mut self,
        server: &MirrorServer<R>,
        mut side: impl FnMut(&MirrorServer<R>, usize) -> u64,
    ) -> WorkloadReport {
        let start = Instant::now();
        let mut next_at = Duration::ZERO;
        let mut pending: Vec<PendingRetrieval> = Vec::with_capacity(self.cfg.requests);
        let mut writes = 0u64;
        for i in 0..self.cfg.requests {
            next_at += self.inter_arrival();
            let req = self.next_request();
            let now = start.elapsed();
            if next_at > now {
                std::thread::sleep(next_at - now);
            }
            pending.push(server.submit(req));
            writes += side(server, i);
        }
        let submit_window = start.elapsed().as_secs_f64();
        let (mut completed, mut rejected, mut errors) = (0u64, 0u64, 0u64);
        for p in pending {
            match p.wait() {
                Ok(_) => completed += 1,
                Err(RetrievalError::Overloaded { .. }) => rejected += 1,
                Err(_) => errors += 1,
            }
        }
        let stats = server.stats();
        let slo = self.cfg.slo_ms;
        WorkloadReport {
            offered: self.cfg.requests as u64,
            completed,
            rejected,
            errors,
            writes,
            achieved_qps: if submit_window > 0.0 {
                self.cfg.requests as f64 / submit_window
            } else {
                0.0
            },
            mean_ms: stats.mean_latency_ms,
            p50_ms: stats.p50_latency_ms,
            p99_ms: stats.p99_latency_ms,
            max_ms: stats.max_latency_ms,
            slo_ms: slo,
            slo_headroom: (slo - stats.p99_latency_ms) / slo,
        }
    }
}

#[derive(Clone, Copy)]
enum Pool {
    Text,
    Visual,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::RankedResult;
    use crate::retriever::RetrievalResult;
    use std::sync::Arc;

    /// Instant, infallible backend: isolates harness accounting from
    /// retrieval behaviour.
    struct NullRetriever;

    impl Retriever for NullRetriever {
        fn retrieve(&self, _req: &RetrievalRequest) -> RetrievalResult<Vec<RankedResult>> {
            Ok(Vec::new())
        }

        fn n_docs(&self) -> usize {
            0
        }
    }

    fn pools() -> Vec<String> {
        ["sunset", "beach", "glow", "forest"].map(String::from).to_vec()
    }

    #[test]
    fn request_stream_is_deterministic_per_seed() {
        let cfg = WorkloadConfig { requests: 64, ..Default::default() };
        let mk = || {
            WorkloadGen::new(cfg.clone(), pools())
                .with_filters(vec!["/sunset/".into()])
                .with_visual_terms(vec!["vt_0".into(), "vt_1".into()])
        };
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..64 {
            assert_eq!(a.next_request(), b.next_request());
            assert_eq!(a.inter_arrival(), b.inter_arrival());
        }
        // a different seed reshuffles the stream
        let mut c = WorkloadGen::new(WorkloadConfig { seed: 8, ..cfg }, pools())
            .with_filters(vec!["/sunset/".into()])
            .with_visual_terms(vec!["vt_0".into(), "vt_1".into()]);
        let mut a = mk();
        let same = (0..64).filter(|_| a.next_request() == c.next_request()).count();
        assert!(same < 64, "seed change did not perturb the stream");
    }

    #[test]
    fn stream_mixes_all_four_classes() {
        let cfg = WorkloadConfig { requests: 256, ..Default::default() };
        let mut g = WorkloadGen::new(cfg, pools())
            .with_filters(vec!["/a/".into()])
            .with_visual_terms(vec!["vt_0".into()]);
        let (mut text, mut dual, mut filtered, mut feedback) = (0, 0, 0, 0);
        for _ in 0..256 {
            let r = g.next_request();
            match (r.filter.is_some(), r.visual_terms.is_some(), r.channel) {
                (true, _, _) => filtered += 1,
                (_, true, _) => feedback += 1,
                (_, _, crate::serve::Channel::Dual) => dual += 1,
                _ => text += 1,
            }
        }
        assert!(text > 0 && dual > 0 && filtered > 0 && feedback > 0);
    }

    #[test]
    fn open_loop_accounts_for_every_offered_request() {
        let cfg = WorkloadConfig {
            qps: 5_000.0,
            requests: 100,
            slo_ms: 1_000.0,
            mix: TrafficMix { text: 1.0, dual: 0.0, filtered: 0.0, feedback: 0.0 },
            ..Default::default()
        };
        let server = MirrorServer::start(Arc::new(NullRetriever), 2);
        let report = WorkloadGen::new(cfg, pools()).run(&server);
        assert_eq!(report.offered, 100);
        assert_eq!(report.completed + report.rejected + report.errors, 100);
        assert_eq!(report.errors, 0);
        assert!(report.achieved_qps > 0.0);
        assert!(report.slo_headroom <= 1.0);
        assert!(!report.summary().is_empty());
        server.shutdown();
    }

    #[test]
    fn overdriven_tiny_queue_sheds_and_reports() {
        // a parked single worker with a depth-1 queue cannot keep up with
        // a fast arrival clock: most offers must shed as Overloaded
        struct SlowRetriever;
        impl Retriever for SlowRetriever {
            fn retrieve(&self, _req: &RetrievalRequest) -> RetrievalResult<Vec<RankedResult>> {
                std::thread::sleep(Duration::from_millis(20));
                Ok(Vec::new())
            }
            fn n_docs(&self) -> usize {
                0
            }
        }
        let cfg = WorkloadConfig {
            qps: 10_000.0,
            requests: 50,
            mix: TrafficMix { text: 1.0, dual: 0.0, filtered: 0.0, feedback: 0.0 },
            ..Default::default()
        };
        let server = MirrorServer::start_with_queue(Arc::new(SlowRetriever), 1, 1);
        let report = WorkloadGen::new(cfg, pools()).run(&server);
        assert!(report.rejected > 0, "expected load shedding, got {report:?}");
        assert_eq!(report.completed + report.rejected + report.errors, 50);
        server.shutdown();
    }
}
