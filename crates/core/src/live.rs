//! Live ingest under serving load: epoch-based MVCC snapshots over the
//! Mirror DBMS.
//!
//! The paper's WebRobot feeds documents into the DBMS *while users query
//! it*; this module is the machinery that makes that safe:
//!
//! * **Generations** — an immutable, block-compressed [`MirrorDbms`]
//!   instance (indexes, BATs, statistics) wrapped in an [`Arc`]. Readers
//!   pin one with [`LiveMirror::pin`], which is a read-lock + refcount
//!   bump: the epoch guard. A pinned generation stays readable through
//!   any number of merges; dropping the last pin frees it (the
//!   instrumented [`GenerationStats`] counters prove reclamation).
//! * **Delta** — writers append to an uncompressed delta: per-batch
//!   [`ir::delta::DeltaSeg`]s for both evidence channels, the raw
//!   [`LibraryRow`]s, and a tombstone set for deletes. Every query
//!   evaluates base + delta together with tombstones masked in both —
//!   via [`ir::delta::eval_live_channel`], which replicates the kernel's
//!   `getbl` float arithmetic exactly, so every snapshot ranks
//!   bit-identically to a batch re-ingest of its surviving rows.
//! * **Merge** — [`LiveMirror::merge`] folds a snapshot's survivors into
//!   a fresh compressed generation LSM-style (re-cutting posting blocks,
//!   recomputing collection statistics through
//!   [`MirrorDbms::from_rows`]), replays the writes that raced the
//!   rebuild onto the new generation's delta, and swaps atomically.
//!   Writers never block on the rebuild, only on the brief replay+swap.
//! * **Durability** — with a store attached
//!   ([`LiveMirror::create_durable`] / [`LiveMirror::open_durable`]),
//!   every write is appended to a per-operation WAL record *before* it
//!   is applied, and each merge persists the new generation under its
//!   own key prefix before flipping the `live/current` pointer — so a
//!   crash at any write reopens to a consistent state: the old
//!   generation plus replayed delta ops, or the new generation, never a
//!   torn hybrid.
//! * **Scale-out** — [`LiveCluster`] routes inserts/deletes to shards by
//!   URL hash and serves scatter-gather queries with *global* union
//!   statistics, so a quiesced cluster ranks bit-identically to a
//!   single-node [`LiveMirror`] fed the same operations.

use crate::query::RankedResult;
use crate::retriever::{RetrievalError, RetrievalResult, Retriever};
use crate::serve::{Channel, RetrievalRequest};
use crate::shard::hash_shard;
use crate::{durable, LibraryRow, MirrorConfig, MirrorDbms, INTERNAL};
use cluster::VisualVocabulary;
use ir::delta::{eval_live_channel, DeltaSeg, LiveStats, LiveTerm};
use ir::text::tokenize_stemmed;
use ir::{InvertedIndex, TopKAccumulator};
use media::{grid_segments, standard_extractors, CrawledImage};
use moa::MoaError;
use monet::fxhash::{FxHashMap, FxHashSet};
use monet::{MonetError, Oid, Store};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use thesaurus::AssociationThesaurus;

/// A backend that accepts online mutation alongside the [`Retriever`]
/// query surface: single-node [`LiveMirror`] and sharded [`LiveCluster`].
pub trait MutableCorpus: Retriever {
    /// Append documents; returns the write sequence number assigned.
    fn insert_rows(&self, rows: Vec<LibraryRow>) -> RetrievalResult<u64>;
    /// Tombstone the latest live document with this URL. Returns the
    /// write sequence number, or `None` if no live document has the URL.
    fn delete(&self, url: &str) -> RetrievalResult<Option<u64>>;
}

/// Shared per-instance counters instrumenting generation lifecycle —
/// the proof obligation for epoch reclamation.
#[derive(Debug, Default)]
struct LiveCounters {
    created: AtomicU64,
    retired: AtomicU64,
    alive_bytes: AtomicU64,
}

/// A point-in-time view of generation lifecycle accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenerationStats {
    /// Number of the generation current snapshots read from.
    pub current: u64,
    /// Generations ever created (including generation 0).
    pub created: u64,
    /// Generations fully retired (dropped once unpinned).
    pub retired: u64,
    /// Generations still alive (`created - retired`): the current one
    /// plus any still pinned by readers.
    pub alive: u64,
    /// Approximate heap bytes held by alive generations.
    pub alive_bytes: u64,
}

/// An immutable index generation: a compressed [`MirrorDbms`] plus cached
/// handles to its channel indexes. Dropping the last [`Arc`] to a
/// generation decrements the instance counters — retirement is literally
/// deallocation.
struct Generation {
    db: MirrorDbms,
    number: u64,
    ann: Option<Arc<InvertedIndex>>,
    img: Option<Arc<InvertedIndex>>,
    /// Exact token totals per channel (survivor bookkeeping starts here).
    text_total: u64,
    image_total: u64,
    heap_bytes: u64,
    counters: Arc<LiveCounters>,
}

impl Generation {
    fn new(db: MirrorDbms, number: u64, counters: Arc<LiveCounters>) -> Self {
        let ann = db.store().get(&format!("{INTERNAL}__annotation"));
        let img = db.store().get(&format!("{INTERNAL}__image"));
        let channel_total = |idx: &Option<Arc<InvertedIndex>>| -> u64 {
            idx.as_ref().map_or(0, |i| (0..i.n_docs() as Oid).map(|d| i.doc_len(d) as u64).sum())
        };
        let text_total = channel_total(&ann);
        let image_total = channel_total(&img);
        let heap_bytes = ann.as_ref().map_or(0, |i| i.postings_heap_bytes() as u64)
            + img.as_ref().map_or(0, |i| i.postings_heap_bytes() as u64)
            + db.library_rows().iter().map(row_bytes).sum::<u64>();
        counters.created.fetch_add(1, Ordering::Relaxed);
        counters.alive_bytes.fetch_add(heap_bytes, Ordering::Relaxed);
        Generation { db, number, ann, img, text_total, image_total, heap_bytes, counters }
    }
}

impl Drop for Generation {
    fn drop(&mut self) {
        self.counters.retired.fetch_add(1, Ordering::Relaxed);
        self.counters.alive_bytes.fetch_sub(self.heap_bytes, Ordering::Relaxed);
    }
}

/// One insert batch of the delta: the raw rows plus an uncompressed
/// segment per evidence channel, all over global live document ids.
struct DeltaBatch {
    first_doc: Oid,
    rows: Vec<LibraryRow>,
    text: DeltaSeg,
    image: DeltaSeg,
}

/// Approximate heap bytes of one library row — the same estimate
/// generation accounting uses, so policy thresholds and
/// [`GenerationStats::alive_bytes`] speak the same unit.
fn row_bytes(r: &LibraryRow) -> u64 {
    (r.url.len() + r.annotation.as_ref().map_or(0, String::len) + r.vterms.len() + 16) as u64
}

/// Tokens of a row's annotation channel — the exact pipeline
/// `CONTREP<Text>` indexes with (`None` annotations index empty).
fn text_tokens(row: &LibraryRow) -> Vec<String> {
    row.annotation.as_deref().map(tokenize_stemmed).unwrap_or_default()
}

/// Tokens of a row's image channel (visual terms are whitespace-split,
/// never stemmed — the `CONTREP<Image>` pipeline).
fn vis_tokens(row: &LibraryRow) -> Vec<&str> {
    row.vterms.split_whitespace().collect()
}

/// An immutable MVCC snapshot: a pinned generation, the delta batches
/// appended since it was cut, tombstones, and exact union statistics.
/// Every mutation publishes a *new* snapshot (persistent data structure:
/// batches and tombstone sets are shared via [`Arc`]), so a pinned
/// snapshot never observes later writes.
struct LiveSnapshot {
    gen: Arc<Generation>,
    batches: Vec<Arc<DeltaBatch>>,
    tombstones: Arc<FxHashSet<Oid>>,
    /// Per-channel document frequencies lost to tombstones: term → number
    /// of deleted docs containing it. Union df = base + deltas − minus.
    df_minus_text: Arc<HashMap<String, u32>>,
    df_minus_image: Arc<HashMap<String, u32>>,
    n_live: usize,
    text_total: u64,
    image_total: u64,
    seq: u64,
}

#[derive(Clone, Copy)]
enum Ch {
    Text,
    Image,
}

impl LiveSnapshot {
    fn fresh(gen: Arc<Generation>, seq: u64) -> Self {
        LiveSnapshot {
            n_live: gen.db.n_docs(),
            text_total: gen.text_total,
            image_total: gen.image_total,
            gen,
            batches: Vec::new(),
            tombstones: Arc::new(FxHashSet::default()),
            df_minus_text: Arc::new(HashMap::new()),
            df_minus_image: Arc::new(HashMap::new()),
            seq,
        }
    }

    fn end_doc(&self) -> Oid {
        self.batches.last().map_or(self.gen.db.n_docs() as Oid, |b| b.text.end_doc())
    }

    fn row(&self, oid: Oid) -> Option<&LibraryRow> {
        let base = self.gen.db.library_rows();
        if (oid as usize) < base.len() {
            return base.get(oid as usize);
        }
        self.batches
            .iter()
            .find(|b| oid >= b.first_doc && (oid - b.first_doc) < b.rows.len() as Oid)
            .and_then(|b| b.rows.get((oid - b.first_doc) as usize))
    }

    /// The surviving rows in arrival order — the corpus a batch re-ingest
    /// of this snapshot would be built from.
    fn surviving_rows(&self) -> Vec<LibraryRow> {
        let mut out = Vec::with_capacity(self.n_live);
        for (i, r) in self.gen.db.library_rows().iter().enumerate() {
            if !self.tombstones.contains(&(i as Oid)) {
                out.push(r.clone());
            }
        }
        for b in &self.batches {
            for (j, r) in b.rows.iter().enumerate() {
                if !self.tombstones.contains(&(b.first_doc + j as Oid)) {
                    out.push(r.clone());
                }
            }
        }
        out
    }

    fn with_insert(&self, rows: Vec<LibraryRow>, seq: u64) -> LiveSnapshot {
        let first = self.end_doc();
        let mut text = DeltaSeg::new(first);
        let mut image = DeltaSeg::new(first);
        for r in &rows {
            text.add_doc(&text_tokens(r));
            image.add_doc(&vis_tokens(r));
        }
        let mut batches = self.batches.clone();
        let n_live = self.n_live + rows.len();
        let text_total = self.text_total + text.total_tokens();
        let image_total = self.image_total + image.total_tokens();
        batches.push(Arc::new(DeltaBatch { first_doc: first, rows, text, image }));
        LiveSnapshot {
            gen: Arc::clone(&self.gen),
            batches,
            tombstones: Arc::clone(&self.tombstones),
            df_minus_text: Arc::clone(&self.df_minus_text),
            df_minus_image: Arc::clone(&self.df_minus_image),
            n_live,
            text_total,
            image_total,
            seq,
        }
    }

    fn with_delete(&self, oid: Oid, seq: u64) -> LiveSnapshot {
        let row = self.row(oid).expect("tombstoned doc exists in the snapshot").clone();
        let tt = text_tokens(&row);
        let vt = vis_tokens(&row);
        let mut tombstones = (*self.tombstones).clone();
        tombstones.insert(oid);
        let mut dmt = (*self.df_minus_text).clone();
        for t in tt.iter().map(String::as_str).collect::<HashSet<_>>() {
            *dmt.entry(t.to_string()).or_insert(0) += 1;
        }
        let mut dmi = (*self.df_minus_image).clone();
        for t in vt.iter().copied().collect::<HashSet<_>>() {
            *dmi.entry(t.to_string()).or_insert(0) += 1;
        }
        LiveSnapshot {
            gen: Arc::clone(&self.gen),
            batches: self.batches.clone(),
            tombstones: Arc::new(tombstones),
            df_minus_text: Arc::new(dmt),
            df_minus_image: Arc::new(dmi),
            n_live: self.n_live - 1,
            text_total: self.text_total - tt.len() as u64,
            image_total: self.image_total - vt.len() as u64,
            seq,
        }
    }

    fn base_index(&self, ch: Ch) -> Option<&InvertedIndex> {
        match ch {
            Ch::Text => self.gen.ann.as_deref(),
            Ch::Image => self.gen.img.as_deref(),
        }
    }

    fn segs(&self, ch: Ch) -> Vec<&DeltaSeg> {
        self.batches
            .iter()
            .map(|b| match ch {
                Ch::Text => &b.text,
                Ch::Image => &b.image,
            })
            .collect()
    }

    /// Union document frequency: base + delta segments − tombstoned docs.
    fn df(&self, ch: Ch, term: &str) -> u32 {
        let base = self.base_index(ch).map_or(0, |i| i.df(term));
        let delta: u32 = self.segs(ch).iter().map(|s| s.df(term)).sum();
        let minus = match ch {
            Ch::Text => &self.df_minus_text,
            Ch::Image => &self.df_minus_image,
        }
        .get(term)
        .copied()
        .unwrap_or(0);
        debug_assert!(minus <= base + delta, "df underflow for {term:?}");
        (base + delta).saturating_sub(minus)
    }

    fn stats(&self, ch: Ch) -> LiveStats {
        let total = match ch {
            Ch::Text => self.text_total,
            Ch::Image => self.image_total,
        };
        LiveStats {
            n_docs: self.n_live,
            avg_dl: if self.n_live == 0 { 0.0 } else { total as f64 / self.n_live as f64 },
        }
    }
}

/// The request, resolved against a snapshot: which channels run with
/// which terms, and how their sums combine. Resolution (thesaurus
/// expansion, empty-visual fallback) happens once — at the cluster edge
/// for sharded execution — so every shard scores the same plan.
pub(crate) struct ResolvedPlan {
    text: Vec<(String, f64)>,
    visual: Vec<(String, f64)>,
    /// `true` = combine `text_sum·text_weight + visual_sum·visual_weight`
    /// per document; `false` = single-channel (whichever side is
    /// non-empty).
    dual: bool,
    text_weight: f64,
    visual_weight: f64,
    filter: Option<String>,
    k: usize,
}

/// A pinned MVCC snapshot: the epoch guard handed to readers. Queries on
/// it see exactly the state at pin time, bit-identical to a batch
/// re-ingest of [`LiveReader::surviving_rows`], no matter what writers
/// or merges do concurrently.
pub struct LiveReader {
    snap: Arc<LiveSnapshot>,
}

impl LiveReader {
    /// Sequence number of the last write visible in this snapshot.
    pub fn seq(&self) -> u64 {
        self.snap.seq
    }

    /// Number of the pinned (compressed) generation.
    pub fn generation(&self) -> u64 {
        self.snap.gen.number
    }

    /// Live (non-tombstoned) documents visible.
    pub fn n_live(&self) -> usize {
        self.snap.n_live
    }

    /// The surviving rows in arrival order — the corpus a quiesced batch
    /// re-ingest of this snapshot would load.
    pub fn surviving_rows(&self) -> Vec<LibraryRow> {
        self.snap.surviving_rows()
    }

    /// Local oids alive in this snapshot, ascending — exactly the
    /// arrival-order compaction a merge of this snapshot applies.
    pub(crate) fn surviving_local_ids(&self) -> Vec<Oid> {
        let mut out = Vec::with_capacity(self.snap.n_live);
        for i in 0..self.snap.gen.db.n_docs() as Oid {
            if !self.snap.tombstones.contains(&i) {
                out.push(i);
            }
        }
        for b in &self.snap.batches {
            for j in 0..b.rows.len() as Oid {
                let oid = b.first_doc + j;
                if !self.snap.tombstones.contains(&oid) {
                    out.push(oid);
                }
            }
        }
        out
    }

    pub(crate) fn df_text(&self, term: &str) -> u32 {
        self.snap.df(Ch::Text, term)
    }

    pub(crate) fn df_image(&self, term: &str) -> u32 {
        self.snap.df(Ch::Image, term)
    }

    /// `(n_live, text_total_tokens, image_total_tokens)` for global-stat
    /// gathering across shards.
    pub(crate) fn totals(&self) -> (usize, u64, u64) {
        (self.snap.n_live, self.snap.text_total, self.snap.image_total)
    }

    /// Resolve a request against this snapshot's thesaurus and config —
    /// the live mirror of `MirrorDbms::compile_request`.
    pub(crate) fn resolve(&self, req: &RetrievalRequest) -> RetrievalResult<ResolvedPlan> {
        let db = &self.snap.gen.db;
        let plan = match req.channel {
            Channel::Text => ResolvedPlan {
                text: req.terms.clone(),
                visual: Vec::new(),
                dual: false,
                text_weight: 1.0,
                visual_weight: 0.0,
                filter: req.filter.clone(),
                k: req.k,
            },
            Channel::Visual => ResolvedPlan {
                text: Vec::new(),
                visual: req.terms.clone(),
                dual: false,
                text_weight: 0.0,
                visual_weight: 1.0,
                filter: req.filter.clone(),
                k: req.k,
            },
            Channel::Dual => {
                let visual = match &req.visual_terms {
                    Some(v) => v.clone(),
                    None => {
                        let th = db.thesaurus().ok_or_else(|| {
                            RetrievalError::Compile(MoaError::Unknown(
                                "thesaurus (ingest first)".into(),
                            ))
                        })?;
                        th.expand(
                            &req.terms,
                            db.config().expand_per_term,
                            db.config().expand_max_terms,
                        )
                    }
                };
                if visual.is_empty() {
                    // no visual evidence: single-channel text ranking
                    ResolvedPlan {
                        text: req.terms.clone(),
                        visual: Vec::new(),
                        dual: false,
                        text_weight: 1.0,
                        visual_weight: 0.0,
                        filter: req.filter.clone(),
                        k: req.k,
                    }
                } else {
                    ResolvedPlan {
                        text: req.terms.clone(),
                        visual,
                        dual: true,
                        text_weight: 1.0 - req.mix,
                        visual_weight: req.mix,
                        filter: req.filter.clone(),
                        k: req.k,
                    }
                }
            }
        };
        Ok(plan)
    }

    /// Resolve one side of the plan into live terms using this snapshot's
    /// own (single-node) union dfs.
    fn local_terms(&self, terms: &[(String, f64)], ch: Ch) -> Vec<LiveTerm> {
        terms
            .iter()
            .map(|(t, w)| LiveTerm { term: t.clone(), weight: *w, df: self.snap.df(ch, t) })
            .collect()
    }

    /// Evaluate a resolved plan with explicit (possibly cluster-global)
    /// term dfs and statistics. Returns ranked hits: positive scores
    /// only, sorted by score descending with ascending-oid tie-break,
    /// truncated to the plan's k — exactly the `ranked()` post-pass.
    pub(crate) fn eval_resolved(
        &self,
        plan: &ResolvedPlan,
        text_q: &[LiveTerm],
        vis_q: &[LiveTerm],
        text_stats: LiveStats,
        vis_stats: LiveStats,
    ) -> Vec<RankedResult> {
        let snap = &self.snap;
        let params = snap.gen.db.store().params();
        let domain: Option<FxHashSet<Oid>> = plan.filter.as_deref().map(|pattern| {
            let mut dom = FxHashSet::default();
            for (i, r) in snap.gen.db.library_rows().iter().enumerate() {
                if r.url.contains(pattern) {
                    dom.insert(i as Oid);
                }
            }
            for b in &snap.batches {
                for (j, r) in b.rows.iter().enumerate() {
                    if r.url.contains(pattern) {
                        dom.insert(b.first_doc + j as Oid);
                    }
                }
            }
            dom
        });
        let eval_channel = |q: &[LiveTerm], ch: Ch, stats: LiveStats| -> FxHashMap<Oid, f64> {
            if q.is_empty() {
                return FxHashMap::default();
            }
            eval_live_channel(
                snap.base_index(ch),
                &snap.segs(ch),
                params,
                q,
                stats,
                &snap.tombstones,
                domain.as_ref(),
            )
        };
        let scores: FxHashMap<Oid, f64> = if plan.dual {
            let t_scores = eval_channel(text_q, Ch::Text, text_stats);
            let v_scores = eval_channel(vis_q, Ch::Image, vis_stats);
            // the engine scores every candidate as
            // (text_sum · tw) + (vis_sum · vw), a missing channel
            // contributing 0.0 — replicate the exact expression
            let mut out = FxHashMap::default();
            for (&doc, &t) in &t_scores {
                let v = v_scores.get(&doc).copied().unwrap_or(0.0);
                out.insert(doc, t * plan.text_weight + v * plan.visual_weight);
            }
            for (&doc, &v) in &v_scores {
                if !t_scores.contains_key(&doc) {
                    out.insert(doc, 0.0 * plan.text_weight + v * plan.visual_weight);
                }
            }
            out
        } else if !plan.text.is_empty() {
            eval_channel(text_q, Ch::Text, text_stats)
        } else {
            eval_channel(vis_q, Ch::Image, vis_stats)
        };
        let mut ranked: Vec<RankedResult> = scores
            .into_iter()
            .filter(|(_, s)| *s > 0.0)
            .map(|(oid, score)| RankedResult {
                oid,
                url: snap.row(oid).expect("scored doc exists").url.clone(),
                score,
            })
            .collect();
        ranked.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.oid.cmp(&b.oid)));
        ranked.truncate(plan.k);
        ranked
    }

    /// Execute a request against this snapshot (single-node statistics).
    /// With an empty delta and no tombstones the request is delegated to
    /// the pinned generation's engine — the fused `topk_bl` fast path.
    pub fn retrieve(&self, req: &RetrievalRequest) -> RetrievalResult<Vec<RankedResult>> {
        req.validate()?;
        if self.snap.batches.is_empty() && self.snap.tombstones.is_empty() {
            return self.snap.gen.db.retrieve(req);
        }
        let plan = self.resolve(req)?;
        let text_q = self.local_terms(&plan.text, Ch::Text);
        let vis_q = self.local_terms(&plan.visual, Ch::Image);
        Ok(self.eval_resolved(
            &plan,
            &text_q,
            &vis_q,
            self.snap.stats(Ch::Text),
            self.snap.stats(Ch::Image),
        ))
    }
}

/// One logged write — the unit of the delta WAL and of merge replay.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum WriteOp {
    /// Append these rows as new documents.
    Insert(Vec<LibraryRow>),
    /// Tombstone the latest live document with this URL.
    Delete(String),
}

struct WriterState {
    /// URL → live oids of every document with that URL, in arrival order
    /// (latest last). `delete` pops the latest; duplicate-URL inserts
    /// stack, so deleting one re-targets the next-latest — the same
    /// answer before and after any merge. Updates are delete + insert.
    url_to_oids: HashMap<String, Vec<Oid>>,
    /// Writes since the state the current generation was folded from —
    /// what a racing merge replays onto the new generation.
    op_log: Vec<(u64, WriteOp)>,
}

/// Pop the latest live oid for `url` from a URL stack map, dropping the
/// entry when its stack empties.
fn pop_url(map: &mut HashMap<String, Vec<Oid>>, url: &str) -> Option<Oid> {
    let stack = map.get_mut(url)?;
    let oid = stack.pop();
    if stack.is_empty() {
        map.remove(url);
    }
    oid
}

/// Thresholds that trigger an automatic LSM merge — the knobs a serving
/// deployment turns to trade write amplification (frequent merges) for
/// query overhead (a deep uncompressed delta scanned on every request).
/// A merge fires as soon as *any* threshold is met.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergePolicy {
    /// Merge once the delta holds at least this many inserted rows.
    pub max_delta_rows: usize,
    /// Merge once the delta's rows span at least this many (estimated)
    /// heap bytes — the same per-row estimate
    /// [`GenerationStats::alive_bytes`] accounts with.
    pub max_delta_bytes: u64,
    /// Merge once at least this many documents are tombstoned (deletes
    /// are pure query-time overhead until a merge compacts them away).
    pub max_tombstones: usize,
}

impl Default for MergePolicy {
    fn default() -> Self {
        MergePolicy {
            max_delta_rows: 10_000,
            max_delta_bytes: 8 * 1024 * 1024,
            max_tombstones: 1_000,
        }
    }
}

/// A mutable corpus with epoch-based MVCC snapshots over an immutable
/// [`MirrorDbms`] generation. See the [module docs](self) for the design.
pub struct LiveMirror {
    state: RwLock<Arc<LiveSnapshot>>,
    writer: Mutex<WriterState>,
    /// Serialises merges (the rebuild itself runs without the writer
    /// lock, so ingest streams during a merge).
    merge_lock: Mutex<()>,
    /// Attached durable store, if any. The lock serialises WAL-record
    /// appends against a merge persisting a whole generation, so their
    /// transactions never interleave.
    store: Mutex<Option<Arc<Store>>>,
    counters: Arc<LiveCounters>,
    config: MirrorConfig,
}

impl LiveMirror {
    /// Wrap an ingested (or cold-opened) instance as generation 0 of a
    /// live corpus.
    pub fn new(db: MirrorDbms) -> Self {
        Self::from_generation(db, 0, 0)
    }

    fn from_generation(db: MirrorDbms, gen_no: u64, base_seq: u64) -> Self {
        let config = db.config().clone();
        let counters = Arc::new(LiveCounters::default());
        let gen = Arc::new(Generation::new(db, gen_no, Arc::clone(&counters)));
        let mut url_to_oids: HashMap<String, Vec<Oid>> = HashMap::new();
        for (i, r) in gen.db.library_rows().iter().enumerate() {
            url_to_oids.entry(r.url.clone()).or_default().push(i as Oid);
        }
        LiveMirror {
            state: RwLock::new(Arc::new(LiveSnapshot::fresh(gen, base_seq))),
            writer: Mutex::new(WriterState { url_to_oids, op_log: Vec::new() }),
            merge_lock: Mutex::new(()),
            store: Mutex::new(None),
            counters,
            config,
        }
    }

    /// Initialise a fresh durable live corpus: persists `db` as
    /// generation 0 and points `live/current` at it. Fails if the store
    /// already holds a live instance (open that with
    /// [`LiveMirror::open_durable`] instead).
    pub fn create_durable(db: MirrorDbms, store: Arc<Store>) -> RetrievalResult<Self> {
        if durable::live_pointer(&store)?.is_some() {
            return Err(RetrievalError::Storage(MonetError::Corrupt {
                what: "live/current".into(),
                detail: "store already holds a live instance — use open_durable".into(),
            }));
        }
        durable::save_instance(&db, &store, &durable::live_gen_prefix(0))?;
        durable::live_set_pointer(&store, 0, 0)?;
        let live = Self::from_generation(db, 0, 0);
        *live.store.lock() = Some(store);
        Ok(live)
    }

    /// Reopen a durable live corpus: kernel recovery has already trimmed
    /// any torn WAL tail; this opens the generation `live/current` points
    /// at and replays the committed delta ops past its base sequence.
    /// A crash mid-merge reopens the *old* generation (whose ops are all
    /// still present); a crash mid-append reopens the committed prefix.
    pub fn open_durable(store: Arc<Store>) -> RetrievalResult<Self> {
        let Some((gen_no, base_seq)) = durable::live_pointer(&store)? else {
            return Err(RetrievalError::IncompleteState {
                detail: "no live/current pointer — the live store was never initialised".into(),
            });
        };
        let db = durable::open_instance(&store, &durable::live_gen_prefix(gen_no))?;
        let live = Self::from_generation(db, gen_no, base_seq);
        let ops = durable::live_ops_after(&store, base_seq)?;
        {
            let mut w = live.writer.lock();
            for (seq, op) in ops {
                match op {
                    WriteOp::Insert(rows) => {
                        let got = live.insert_locked(&mut w, rows, false)?;
                        debug_assert_eq!(got, seq, "replayed insert out of sequence");
                    }
                    WriteOp::Delete(url) => {
                        let got = live.delete_locked(&mut w, &url, false)?;
                        debug_assert_eq!(got, Some(seq), "replayed delete out of sequence");
                    }
                }
            }
        }
        *live.store.lock() = Some(store);
        Ok(live)
    }

    /// Pin the current snapshot — the epoch guard. O(1): a read lock and
    /// a refcount bump.
    pub fn pin(&self) -> LiveReader {
        LiveReader { snap: Arc::clone(&self.state.read()) }
    }

    /// Generation lifecycle counters (created / retired / alive bytes).
    pub fn generation_stats(&self) -> GenerationStats {
        let created = self.counters.created.load(Ordering::Relaxed);
        let retired = self.counters.retired.load(Ordering::Relaxed);
        GenerationStats {
            current: self.state.read().gen.number,
            created,
            retired,
            alive: created - retired,
            alive_bytes: self.counters.alive_bytes.load(Ordering::Relaxed),
        }
    }

    fn insert_locked(
        &self,
        w: &mut WriterState,
        rows: Vec<LibraryRow>,
        durable: bool,
    ) -> RetrievalResult<u64> {
        let snap = Arc::clone(&self.state.read());
        let seq = snap.seq + 1;
        if durable {
            if let Some(store) = self.store.lock().as_ref() {
                durable::live_append_op(store, seq, &WriteOp::Insert(rows.clone()))?;
            }
        }
        let first = snap.end_doc();
        for (i, r) in rows.iter().enumerate() {
            w.url_to_oids.entry(r.url.clone()).or_default().push(first + i as Oid);
        }
        let next = snap.with_insert(rows.clone(), seq);
        w.op_log.push((seq, WriteOp::Insert(rows)));
        *self.state.write() = Arc::new(next);
        Ok(seq)
    }

    fn delete_locked(
        &self,
        w: &mut WriterState,
        url: &str,
        durable: bool,
    ) -> RetrievalResult<Option<u64>> {
        let Some(&oid) = w.url_to_oids.get(url).and_then(|stack| stack.last()) else {
            return Ok(None);
        };
        let snap = Arc::clone(&self.state.read());
        let seq = snap.seq + 1;
        if durable {
            if let Some(store) = self.store.lock().as_ref() {
                durable::live_append_op(store, seq, &WriteOp::Delete(url.to_string()))?;
            }
        }
        pop_url(&mut w.url_to_oids, url);
        let next = snap.with_delete(oid, seq);
        w.op_log.push((seq, WriteOp::Delete(url.to_string())));
        *self.state.write() = Arc::new(next);
        Ok(Some(seq))
    }

    /// Append documents as one atomic batch; readers pinning after this
    /// returns see all of them. Returns the assigned write sequence.
    /// With a durable store attached the op is WAL-committed *before* it
    /// becomes visible — an acknowledged write survives any crash.
    pub fn insert_rows(&self, rows: Vec<LibraryRow>) -> RetrievalResult<u64> {
        let mut w = self.writer.lock();
        self.insert_locked(&mut w, rows, true)
    }

    /// Extract, tokenise and append crawled images through the pinned
    /// generation's visual vocabulary (the online WebRobot path). The
    /// extraction pipeline is the ingest pipeline, so a merged corpus is
    /// bit-identical to having batch-ingested these images with the same
    /// vocabulary.
    pub fn insert_images(&self, images: &[CrawledImage]) -> RetrievalResult<u64> {
        let vocab = {
            let snap = self.pin();
            snap.snap.gen.db.vocabulary().cloned().ok_or_else(|| {
                RetrievalError::Compile(MoaError::Unknown(
                    "visual vocabulary (ingest first)".into(),
                ))
            })?
        };
        let extractors = standard_extractors();
        let rows: Vec<LibraryRow> = images
            .iter()
            .map(|c| {
                let mut vterms: Vec<String> = Vec::new();
                for seg in grid_segments(&c.image, self.config.grid) {
                    for ex in &extractors {
                        let v = ex.extract(&seg.image).into_values();
                        if let Some(term) = vocab.term_of(ex.space(), &v) {
                            vterms.push(term);
                        }
                    }
                }
                LibraryRow {
                    url: c.url.clone(),
                    annotation: c.annotation.clone(),
                    vterms: vterms.join(" "),
                    theme: c.theme,
                }
            })
            .collect();
        self.insert_rows(rows)
    }

    /// Tombstone the latest live document with this URL; returns its
    /// write sequence, or `None` if no live document matches.
    pub fn delete(&self, url: &str) -> RetrievalResult<Option<u64>> {
        let mut w = self.writer.lock();
        self.delete_locked(&mut w, url, true)
    }

    /// Fold the delta into a fresh compressed generation (LSM merge):
    /// pin a snapshot, rebuild a [`MirrorDbms`] from its survivors
    /// (posting blocks re-cut, statistics recomputed) *without blocking
    /// writers*, then briefly take the writer lock to replay the ops that
    /// raced the rebuild and swap the new generation in. Old generations
    /// retire as soon as the last reader unpins them. With a durable
    /// store the new generation is persisted under its own prefix and
    /// `live/current` flips only after it is complete — a crash anywhere
    /// leaves the old generation (plus its WAL ops) authoritative.
    pub fn merge(&self) -> RetrievalResult<()> {
        let _serialise = self.merge_lock.lock();
        let snap = Arc::clone(&self.state.read());
        let survivors = snap.surviving_rows();
        let vocab = snap.gen.db.vocabulary().cloned();
        let thes = snap.gen.db.thesaurus().cloned();
        let new_db = MirrorDbms::from_rows(self.config.clone(), survivors, vocab, thes)
            .map_err(RetrievalError::from)?;
        let new_no = snap.gen.number + 1;
        if let Some(store) = self.store.lock().as_ref() {
            durable::save_instance(&new_db, store, &durable::live_gen_prefix(new_no))?;
        }
        let new_gen = Arc::new(Generation::new(new_db, new_no, Arc::clone(&self.counters)));

        let mut w = self.writer.lock();
        let cur = Arc::clone(&self.state.read());
        let mut next = LiveSnapshot::fresh(Arc::clone(&new_gen), snap.seq);
        let mut url_map: HashMap<String, Vec<Oid>> = HashMap::new();
        for (i, r) in new_gen.db.library_rows().iter().enumerate() {
            url_map.entry(r.url.clone()).or_default().push(i as Oid);
        }
        let mut kept = Vec::new();
        for (seq, op) in &w.op_log {
            let seq = *seq;
            if seq <= snap.seq {
                continue; // folded into the new generation
            }
            match op {
                WriteOp::Insert(rows) => {
                    let first = next.end_doc();
                    for (j, r) in rows.iter().enumerate() {
                        url_map.entry(r.url.clone()).or_default().push(first + j as Oid);
                    }
                    next = next.with_insert(rows.clone(), seq);
                }
                WriteOp::Delete(url) => {
                    if let Some(oid) = pop_url(&mut url_map, url) {
                        next = next.with_delete(oid, seq);
                    }
                }
            }
            kept.push((seq, op.clone()));
        }
        debug_assert_eq!(next.seq, cur.seq, "merge replay must land on the current sequence");
        // the pointer flip is the last fallible step: only after it
        // succeeds do we commit the remapped writer state and the new
        // snapshot together — an Err return leaves writer + state
        // untouched and still mutually consistent on the old generation
        if let Some(store) = self.store.lock().as_ref() {
            durable::live_set_pointer(store, new_no, snap.seq)?;
        }
        w.op_log = kept;
        w.url_to_oids = url_map;
        *self.state.write() = Arc::new(next);
        Ok(())
    }
}

impl LiveMirror {
    /// Current delta pressure: `(inserted_rows, estimated_bytes,
    /// tombstones)` of the live snapshot — what [`maybe_merge`]
    /// judges a [`MergePolicy`] against.
    ///
    /// [`maybe_merge`]: LiveMirror::maybe_merge
    pub fn delta_pressure(&self) -> (usize, u64, usize) {
        let snap = Arc::clone(&self.state.read());
        let rows: usize = snap.batches.iter().map(|b| b.rows.len()).sum();
        let bytes: u64 = snap.batches.iter().flat_map(|b| b.rows.iter()).map(row_bytes).sum();
        (rows, bytes, snap.tombstones.len())
    }

    /// Merge if (and only if) the delta has outgrown `policy` — the
    /// auto-trigger a serving loop calls after its writes instead of
    /// scheduling merges by hand. Returns whether a merge ran. Rankings
    /// are unaffected either way: a merged generation is bit-identical
    /// to the delta-evaluated snapshot it folded (the [`merge`]
    /// contract).
    ///
    /// [`merge`]: LiveMirror::merge
    pub fn maybe_merge(&self, policy: &MergePolicy) -> RetrievalResult<bool> {
        let (rows, bytes, tombstones) = self.delta_pressure();
        if rows == 0 && tombstones == 0 {
            return Ok(false); // nothing to fold
        }
        if rows >= policy.max_delta_rows
            || bytes >= policy.max_delta_bytes
            || tombstones >= policy.max_tombstones
        {
            self.merge()?;
            return Ok(true);
        }
        Ok(false)
    }
}

impl Retriever for LiveMirror {
    fn retrieve(&self, req: &RetrievalRequest) -> RetrievalResult<Vec<RankedResult>> {
        self.pin().retrieve(req)
    }

    fn n_docs(&self) -> usize {
        self.pin().n_live()
    }
}

impl MutableCorpus for LiveMirror {
    fn insert_rows(&self, rows: Vec<LibraryRow>) -> RetrievalResult<u64> {
        LiveMirror::insert_rows(self, rows)
    }

    fn delete(&self, url: &str) -> RetrievalResult<Option<u64>> {
        LiveMirror::delete(self, url)
    }
}

struct ClusterWriteState {
    /// Per shard, the global arrival id of each local document.
    local_to_global: Vec<Vec<Oid>>,
    next_global: Oid,
    writes: u64,
}

/// A sharded live corpus: per-shard [`LiveMirror`]s behind URL-hash
/// routing, queried scatter-gather with *global* union statistics and
/// document frequencies, so a quiesced cluster ranks bit-identically to
/// a single [`LiveMirror`] fed the same operations — for any shard
/// count. Under concurrent writes each query sees a consistent snapshot
/// *per shard* (cross-shard skew of in-flight writes is possible, as in
/// any scatter-gather system without a global commit point).
pub struct LiveCluster {
    shards: Vec<Arc<LiveMirror>>,
    inner: Mutex<ClusterWriteState>,
}

impl LiveCluster {
    /// Stand up an empty live cluster whose shards share a vocabulary
    /// and thesaurus (built by a previous batch ingest — the online
    /// pipeline quantises against a fixed vocabulary, like the paper's
    /// incremental WebRobot feeding a trained clustering).
    pub fn new(
        shards: usize,
        config: MirrorConfig,
        vocab: Option<VisualVocabulary>,
        thesaurus: Option<AssociationThesaurus>,
    ) -> RetrievalResult<Self> {
        assert!(shards >= 1, "a cluster needs at least one shard");
        let mut nodes = Vec::with_capacity(shards);
        for _ in 0..shards {
            let db =
                MirrorDbms::from_rows(config.clone(), Vec::new(), vocab.clone(), thesaurus.clone())
                    .map_err(RetrievalError::from)?;
            nodes.push(Arc::new(LiveMirror::new(db)));
        }
        Ok(LiveCluster {
            shards: nodes,
            inner: Mutex::new(ClusterWriteState {
                local_to_global: vec![Vec::new(); shards],
                next_global: 0,
                writes: 0,
            }),
        })
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Direct access to a shard (inspection and tests). Do not *write*
    /// through this handle — cluster routing only tracks writes that go
    /// through the cluster's own [`MutableCorpus`] surface.
    pub fn shard(&self, i: usize) -> &Arc<LiveMirror> {
        &self.shards[i]
    }

    /// Merge every shard's delta into a fresh generation. Holds the
    /// routing lock, so cluster writes quiesce while each shard folds and
    /// the routing table is compacted to the surviving local ids.
    pub fn merge_all(&self) -> RetrievalResult<()> {
        let mut inner = self.inner.lock();
        for (s, shard) in self.shards.iter().enumerate() {
            let live = shard.pin().surviving_local_ids();
            shard.merge()?;
            let old = std::mem::take(&mut inner.local_to_global[s]);
            inner.local_to_global[s] = live.iter().map(|&l| old[l as usize]).collect();
        }
        Ok(())
    }
}

impl Retriever for LiveCluster {
    fn retrieve(&self, req: &RetrievalRequest) -> RetrievalResult<Vec<RankedResult>> {
        req.validate()?;
        // pin every shard and read the routing table under one critical
        // section: writes hold this lock across their shard appends and
        // merge_all holds it while compacting local_to_global, so the
        // pinned snapshots and the routing rows are a consistent cut —
        // every local oid a pin can surface has a routing entry in the
        // same (pre- or post-merge) oid space
        let (pins, routing) = {
            let inner = self.inner.lock();
            let pins: Vec<LiveReader> = self.shards.iter().map(|s| s.pin()).collect();
            let routing = inner.local_to_global.clone();
            (pins, routing)
        };
        if pins.len() == 1 {
            // one shard: local ids are global ids, local stats are global
            return pins[0].retrieve(req);
        }
        let plan = pins[0].resolve(req)?;
        let (n_live, text_total, image_total) =
            pins.iter().fold((0usize, 0u64, 0u64), |(n, t, v), p| {
                let (pn, pt, pv) = p.totals();
                (n + pn, t + pt, v + pv)
            });
        let avg = |total: u64| if n_live == 0 { 0.0 } else { total as f64 / n_live as f64 };
        let text_stats = LiveStats { n_docs: n_live, avg_dl: avg(text_total) };
        let vis_stats = LiveStats { n_docs: n_live, avg_dl: avg(image_total) };
        let text_q: Vec<LiveTerm> = plan
            .text
            .iter()
            .map(|(t, w)| LiveTerm {
                term: t.clone(),
                weight: *w,
                df: pins.iter().map(|p| p.df_text(t)).sum(),
            })
            .collect();
        let vis_q: Vec<LiveTerm> = plan
            .visual
            .iter()
            .map(|(t, w)| LiveTerm {
                term: t.clone(),
                weight: *w,
                df: pins.iter().map(|p| p.df_image(t)).sum(),
            })
            .collect();
        let shard_hits: Vec<Vec<RankedResult>> = std::thread::scope(|scope| {
            let handles: Vec<_> = pins
                .iter()
                .map(|p| {
                    let (plan, text_q, vis_q) = (&plan, &text_q, &vis_q);
                    scope.spawn(move || p.eval_resolved(plan, text_q, vis_q, text_stats, vis_stats))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard evaluation panicked")).collect()
        });
        let mut acc = TopKAccumulator::new(plan.k);
        let mut urls: FxHashMap<Oid, String> = FxHashMap::default();
        for (s, hits) in shard_hits.iter().enumerate() {
            for h in hits {
                let global = routing[s][h.oid as usize];
                urls.insert(global, h.url.clone());
                acc.push(global, h.score);
            }
        }
        Ok(acc
            .into_ranked()
            .into_iter()
            .map(|(oid, score)| RankedResult {
                oid,
                url: urls.get(&oid).expect("merged hit has a url").clone(),
                score,
            })
            .collect())
    }

    fn n_docs(&self) -> usize {
        self.shards.iter().map(|s| s.pin().n_live()).sum()
    }
}

impl MutableCorpus for LiveCluster {
    fn insert_rows(&self, rows: Vec<LibraryRow>) -> RetrievalResult<u64> {
        let n = self.shards.len();
        let mut inner = self.inner.lock();
        let mut per_shard: Vec<Vec<LibraryRow>> = vec![Vec::new(); n];
        let mut added: Vec<Vec<Oid>> = vec![Vec::new(); n];
        let mut g = inner.next_global;
        for r in rows {
            let s = hash_shard(&r.url, n);
            added[s].push(g);
            g += 1;
            per_shard[s].push(r);
        }
        // global ids are assigned up front (gaps from a failed batch are
        // harmless — ids only need to be unique and monotonic), but each
        // shard's routing entries commit only after its append succeeds,
        // so a failed shard insert never leaves phantom routing rows.
        // The routing lock is held across the shard appends so concurrent
        // cluster writes cannot interleave shard-local arrival order.
        inner.next_global = g;
        for (s, batch) in per_shard.into_iter().enumerate() {
            if !batch.is_empty() {
                self.shards[s].insert_rows(batch)?;
                inner.local_to_global[s].append(&mut added[s]);
            }
        }
        inner.writes += 1;
        Ok(inner.writes)
    }

    fn delete(&self, url: &str) -> RetrievalResult<Option<u64>> {
        let mut inner = self.inner.lock();
        let s = hash_shard(url, self.shards.len());
        match self.shards[s].delete(url)? {
            Some(_) => {
                inner.writes += 1;
                Ok(Some(inner.writes))
            }
            None => Ok(None),
        }
    }
}
