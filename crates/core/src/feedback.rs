//! Relevance feedback — "the user may provide relevance feedback for
//! these images; this relevance feedback is used to improve the current
//! query".
//!
//! The feedback step is Rocchio-flavoured but lives inside the inference
//! network: terms that are frequent in the judged-relevant documents and
//! rare in the collection (high idf) are added to both channels of the
//! query with a dampened weight.

use crate::query::{weighted_terms, RankedResult};
use crate::retriever::{RetrievalResult, Retriever};
use crate::MirrorDbms;
use ir::InvertedIndex;
use moa::MoaError;
use monet::Oid;
use std::collections::HashMap;

/// A dual-channel query state carried across feedback iterations.
#[derive(Debug, Clone, Default)]
pub struct FeedbackQuery {
    /// Weighted text terms.
    pub text: Vec<(String, f64)>,
    /// Weighted visual terms.
    pub visual: Vec<(String, f64)>,
}

impl FeedbackQuery {
    /// Start from a free-text query.
    pub fn from_text(text: &str) -> Self {
        FeedbackQuery { text: weighted_terms(text), visual: Vec::new() }
    }
}

/// Parameters of the feedback step.
#[derive(Debug, Clone, Copy)]
pub struct FeedbackParams {
    /// Number of expansion terms per channel and iteration.
    pub expand: usize,
    /// Weight of expansion terms relative to the original query.
    pub beta: f64,
}

impl Default for FeedbackParams {
    fn default() -> Self {
        FeedbackParams { expand: 5, beta: 0.5 }
    }
}

impl MirrorDbms {
    /// Execute one feedback-improved retrieval round: expand `query` from
    /// the relevant documents, run the dual-channel query, and return both
    /// the results and the improved query for the next round.
    pub fn query_with_feedback(
        &self,
        query: &FeedbackQuery,
        relevant: &[Oid],
        params: FeedbackParams,
        visual_mix: f64,
        k: usize,
    ) -> RetrievalResult<(Vec<RankedResult>, FeedbackQuery)> {
        let improved = self.expand_query(query, relevant, params)?;
        let results = self.run_feedback_query(&improved, visual_mix, k)?;
        Ok((results, improved))
    }

    /// Expand a dual-channel query from judged-relevant documents.
    pub fn expand_query(
        &self,
        query: &FeedbackQuery,
        relevant: &[Oid],
        params: FeedbackParams,
    ) -> RetrievalResult<FeedbackQuery> {
        let ann = self
            .store()
            .get("ImageLibraryInternal__annotation")
            .ok_or_else(|| MoaError::Unknown("annotation index (ingest first)".into()))?;
        let vis = self
            .store()
            .get("ImageLibraryInternal__image")
            .ok_or_else(|| MoaError::Unknown("image index (ingest first)".into()))?;
        let mut out = query.clone();
        let text_expansion = top_terms(&ann, relevant, params.expand, &out.text);
        merge_terms(&mut out.text, text_expansion, params.beta);
        let visual_expansion = top_terms(&vis, relevant, params.expand, &out.visual);
        merge_terms(&mut out.visual, visual_expansion, params.beta);
        Ok(out)
    }
}

/// Terms of the relevant documents ranked by `Σ tf · idf`, excluding ones
/// already in the query.
fn top_terms(
    index: &InvertedIndex,
    relevant: &[Oid],
    n: usize,
    existing: &[(String, f64)],
) -> Vec<(String, f64)> {
    let have: std::collections::HashSet<&str> = existing.iter().map(|(t, _)| t.as_str()).collect();
    let stats = index.stats();
    let mut scores: HashMap<String, f64> = HashMap::new();
    for (tid, term) in index.dict().iter() {
        if have.contains(term) {
            continue;
        }
        let Some(posts) = index.postings_by_id(tid) else { continue };
        let df = posts.len() as f64;
        if df == 0.0 {
            continue;
        }
        let idf = ((stats.n_docs as f64 + 0.5) / df).ln();
        let mut tf_sum = 0u32;
        for &doc in relevant {
            tf_sum += posts.tf_of(doc);
        }
        if tf_sum > 0 {
            scores.insert(term.to_string(), tf_sum as f64 * idf);
        }
    }
    let mut ranked: Vec<(String, f64)> = scores.into_iter().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(n);
    // normalise expansion weights to [0, 1]
    if let Some(max) = ranked.first().map(|(_, s)| *s) {
        if max > 0.0 {
            for (_, s) in &mut ranked {
                *s /= max;
            }
        }
    }
    ranked
}

fn merge_terms(into: &mut Vec<(String, f64)>, expansion: Vec<(String, f64)>, beta: f64) {
    for (t, w) in expansion {
        match into.iter_mut().find(|(e, _)| *e == t) {
            Some((_, ew)) => *ew += beta * w,
            None => into.push((t, beta * w)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use media::{RobotConfig, WebRobot};

    fn db() -> &'static MirrorDbms {
        static DB: std::sync::OnceLock<MirrorDbms> = std::sync::OnceLock::new();
        DB.get_or_init(|| {
            let mut db = MirrorDbms::with_defaults();
            let corpus = WebRobot::new(RobotConfig {
                n_images: 36,
                image_size: 24,
                unannotated_fraction: 0.25,
                seed: 19,
            })
            .crawl();
            db.ingest(&corpus).unwrap();
            db
        })
    }

    #[test]
    fn expansion_adds_terms_from_relevant_docs() {
        let db = db();
        let q = FeedbackQuery::from_text("sunset");
        // pick annotated documents of the best-populated theme as relevant
        let theme = {
            let mut counts = std::collections::HashMap::new();
            for d in db.docs().iter().filter(|d| d.annotated) {
                *counts.entry(d.theme).or_insert(0usize) += 1;
            }
            *counts.iter().max_by_key(|(_, c)| **c).unwrap().0
        };
        let relevant: Vec<_> = db
            .docs()
            .iter()
            .enumerate()
            .filter(|(_, d)| d.theme == theme && d.annotated)
            .map(|(i, _)| i as u32)
            .take(4)
            .collect();
        assert!(!relevant.is_empty());
        let improved = db.expand_query(&q, &relevant, FeedbackParams::default()).unwrap();
        assert!(improved.text.len() > q.text.len());
        assert!(!improved.visual.is_empty(), "visual channel should gain terms");
        // original term keeps full weight; expansions are dampened
        let orig = improved.text.iter().find(|(t, _)| t == "sunset").unwrap();
        assert_eq!(orig.1, 1.0);
        assert!(improved.text.iter().all(|(_, w)| *w <= 1.0 + 1e-9));
    }

    #[test]
    fn feedback_improves_precision() {
        let db = db();
        let target_theme = 0usize;
        let q0 = FeedbackQuery::from_text("sunset");
        let r0 = db.run_feedback_query(&q0, 0.5, 10).unwrap();
        let p0 = crate::eval::precision_at_k(
            &r0.iter().map(|r| r.oid).collect::<Vec<_>>(),
            |oid| db.docs()[oid as usize].theme == target_theme,
            10,
        );
        // feed back the true positives of round 0
        let relevant: Vec<_> = r0
            .iter()
            .filter(|r| db.docs()[r.oid as usize].theme == target_theme)
            .map(|r| r.oid)
            .collect();
        let (r1, _) =
            db.query_with_feedback(&q0, &relevant, FeedbackParams::default(), 0.5, 10).unwrap();
        let p1 = crate::eval::precision_at_k(
            &r1.iter().map(|r| r.oid).collect::<Vec<_>>(),
            |oid| db.docs()[oid as usize].theme == target_theme,
            10,
        );
        assert!(p1 >= p0 - 1e-9, "feedback degraded precision: {p0} -> {p1}");
    }

    #[test]
    fn feedback_with_no_relevant_docs_is_identity_ranking() {
        let db = db();
        let q = FeedbackQuery::from_text("sunset");
        let improved = db.expand_query(&q, &[], FeedbackParams::default()).unwrap();
        assert_eq!(improved.text, q.text);
        assert!(improved.visual.is_empty());
    }

    #[test]
    fn merge_accumulates_weights() {
        let mut q = vec![("a".to_string(), 1.0)];
        merge_terms(&mut q, vec![("a".to_string(), 1.0), ("b".to_string(), 0.5)], 0.5);
        assert_eq!(q.len(), 2);
        assert_eq!(q[0].1, 1.5);
        assert_eq!(q[1], ("b".to_string(), 0.25));
    }
}
