//! The concurrent serving layer: typed retrieval requests over an
//! immutable snapshot, executed by a worker pool.
//!
//! The paper's closing argument is that putting IR inside the DBMS lets
//! set-at-a-time execution carry interactive retrieval at scale; the
//! ROADMAP turns that into "heavy traffic from millions of users". This
//! module is the request tier that makes the facade safe and fast under
//! that traffic:
//!
//! * [`RetrievalRequest`] — a typed query plan (channel, weighted terms,
//!   relational filter, top-k budget, channel mix) that replaces the old
//!   `format!`-spliced Moa strings. Requests compile straight to the Moa
//!   AST, so user input is always a *literal* (no string injection), and
//!   their bindings travel as request-scoped [`moa::QueryParams`] — no
//!   request ever writes to the shared [`moa::Env`];
//! * [`Retriever::retrieve`] — the one retrieval entry point every facade
//!   query method now goes through.
//!   The top-k budget lets the engine fuse the ranking plan into the
//!   streaming `topk_bl` operator (`ir::topk`), which skips documents that
//!   provably cannot enter the result;
//! * [`ReplicaRouter`] — a shard-local router over a replica set: spreads
//!   requests by least-outstanding (round-robin on ties), suspects a
//!   replica whose call fails, and retries exactly once on a different
//!   replica before surfacing
//!   [`RetrievalError::ShardUnavailable`];
//! * [`MirrorServer`] — a worker pool over any `Arc<R: Retriever>` (a
//!   single node or a whole [`MirrorCluster`](crate::shard::MirrorCluster))
//!   behind a *bounded* admission queue: a request arriving while the
//!   queue is full is shed immediately with a typed
//!   [`RetrievalError::Overloaded`] instead of buffering into unbounded
//!   queueing latency. Throughput and latency counters use a fixed-bucket
//!   histogram, so p50/p99 are exact over the whole run and deterministic
//!   — the measurement surface `core::workload` drives.

use crate::query::{weighted_terms, RankedResult};
use crate::retriever::{RetrievalError, RetrievalResult, Retriever};
use crate::{MirrorDbms, INTERNAL};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use moa::expr::Lit;
use moa::{Expr, MoaError, QueryParams};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Which evidence channels a request ranks with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Channel {
    /// The annotation (text) channel only.
    Text,
    /// The image (visual-term) channel only.
    Visual,
    /// Dual coding: text evidence mixed with visual evidence.
    Dual,
}

/// A typed retrieval request — the serving layer's query plan.
///
/// Build one with the constructors ([`RetrievalRequest::text`],
/// [`RetrievalRequest::visual`], [`RetrievalRequest::dual`], …), refine it
/// with [`with_filter`](RetrievalRequest::with_filter), and execute it with
/// [`MirrorDbms::retrieve`] or through a [`MirrorServer`].
#[derive(Debug, Clone, PartialEq)]
pub struct RetrievalRequest {
    /// Evidence channel(s) to rank with.
    pub channel: Channel,
    /// Weighted query terms (text terms, or visual terms for
    /// [`Channel::Visual`]).
    pub terms: Vec<(String, f64)>,
    /// Explicit visual-channel terms for [`Channel::Dual`]; `None` expands
    /// `terms` through the association thesaurus (dual coding).
    pub visual_terms: Option<Vec<(String, f64)>>,
    /// Relational filter: only rank documents whose URL contains this
    /// substring. Applied as a typed literal — quotes and backslashes in
    /// the pattern are data, never syntax.
    pub filter: Option<String>,
    /// How many results the caller wants (the top-k budget).
    pub k: usize,
    /// Weight of the visual channel in [`Channel::Dual`] (`0.0..=1.0`).
    pub mix: f64,
}

impl RetrievalRequest {
    /// Free-text retrieval over the annotation channel.
    pub fn text(text: &str, k: usize) -> Self {
        Self::text_terms(weighted_terms(text), k)
    }

    /// Text-channel retrieval from pre-weighted terms.
    pub fn text_terms(terms: Vec<(String, f64)>, k: usize) -> Self {
        RetrievalRequest {
            channel: Channel::Text,
            terms,
            visual_terms: None,
            filter: None,
            k,
            mix: 0.0,
        }
    }

    /// Visual retrieval from weighted visual terms.
    pub fn visual(terms: Vec<(String, f64)>, k: usize) -> Self {
        RetrievalRequest {
            channel: Channel::Visual,
            terms,
            visual_terms: None,
            filter: None,
            k,
            mix: 1.0,
        }
    }

    /// Dual-coded retrieval: text terms, with the visual channel expanded
    /// through the thesaurus and mixed in with weight `mix`.
    pub fn dual(text: &str, mix: f64, k: usize) -> Self {
        RetrievalRequest {
            channel: Channel::Dual,
            terms: weighted_terms(text),
            visual_terms: None,
            filter: None,
            k,
            mix,
        }
    }

    /// Dual-coded retrieval with explicit terms for both channels (the
    /// relevance-feedback path). An empty visual channel falls back to
    /// text-only ranking.
    pub fn dual_terms(
        text_terms: Vec<(String, f64)>,
        visual_terms: Vec<(String, f64)>,
        mix: f64,
        k: usize,
    ) -> Self {
        RetrievalRequest {
            channel: Channel::Dual,
            terms: text_terms,
            visual_terms: Some(visual_terms),
            filter: None,
            k,
            mix,
        }
    }

    /// Restrict ranking to documents whose URL contains `pattern`.
    pub fn with_filter(mut self, pattern: impl Into<String>) -> Self {
        self.filter = Some(pattern.into());
        self
    }

    /// Check the request before compiling it anywhere. Runs once at the
    /// cluster edge (and on direct single-node calls), not per shard.
    pub fn validate(&self) -> RetrievalResult<()> {
        if let Some(pattern) = &self.filter {
            if pattern.is_empty() {
                return Err(RetrievalError::BadFilter(
                    "empty URL filter would match every document; omit the filter instead".into(),
                ));
            }
            if pattern.contains('\0') {
                return Err(RetrievalError::BadFilter(
                    "URL filter contains a NUL byte, which no URL can".into(),
                ));
            }
        }
        Ok(())
    }
}

/// `sum(getBL(THIS.attr, binding, stats))`.
fn sum_getbl(attr: &str, binding: &str) -> Expr {
    Expr::call(
        "sum",
        vec![Expr::call(
            "getBL",
            vec![Expr::this_attr(attr), Expr::Ident(binding.into()), Expr::Ident("stats".into())],
        )],
    )
}

/// The paper's single-channel ranking shape:
/// `map[sum(THIS)](map[getBL(THIS.attr, binding, stats)](input))` — the
/// shape the engine fuses into the streaming `topk_bl` operator.
fn ranking_expr(attr: &str, binding: &str, input: Expr) -> Expr {
    let getbl = Expr::call(
        "getBL",
        vec![Expr::this_attr(attr), Expr::Ident(binding.into()), Expr::Ident("stats".into())],
    );
    Expr::map(Expr::call("sum", vec![Expr::This]), Expr::map(getbl, input))
}

impl MirrorDbms {
    /// Execute a typed retrieval request on this node — the engine behind
    /// [`Retriever::retrieve`] for the single-node backend, and the
    /// per-shard executor for the cluster. Compiles the request to a Moa
    /// AST with request-scoped bindings (never mutating the shared
    /// environment) and a top-k budget the engine fuses into the streaming
    /// top-k operator where the plan shape allows.
    pub(crate) fn retrieve_local(&self, req: &RetrievalRequest) -> moa::Result<Vec<RankedResult>> {
        let (expr, params) = self.compile_request(req)?;
        let (out, _) = self.engine().query_expr_params(&expr, &params)?;
        self.ranked(out, req.k)
    }

    /// Compile a request into its Moa AST and request-scoped parameters.
    fn compile_request(&self, req: &RetrievalRequest) -> moa::Result<(Expr, QueryParams)> {
        let input = match &req.filter {
            Some(pattern) => Expr::select(
                Expr::call(
                    "contains",
                    vec![Expr::this_attr("source"), Expr::Lit(Lit::Str(pattern.clone()))],
                ),
                Expr::Ident(INTERNAL.into()),
            ),
            None => Expr::Ident(INTERNAL.into()),
        };
        let params = QueryParams::new().with_top_k(req.k);
        match req.channel {
            Channel::Text => Ok((
                ranking_expr("annotation", "q_text", input),
                params.bind("q_text", req.terms.clone()),
            )),
            Channel::Visual => {
                Ok((ranking_expr("image", "q_vis", input), params.bind("q_vis", req.terms.clone())))
            }
            Channel::Dual => {
                let visual = match &req.visual_terms {
                    Some(v) => v.clone(),
                    None => {
                        let th = self
                            .thesaurus()
                            .ok_or_else(|| MoaError::Unknown("thesaurus (ingest first)".into()))?;
                        th.expand(
                            &req.terms,
                            self.config().expand_per_term,
                            self.config().expand_max_terms,
                        )
                    }
                };
                if visual.is_empty() {
                    // no visual evidence: single-channel text ranking
                    return Ok((
                        ranking_expr("annotation", "q_text", input),
                        params.bind("q_text", req.terms.clone()),
                    ));
                }
                // sum(getBL(text)) * (1 - mix) + sum(getBL(image)) * mix,
                // the same expression tree the Moa string used to parse to
                let tw = 1.0 - req.mix;
                let body = Expr::Arith {
                    op: moa::expr::ArithKind::Add,
                    left: Box::new(Expr::Arith {
                        op: moa::expr::ArithKind::Mul,
                        left: Box::new(sum_getbl("annotation", "q_text")),
                        right: Box::new(Expr::Lit(Lit::Float(tw))),
                    }),
                    right: Box::new(Expr::Arith {
                        op: moa::expr::ArithKind::Mul,
                        left: Box::new(sum_getbl("image", "q_vis")),
                        right: Box::new(Expr::Lit(Lit::Float(req.mix))),
                    }),
                };
                Ok((
                    Expr::map(body, input),
                    params.bind("q_text", req.terms.clone()).bind("q_vis", visual),
                ))
            }
        }
    }
}

/// Histogram geometry: each power-of-two octave of the nanosecond range
/// is split into this many sub-buckets, giving ≈6% relative resolution.
const HIST_SUB_BITS: usize = 4;
const HIST_SUB: usize = 1 << HIST_SUB_BITS;
const HIST_BUCKETS: usize = (64 - HIST_SUB_BITS + 1) * HIST_SUB;

/// A lock-free fixed-bucket latency histogram covering the whole `u64`
/// nanosecond range. Every request of the run is counted — unlike the
/// bounded sample ring this replaced, which silently forgot the earliest
/// requests once it wrapped — so p50/p99 are exact (to one sub-bucket,
/// ≈6%) over the entire run and deterministic for a given workload.
struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LatencyHistogram {{ count: {} }}", self.count.load(Ordering::Relaxed))
    }
}

/// Bucket index of a nanosecond value: exact below [`HIST_SUB`], then the
/// top [`HIST_SUB_BITS`] bits below the leading one select the sub-bucket
/// within the value's octave. Monotone, so percentile walks stay ordered.
fn hist_bucket(ns: u64) -> usize {
    if ns < HIST_SUB as u64 {
        return ns as usize;
    }
    let msb = 63 - ns.leading_zeros() as usize;
    let sub = ((ns >> (msb - HIST_SUB_BITS)) as usize) & (HIST_SUB - 1);
    (msb - HIST_SUB_BITS + 1) * HIST_SUB + sub
}

/// Upper edge of a bucket — reported percentiles are conservative: the
/// true rank value lies within one sub-bucket below the reported one.
fn hist_value(idx: usize) -> u64 {
    if idx < HIST_SUB {
        return idx as u64;
    }
    let msb = idx / HIST_SUB + HIST_SUB_BITS - 1;
    let width = 1u64 << (msb - HIST_SUB_BITS);
    (1u64 << msb) + (idx % HIST_SUB) as u64 * width + (width - 1)
}

impl LatencyHistogram {
    fn record(&self, ns: u64) {
        self.buckets[hist_bucket(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Latency at percentile `p ∈ [0, 1]` over *all* recorded requests.
    fn percentile(&self, p: f64) -> u64 {
        let total = self.count.load(Ordering::Relaxed);
        if total == 0 {
            return 0;
        }
        let target = ((total - 1) as f64 * p).round() as u64;
        let mut cum = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cum += bucket.load(Ordering::Relaxed);
            if cum > target {
                return hist_value(i);
            }
        }
        hist_value(HIST_BUCKETS - 1)
    }
}

/// Cumulative serving counters (shared with every worker); every field is
/// lock-free, so recording never serializes the worker pool.
#[derive(Debug, Default)]
struct ServeCounters {
    served: AtomicU64,
    errors: AtomicU64,
    rejected: AtomicU64,
    latency_ns: AtomicU64,
    max_latency_ns: AtomicU64,
    hist: LatencyHistogram,
}

impl ServeCounters {
    fn record(&self, ns: u64, is_err: bool) {
        self.served.fetch_add(1, Ordering::Relaxed);
        self.latency_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_latency_ns.fetch_max(ns, Ordering::Relaxed);
        if is_err {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.hist.record(ns);
    }

    /// `(p50, p99)` latency over every request of the run, in nanoseconds.
    fn percentiles_ns(&self) -> (u64, u64) {
        (self.hist.percentile(0.50), self.hist.percentile(0.99))
    }
}

/// A point-in-time snapshot of a server's throughput and latency.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Requests completed (including errors).
    pub served: u64,
    /// Requests that returned an error.
    pub errors: u64,
    /// Requests shed at admission because the queue was full — each one
    /// resolved to [`RetrievalError::Overloaded`] without touching a
    /// worker, so they are not in `served` or the latency figures.
    pub rejected: u64,
    /// The admission queue's configured bound.
    pub queue_depth: usize,
    /// Mean request latency in milliseconds.
    pub mean_latency_ms: f64,
    /// Median request latency in milliseconds, exact (to the histogram's
    /// ≈6% bucket resolution) over every request of the run.
    pub p50_latency_ms: f64,
    /// 99th-percentile request latency in milliseconds over every request
    /// of the run — the tail the replica router exists to flatten.
    /// Includes queue wait, so an overdriven server shows it here.
    pub p99_latency_ms: f64,
    /// Worst request latency in milliseconds.
    pub max_latency_ms: f64,
    /// Completed requests per second since the server started.
    pub throughput_per_sec: f64,
    /// Worker threads in the pool.
    pub workers: usize,
}

/// A pending response handed out by [`MirrorServer::submit`].
pub struct PendingRetrieval {
    rx: Receiver<RetrievalResult<Vec<RankedResult>>>,
}

impl PendingRetrieval {
    /// Block until the worker pool finishes this request.
    pub fn wait(self) -> RetrievalResult<Vec<RankedResult>> {
        self.rx.recv().unwrap_or_else(|_| {
            Err(RetrievalError::Compile(MoaError::Unknown("server shut down mid-request".into())))
        })
    }
}

struct ServerJob {
    req: RetrievalRequest,
    /// When the request was admitted — latency is measured from here, so
    /// queue wait counts toward the percentiles the SLO is set against.
    enqueued: Instant,
    reply: Sender<RetrievalResult<Vec<RankedResult>>>,
}

/// Queue bound used by [`MirrorServer::start`]: deep enough that a healthy
/// pool never rejects, shallow enough that a stalled pool rejects instead
/// of buffering requests into unbounded queueing latency.
pub const DEFAULT_QUEUE_DEPTH: usize = 1024;

/// A concurrent retrieval server: a fixed worker pool draining a request
/// queue against one shared, immutable [`Retriever`] backend — a
/// single-node [`MirrorDbms`] snapshot (the default) or a sharded
/// [`MirrorCluster`](crate::shard::MirrorCluster).
///
/// ```no_run
/// # use std::sync::Arc;
/// # use mirror_core::{MirrorDbms, serve::{MirrorServer, RetrievalRequest}};
/// # let db = MirrorDbms::with_defaults();
/// let server = MirrorServer::start(Arc::new(db), 4);
/// let hits = server.query(&RetrievalRequest::text("sunset beach", 10)).unwrap();
/// println!("{} hits, {:?}", hits.len(), server.stats());
/// ```
pub struct MirrorServer<R: Retriever + 'static = MirrorDbms> {
    db: Arc<R>,
    tx: Option<Sender<ServerJob>>,
    workers: Vec<JoinHandle<()>>,
    counters: Arc<ServeCounters>,
    queue_depth: usize,
    started: Instant,
}

impl<R: Retriever + 'static> MirrorServer<R> {
    /// Start a server with `workers` threads (0 = one per available core)
    /// over a shared backend, with the default admission-queue depth
    /// ([`DEFAULT_QUEUE_DEPTH`]).
    pub fn start(db: Arc<R>, workers: usize) -> Self {
        Self::start_with_queue(db, workers, DEFAULT_QUEUE_DEPTH)
    }

    /// Start a server with an explicit admission-queue bound: at most
    /// `queue_depth` requests wait behind the worker pool; a request that
    /// arrives while the queue is full is rejected immediately with
    /// [`RetrievalError::Overloaded`] instead of being buffered (the
    /// open-loop workload harness relies on this to shed load at a fixed
    /// arrival rate rather than melting down).
    pub fn start_with_queue(db: Arc<R>, workers: usize, queue_depth: usize) -> Self {
        let workers = if workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            workers
        };
        let queue_depth = queue_depth.max(1);
        let (tx, rx) = bounded::<ServerJob>(queue_depth);
        let counters = Arc::new(ServeCounters::default());
        let handles = (0..workers)
            .map(|_| {
                let rx: Receiver<ServerJob> = rx.clone();
                let db = Arc::clone(&db);
                let counters = Arc::clone(&counters);
                std::thread::spawn(move || {
                    while let Ok(job) = rx.recv() {
                        let result = db.retrieve(&job.req);
                        let ns = job.enqueued.elapsed().as_nanos() as u64;
                        counters.record(ns, result.is_err());
                        let _ = job.reply.send(result);
                    }
                })
            })
            .collect();
        MirrorServer {
            db,
            tx: Some(tx),
            workers: handles,
            counters,
            queue_depth,
            started: Instant::now(),
        }
    }

    /// The shared backend this server ranks against.
    pub fn db(&self) -> &Arc<R> {
        &self.db
    }

    /// Enqueue a request; returns a handle to wait on. Admission control
    /// happens here: when the bounded queue is full the request is shed —
    /// the handle resolves immediately to [`RetrievalError::Overloaded`]
    /// and the submitting thread never blocks.
    pub fn submit(&self, req: RetrievalRequest) -> PendingRetrieval {
        let (reply, rx) = bounded(1);
        let tx = self.tx.as_ref().expect("server is running until dropped");
        match tx.try_send(ServerJob { req, enqueued: Instant::now(), reply }) {
            Ok(()) => {}
            Err(TrySendError::Full(job)) => {
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                let _ = job
                    .reply
                    .send(Err(RetrievalError::Overloaded { queue_depth: self.queue_depth }));
            }
            Err(TrySendError::Disconnected(_)) => {
                // every worker is gone; `wait` will surface the shutdown error
            }
        }
        PendingRetrieval { rx }
    }

    /// Execute a request, blocking until its results are ready.
    pub fn query(&self, req: &RetrievalRequest) -> RetrievalResult<Vec<RankedResult>> {
        self.submit(req.clone()).wait()
    }

    /// Throughput/latency counters since the server started.
    pub fn stats(&self) -> ServerStats {
        let served = self.counters.served.load(Ordering::Relaxed);
        let latency_ns = self.counters.latency_ns.load(Ordering::Relaxed);
        let (p50_ns, p99_ns) = self.counters.percentiles_ns();
        let elapsed = self.started.elapsed().as_secs_f64();
        ServerStats {
            served,
            errors: self.counters.errors.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            queue_depth: self.queue_depth,
            mean_latency_ms: if served == 0 {
                0.0
            } else {
                latency_ns as f64 / served as f64 / 1e6
            },
            p50_latency_ms: p50_ns as f64 / 1e6,
            p99_latency_ms: p99_ns as f64 / 1e6,
            max_latency_ms: self.counters.max_latency_ns.load(Ordering::Relaxed) as f64 / 1e6,
            throughput_per_sec: if elapsed > 0.0 { served as f64 / elapsed } else { 0.0 },
            workers: self.workers.len(),
        }
    }

    /// Stop accepting requests, drain the queue, and join the workers.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        // dropping the sender disconnects the queue; workers drain and exit
        self.tx = None;
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl<R: Retriever + 'static> Drop for MirrorServer<R> {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl<R: crate::live::MutableCorpus + 'static> MirrorServer<R> {
    /// Route an insert batch to the mutable backend (caller-thread write:
    /// queries stream through the worker pool while writers mutate
    /// snapshots — MVCC isolation means neither blocks the other).
    pub fn insert_rows(&self, rows: Vec<crate::LibraryRow>) -> RetrievalResult<u64> {
        self.db.insert_rows(rows)
    }

    /// Route a delete to the mutable backend; `None` if no live document
    /// has the URL.
    pub fn delete(&self, url: &str) -> RetrievalResult<Option<u64>> {
        self.db.delete(url)
    }
}

/// One replica of a shard: a shared backend plus the router's view of its
/// liveness and load.
struct Replica<R> {
    backend: Arc<R>,
    /// Simulated process liveness — [`ReplicaRouter::kill`] flips this, as
    /// a crashed replica process would. A down replica fails every call.
    up: AtomicBool,
    /// The router's health suspicion, set after a failed call so later
    /// requests stop selecting this replica until it is revived.
    suspected: AtomicBool,
    /// Requests currently in flight on this replica.
    outstanding: AtomicUsize,
}

/// A shard-local router over a replica set.
///
/// Selection is least-outstanding among unsuspected replicas, with a
/// round-robin cursor breaking ties so equal-load replicas share traffic.
/// A call that fails retryably ([`RetrievalError::is_retryable`]) marks
/// the replica suspected and is retried exactly once on a different
/// replica; a second failure (or no replica left) surfaces
/// [`RetrievalError::ShardUnavailable`].
pub struct ReplicaRouter<R: Retriever> {
    shard: usize,
    replicas: Vec<Replica<R>>,
    cursor: AtomicUsize,
}

impl<R: Retriever> ReplicaRouter<R> {
    /// Build a router for `shard` over its replica set (all replicas share
    /// the same immutable shard snapshot).
    pub fn new(shard: usize, backends: Vec<Arc<R>>) -> Self {
        assert!(!backends.is_empty(), "a shard needs at least one replica");
        let replicas = backends
            .into_iter()
            .map(|backend| Replica {
                backend,
                up: AtomicBool::new(true),
                suspected: AtomicBool::new(false),
                outstanding: AtomicUsize::new(0),
            })
            .collect();
        ReplicaRouter { shard, replicas, cursor: AtomicUsize::new(0) }
    }

    /// Number of replicas in the set.
    pub fn n_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Replicas currently believed healthy (up and not suspected).
    pub fn n_healthy(&self) -> usize {
        self.replicas
            .iter()
            .filter(|r| r.up.load(Ordering::Relaxed) && !r.suspected.load(Ordering::Relaxed))
            .count()
    }

    /// Simulate a replica crash: every call routed to it now fails, and
    /// the router fails over to its siblings.
    pub fn kill(&self, replica: usize) {
        self.replicas[replica].up.store(false, Ordering::Relaxed);
    }

    /// Bring a killed replica back and clear the router's suspicion.
    pub fn revive(&self, replica: usize) {
        self.replicas[replica].up.store(true, Ordering::Relaxed);
        self.replicas[replica].suspected.store(false, Ordering::Relaxed);
    }

    /// Pick the replica to try next: least outstanding among unsuspected
    /// replicas (round-robin on ties), skipping `exclude`. Falls back to
    /// suspected replicas when nothing better is left — a suspected
    /// replica may have recovered, and trying it beats failing outright.
    fn select(&self, exclude: Option<usize>) -> Option<usize> {
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        let pick = |allow_suspected: bool| {
            let mut best: Option<(usize, usize)> = None;
            for offset in 0..self.replicas.len() {
                let i = (start + offset) % self.replicas.len();
                if Some(i) == exclude {
                    continue;
                }
                let r = &self.replicas[i];
                if !allow_suspected && r.suspected.load(Ordering::Relaxed) {
                    continue;
                }
                let load = r.outstanding.load(Ordering::Relaxed);
                if best.is_none_or(|(_, b)| load < b) {
                    best = Some((i, load));
                }
            }
            best.map(|(i, _)| i)
        };
        pick(false).or_else(|| pick(true))
    }

    /// Execute one call on `replica`, maintaining its load gauge.
    fn call(&self, replica: usize, req: &RetrievalRequest) -> RetrievalResult<Vec<RankedResult>> {
        let r = &self.replicas[replica];
        if !r.up.load(Ordering::Relaxed) {
            return Err(RetrievalError::ShardUnavailable {
                shard: self.shard,
                detail: format!("replica {replica} is down"),
            });
        }
        r.outstanding.fetch_add(1, Ordering::Relaxed);
        let result = r.backend.retrieve(req);
        r.outstanding.fetch_sub(1, Ordering::Relaxed);
        result
    }

    /// Route a request: try the selected replica, fail over once.
    pub fn retrieve(&self, req: &RetrievalRequest) -> RetrievalResult<Vec<RankedResult>> {
        let Some(first) = self.select(None) else {
            return Err(RetrievalError::ShardUnavailable {
                shard: self.shard,
                detail: "no replicas configured".into(),
            });
        };
        match self.call(first, req) {
            Err(e) if e.is_retryable() => {
                self.replicas[first].suspected.store(true, Ordering::Relaxed);
                match self.select(Some(first)) {
                    Some(second) => self.call(second, req).map_err(|e2| match e2 {
                        RetrievalError::ShardUnavailable { shard, detail } => {
                            RetrievalError::ShardUnavailable {
                                shard,
                                detail: format!(
                                    "replica {first} failed ({e}); retry on replica {second} \
                                     failed ({detail})"
                                ),
                            }
                        }
                        other => other,
                    }),
                    None => Err(RetrievalError::ShardUnavailable {
                        shard: self.shard,
                        detail: format!("replica {first} failed ({e}); no replica left to retry"),
                    }),
                }
            }
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use media::{RobotConfig, WebRobot};

    fn shared_db() -> Arc<MirrorDbms> {
        static DB: std::sync::OnceLock<Arc<MirrorDbms>> = std::sync::OnceLock::new();
        Arc::clone(DB.get_or_init(|| {
            let mut db = MirrorDbms::with_defaults();
            let corpus = WebRobot::new(RobotConfig {
                n_images: 40,
                image_size: 24,
                unannotated_fraction: 0.25,
                seed: 11,
            })
            .crawl();
            db.ingest(&corpus).unwrap();
            Arc::new(db)
        }))
    }

    #[test]
    fn typed_requests_match_the_facade_methods() {
        let db = shared_db();
        let a = db.retrieve(&RetrievalRequest::text("sunset glow evening", 10)).unwrap();
        let b = db.query_text("sunset glow evening", 10).unwrap();
        assert_eq!(a, b);
        let c = db.retrieve(&RetrievalRequest::dual("sunset glow", 0.6, 20)).unwrap();
        let d = db.query_dual("sunset glow", 0.6, 20).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn requests_never_bind_into_the_environment() {
        let db = shared_db();
        let before: usize =
            ["q_text", "q_vis"].iter().filter(|n| db.env().query_binding(n).is_some()).count();
        assert_eq!(before, 0);
        db.retrieve(&RetrievalRequest::dual("sunset beach", 0.5, 10)).unwrap();
        for n in ["q_text", "q_vis"] {
            assert!(db.env().query_binding(n).is_none(), "{n} leaked into Env");
        }
    }

    #[test]
    fn filter_is_a_literal_not_syntax() {
        let db = shared_db();
        // quotes and backslashes in the pattern are data; the old
        // format!-spliced query would have broken (or worse, widened) here
        for hostile in ["a\"b", "\\", "\")](ImageLibraryInternal))", "100%\" or \""] {
            let out =
                db.retrieve(&RetrievalRequest::text("sunset", 10).with_filter(hostile)).unwrap();
            assert!(out.is_empty(), "filter {hostile:?} matched {} docs", out.len());
        }
        // a benign filter still restricts
        let filtered =
            db.retrieve(&RetrievalRequest::text("sunset", 20).with_filter("/sunset/")).unwrap();
        assert!(!filtered.is_empty());
        assert!(filtered.iter().all(|r| r.url.contains("/sunset/")));
    }

    #[test]
    fn server_serves_and_counts() {
        let db = shared_db();
        let server = MirrorServer::start(Arc::clone(&db), 3);
        let baseline = db.query_text("sunset glow", 10).unwrap();
        let pending: Vec<_> =
            (0..12).map(|_| server.submit(RetrievalRequest::text("sunset glow", 10))).collect();
        for p in pending {
            assert_eq!(p.wait().unwrap(), baseline);
        }
        let stats = server.stats();
        assert_eq!(stats.served, 12);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.workers, 3);
        assert!(stats.mean_latency_ms > 0.0);
        assert!(stats.max_latency_ms >= stats.mean_latency_ms);
        server.shutdown();
    }

    #[test]
    fn histogram_counts_every_sample_and_is_deterministic() {
        let h = LatencyHistogram::default();
        // 3× more samples than the old ring could hold: the early ones
        // must still weigh into the percentiles
        let n = 3 * 8192u64;
        for v in 1..=n {
            h.record(v);
        }
        let (p50, p99) = (h.percentile(0.50), h.percentile(0.99));
        let true_p50 = (n as f64 * 0.50) as u64;
        let true_p99 = (n as f64 * 0.99) as u64;
        // bucket resolution: reported value within one sub-bucket (≈6%)
        for (got, want) in [(p50, true_p50), (p99, true_p99)] {
            let err = (got as f64 - want as f64).abs() / want as f64;
            assert!(err < 0.07, "got {got}, want ≈{want} (err {err:.3})");
        }
        assert!(p99 > p50);
        // same histogram, same question, same answer — no sampling noise
        assert_eq!(h.percentile(0.50), p50);
        assert_eq!(h.percentile(0.99), p99);
    }

    #[test]
    fn histogram_buckets_are_monotone_and_conservative() {
        for ns in [0u64, 1, 15, 16, 17, 31, 32, 1000, 123_456, u64::MAX / 2, u64::MAX] {
            let b = hist_bucket(ns);
            assert!(b < HIST_BUCKETS);
            assert!(hist_value(b) >= ns, "bucket upper edge below its member {ns}");
            if ns > 0 {
                assert!(hist_bucket(ns - 1) <= b, "bucket order inverted at {ns}");
            }
        }
    }

    /// A backend that parks inside `retrieve` until released — makes queue
    /// occupancy deterministic for the admission-control test.
    struct GatedRetriever {
        entered: Sender<()>,
        release: Receiver<()>,
    }

    impl Retriever for GatedRetriever {
        fn retrieve(&self, _req: &RetrievalRequest) -> RetrievalResult<Vec<RankedResult>> {
            let _ = self.entered.send(());
            let _ = self.release.recv();
            Ok(Vec::new())
        }

        fn n_docs(&self) -> usize {
            0
        }
    }

    #[test]
    fn full_queue_sheds_load_with_typed_overloaded() {
        let (entered_tx, entered_rx) = crossbeam::channel::unbounded();
        let (release_tx, release_rx) = crossbeam::channel::unbounded();
        let backend = Arc::new(GatedRetriever { entered: entered_tx, release: release_rx });
        let server = MirrorServer::start_with_queue(backend, 1, 1);
        let a = server.submit(RetrievalRequest::text("q", 1));
        // wait until the lone worker is parked inside the backend, so the
        // queue is verifiably empty…
        entered_rx.recv().unwrap();
        let b = server.submit(RetrievalRequest::text("q", 1)); // …now fills it
        let c = server.submit(RetrievalRequest::text("q", 1)); // …and this is shed
        match c.wait() {
            Err(RetrievalError::Overloaded { queue_depth }) => assert_eq!(queue_depth, 1),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        release_tx.send(()).unwrap();
        release_tx.send(()).unwrap();
        assert!(a.wait().is_ok());
        assert!(b.wait().is_ok());
        let stats = server.stats();
        assert_eq!(stats.served, 2, "shed requests never reach a worker");
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.queue_depth, 1);
        server.shutdown();
    }

    #[test]
    fn server_surfaces_request_errors() {
        // dual retrieval needs a thesaurus; an un-ingested instance errors
        let server = MirrorServer::start(Arc::new(MirrorDbms::with_defaults()), 1);
        assert!(server.query(&RetrievalRequest::dual("sunset", 0.5, 5)).is_err());
        assert_eq!(server.stats().errors, 1);
    }
}
