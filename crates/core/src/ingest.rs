//! The ingest pipeline of Section 5.
//!
//! ```text
//! crawl → segment → extract (rgb, hsv, gabor, glcm, tamura, edge)
//!       → cluster each space (AutoClass substitute) → visual terms
//!       → ImageLibraryInternal(source, CONTREP<Text>, CONTREP<Image>)
//!       → association thesaurus
//! ```
//!
//! Two routes produce identical state: [`MirrorDbms::ingest`] runs the
//! stages in-process (deterministic, fast), and
//! [`MirrorDbms::ingest_via_daemons`] routes segmentation and feature
//! extraction through the open distributed architecture — one daemon per
//! extractor — proving the metadata database is just another party on the
//! bus.

use crate::{Clustering, DocMeta, LibraryRow, MirrorDbms, INTERNAL};
use cluster::{AutoClass, AutoClassConfig, VisualVocabulary, VocabularyBuilder};
use daemon::{
    DaemonRuntime, FeatureDaemon, Message, SegmenterDaemon, SegmenterKind, TOPIC_CRAWLED,
    TOPIC_FEATURES,
};
use ir::text::tokenize_stemmed;
use media::{grid_segments, standard_extractors, CrawledImage};
use moa::{parse_define, MoaVal};
use thesaurus::ThesaurusBuilder;

/// One extracted feature: (document index, segment index, space, vector).
pub(crate) type Extraction = (usize, usize, String, Vec<f64>);

/// Everything the shared ingest pipeline produces besides the collection
/// itself — reused by [`crate::shard::MirrorCluster`], which runs the
/// pipeline once globally and then loads each shard from it.
pub(crate) struct IngestArtifacts {
    pub(crate) vocab: VisualVocabulary,
    pub(crate) thesaurus: thesaurus::AssociationThesaurus,
    /// Per-document visual terms (one visual term per segment × space).
    pub(crate) visual_docs: Vec<Vec<String>>,
}

impl MirrorDbms {
    /// Ingest a crawled corpus in-process.
    pub fn ingest(&mut self, corpus: &[CrawledImage]) -> moa::Result<()> {
        let extractions = self.extract_inline(corpus);
        self.finish_ingest(corpus, extractions)
    }

    /// Ingest a crawled corpus through the daemon architecture: a
    /// segmentation daemon plus one feature daemon per extractor run on
    /// their own threads; the facade collects `features.extracted`
    /// messages like the metadata database of Figure 1.
    pub fn ingest_via_daemons(&mut self, corpus: &[CrawledImage]) -> moa::Result<()> {
        let rt = DaemonRuntime::new();
        let features_rx = rt.bus().subscribe(TOPIC_FEATURES);
        rt.spawn(Box::new(SegmenterDaemon::new(SegmenterKind::Grid(self.config().grid))));
        for ex in standard_extractors() {
            rt.spawn(Box::new(FeatureDaemon::new(ex)));
        }
        // url → document index for reassembling asynchronous results
        let index_of: std::collections::HashMap<&str, usize> =
            corpus.iter().enumerate().map(|(i, c)| (c.url.as_str(), i)).collect();
        for c in corpus {
            rt.bus().publish(
                TOPIC_CRAWLED,
                "web-robot",
                Message::ImageCrawled {
                    url: c.url.clone(),
                    blob: c.image.to_blob(),
                    annotation: c.annotation.clone(),
                },
            );
        }
        rt.wait_quiescent(std::time::Duration::from_millis(20), 5);
        rt.shutdown();
        let mut extractions: Vec<Extraction> = Vec::new();
        while let Ok(env) = features_rx.try_recv() {
            if let Message::FeaturesExtracted { url, segment, space, vector } = env.msg {
                if let Some(&doc) = index_of.get(url.as_str()) {
                    extractions.push((doc, segment, space, vector));
                }
            }
        }
        // asynchronous arrival order is nondeterministic; sort for
        // reproducible clustering
        extractions.sort_by(|a, b| (a.0, a.1, &a.2).cmp(&(b.0, b.1, &b.2)));
        self.finish_ingest(corpus, extractions)
    }

    /// Inline segmentation + extraction (no daemons).
    pub(crate) fn extract_inline(&self, corpus: &[CrawledImage]) -> Vec<Extraction> {
        let extractors = standard_extractors();
        let mut out = Vec::new();
        for (doc, c) in corpus.iter().enumerate() {
            let segments = grid_segments(&c.image, self.config().grid);
            for (seg_idx, seg) in segments.iter().enumerate() {
                for ex in &extractors {
                    let v = ex.extract(&seg.image);
                    out.push((doc, seg_idx, ex.space().to_string(), v.into_values()));
                }
            }
        }
        out
    }

    /// Shared tail of both ingest routes: cluster, build visual documents,
    /// flatten the internal schema, and mine the thesaurus.
    fn finish_ingest(
        &mut self,
        corpus: &[CrawledImage],
        extractions: Vec<Extraction>,
    ) -> moa::Result<()> {
        let artifacts = self.cluster_and_tokenize(corpus, &extractions);
        self.load_library(corpus, &artifacts.visual_docs)?;
        self.set_ingest_outputs(artifacts.vocab, artifacts.thesaurus);
        Ok(())
    }

    /// The corpus-global pipeline stages: cluster each feature space into
    /// a visual vocabulary, emit one visual document per image, and mine
    /// the association thesaurus over the annotated subset. No state is
    /// written — the caller decides which node(s) load the results.
    pub(crate) fn cluster_and_tokenize(
        &self,
        corpus: &[CrawledImage],
        extractions: &[Extraction],
    ) -> IngestArtifacts {
        // 1. cluster each feature space into a visual vocabulary
        let mut builder = VocabularyBuilder::new();
        for (_, _, space, vector) in extractions {
            builder.add(space, vector.clone());
        }
        let vocab: VisualVocabulary = match self.config().clustering {
            Clustering::AutoClass => builder.build_autoclass(&AutoClass::new(AutoClassConfig {
                seed: self.config().seed,
                ..Default::default()
            })),
            Clustering::KMeans(k) => builder.build_kmeans(k, self.config().seed),
        };

        // 2. visual document per image: the terms of all its segments
        let mut visual_docs: Vec<Vec<String>> = vec![Vec::new(); corpus.len()];
        for (doc, _, space, vector) in extractions {
            if let Some(term) = vocab.term_of(space, vector) {
                visual_docs[*doc].push(term);
            }
        }

        // 3. the association thesaurus over the *annotated* subset
        let mut th = ThesaurusBuilder::new();
        for (c, vterms) in corpus.iter().zip(&visual_docs) {
            if let Some(ann) = &c.annotation {
                let text_terms = tokenize_stemmed(ann);
                th.add_document(&text_terms, vterms);
            }
        }
        let thesaurus = th.build(self.config().assoc);
        IngestArtifacts { vocab, thesaurus, visual_docs }
    }

    /// Load (or reload) `ImageLibraryInternal` on this node from a corpus
    /// and its visual documents — the internal schema of Section 5.2. Also
    /// records per-document metadata in oid order. For a shard this is
    /// called with the shard's subset of the global corpus.
    pub(crate) fn load_library(
        &mut self,
        corpus: &[CrawledImage],
        visual_docs: &[Vec<String>],
    ) -> moa::Result<()> {
        debug_assert_eq!(corpus.len(), visual_docs.len());
        let rows: Vec<LibraryRow> = corpus
            .iter()
            .zip(visual_docs)
            .map(|(c, vterms)| LibraryRow {
                url: c.url.clone(),
                annotation: c.annotation.clone(),
                vterms: vterms.join(" "),
                theme: c.theme,
            })
            .collect();
        self.load_library_rows(rows)
    }

    /// Load (or reload) `ImageLibraryInternal` from already-extracted
    /// library rows — the pixel-free form the durable storage tier
    /// persists. The collection, its CONTREP indexes and the per-document
    /// metadata are rebuilt deterministically from the rows; a cold
    /// [`crate::durable`] open goes through this exact path, so a
    /// reopened instance is state-identical to the instance that saved.
    pub(crate) fn load_library_rows(&mut self, rows: Vec<LibraryRow>) -> moa::Result<()> {
        let (name, ty) = parse_define(
            "define ImageLibraryInternal as
               SET< TUPLE<
                 Atomic<URL>: source,
                 CONTREP<Text>: annotation,
                 CONTREP<Image>: image >>;",
        )?;
        debug_assert_eq!(name, INTERNAL);
        let moa_rows: Vec<MoaVal> = rows
            .iter()
            .map(|r| {
                MoaVal::Tuple(vec![
                    MoaVal::Str(r.url.clone()),
                    r.annotation.clone().map_or(MoaVal::Null, MoaVal::Str),
                    MoaVal::Str(r.vterms.clone()),
                ])
            })
            .collect();
        self.env().create_collection(name, ty, moa_rows)?;
        // Feed per-term document frequencies from both content
        // representations into the logical layer's statistics catalog
        // (column summaries are collected by `create_collection` itself);
        // the optimizer's belief-operator cardinality estimates need them.
        type IndexStats = (String, u64, Vec<(String, u32)>);
        let mut index_stats: Vec<IndexStats> = Vec::new();
        for field in ["annotation", "image"] {
            let prefix = format!("{INTERNAL}__{field}");
            if let Some(index) = self.store().get(&prefix) {
                let dfs: Vec<(String, u32)> =
                    index.term_dfs().map(|(t, d)| (t.to_string(), d)).collect();
                index_stats.push((prefix, index.n_docs() as u64, dfs));
            }
        }
        self.env().update_stats(move |stats| {
            for (prefix, n_docs, dfs) in index_stats {
                stats.set_index(prefix, n_docs, dfs);
            }
        });
        self.docs = rows
            .iter()
            .map(|r| DocMeta {
                url: r.url.clone(),
                annotated: r.annotation.is_some(),
                theme: r.theme,
            })
            .collect();
        self.lib_rows = rows;
        Ok(())
    }

    pub(crate) fn set_ingest_outputs(
        &mut self,
        vocab: VisualVocabulary,
        thesaurus: thesaurus::AssociationThesaurus,
    ) {
        self.vocab = Some(vocab);
        self.thesaurus = Some(thesaurus);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MirrorConfig;
    use media::{RobotConfig, WebRobot};

    fn small_corpus() -> Vec<CrawledImage> {
        WebRobot::new(RobotConfig {
            n_images: 24,
            image_size: 24,
            unannotated_fraction: 0.25,
            seed: 7,
        })
        .crawl()
    }

    #[test]
    fn ingest_builds_internal_collection() {
        let mut db = MirrorDbms::with_defaults();
        let corpus = small_corpus();
        db.ingest(&corpus).unwrap();
        assert_eq!(db.n_docs(), 24);
        let meta = db.env().collection(INTERNAL).unwrap();
        assert_eq!(meta.count, 24);
        // both content representations were built
        assert!(db.store().get("ImageLibraryInternal__annotation").is_some());
        assert!(db.store().get("ImageLibraryInternal__image").is_some());
        // every image has visual terms (6 extractors × 9 segments)
        let vis = db.store().get("ImageLibraryInternal__image").unwrap();
        assert!(vis.doc_len(0) > 0);
        assert!(db.vocabulary().unwrap().total_terms() > 0);
        assert!(db.thesaurus().unwrap().n_terms() > 0);
    }

    #[test]
    fn unannotated_docs_have_empty_text_channel() {
        let mut db = MirrorDbms::with_defaults();
        let corpus = small_corpus();
        db.ingest(&corpus).unwrap();
        let ann = db.store().get("ImageLibraryInternal__annotation").unwrap();
        for (i, c) in corpus.iter().enumerate() {
            if c.annotation.is_none() {
                assert_eq!(ann.doc_len(i as u32), 0, "doc {i} should be empty");
            } else {
                assert!(ann.doc_len(i as u32) > 0, "doc {i} should have terms");
            }
        }
    }

    #[test]
    fn daemon_ingest_matches_inline_ingest() {
        let corpus = small_corpus();
        let mut inline_db = MirrorDbms::with_defaults();
        inline_db.ingest(&corpus).unwrap();
        let mut daemon_db = MirrorDbms::with_defaults();
        daemon_db.ingest_via_daemons(&corpus).unwrap();
        // identical visual documents → identical index statistics
        let a = inline_db.store().get("ImageLibraryInternal__image").unwrap();
        let b = daemon_db.store().get("ImageLibraryInternal__image").unwrap();
        assert_eq!(a.stats().n_docs, b.stats().n_docs);
        assert_eq!(a.stats().total_tokens, b.stats().total_tokens);
        assert_eq!(a.stats().n_terms, b.stats().n_terms);
    }

    #[test]
    fn kmeans_clustering_also_works() {
        let mut db = MirrorDbms::new(MirrorConfig {
            clustering: crate::Clustering::KMeans(4),
            ..Default::default()
        });
        db.ingest(&small_corpus()).unwrap();
        let vocab = db.vocabulary().unwrap();
        for space in vocab.spaces() {
            assert_eq!(vocab.model(&space).unwrap().n_clusters(), 4);
        }
    }

    #[test]
    fn reingest_replaces_state() {
        let mut db = MirrorDbms::with_defaults();
        db.ingest(&small_corpus()).unwrap();
        let corpus2 = WebRobot::new(RobotConfig { n_images: 10, ..Default::default() }).crawl();
        db.ingest(&corpus2).unwrap();
        assert_eq!(db.n_docs(), 10);
        assert_eq!(db.env().collection(INTERNAL).unwrap().count, 10);
    }
}
