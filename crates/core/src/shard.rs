//! Scale-out: sharded scatter-gather retrieval over a cluster of
//! [`MirrorDbms`] nodes.
//!
//! The fused `topk_bl` operator (`ir::topk`) merges per-fragment bounded
//! heaps bit-identically; this module extends the same merge discipline
//! from cores to shards. A [`MirrorCluster`] partitions the corpus across
//! N single-node shards — by URL hash or by content (k-means over each
//! document's feature centroid, reusing `cluster::kmeans`) — runs the
//! fused top-k per shard through that shard's replica router
//! ([`ReplicaRouter`]), and folds the per-shard heaps into one
//! [`TopKAccumulator`] exactly as the fragment-parallel executor folds
//! per-fragment heaps.
//!
//! Two invariants make the cluster's answers *bit-identical* to a single
//! node over the same corpus:
//!
//! 1. **Global statistics, local postings.** Belief scores depend on
//!    collection statistics (df, cf, collection size, average document
//!    length). The cluster runs the ingest pipeline once globally and
//!    derives each shard's indexes with
//!    [`ir::InvertedIndex::shard_projection`], which keeps only the
//!    shard's postings but pins the *parent's* statistics — so every
//!    shard scores every document exactly as the single node would.
//! 2. **Order-preserving document ids.** Each shard's documents keep
//!    their ascending global order, so shard-local oid tie-breaking is the
//!    global tie-breaking restricted to the shard, and the cross-shard
//!    merge (score descending, global oid ascending) reproduces the
//!    single-node ranking term for term.

use crate::query::RankedResult;
use crate::retriever::{RetrievalResult, Retriever};
use crate::serve::{ReplicaRouter, RetrievalRequest};
use crate::{DocMeta, MirrorConfig, MirrorDbms, INTERNAL};
use ir::TopKAccumulator;
use media::CrawledImage;
use monet::Oid;
use std::collections::BTreeMap;
use std::sync::Arc;

/// How documents are placed onto shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioning {
    /// FNV-1a hash of the document URL modulo the shard count — cheap,
    /// stateless, and balanced (see the shard-balance property test).
    Hash,
    /// Content-aware: k-means (k = shard count) over each document's
    /// concatenated per-space feature centroids, so visually similar
    /// documents land on the same shard (theme partitioning).
    Content,
}

/// Configuration of a [`MirrorCluster`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of shards the corpus is partitioned into (≥ 1).
    pub shards: usize,
    /// Replicas per shard (≥ 1); replicas share the immutable shard
    /// snapshot and exist for routing/failover.
    pub replicas: usize,
    /// Placement policy.
    pub partitioning: Partitioning,
    /// Configuration applied to every shard node (and to the one global
    /// pipeline run: clustering, thesaurus, seed, …).
    pub node: MirrorConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            shards: 2,
            replicas: 1,
            partitioning: Partitioning::Hash,
            node: MirrorConfig::default(),
        }
    }
}

/// A point-in-time view of a cluster's layout and replica health.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterStats {
    /// Number of shards.
    pub shards: usize,
    /// Replicas per shard.
    pub replicas_per_shard: usize,
    /// Documents held by each shard.
    pub docs_per_shard: Vec<usize>,
    /// Replicas currently believed healthy, per shard.
    pub healthy_per_shard: Vec<usize>,
}

/// FNV-1a shard placement: which shard a URL's document lands on.
pub fn hash_shard(url: &str, shards: usize) -> usize {
    assert!(shards > 0, "shard count must be at least 1");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in url.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// A sharded Mirror deployment: N single-node shards behind replica
/// routers, answering the same typed [`RetrievalRequest`]s as a single
/// [`MirrorDbms`] — and, by construction, with the same answers.
///
/// ```no_run
/// # use mirror_core::{shard::MirrorCluster, Retriever};
/// # let corpus = vec![];
/// let cluster = MirrorCluster::build(&corpus, 4, 2).unwrap();
/// let hits = cluster.query_text("sunset beach", 10).unwrap();
/// ```
pub struct MirrorCluster {
    config: ClusterConfig,
    routers: Vec<ReplicaRouter<MirrorDbms>>,
    /// The shard snapshots behind the routers (replicas share one
    /// snapshot) — kept so the durable layer can persist each shard.
    nodes: Vec<Arc<MirrorDbms>>,
    /// Per shard: local oid → global oid (strictly ascending).
    global_ids: Vec<Vec<Oid>>,
    /// Global per-document metadata in global oid order.
    docs: Vec<DocMeta>,
}

impl MirrorCluster {
    /// Build a cluster with hash partitioning and default node
    /// configuration: ingest the corpus once, project it onto `shards`
    /// shards, and stand up `replicas` replicas per shard.
    pub fn build(corpus: &[CrawledImage], shards: usize, replicas: usize) -> RetrievalResult<Self> {
        Self::build_with(corpus, ClusterConfig { shards, replicas, ..ClusterConfig::default() })
    }

    /// Build a cluster with full control over placement and node config.
    pub fn build_with(corpus: &[CrawledImage], config: ClusterConfig) -> RetrievalResult<Self> {
        assert!(config.shards >= 1, "a cluster needs at least one shard");
        assert!(config.replicas >= 1, "a shard needs at least one replica");

        // Run the ingest pipeline ONCE, globally: extraction, feature
        // clustering, visual documents, thesaurus, and the global CONTREP
        // indexes every shard projection pins its statistics to.
        let mut global = MirrorDbms::new(config.node.clone());
        let extractions = global.extract_inline(corpus);
        let artifacts = global.cluster_and_tokenize(corpus, &extractions);
        global.load_library(corpus, &artifacts.visual_docs)?;
        let ann_key = format!("{INTERNAL}__annotation");
        let img_key = format!("{INTERNAL}__image");
        let global_ann = global.store().get(&ann_key).expect("ingest built the annotation index");
        let global_img = global.store().get(&img_key).expect("ingest built the image index");

        // Place every document on a shard.
        let assignment = match config.partitioning {
            Partitioning::Hash => {
                corpus.iter().map(|c| hash_shard(&c.url, config.shards)).collect()
            }
            Partitioning::Content => {
                content_assignment(corpus.len(), &extractions, config.shards, config.node.seed)
            }
        };
        let global_ids = shard_doc_lists(assignment, config.shards, corpus.len());

        // Stand each shard up: its subset of the library, with its store
        // indexes swapped for statistics-pinned projections of the global
        // ones, and the shared vocabulary/thesaurus cloned in.
        let mut routers = Vec::with_capacity(config.shards);
        let mut nodes = Vec::with_capacity(config.shards);
        for (shard, docs) in global_ids.iter().enumerate() {
            let mut node = MirrorDbms::new(config.node.clone());
            let sub_corpus: Vec<CrawledImage> =
                docs.iter().map(|&d| corpus[d as usize].clone()).collect();
            let sub_vdocs: Vec<Vec<String>> =
                docs.iter().map(|&d| artifacts.visual_docs[d as usize].clone()).collect();
            node.load_library(&sub_corpus, &sub_vdocs)?;
            node.store().insert(ann_key.clone(), global_ann.shard_projection(docs));
            node.store().insert(img_key.clone(), global_img.shard_projection(docs));
            node.set_ingest_outputs(artifacts.vocab.clone(), artifacts.thesaurus.clone());
            let snapshot = Arc::new(node);
            let backends = (0..config.replicas).map(|_| Arc::clone(&snapshot)).collect();
            routers.push(ReplicaRouter::new(shard, backends));
            nodes.push(snapshot);
        }

        let docs = corpus
            .iter()
            .map(|c| DocMeta {
                url: c.url.clone(),
                annotated: c.annotation.is_some(),
                theme: c.theme,
            })
            .collect();
        Ok(MirrorCluster { config, routers, nodes, global_ids, docs })
    }

    /// Assemble a cluster from already-built shard nodes — the durable
    /// layer's reopen path. `global_ids` must partition `0..docs.len()`
    /// into strictly ascending per-shard lists matching each node's local
    /// document order.
    pub(crate) fn from_parts(
        config: ClusterConfig,
        nodes: Vec<Arc<MirrorDbms>>,
        global_ids: Vec<Vec<Oid>>,
        docs: Vec<DocMeta>,
    ) -> Self {
        let routers = nodes
            .iter()
            .enumerate()
            .map(|(shard, node)| {
                let backends = (0..config.replicas).map(|_| Arc::clone(node)).collect();
                ReplicaRouter::new(shard, backends)
            })
            .collect();
        MirrorCluster { config, routers, nodes, global_ids, docs }
    }

    /// The shard snapshots, in shard order (replicas share a snapshot).
    pub(crate) fn nodes(&self) -> &[Arc<MirrorDbms>] {
        &self.nodes
    }

    /// All per-shard global-id lists — the durable layer persists these.
    pub(crate) fn global_ids(&self) -> &[Vec<Oid>] {
        &self.global_ids
    }

    /// Global per-document metadata in global oid order.
    pub fn docs(&self) -> &[DocMeta] {
        &self.docs
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.routers.len()
    }

    /// The global document ids held by `shard`, in ascending order.
    pub fn shard_docs(&self, shard: usize) -> &[Oid] {
        &self.global_ids[shard]
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Simulate a replica crash on one shard; the router fails over to
    /// the shard's remaining replicas.
    pub fn kill_replica(&self, shard: usize, replica: usize) {
        self.routers[shard].kill(replica);
    }

    /// Bring a killed replica back.
    pub fn revive_replica(&self, shard: usize, replica: usize) {
        self.routers[shard].revive(replica);
    }

    /// Layout and replica health.
    pub fn stats(&self) -> ClusterStats {
        ClusterStats {
            shards: self.routers.len(),
            replicas_per_shard: self.config.replicas,
            docs_per_shard: self.global_ids.iter().map(Vec::len).collect(),
            healthy_per_shard: self.routers.iter().map(ReplicaRouter::n_healthy).collect(),
        }
    }

    /// Rewrite a shard's local result oids to global oids (URLs are
    /// already global — every shard stores real URLs).
    fn globalize(&self, shard: usize, hits: Vec<RankedResult>) -> Vec<RankedResult> {
        let ids = &self.global_ids[shard];
        hits.into_iter()
            .map(|h| RankedResult { oid: ids[h.oid as usize], url: h.url, score: h.score })
            .collect()
    }
}

impl Retriever for MirrorCluster {
    fn retrieve(&self, req: &RetrievalRequest) -> RetrievalResult<Vec<RankedResult>> {
        req.validate()?;
        // One shard degenerates to a routed single node: execute inline,
        // no scatter threads, no re-merge allocation beyond the remap.
        if self.routers.len() == 1 {
            let hits = self.routers[0].retrieve(req)?;
            return Ok(self.globalize(0, hits));
        }
        // Scatter: every shard ranks its fragment of the corpus in
        // parallel (each through its replica router) …
        let per_shard: Vec<RetrievalResult<Vec<RankedResult>>> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .routers
                .iter()
                .enumerate()
                .map(|(shard, router)| {
                    s.spawn(move || router.retrieve(req).map(|hits| self.globalize(shard, hits)))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard scatter thread panicked")).collect()
        });
        // … gather: fold the per-shard heaps into one bounded accumulator,
        // the same merge the fragment-parallel executor applies per core.
        let mut acc = TopKAccumulator::new(req.k);
        for result in per_shard {
            for hit in result? {
                acc.push(hit.oid, hit.score);
            }
        }
        Ok(acc
            .into_ranked()
            .into_iter()
            .map(|(oid, score)| RankedResult {
                oid,
                url: self.docs[oid as usize].url.clone(),
                score,
            })
            .collect())
    }

    fn n_docs(&self) -> usize {
        self.docs.len()
    }
}

/// Content-aware placement: k-means over each document's concatenated
/// per-space feature centroid. Falls back to round-robin on degenerate
/// input (no documents, or no features).
fn content_assignment(
    n_docs: usize,
    extractions: &[crate::ingest::Extraction],
    shards: usize,
    seed: u64,
) -> Vec<usize> {
    // mean feature vector per (document, space), spaces in sorted order so
    // concatenation is consistent across documents
    let mut sums: Vec<BTreeMap<&str, (Vec<f64>, usize)>> = vec![BTreeMap::new(); n_docs];
    for (doc, _, space, vector) in extractions {
        let (sum, count) =
            sums[*doc].entry(space.as_str()).or_insert_with(|| (vec![0.0; vector.len()], 0));
        for (s, v) in sum.iter_mut().zip(vector) {
            *s += v;
        }
        *count += 1;
    }
    let points: Vec<Vec<f64>> = sums
        .iter()
        .map(|spaces| {
            spaces
                .values()
                .flat_map(|(sum, count)| {
                    let n = (*count).max(1) as f64;
                    sum.iter().map(move |s| s / n)
                })
                .collect()
        })
        .collect();
    match cluster::kmeans(&points, shards, seed, 50) {
        Some(result) => result.assignment,
        None => (0..n_docs).map(|d| d % shards).collect(),
    }
}

/// Turn a per-document shard assignment into per-shard ascending doc-id
/// lists, rebalancing so no shard is left empty while another has spares
/// (k-means can collapse clusters; an empty shard would waste a node).
fn shard_doc_lists(assignment: Vec<usize>, shards: usize, n_docs: usize) -> Vec<Vec<Oid>> {
    debug_assert_eq!(assignment.len(), n_docs);
    let mut lists: Vec<Vec<Oid>> = vec![Vec::new(); shards];
    for (doc, shard) in assignment.into_iter().enumerate() {
        lists[shard].push(doc as Oid);
    }
    while let Some(empty) = lists.iter().position(Vec::is_empty) {
        let largest = (0..shards).max_by_key(|&s| lists[s].len()).expect("shards >= 1");
        if lists[largest].len() <= 1 {
            break; // fewer documents than shards; empties are unavoidable
        }
        let moved = lists[largest].pop().expect("largest shard is non-empty");
        lists[empty].push(moved);
    }
    for list in &mut lists {
        list.sort_unstable();
    }
    lists
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retriever::RetrievalError;
    use media::{RobotConfig, WebRobot};

    fn corpus(n: usize, seed: u64) -> Vec<CrawledImage> {
        WebRobot::new(RobotConfig { n_images: n, image_size: 24, unannotated_fraction: 0.25, seed })
            .crawl()
    }

    #[test]
    fn hash_shard_is_stable_and_in_range() {
        for shards in 1..=8 {
            for i in 0..200 {
                let url = format!("http://img.example/{i}");
                let s = hash_shard(&url, shards);
                assert!(s < shards);
                assert_eq!(s, hash_shard(&url, shards), "placement must be deterministic");
            }
        }
    }

    #[test]
    fn shard_doc_lists_rebalance_empties() {
        // everything assigned to shard 0 of 3: rebalance must feed 1 and 2
        let lists = shard_doc_lists(vec![0; 9], 3, 9);
        assert!(lists.iter().all(|l| !l.is_empty()), "{lists:?}");
        assert_eq!(lists.iter().map(Vec::len).sum::<usize>(), 9);
        for l in &lists {
            assert!(l.windows(2).all(|w| w[0] < w[1]), "doc lists must stay ascending");
        }
    }

    #[test]
    fn shard_doc_lists_allow_empties_when_docs_are_scarce() {
        let lists = shard_doc_lists(vec![0, 0], 4, 2);
        assert_eq!(lists.iter().map(Vec::len).sum::<usize>(), 2);
        assert_eq!(lists.iter().filter(|l| l.is_empty()).count(), 2);
    }

    #[test]
    fn cluster_partitions_the_whole_corpus() {
        let corpus = corpus(30, 5);
        let cluster = MirrorCluster::build(&corpus, 3, 1).unwrap();
        let stats = cluster.stats();
        assert_eq!(stats.shards, 3);
        assert_eq!(stats.docs_per_shard.iter().sum::<usize>(), 30);
        // every document appears on exactly one shard
        let mut seen: Vec<Oid> = (0..3).flat_map(|s| cluster.shard_docs(s).to_vec()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..30).collect::<Vec<Oid>>());
        assert_eq!(cluster.n_docs(), 30);
    }

    #[test]
    fn cluster_matches_single_node_bit_for_bit() {
        let corpus = corpus(30, 5);
        let mut single = MirrorDbms::with_defaults();
        single.ingest(&corpus).unwrap();
        for shards in [1usize, 2, 3] {
            let cluster = MirrorCluster::build(&corpus, shards, 1).unwrap();
            for (q, k) in [("sunset glow evening", 10), ("forest tree", 7), ("ocean", 30)] {
                let want = single.query_text(q, k).unwrap();
                let got = cluster.query_text(q, k).unwrap();
                assert_eq!(got, want, "text {q:?} k={k} shards={shards}");
            }
            let want = single.query_dual("sunset glow", 0.6, 20).unwrap();
            let got = cluster.query_dual("sunset glow", 0.6, 20).unwrap();
            assert_eq!(got, want, "dual shards={shards}");
            let want = single.query_text_filtered("sunset", "/sunset/", 10).unwrap();
            let got = cluster.query_text_filtered("sunset", "/sunset/", 10).unwrap();
            assert_eq!(got, want, "filtered shards={shards}");
        }
    }

    #[test]
    fn content_partitioning_also_matches_single_node() {
        let corpus = corpus(24, 9);
        let mut single = MirrorDbms::with_defaults();
        single.ingest(&corpus).unwrap();
        let cluster = MirrorCluster::build_with(
            &corpus,
            ClusterConfig { shards: 3, partitioning: Partitioning::Content, ..Default::default() },
        )
        .unwrap();
        assert!(cluster.stats().docs_per_shard.iter().all(|&n| n > 0));
        let want = single.query_text("sunset glow evening", 12).unwrap();
        let got = cluster.query_text("sunset glow evening", 12).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn failover_retries_once_then_errors_when_no_replica_is_left() {
        let corpus = corpus(20, 7);
        let cluster = MirrorCluster::build(&corpus, 2, 2).unwrap();
        let healthy = cluster.query_text("sunset", 10).unwrap();
        // kill one replica of each shard: routing fails over transparently
        cluster.kill_replica(0, 0);
        cluster.kill_replica(1, 1);
        assert_eq!(cluster.query_text("sunset", 10).unwrap(), healthy);
        // kill the rest of shard 0: its router has nothing left
        cluster.kill_replica(0, 1);
        let err = cluster.query_text("sunset", 10).unwrap_err();
        assert!(matches!(err, RetrievalError::ShardUnavailable { shard: 0, .. }), "{err}");
        // revive and the cluster heals
        cluster.revive_replica(0, 0);
        assert_eq!(cluster.query_text("sunset", 10).unwrap(), healthy);
    }

    #[test]
    fn bad_filter_is_rejected_at_the_cluster_edge() {
        let corpus = corpus(12, 3);
        let cluster = MirrorCluster::build(&corpus, 2, 1).unwrap();
        let err = cluster.query_text_filtered("sunset", "", 5).unwrap_err();
        assert!(matches!(err, RetrievalError::BadFilter(_)));
    }
}
