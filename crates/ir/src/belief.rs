//! Belief estimation — the probabilistic heart of the inference network.
//!
//! InQuery's default belief in term `t` given document `d`:
//!
//! ```text
//! bel(t, d) = α + (1 − α) · ntf · nidf
//! ntf  = tf / (tf + 0.5 + 1.5 · dl/avg_dl)      (Okapi-style tf normalisation)
//! nidf = log((N + 0.5) / df) / log(N + 1)
//! ```
//!
//! with default belief α = 0.4 (also the belief assigned when the term does
//! not occur in the document at all).

use crate::index::InvertedIndex;
use monet::Oid;

/// Parameters of the belief function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeliefParams {
    /// The default belief α.
    pub alpha: f64,
    /// The tf saturation constant (InQuery uses 0.5).
    pub k_tf: f64,
    /// The length normalisation constant (InQuery uses 1.5).
    pub k_len: f64,
}

/// InQuery's default parameters.
pub const DEFAULT_BELIEF: BeliefParams = BeliefParams { alpha: 0.4, k_tf: 0.5, k_len: 1.5 };

impl Default for BeliefParams {
    fn default() -> Self {
        DEFAULT_BELIEF
    }
}

impl BeliefParams {
    /// Normalised term frequency.
    #[inline]
    pub fn ntf(&self, tf: u32, dl: u32, avg_dl: f64) -> f64 {
        if tf == 0 {
            return 0.0;
        }
        let dl_ratio = if avg_dl > 0.0 { dl as f64 / avg_dl } else { 1.0 };
        tf as f64 / (tf as f64 + self.k_tf + self.k_len * dl_ratio)
    }

    /// Normalised inverse document frequency.
    #[inline]
    pub fn nidf(&self, df: u32, n_docs: usize) -> f64 {
        if df == 0 || n_docs == 0 {
            return 0.0;
        }
        let n = n_docs as f64;
        ((n + 0.5) / df as f64).ln() / (n + 1.0).ln()
    }

    /// Belief in `t` given `d` from raw statistics.
    #[inline]
    pub fn belief(&self, tf: u32, df: u32, dl: u32, n_docs: usize, avg_dl: f64) -> f64 {
        if tf == 0 {
            return self.alpha;
        }
        self.alpha + (1.0 - self.alpha) * self.ntf(tf, dl, avg_dl) * self.nidf(df, n_docs)
    }

    /// Upper bound on the belief any single document can reach for a term
    /// with the given `max_tf` (greatest within-document frequency) and
    /// `df`. Sound because `ntf(tf, dl) = tf / (tf + k_tf + k_len·dl/avg)`
    /// is monotone in tf and the length term only shrinks it:
    /// `ntf ≤ max_tf / (max_tf + k_tf)`. Top-k evaluation uses this to
    /// skip documents that provably cannot enter the result
    /// ([`crate::topk`]).
    #[inline]
    pub fn belief_bound(&self, max_tf: u32, df: u32, n_docs: usize) -> f64 {
        if max_tf == 0 {
            return self.alpha;
        }
        let sat = max_tf as f64 / (max_tf as f64 + self.k_tf);
        let lift = (1.0 - self.alpha) * sat * self.nidf(df, n_docs);
        // a pathological α > 1 makes the lift negative; the bound is then α
        self.alpha + lift.max(0.0)
    }

    /// Belief in `term` given document `doc` of `index` — the
    /// tuple-at-a-time evaluation path.
    pub fn belief_in(&self, index: &InvertedIndex, term: &str, doc: Oid) -> f64 {
        let stats = index.stats();
        let tf = index.tf(term, doc);
        self.belief(tf, index.df(term), index.doc_len(doc), stats.n_docs, stats.avg_dl)
    }

    /// Set-at-a-time belief list for one term: `(doc, belief)` for every
    /// document in the term's postings (documents without the term are
    /// *not* emitted; their belief is α by definition).
    pub fn belief_list(&self, index: &InvertedIndex, term: &str) -> Vec<(Oid, f64)> {
        let stats = index.stats();
        let df = index.df(term);
        let Some(posts) = index.postings(term) else { return Vec::new() };
        posts
            .iter()
            .map(|p| {
                (p.doc, self.belief(p.tf, df, index.doc_len(p.doc), stats.n_docs, stats.avg_dl))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;

    fn idx() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        b.add_text(Some("sunset beach sunset"));
        b.add_text(Some("forest mist"));
        b.add_text(Some("sunset forest beach waves horizon"));
        b.build()
    }

    #[test]
    fn belief_is_alpha_for_absent_terms() {
        let p = DEFAULT_BELIEF;
        let i = idx();
        assert_eq!(p.belief_in(&i, "sunset", 1), 0.4);
        assert_eq!(p.belief_in(&i, "notaterm", 0), 0.4);
    }

    #[test]
    fn belief_increases_with_tf() {
        let p = DEFAULT_BELIEF;
        let i = idx();
        // doc 0 has sunset twice, doc 2 once (and is longer)
        let b0 = p.belief_in(&i, "sunset", 0);
        let b2 = p.belief_in(&i, "sunset", 2);
        assert!(b0 > b2, "{b0} vs {b2}");
        assert!(b0 > 0.4 && b0 < 1.0);
    }

    #[test]
    fn rarer_terms_score_higher() {
        let p = DEFAULT_BELIEF;
        let i = idx();
        // mist occurs in 1 doc, forest in 2: same tf=1 in doc 1
        let rare = p.belief_in(&i, "mist", 1);
        let common = p.belief_in(&i, "forest", 1);
        assert!(rare > common, "{rare} vs {common}");
    }

    #[test]
    fn nidf_monotone_in_df() {
        let p = DEFAULT_BELIEF;
        let a = p.nidf(1, 100);
        let b = p.nidf(10, 100);
        let c = p.nidf(100, 100);
        assert!(a > b && b > c);
        assert!(c >= 0.0);
        assert_eq!(p.nidf(0, 100), 0.0);
    }

    #[test]
    fn ntf_saturates() {
        let p = DEFAULT_BELIEF;
        let n1 = p.ntf(1, 10, 10.0);
        let n10 = p.ntf(10, 10, 10.0);
        let n100 = p.ntf(100, 10, 10.0);
        assert!(n1 < n10 && n10 < n100);
        assert!(n100 < 1.0);
        assert_eq!(p.ntf(0, 10, 10.0), 0.0);
    }

    #[test]
    fn longer_documents_are_normalised_down() {
        let p = DEFAULT_BELIEF;
        let short = p.ntf(2, 5, 10.0);
        let long = p.ntf(2, 50, 10.0);
        assert!(short > long);
    }

    #[test]
    fn belief_list_matches_pointwise() {
        let p = DEFAULT_BELIEF;
        let i = idx();
        let bl = p.belief_list(&i, "sunset");
        assert_eq!(bl.len(), 2);
        for (doc, b) in bl {
            assert!((b - p.belief_in(&i, "sunset", doc)).abs() < 1e-12);
        }
        assert!(p.belief_list(&i, "nothere").is_empty());
    }

    #[test]
    fn belief_bound_dominates_every_document() {
        let p = DEFAULT_BELIEF;
        let i = idx();
        let stats = i.stats();
        for term in ["sunset", "beach", "forest", "mist", "waves", "horizon"] {
            let bound = p.belief_bound(i.max_tf(term), i.df(term), stats.n_docs);
            for doc in 0..stats.n_docs as u32 {
                let b = p.belief_in(&i, term, doc);
                assert!(b <= bound, "{term} doc {doc}: belief {b} above bound {bound}");
            }
        }
        // absent terms bound to α
        assert_eq!(p.belief_bound(0, 0, stats.n_docs), p.alpha);
    }

    #[test]
    fn beliefs_bounded() {
        let p = DEFAULT_BELIEF;
        for tf in [0u32, 1, 5, 100] {
            for df in [1u32, 5] {
                let b = p.belief(tf, df, 10, 100, 12.0);
                assert!((0.0..=1.0).contains(&b), "belief {b} out of range");
            }
        }
    }
}
