//! # ir — inference-network information retrieval
//!
//! This crate implements the retrieval machinery of the Mirror DBMS: the
//! **inference network retrieval model** (the ranking scheme of the InQuery
//! system, after Wong & Yao's probabilistic-inference view of IR) and the
//! **CONTREP** Moa structure that exposes it inside the object algebra.
//!
//! An IR model has three parts (Section 3 of the paper):
//!
//! 1. *representation* — documents and queries are bags of terms; the text
//!    pipeline ([`text`]) tokenises, drops stopwords and Porter-stems; the
//!    index ([`index`]) keeps postings, document lengths and collection
//!    statistics, and can materialise all of them as BATs;
//! 2. *ranking* — per-term beliefs `bel(t,d) = α + (1−α)·ntf·nidf`
//!    ([`belief`]) combined through inference-network operators
//!    (`#sum #wsum #and #or #not #max`, [`net`]);
//! 3. *query formulation* — weighted term sets, produced upstream (by the
//!    user, or by the thesaurus during dual-coding retrieval).
//!
//! [`contrep`] registers the `CONTREP` structure with Moa and the `getBL`
//! probabilistic operator with the kernel — the extensibility showcase of
//! the paper: *new structures in Moa, supported by new probabilistic
//! operators at the physical level*.

#![warn(missing_docs)]

pub mod belief;
pub mod contrep;
pub mod delta;
pub mod dict;
pub mod index;
pub mod net;
pub mod postings;
pub mod text;
pub mod topk;

pub use belief::{BeliefParams, DEFAULT_BELIEF};
pub use contrep::{register_contrep, Contrep, ContrepStore};
pub use delta::{eval_live_channel, DeltaSeg, LiveStats, LiveTerm};
pub use dict::TermDict;
pub use index::{CollectionStats, IndexBuilder, InvertedIndex, INDEX_FORMAT_VERSION};
pub use net::{QueryNode, Ranker};
pub use postings::{BlockMeta, PostingList, BLOCK_LEN};
pub use text::{is_stopword, porter_stem, tokenize, tokenize_stemmed};
pub use topk::{topk_beliefs, topk_beliefs_raw, RawPostings, TopKAccumulator, TopKOutcome};
