//! The inverted index and collection statistics.
//!
//! The index is the flattened form of a `CONTREP<Text>` column: term
//! dictionary, postings (term → (document, tf) pairs), document lengths and
//! global statistics. [`InvertedIndex::register_bats`] materialises all of
//! it as BATs, which is what "implementing an IR model on a binary
//! relational physical data model" means in practice — the ranking
//! operators are then ordinary (custom) kernel operators over columns.
//!
//! Postings are held block-compressed ([`crate::postings::PostingList`]):
//! delta-encoded doc ids and bitpacked tfs in fixed-size blocks, each
//! carrying block-max metadata. Consumers that stream postings use the
//! block API ([`InvertedIndex::postings_list`]); [`InvertedIndex::postings`]
//! keeps the decoded raw-vec shape as a compatibility path.

use crate::dict::TermDict;
use crate::postings::PostingList;
use crate::text::tokenize_stemmed;
use monet::storage::{ByteReader, ByteWriter, ENDIAN_SENTINEL};
use monet::{Bat, Catalog, Column, MonetError, Oid};

/// One posting: a document and the term's frequency within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// Document oid.
    pub doc: Oid,
    /// Term frequency.
    pub tf: u32,
}

/// Magic prefix of a serialised index blob.
const INDEX_MAGIC: &[u8; 7] = b"MIRRIDX";

/// On-disk format version of [`InvertedIndex::to_bytes`] this build reads
/// and writes. v1 was the unversioned raw-posting layout (no magic); v2
/// stores the block-compressed postings directly.
pub const INDEX_FORMAT_VERSION: u8 = 2;

/// Global collection statistics (the paper's `stats` structure).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectionStats {
    /// Number of documents.
    pub n_docs: usize,
    /// Number of distinct terms.
    pub n_terms: usize,
    /// Average document length in tokens.
    pub avg_dl: f64,
    /// Total token count.
    pub total_tokens: u64,
}

/// An immutable inverted index over one document collection.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    dict: TermDict,
    /// Block-compressed postings per term id, document-ordered.
    postings: Vec<PostingList>,
    /// Document frequency per term id.
    df: Vec<u32>,
    /// Collection frequency per term id.
    cf: Vec<u64>,
    /// Greatest within-document frequency per term id — the raw statistic
    /// behind the per-term belief upper bounds that top-k pruning uses.
    max_tf: Vec<u32>,
    /// Token count per document.
    doc_len: Vec<u32>,
    /// Pinned collection statistics of the *parent* collection when this
    /// index is a shard projection; `None` for a self-contained index.
    /// Beliefs scored against a projection use these instead of locally
    /// recomputed statistics, so every shard of a partitioned corpus ranks
    /// with the same `n_docs`/`avg_dl` as the unpartitioned collection.
    pinned_stats: Option<CollectionStats>,
}

impl InvertedIndex {
    /// The term dictionary.
    pub fn dict(&self) -> &TermDict {
        &self.dict
    }

    /// Postings of a term decoded into the raw-vec shape, if the term
    /// occurs — the compatibility path for tuple- and set-at-a-time
    /// consumers. Streaming consumers should use
    /// [`postings_list`](Self::postings_list) and decode block-at-a-time.
    pub fn postings(&self, term: &str) -> Option<Vec<Posting>> {
        Some(self.postings_list(term)?.to_vec())
    }

    /// The block-compressed postings of a term, if the term occurs.
    pub fn postings_list(&self, term: &str) -> Option<&PostingList> {
        let tid = self.dict.lookup(term)?;
        self.postings.get(tid as usize)
    }

    /// The block-compressed postings of a term id, `None` when the id is
    /// outside the dictionary.
    pub fn postings_by_id(&self, tid: u32) -> Option<&PostingList> {
        self.postings.get(tid as usize)
    }

    /// Document frequency of a term (0 when absent).
    pub fn df(&self, term: &str) -> u32 {
        self.dict.lookup(term).map_or(0, |t| self.df[t as usize])
    }

    /// Iterate `(term, document frequency)` over the whole dictionary, in
    /// term-id order — the ingest-time feed for the logical layer's
    /// statistics catalog.
    pub fn term_dfs(&self) -> impl Iterator<Item = (&str, u32)> {
        self.dict.iter().map(move |(id, t)| (t, self.df[id as usize]))
    }

    /// Collection frequency of a term (0 when absent).
    pub fn cf(&self, term: &str) -> u64 {
        self.dict.lookup(term).map_or(0, |t| self.cf[t as usize])
    }

    /// Greatest term frequency of `term` within any single document
    /// (0 when absent). Because the belief function is monotone in tf and
    /// the length normalisation only shrinks it, `max_tf` yields a sound
    /// per-term belief upper bound — see
    /// [`crate::belief::BeliefParams::belief_bound`].
    pub fn max_tf(&self, term: &str) -> u32 {
        self.dict.lookup(term).map_or(0, |t| self.max_tf[t as usize])
    }

    /// Length (token count) of document `doc`.
    pub fn doc_len(&self, doc: Oid) -> u32 {
        self.doc_len.get(doc as usize).copied().unwrap_or(0)
    }

    /// Term frequency of `term` in `doc` — a per-document lookup, the
    /// operation a tuple-at-a-time engine performs per (doc, term) pair.
    /// Touches exactly one compressed block.
    pub fn tf(&self, term: &str, doc: Oid) -> u32 {
        self.postings_list(term).map_or(0, |posts| posts.tf_of(doc))
    }

    /// Collection statistics. For a [shard projection](Self::shard_projection)
    /// these are the pinned statistics of the parent collection, not the
    /// local fragment's — the property that makes sharded ranking
    /// bit-identical to single-node ranking.
    pub fn stats(&self) -> CollectionStats {
        if let Some(pinned) = self.pinned_stats {
            return pinned;
        }
        let total: u64 = self.doc_len.iter().map(|&l| l as u64).sum();
        let n = self.doc_len.len();
        CollectionStats {
            n_docs: n,
            n_terms: self.dict.len(),
            avg_dl: if n == 0 { 0.0 } else { total as f64 / n as f64 },
            total_tokens: total,
        }
    }

    /// Heap bytes held by the compressed posting lists (payload words plus
    /// skip indexes) — the numerator of the §E13 bytes-per-document metric.
    pub fn postings_heap_bytes(&self) -> usize {
        self.postings.iter().map(PostingList::heap_bytes).sum()
    }

    /// Bytes the same postings would occupy in the raw-vec representation
    /// (8 bytes per posting) — the §E13 baseline.
    pub fn raw_postings_bytes(&self) -> usize {
        self.postings.iter().map(|p| p.len() * std::mem::size_of::<Posting>()).sum()
    }

    /// Project the index onto a subset of its documents (ascending global
    /// doc ids), remapping them to dense local oids `0..docs.len()` —
    /// the index a corpus shard serves in a scatter-gather deployment.
    ///
    /// The projection keeps the parent's *global* term statistics: the
    /// dictionary, `df`, `cf` and `max_tf` arrays are inherited unchanged,
    /// and [`stats`](Self::stats) is pinned to the parent's values. Only
    /// postings and document lengths are restricted — each surviving
    /// posting run is re-cut into fresh compressed blocks over the local
    /// oids. A belief scored for a document through the projection is
    /// therefore the same floating-point value the parent index produces,
    /// and per-shard top-k heaps merge into exactly the single-node
    /// ranking ([`crate::topk::TopKAccumulator::merge`]).
    ///
    /// # Panics
    /// Panics if `docs` is not strictly ascending or contains an id
    /// outside the collection.
    pub fn shard_projection(&self, docs: &[Oid]) -> InvertedIndex {
        assert!(docs.windows(2).all(|w| w[0] < w[1]), "shard doc ids must be strictly ascending");
        if let Some(&last) = docs.last() {
            assert!(
                (last as usize) < self.n_docs(),
                "doc id {last} outside collection of {} docs",
                self.n_docs()
            );
        }
        // global doc id → local oid (dense because `docs` is ascending)
        let mut local = vec![Oid::MAX; self.n_docs()];
        for (i, &d) in docs.iter().enumerate() {
            local[d as usize] = i as Oid;
        }
        let mut scratch = Vec::new();
        let postings = self
            .postings
            .iter()
            .map(|posts| {
                scratch.clear();
                scratch.extend(
                    posts
                        .to_vec()
                        .into_iter()
                        .filter(|p| local[p.doc as usize] != Oid::MAX)
                        .map(|p| Posting { doc: local[p.doc as usize], tf: p.tf }),
                );
                PostingList::from_postings(&scratch)
            })
            .collect();
        InvertedIndex {
            dict: self.dict.clone(),
            postings,
            df: self.df.clone(),
            cf: self.cf.clone(),
            max_tf: self.max_tf.clone(),
            doc_len: docs.iter().map(|&d| self.doc_len(d)).collect(),
            pinned_stats: Some(self.stats()),
        }
    }

    /// Number of documents.
    pub fn n_docs(&self) -> usize {
        self.doc_len.len()
    }

    /// Materialise the index as BATs under `prefix`:
    ///
    /// * `{prefix}__term`    — `[tid, term]`
    /// * `{prefix}__df`      — `[tid, document frequency]`
    /// * `{prefix}__post_t`  — `[pid, tid]` (posting → term)
    /// * `{prefix}__post_d`  — `[pid, doc]` (posting → document)
    /// * `{prefix}__post_tf` — `[pid, tf]`
    /// * `{prefix}__dl`      — `[doc, length]`
    pub fn register_bats(&self, catalog: &Catalog, prefix: &str) {
        let terms: Column = self.dict.iter().map(|(_, t)| t).collect();
        catalog.register(format!("{prefix}__term"), Bat::dense(terms));
        catalog.register(
            format!("{prefix}__df"),
            Bat::dense(Column::Int(self.df.iter().map(|&d| d as i64).collect())),
        );
        let mut post_t = Vec::new();
        let mut post_d = Vec::new();
        let mut post_tf = Vec::new();
        for (tid, posts) in self.postings.iter().enumerate() {
            for p in posts.to_vec() {
                post_t.push(tid as Oid);
                post_d.push(p.doc);
                post_tf.push(p.tf as i64);
            }
        }
        catalog.register(format!("{prefix}__post_t"), Bat::dense(Column::Oid(post_t)));
        catalog.register(format!("{prefix}__post_d"), Bat::dense(Column::Oid(post_d)));
        catalog.register(format!("{prefix}__post_tf"), Bat::dense(Column::Int(post_tf)));
        catalog.register(
            format!("{prefix}__dl"),
            Bat::dense(Column::Int(self.doc_len.iter().map(|&l| l as i64).collect())),
        );
    }

    /// Serialise the whole index — dictionary, postings, statistics and
    /// any pinned parent statistics — into a self-contained versioned byte
    /// blob (the storage tier's little-endian codec). The compressed
    /// posting blocks are written verbatim: nothing is decoded on the way
    /// to disk, so the on-disk and in-RAM representations shrink together.
    /// Shard projections stay projections across a save/open cycle: the
    /// pinned global statistics travel with the blob, so a reopened shard
    /// ranks bit-identically to the original.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.bytes(INDEX_MAGIC);
        w.u8(INDEX_FORMAT_VERSION);
        w.u16(ENDIAN_SENTINEL);
        w.u64(self.doc_len.len() as u64);
        for &dl in &self.doc_len {
            w.u32(dl);
        }
        w.u64(self.dict.len() as u64);
        for (_, term) in self.dict.iter() {
            w.str(term);
        }
        for tid in 0..self.dict.len() {
            w.u32(self.df[tid]);
            w.u64(self.cf[tid]);
            w.u32(self.max_tf[tid]);
            self.postings[tid].write_to(&mut w);
        }
        match &self.pinned_stats {
            None => w.u8(0),
            Some(s) => {
                w.u8(1);
                w.u64(s.n_docs as u64);
                w.u64(s.n_terms as u64);
                w.f64(s.avg_dl);
                w.u64(s.total_tokens);
            }
        }
        w.into_bytes()
    }

    /// Decode an index serialised by [`to_bytes`](Self::to_bytes).
    ///
    /// A blob carrying any other format version — including the legacy v1
    /// raw-posting layout, which had no magic prefix — is rejected with a
    /// typed [`monet::MonetError::FormatVersion`] before any payload is
    /// decoded. Every length is validated before allocation and every
    /// posting block is cross-checked against its block-max metadata;
    /// torn or corrupted blobs come back as [`monet::MonetError::Corrupt`].
    pub fn from_bytes(bytes: &[u8]) -> monet::Result<InvertedIndex> {
        let corrupt =
            |detail: String| MonetError::Corrupt { what: "inverted index".to_string(), detail };
        if bytes.len() < INDEX_MAGIC.len() + 3 || &bytes[..INDEX_MAGIC.len()] != INDEX_MAGIC {
            // the legacy v1 layout started straight with the dictionary
            // length — no magic to check, so any unmagicked blob is
            // rejected as the version we no longer read
            return Err(MonetError::FormatVersion {
                found: 1,
                expected: INDEX_FORMAT_VERSION as u32,
            });
        }
        let version = bytes[INDEX_MAGIC.len()];
        if version != INDEX_FORMAT_VERSION {
            return Err(MonetError::FormatVersion {
                found: version as u32,
                expected: INDEX_FORMAT_VERSION as u32,
            });
        }
        let mut r = ByteReader::new(&bytes[INDEX_MAGIC.len() + 1..], "inverted index");
        let sentinel = r.u16()?;
        if sentinel != ENDIAN_SENTINEL {
            return Err(corrupt(format!(
                "endianness sentinel {sentinel:#06x} — written with a different byte order"
            )));
        }
        let n_docs = r.len64(r.remaining() / 4)?;
        let mut doc_len = Vec::with_capacity(n_docs);
        for _ in 0..n_docs {
            doc_len.push(r.u32()?);
        }
        let n_terms = r.len64(r.remaining())?;
        let mut dict = TermDict::new();
        for _ in 0..n_terms {
            dict.intern(&r.str()?);
        }
        if dict.len() != n_terms {
            return Err(corrupt("duplicate terms in serialised dictionary".into()));
        }
        let mut postings = Vec::with_capacity(n_terms);
        let mut df = Vec::with_capacity(n_terms);
        let mut cf = Vec::with_capacity(n_terms);
        let mut max_tf = Vec::with_capacity(n_terms);
        for _ in 0..n_terms {
            df.push(r.u32()?);
            cf.push(r.u64()?);
            max_tf.push(r.u32()?);
            postings.push(PostingList::read_from(&mut r, n_docs)?);
        }
        let pinned_stats = match r.u8()? {
            0 => None,
            1 => Some(CollectionStats {
                n_docs: r.u64()? as usize,
                n_terms: r.u64()? as usize,
                avg_dl: r.f64()?,
                total_tokens: r.u64()?,
            }),
            other => return Err(corrupt(format!("bad pinned-stats marker {other}"))),
        };
        if !r.is_exhausted() {
            return Err(corrupt(format!("{} trailing bytes", r.remaining())));
        }
        // a self-contained index must have df == postings; a shard
        // projection's df is the parent's global count, so only the
        // inequality direction holds there
        for (tid, posts) in postings.iter().enumerate() {
            let ok = if pinned_stats.is_some() {
                posts.len() <= df[tid] as usize
            } else {
                posts.len() == df[tid] as usize
            };
            if !ok {
                return Err(corrupt(format!(
                    "term {tid}: {} postings but df {}",
                    posts.len(),
                    df[tid]
                )));
            }
        }
        Ok(InvertedIndex { dict, postings, df, cf, max_tf, doc_len, pinned_stats })
    }
}

/// Incremental index builder.
#[derive(Debug, Default)]
pub struct IndexBuilder {
    dict: TermDict,
    postings: Vec<Vec<Posting>>,
    cf: Vec<u64>,
    doc_len: Vec<u32>,
}

impl IndexBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add the next document from raw text (tokenise + stem). Missing
    /// documents (`None`) get an empty representation, keeping doc oids
    /// aligned with collection oids.
    pub fn add_text(&mut self, text: Option<&str>) {
        match text {
            Some(t) => self.add_tokens(&tokenize_stemmed(t)),
            None => self.add_tokens::<&str>(&[]),
        }
    }

    /// Add the next document from pre-tokenised terms (used for visual
    /// "documents" whose terms are cluster names).
    pub fn add_tokens<S: AsRef<str>>(&mut self, tokens: &[S]) {
        let doc = self.doc_len.len() as Oid;
        self.doc_len.push(tokens.len() as u32);
        // per-document tf accumulation
        let mut counts: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for t in tokens {
            let tid = self.dict.intern(t.as_ref());
            if tid as usize >= self.postings.len() {
                self.postings.push(Vec::new());
                self.cf.push(0);
            }
            *counts.entry(tid).or_insert(0) += 1;
            self.cf[tid as usize] += 1;
        }
        let mut tids: Vec<_> = counts.into_iter().collect();
        tids.sort_unstable();
        for (tid, tf) in tids {
            self.postings[tid as usize].push(Posting { doc, tf });
        }
    }

    /// Freeze into an immutable index, compressing each posting run into
    /// blocks.
    pub fn build(self) -> InvertedIndex {
        let df = self.postings.iter().map(|p| p.len() as u32).collect();
        let max_tf =
            self.postings.iter().map(|p| p.iter().map(|post| post.tf).max().unwrap_or(0)).collect();
        let postings = self.postings.iter().map(|p| PostingList::from_postings(p)).collect();
        InvertedIndex {
            dict: self.dict,
            postings,
            df,
            cf: self.cf,
            max_tf,
            doc_len: self.doc_len,
            pinned_stats: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_index() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        b.add_text(Some("the sunset over the beach"));
        b.add_text(Some("a forest in the mist, a quiet forest"));
        b.add_text(None);
        b.add_text(Some("sunset colors on the beach sand"));
        b.build()
    }

    #[test]
    fn postings_and_df() {
        let idx = small_index();
        assert_eq!(idx.df("sunset"), 2);
        assert_eq!(idx.df("forest"), 1);
        assert_eq!(idx.df("nothere"), 0);
        let posts = idx.postings("sunset").unwrap();
        assert_eq!(posts.len(), 2);
        assert_eq!(posts[0].doc, 0);
        assert_eq!(posts[1].doc, 3);
        // the block view agrees with the decoded view
        let list = idx.postings_list("sunset").unwrap();
        assert_eq!(list.len(), 2);
        assert_eq!(list.to_vec(), posts);
    }

    #[test]
    fn postings_by_id_is_validated() {
        let idx = small_index();
        let tid = idx.dict().lookup("sunset").unwrap();
        assert_eq!(idx.postings_by_id(tid).unwrap().len(), 2);
        // out-of-range ids are None, not a panic
        assert!(idx.postings_by_id(u32::MAX).is_none());
        assert!(idx.postings_by_id(idx.dict().len() as u32).is_none());
    }

    #[test]
    fn tf_within_document() {
        let idx = small_index();
        assert_eq!(idx.tf("forest", 1), 2);
        assert_eq!(idx.tf("forest", 0), 0);
        assert_eq!(idx.cf("forest"), 2);
    }

    #[test]
    fn max_tf_tracks_the_densest_document() {
        let idx = small_index();
        assert_eq!(idx.max_tf("forest"), 2); // twice in doc 1
        assert_eq!(idx.max_tf("sunset"), 1);
        assert_eq!(idx.max_tf("nothere"), 0);
        // max_tf dominates every per-document tf
        for term in ["sunset", "beach", "forest", "mist"] {
            for doc in 0..4 {
                assert!(idx.tf(term, doc) <= idx.max_tf(term));
            }
        }
    }

    #[test]
    fn doc_len_counts_kept_tokens() {
        let idx = small_index();
        // "the sunset over the beach" → stopwords removed → sunset, beach
        assert_eq!(idx.doc_len(0), 2);
        assert_eq!(idx.doc_len(2), 0); // missing annotation
    }

    #[test]
    fn stats_are_consistent() {
        let idx = small_index();
        let s = idx.stats();
        assert_eq!(s.n_docs, 4);
        assert!(s.n_terms >= 6);
        assert!((s.avg_dl - s.total_tokens as f64 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn compressed_postings_use_fewer_bytes_than_raw() {
        let mut b = IndexBuilder::new();
        for d in 0..2000 {
            let toks: Vec<String> = (0..6).map(|j| format!("w{}", (d * 3 + j * 5) % 40)).collect();
            b.add_tokens(&toks);
        }
        let idx = b.build();
        assert!(
            idx.postings_heap_bytes() * 2 < idx.raw_postings_bytes(),
            "compressed {} vs raw {}",
            idx.postings_heap_bytes(),
            idx.raw_postings_bytes()
        );
    }

    #[test]
    fn bats_mirror_the_index() {
        let idx = small_index();
        let cat = Catalog::new();
        idx.register_bats(&cat, "Lib__annotation");
        let terms = cat.get("Lib__annotation__term").unwrap();
        assert_eq!(terms.count(), idx.dict().len());
        let post_d = cat.get("Lib__annotation__post_d").unwrap();
        let post_tf = cat.get("Lib__annotation__post_tf").unwrap();
        assert_eq!(post_d.count(), post_tf.count());
        let dl = cat.get("Lib__annotation__dl").unwrap();
        assert_eq!(dl.count(), 4);
        // postings count = sum of dfs
        let df = cat.get("Lib__annotation__df").unwrap();
        let total_df: i64 = df.tail().int_slice().unwrap().iter().sum();
        assert_eq!(total_df as usize, post_d.count());
    }

    #[test]
    fn tokens_api_for_visual_terms() {
        let mut b = IndexBuilder::new();
        b.add_tokens(&["rgb_3", "rgb_3", "gabor_21"]);
        let idx = b.build();
        assert_eq!(idx.tf("rgb_3", 0), 2);
        assert_eq!(idx.df("gabor_21"), 1);
    }

    #[test]
    fn empty_index() {
        let idx = IndexBuilder::new().build();
        assert_eq!(idx.n_docs(), 0);
        assert_eq!(idx.stats().avg_dl, 0.0);
        assert!(idx.postings("x").is_none());
    }

    #[test]
    fn shard_projection_keeps_global_statistics() {
        let idx = small_index();
        let shard = idx.shard_projection(&[1, 3]);
        // global statistics are pinned, not recomputed from the fragment
        assert_eq!(shard.stats(), idx.stats());
        assert_eq!(shard.df("sunset"), idx.df("sunset"));
        assert_eq!(shard.cf("forest"), idx.cf("forest"));
        assert_eq!(shard.max_tf("forest"), idx.max_tf("forest"));
        // local data is restricted and remapped: global 1 → local 0, 3 → 1
        assert_eq!(shard.n_docs(), 2);
        assert_eq!(shard.doc_len(0), idx.doc_len(1));
        assert_eq!(shard.doc_len(1), idx.doc_len(3));
        assert_eq!(shard.tf("forest", 0), idx.tf("forest", 1));
        assert_eq!(shard.tf("sunset", 1), idx.tf("sunset", 3));
        // a term whose postings all live on other shards keeps its global
        // df but has no local postings ("forest" occurs only in doc 1)
        let other = idx.shard_projection(&[0, 2]);
        assert_eq!(other.postings("forest").map(|p| p.len()), Some(0));
        assert_eq!(other.df("forest"), 1);
    }

    #[test]
    fn shard_projections_cover_the_parent() {
        let idx = small_index();
        let a = idx.shard_projection(&[0, 2]);
        let b = idx.shard_projection(&[1, 3]);
        assert_eq!(a.n_docs() + b.n_docs(), idx.n_docs());
        // every posting of every term lands on exactly one shard
        for term in ["sunset", "beach", "forest", "mist"] {
            let total = idx.postings(term).map_or(0, |p| p.len());
            let split =
                a.postings(term).map_or(0, |p| p.len()) + b.postings(term).map_or(0, |p| p.len());
            assert_eq!(split, total, "{term}");
        }
    }

    #[test]
    fn shard_projection_recuts_blocks_over_local_oids() {
        // 400 docs, every one containing the term: the projection must
        // re-cut the compressed blocks over local ids, not keep global ids
        let mut b = IndexBuilder::new();
        for d in 0..400u32 {
            b.add_tokens(&["every", if d % 2 == 0 { "even" } else { "odd" }]);
        }
        let idx = b.build();
        let docs: Vec<Oid> = (0..400).filter(|d| d % 2 == 0).collect();
        let shard = idx.shard_projection(&docs);
        let list = shard.postings_list("even").unwrap();
        assert_eq!(list.len(), 200);
        assert_eq!(list.blocks().len(), 200usize.div_ceil(crate::postings::BLOCK_LEN));
        let decoded = list.to_vec();
        // local oids are dense over the shard: 0, 1, 2, …
        assert!(decoded.iter().enumerate().all(|(i, p)| p.doc == i as Oid));
        assert!(list.blocks().last().unwrap().last_doc < 200);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn shard_projection_rejects_unsorted_docs() {
        small_index().shard_projection(&[2, 1]);
    }

    #[test]
    fn bytes_roundtrip_preserves_everything() {
        let idx = small_index();
        let back = InvertedIndex::from_bytes(&idx.to_bytes()).unwrap();
        assert_eq!(back.n_docs(), idx.n_docs());
        assert_eq!(back.stats(), idx.stats());
        for term in ["sunset", "beach", "forest", "mist"] {
            assert_eq!(back.postings(term), idx.postings(term), "{term}");
            assert_eq!(back.df(term), idx.df(term));
            assert_eq!(back.cf(term), idx.cf(term));
            assert_eq!(back.max_tf(term), idx.max_tf(term));
        }
        for d in 0..idx.n_docs() as Oid {
            assert_eq!(back.doc_len(d), idx.doc_len(d));
        }
    }

    #[test]
    fn bytes_roundtrip_keeps_pinned_shard_stats() {
        let idx = small_index();
        let shard = idx.shard_projection(&[1, 3]);
        let back = InvertedIndex::from_bytes(&shard.to_bytes()).unwrap();
        // the reopened shard still ranks with the parent's statistics
        assert_eq!(back.stats(), idx.stats());
        assert_eq!(back.n_docs(), 2);
        assert_eq!(back.postings("forest"), shard.postings("forest"));
    }

    #[test]
    fn blob_stores_postings_compressed() {
        let mut b = IndexBuilder::new();
        for d in 0..3000 {
            let toks: Vec<String> = (0..8).map(|j| format!("w{}", (d + j * 7) % 50)).collect();
            b.add_tokens(&toks);
        }
        let idx = b.build();
        let blob = idx.to_bytes();
        // well under the 8 raw bytes per posting the v1 layout used
        assert!(
            blob.len() < idx.raw_postings_bytes(),
            "blob {} vs raw postings {}",
            blob.len(),
            idx.raw_postings_bytes()
        );
        let back = InvertedIndex::from_bytes(&blob).unwrap();
        assert_eq!(back.postings("w0"), idx.postings("w0"));
    }

    #[test]
    fn legacy_v1_blob_is_rejected_with_typed_version_error() {
        // the v1 layout began with the u64 dictionary length — no magic
        let mut w = ByteWriter::new();
        w.u64(1);
        w.str("sunset");
        let err = InvertedIndex::from_bytes(&w.into_bytes()).unwrap_err();
        assert_eq!(err, MonetError::FormatVersion { found: 1, expected: 2 });
    }

    #[test]
    fn future_version_is_rejected_before_decode() {
        let mut blob = small_index().to_bytes();
        blob[INDEX_MAGIC.len()] = 9;
        assert_eq!(
            InvertedIndex::from_bytes(&blob).unwrap_err(),
            MonetError::FormatVersion { found: 9, expected: 2 }
        );
    }

    #[test]
    fn truncated_or_flipped_blob_is_typed_corrupt() {
        let bytes = small_index().to_bytes();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(InvertedIndex::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // a posting pointing outside the collection is rejected
        let shard = small_index().shard_projection(&[0]);
        let mut blob = shard.to_bytes();
        // flip high bits somewhere in the postings region; either the
        // decode fails structurally or the range check rejects it —
        // silence is the only wrong answer
        let mid = blob.len() / 2;
        blob[mid] ^= 0xFF;
        if let Ok(back) = InvertedIndex::from_bytes(&blob) {
            // decode may survive a flip in, say, a cf value — but doc
            // references must still be in range
            for tid in 0..back.dict().len() as u32 {
                for p in back.postings_by_id(tid).unwrap().to_vec() {
                    assert!((p.doc as usize) < back.n_docs());
                }
            }
        }
    }
}
