//! Block-compressed posting lists.
//!
//! A posting list stores `(doc, tf)` pairs in immutable fixed-size blocks
//! of up to [`BLOCK_LEN`] postings. Within a block, document ids are
//! delta-encoded (`doc[j] − doc[j−1] − 1`, sound because doc ids are
//! strictly ascending) and term frequencies are stored as `tf − 1`; both
//! streams are bitpacked at the block's own width through the storage
//! codec's packing primitives ([`monet::storage`]). Each block carries
//! block-max metadata — its first and last document id and its greatest
//! `tf` — which is what lets the top-k evaluator ([`crate::topk`]) skip
//! whole blocks without decoding them: the block's `max_tf` yields a sound
//! belief upper bound for every posting inside, and `last_doc` lets a
//! cursor seek past the block entirely.
//!
//! The raw-vec representation cost 8 bytes per posting; on natural-language
//! term distributions blocks typically land between 1 and 2 bytes per
//! posting (§E13 measures the exact ratio), so the same corpus moves
//! less memory per query — on disk, at cold open, and on every scan.

use crate::index::Posting;
use monet::storage::{
    bits_for, pack_u32s, packed_words, unpack_u32_at, unpack_u32s, ByteReader, ByteWriter,
};
use monet::{MonetError, Oid};

/// Maximum postings per block. 128 keeps a decoded block inside two cache
/// lines per stream while amortising the per-block metadata to well under
/// a bit per posting.
pub const BLOCK_LEN: usize = 128;

/// Per-block metadata: the skip index entry the evaluator reads *instead
/// of* the block payload when deciding whether to decode it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMeta {
    /// First document id in the block (stored here, not in the payload).
    pub first_doc: Oid,
    /// Last document id in the block — the seek key.
    pub last_doc: Oid,
    /// Greatest term frequency in the block — the block-max bound input.
    pub max_tf: u32,
    /// Postings in this block (≤ [`BLOCK_LEN`]).
    pub count: u32,
    /// Bits per doc-id delta.
    pub doc_bits: u8,
    /// Bits per `tf − 1` value.
    pub tf_bits: u8,
    /// Index of the block's first word in the list's word array.
    pub offset: u32,
}

impl BlockMeta {
    /// Word index of the block's tf stream (the doc deltas come first).
    #[inline]
    fn tf_offset(&self) -> usize {
        self.offset as usize + packed_words(self.count as usize - 1, self.doc_bits as u32)
    }

    /// Words occupied by the block payload.
    #[inline]
    fn words(&self) -> usize {
        let n = self.count as usize;
        packed_words(n - 1, self.doc_bits as u32) + packed_words(n, self.tf_bits as u32)
    }
}

/// An immutable block-compressed posting list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PostingList {
    blocks: Vec<BlockMeta>,
    words: Vec<u64>,
    len: usize,
}

impl PostingList {
    /// Compress a document-ordered posting slice into blocks.
    ///
    /// # Panics
    /// Debug-asserts that doc ids are strictly ascending and every tf is
    /// nonzero — the invariants the index builder maintains.
    pub fn from_postings(posts: &[Posting]) -> PostingList {
        debug_assert!(posts.windows(2).all(|w| w[0].doc < w[1].doc), "postings must be ascending");
        debug_assert!(posts.iter().all(|p| p.tf > 0), "postings must have nonzero tf");
        let mut blocks = Vec::with_capacity(posts.len().div_ceil(BLOCK_LEN));
        let mut words = Vec::new();
        let mut deltas = Vec::with_capacity(BLOCK_LEN);
        let mut tfs = Vec::with_capacity(BLOCK_LEN);
        for chunk in posts.chunks(BLOCK_LEN) {
            deltas.clear();
            tfs.clear();
            let mut max_tf = 0u32;
            for (j, p) in chunk.iter().enumerate() {
                if j > 0 {
                    deltas.push(p.doc - chunk[j - 1].doc - 1);
                }
                tfs.push(p.tf - 1);
                max_tf = max_tf.max(p.tf);
            }
            let doc_bits = bits_for(deltas.iter().copied().max().unwrap_or(0)) as u8;
            let tf_bits = bits_for(max_tf - 1) as u8;
            let offset = words.len() as u32;
            pack_u32s(&mut words, &deltas, doc_bits as u32);
            pack_u32s(&mut words, &tfs, tf_bits as u32);
            blocks.push(BlockMeta {
                first_doc: chunk[0].doc,
                last_doc: chunk[chunk.len() - 1].doc,
                max_tf,
                count: chunk.len() as u32,
                doc_bits,
                tf_bits,
                offset,
            });
        }
        PostingList { blocks, words, len: posts.len() }
    }

    /// Number of postings (the term's document frequency).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the term occurs in no document.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The block metadata array (the skip index).
    pub fn blocks(&self) -> &[BlockMeta] {
        &self.blocks
    }

    /// Decode block `i` into reused scratch buffers (cleared first):
    /// absolute document ids into `docs`, raw term frequencies into `tfs`.
    /// The unpack loops are the branch-light kernel every decoded block
    /// goes through — no per-value branching beyond the word-straddle test.
    pub fn decode_block_into(&self, i: usize, docs: &mut Vec<Oid>, tfs: &mut Vec<u32>) {
        let b = &self.blocks[i];
        let n = b.count as usize;
        // docs temporarily holds the deltas, then prefix-sums in place
        unpack_u32s(&self.words, b.offset as usize, n - 1, b.doc_bits as u32, docs);
        let mut prev = b.first_doc;
        for d in docs.iter_mut() {
            prev += *d + 1;
            *d = prev;
        }
        docs.insert(0, b.first_doc);
        unpack_u32s(&self.words, b.tf_offset(), n, b.tf_bits as u32, tfs);
        for t in tfs.iter_mut() {
            *t += 1;
        }
    }

    /// Decode the whole list back into a posting vector — the
    /// compatibility path for consumers that want the raw-vec shape.
    pub fn to_vec(&self) -> Vec<Posting> {
        let mut out = Vec::with_capacity(self.len);
        let mut docs = Vec::with_capacity(BLOCK_LEN);
        let mut tfs = Vec::with_capacity(BLOCK_LEN);
        for i in 0..self.blocks.len() {
            self.decode_block_into(i, &mut docs, &mut tfs);
            out.extend(docs.iter().zip(&tfs).map(|(&doc, &tf)| Posting { doc, tf }));
        }
        out
    }

    /// Term frequency of `doc`, 0 when absent. Touches exactly one block:
    /// a binary search over the skip index, then a delta walk inside it.
    pub fn tf_of(&self, doc: Oid) -> u32 {
        let i = self.blocks.partition_point(|b| b.last_doc < doc);
        let Some(b) = self.blocks.get(i) else { return 0 };
        if doc < b.first_doc {
            return 0;
        }
        if doc == b.first_doc {
            return unpack_u32_at(&self.words, b.tf_offset(), 0, b.tf_bits as u32) + 1;
        }
        let mut prev = b.first_doc;
        for j in 1..b.count as usize {
            prev += unpack_u32_at(&self.words, b.offset as usize, j - 1, b.doc_bits as u32) + 1;
            if prev == doc {
                return unpack_u32_at(&self.words, b.tf_offset(), j, b.tf_bits as u32) + 1;
            }
            if prev > doc {
                return 0;
            }
        }
        0
    }

    /// Bytes of heap memory held by the compressed representation
    /// (payload words plus the skip index).
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * 8 + self.blocks.len() * std::mem::size_of::<BlockMeta>()
    }

    /// Serialise the compressed form directly — blocks are *not* decoded
    /// on the way to disk. Layout: posting count, payload words, then per
    /// block `first_doc, last_doc, max_tf, doc_bits, tf_bits` (`count` and
    /// `offset` are recomputed on read).
    pub fn write_to(&self, w: &mut ByteWriter) {
        w.u64(self.len as u64);
        w.u64(self.words.len() as u64);
        for word in &self.words {
            w.u64(*word);
        }
        for b in &self.blocks {
            w.u32(b.first_doc);
            w.u32(b.last_doc);
            w.u32(b.max_tf);
            w.u8(b.doc_bits);
            w.u8(b.tf_bits);
        }
    }

    /// Deserialise a list written by [`write_to`](Self::write_to) and
    /// validate it exhaustively against the collection size: block bounds
    /// must be ascending and inside the collection, recomputed offsets
    /// must cover the payload exactly, and every decoded posting must
    /// match its block's metadata (ascending doc ids ending on `last_doc`,
    /// greatest tf equal to `max_tf`) — a corrupt block-max would silently
    /// break pruning soundness, so it is rejected here instead.
    pub fn read_from(r: &mut ByteReader<'_>, n_docs: usize) -> monet::Result<PostingList> {
        let corrupt = |detail: String| MonetError::Corrupt {
            what: "compressed posting list".to_string(),
            detail,
        };
        let len = r.len64(r.remaining().saturating_mul(64))?;
        let n_words = r.len64(r.remaining() / 8)?;
        let mut words = Vec::with_capacity(n_words);
        for _ in 0..n_words {
            words.push(r.u64()?);
        }
        let n_blocks = len.div_ceil(BLOCK_LEN);
        let mut blocks = Vec::with_capacity(n_blocks);
        let mut offset = 0usize;
        for i in 0..n_blocks {
            let first_doc = r.u32()?;
            let last_doc = r.u32()?;
            let max_tf = r.u32()?;
            let doc_bits = r.u8()?;
            let tf_bits = r.u8()?;
            if doc_bits > 32 || tf_bits > 32 {
                return Err(corrupt(format!("block {i}: widths {doc_bits}/{tf_bits} exceed 32")));
            }
            let count = (len - i * BLOCK_LEN).min(BLOCK_LEN) as u32;
            let meta = BlockMeta {
                first_doc,
                last_doc,
                max_tf,
                count,
                doc_bits,
                tf_bits,
                offset: u32::try_from(offset)
                    .map_err(|_| corrupt(format!("block {i}: word offset overflows u32")))?,
            };
            if first_doc > last_doc || last_doc as usize >= n_docs {
                return Err(corrupt(format!(
                    "block {i}: doc range [{first_doc}, {last_doc}] outside collection of {n_docs}"
                )));
            }
            if let Some(prev) = blocks.last() {
                let p: &BlockMeta = prev;
                if p.last_doc >= first_doc {
                    return Err(corrupt(format!("block {i} overlaps its predecessor")));
                }
            }
            offset += meta.words();
            blocks.push(meta);
        }
        if offset != n_words {
            return Err(corrupt(format!("blocks cover {offset} words, payload has {n_words}")));
        }
        let list = PostingList { blocks, words, len };
        list.validate_payload()?;
        Ok(list)
    }

    /// Decode every block and cross-check it against its metadata.
    fn validate_payload(&self) -> monet::Result<()> {
        let corrupt = |detail: String| MonetError::Corrupt {
            what: "compressed posting list".to_string(),
            detail,
        };
        let mut deltas = Vec::with_capacity(BLOCK_LEN);
        let mut tfs = Vec::with_capacity(BLOCK_LEN);
        for (i, b) in self.blocks.iter().enumerate() {
            let n = b.count as usize;
            unpack_u32s(&self.words, b.offset as usize, n - 1, b.doc_bits as u32, &mut deltas);
            // accumulate in u64 so corrupt deltas cannot wrap past the check
            let mut doc = u64::from(b.first_doc);
            for &d in &deltas {
                doc += u64::from(d) + 1;
            }
            if doc != u64::from(b.last_doc) {
                return Err(corrupt(format!(
                    "block {i}: deltas end at doc {doc}, metadata says {}",
                    b.last_doc
                )));
            }
            unpack_u32s(&self.words, b.tf_offset(), n, b.tf_bits as u32, &mut tfs);
            // widen before the +1 so a corrupt all-ones tf cannot overflow
            let max = tfs.iter().map(|&t| u64::from(t) + 1).max().unwrap_or(0);
            if max != u64::from(b.max_tf) {
                return Err(corrupt(format!(
                    "block {i}: greatest decoded tf {max} does not match block-max {}",
                    b.max_tf
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn posts(pairs: &[(u32, u32)]) -> Vec<Posting> {
        pairs.iter().map(|&(doc, tf)| Posting { doc, tf }).collect()
    }

    fn synthetic(n: usize) -> Vec<Posting> {
        // uneven gaps (5..29) and tfs so widths vary across blocks
        (0..n)
            .map(|i| Posting { doc: (i * 17 + (i * i) % 13) as u32, tf: 1 + ((i * i) % 9) as u32 })
            .collect()
    }

    #[test]
    fn roundtrip_to_vec() {
        for n in [0usize, 1, 2, 127, 128, 129, 500] {
            let original = synthetic(n);
            let list = PostingList::from_postings(&original);
            assert_eq!(list.len(), n);
            assert_eq!(list.to_vec(), original, "n={n}");
            assert_eq!(list.blocks().len(), n.div_ceil(BLOCK_LEN));
        }
    }

    #[test]
    fn tf_of_finds_every_posting_and_misses_gaps() {
        let original = synthetic(300);
        let list = PostingList::from_postings(&original);
        for p in &original {
            assert_eq!(list.tf_of(p.doc), p.tf, "doc {}", p.doc);
        }
        let present: std::collections::HashSet<u32> = original.iter().map(|p| p.doc).collect();
        let last = original.last().unwrap().doc;
        for doc in 0..=last + 2 {
            if !present.contains(&doc) {
                assert_eq!(list.tf_of(doc), 0, "doc {doc}");
            }
        }
    }

    #[test]
    fn block_metadata_is_sound() {
        let original = synthetic(400);
        let list = PostingList::from_postings(&original);
        let mut docs = Vec::new();
        let mut tfs = Vec::new();
        for (i, b) in list.blocks().iter().enumerate() {
            list.decode_block_into(i, &mut docs, &mut tfs);
            assert_eq!(docs.len(), b.count as usize);
            assert_eq!(docs[0], b.first_doc);
            assert_eq!(*docs.last().unwrap(), b.last_doc);
            assert!(docs.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(tfs.iter().copied().max().unwrap(), b.max_tf);
            assert!(tfs.iter().all(|&t| t >= 1 && t <= b.max_tf));
        }
    }

    #[test]
    fn dense_runs_compress_hard() {
        // consecutive docs with tf = 1: both streams pack at width 0
        let original = posts(&(0..256).map(|d| (d, 1)).collect::<Vec<_>>());
        let list = PostingList::from_postings(&original);
        assert_eq!(list.heap_bytes(), 2 * std::mem::size_of::<BlockMeta>());
        assert!(list.heap_bytes() < original.len() * 8 / 10);
        assert_eq!(list.to_vec(), original);
    }

    #[test]
    fn serialisation_roundtrips_compressed() {
        let original = synthetic(300);
        let list = PostingList::from_postings(&original);
        let n_docs = original.last().unwrap().doc as usize + 1;
        let mut w = ByteWriter::new();
        list.write_to(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "postings");
        let back = PostingList::read_from(&mut r, n_docs).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back, list);
        // the serialised form is the compressed form: no 8-byte postings
        assert!(bytes.len() < original.len() * 8 / 2, "{} bytes", bytes.len());
    }

    #[test]
    fn corrupt_blobs_are_typed_errors() {
        let original = synthetic(200);
        let list = PostingList::from_postings(&original);
        let n_docs = original.last().unwrap().doc as usize + 1;
        let mut w = ByteWriter::new();
        list.write_to(&mut w);
        let bytes = w.into_bytes();
        // truncations
        for cut in [0usize, 4, bytes.len() / 2, bytes.len() - 1] {
            let mut r = ByteReader::new(&bytes[..cut], "postings");
            assert!(PostingList::read_from(&mut r, n_docs).is_err(), "cut {cut}");
        }
        // a shrunk collection makes the last block out of range
        let mut r = ByteReader::new(&bytes, "postings");
        assert!(PostingList::read_from(&mut r, n_docs / 2).is_err());
        // flipped payload bits must not survive metadata cross-checks
        let mut rejected = 0;
        for byte in (16..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[byte] ^= 0x55;
            let mut r = ByteReader::new(&bad, "postings");
            match PostingList::read_from(&mut r, n_docs) {
                Err(_) => rejected += 1,
                Ok(back) => {
                    // a surviving flip may only change tfs *below* the
                    // block-max; doc structure and bounds must still hold
                    let decoded = back.to_vec();
                    assert!(decoded.windows(2).all(|w| w[0].doc < w[1].doc));
                    assert!(decoded.iter().all(|p| (p.doc as usize) < n_docs && p.tf > 0));
                }
            }
        }
        assert!(rejected > 0, "no flip was ever rejected");
    }

    #[test]
    fn empty_list_is_empty_everywhere() {
        let list = PostingList::from_postings(&[]);
        assert!(list.is_empty());
        assert_eq!(list.to_vec(), Vec::new());
        assert_eq!(list.tf_of(0), 0);
        assert_eq!(list.heap_bytes(), 0);
        let mut w = ByteWriter::new();
        list.write_to(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "postings");
        assert_eq!(PostingList::read_from(&mut r, 0).unwrap(), list);
    }

    #[test]
    fn wide_gaps_and_wide_tfs_still_roundtrip() {
        let original = posts(&[(0, 1), (1 << 30, 1 << 20), (u32::MAX - 1, 3)]);
        let list = PostingList::from_postings(&original);
        assert_eq!(list.to_vec(), original);
        assert_eq!(list.tf_of(1 << 30), 1 << 20);
        let mut w = ByteWriter::new();
        list.write_to(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "postings");
        let back = PostingList::read_from(&mut r, u32::MAX as usize).unwrap();
        assert_eq!(back, list);
    }
}
