//! The inference network: combining evidence from multiple sources.
//!
//! A query is a small belief network over term nodes; operator nodes
//! combine the per-document term beliefs. This "flexible modeling of the
//! combination of evidence originating from different sources" is exactly
//! why the Mirror paper chose the model: text beliefs and visual-term
//! beliefs combine through the same operators (dual coding).

use crate::belief::BeliefParams;
use crate::index::InvertedIndex;
use monet::Oid;
use std::collections::HashMap;

/// A node in the query network.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryNode {
    /// A (weighted) term.
    Term {
        /// The stemmed term.
        term: String,
        /// Query weight (1.0 for plain terms).
        weight: f64,
    },
    /// `#sum` — mean of child beliefs.
    Sum(Vec<QueryNode>),
    /// `#wsum` — weighted mean of child beliefs (weights from terms or 1.0).
    WSum(Vec<QueryNode>),
    /// `#and` — product of child beliefs.
    And(Vec<QueryNode>),
    /// `#or` — noisy-or of child beliefs.
    Or(Vec<QueryNode>),
    /// `#not` — complement.
    Not(Box<QueryNode>),
    /// `#max` — maximum child belief.
    Max(Vec<QueryNode>),
}

impl QueryNode {
    /// A plain term node.
    pub fn term(t: impl Into<String>) -> QueryNode {
        QueryNode::Term { term: t.into(), weight: 1.0 }
    }

    /// A weighted term node.
    pub fn weighted(t: impl Into<String>, w: f64) -> QueryNode {
        QueryNode::Term { term: t.into(), weight: w }
    }

    /// `#sum` over plain terms — the default free-text query shape.
    pub fn sum_of_terms<S: AsRef<str>>(terms: &[S]) -> QueryNode {
        QueryNode::Sum(terms.iter().map(|t| QueryNode::term(t.as_ref())).collect())
    }

    /// `#wsum` over weighted terms.
    pub fn wsum_of(terms: &[(String, f64)]) -> QueryNode {
        QueryNode::WSum(terms.iter().map(|(t, w)| QueryNode::weighted(t.clone(), *w)).collect())
    }

    /// All terms mentioned in the network.
    pub fn terms(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_terms(&mut out);
        out
    }

    fn collect_terms<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            QueryNode::Term { term, .. } => out.push(term),
            QueryNode::Sum(c)
            | QueryNode::WSum(c)
            | QueryNode::And(c)
            | QueryNode::Or(c)
            | QueryNode::Max(c) => {
                for n in c {
                    n.collect_terms(out);
                }
            }
            QueryNode::Not(n) => n.collect_terms(out),
        }
    }

    /// Evaluate the node given per-term beliefs for one document. Terms
    /// absent from the map get the default belief α.
    pub fn eval(&self, term_beliefs: &HashMap<&str, f64>, alpha: f64) -> f64 {
        match self {
            QueryNode::Term { term, .. } => *term_beliefs.get(term.as_str()).unwrap_or(&alpha),
            QueryNode::Sum(children) => {
                if children.is_empty() {
                    return alpha;
                }
                let s: f64 = children.iter().map(|c| c.eval(term_beliefs, alpha)).sum();
                s / children.len() as f64
            }
            QueryNode::WSum(children) => {
                if children.is_empty() {
                    return alpha;
                }
                let mut num = 0.0;
                let mut den = 0.0;
                for c in children {
                    let w = match c {
                        QueryNode::Term { weight, .. } => *weight,
                        _ => 1.0,
                    };
                    num += w * c.eval(term_beliefs, alpha);
                    den += w;
                }
                if den == 0.0 {
                    alpha
                } else {
                    num / den
                }
            }
            QueryNode::And(children) => {
                children.iter().map(|c| c.eval(term_beliefs, alpha)).product()
            }
            QueryNode::Or(children) => {
                1.0 - children.iter().map(|c| 1.0 - c.eval(term_beliefs, alpha)).product::<f64>()
            }
            QueryNode::Not(c) => 1.0 - c.eval(term_beliefs, alpha),
            QueryNode::Max(children) => {
                children.iter().map(|c| c.eval(term_beliefs, alpha)).fold(alpha, f64::max)
            }
        }
    }
}

/// Set-at-a-time ranker: evaluates a query network against an index using
/// term-at-a-time accumulation over postings.
pub struct Ranker<'a> {
    index: &'a InvertedIndex,
    params: BeliefParams,
}

impl<'a> Ranker<'a> {
    /// Create a ranker with InQuery-default parameters.
    pub fn new(index: &'a InvertedIndex) -> Self {
        Ranker { index, params: BeliefParams::default() }
    }

    /// Create a ranker with explicit parameters.
    pub fn with_params(index: &'a InvertedIndex, params: BeliefParams) -> Self {
        Ranker { index, params }
    }

    /// Rank all documents that match at least one query term. Returns
    /// `(doc, belief)` sorted by descending belief (ties by doc id).
    pub fn rank(&self, query: &QueryNode) -> Vec<(Oid, f64)> {
        let terms = query.terms();
        // gather per-document term beliefs sparsely
        let mut per_doc: HashMap<Oid, HashMap<&str, f64>> = HashMap::new();
        for t in &terms {
            for (doc, b) in self.params.belief_list(self.index, t) {
                per_doc.entry(doc).or_default().insert(*t, b);
            }
        }
        let mut out: Vec<(Oid, f64)> = per_doc
            .into_iter()
            .map(|(doc, beliefs)| (doc, query.eval(&beliefs, self.params.alpha)))
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Rank and keep the best `k`.
    pub fn rank_topk(&self, query: &QueryNode, k: usize) -> Vec<(Oid, f64)> {
        let mut r = self.rank(query);
        r.truncate(k);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;

    fn idx() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        b.add_text(Some("sunset beach waves"));
        b.add_text(Some("forest mist trees"));
        b.add_text(Some("sunset forest"));
        b.add_text(Some("city lights at night"));
        b.build()
    }

    #[test]
    fn sum_query_ranks_matching_docs_first() {
        let i = idx();
        let r = Ranker::new(&i);
        let q = QueryNode::sum_of_terms(&["sunset", "beach"]);
        let ranked = r.rank(&q);
        // doc 0 matches both terms → best
        assert_eq!(ranked[0].0, 0);
        assert!(ranked[0].1 > ranked[1].1);
        // doc 1 and doc 3 match neither → absent from result
        let docs: Vec<_> = ranked.iter().map(|(d, _)| *d).collect();
        assert!(!docs.contains(&1));
        assert!(!docs.contains(&3));
    }

    #[test]
    fn and_penalises_partial_matches_harder_than_sum() {
        let i = idx();
        let r = Ranker::new(&i);
        let terms = ["sunset", "forest"];
        let sum = QueryNode::sum_of_terms(&terms);
        let and = QueryNode::And(terms.iter().map(|t| QueryNode::term(*t)).collect());
        let s = r.rank(&sum);
        let a = r.rank(&and);
        // doc 2 matches both → top under both combinators
        assert_eq!(s[0].0, 2);
        assert_eq!(a[0].0, 2);
        // the and-belief of a partial match is lower than its sum-belief
        let s_partial = s.iter().find(|(d, _)| *d == 0).unwrap().1;
        let a_partial = a.iter().find(|(d, _)| *d == 0).unwrap().1;
        assert!(a_partial < s_partial);
    }

    #[test]
    fn or_is_optimistic() {
        let i = idx();
        let r = Ranker::new(&i);
        let q = QueryNode::Or(vec![QueryNode::term("sunset"), QueryNode::term("mist")]);
        let ranked = r.rank(&q);
        for (_, b) in &ranked {
            assert!(*b >= 0.4 && *b <= 1.0);
        }
        // a doc matching both is not required; doc 0 (sunset only) present
        assert!(ranked.iter().any(|(d, _)| *d == 0));
    }

    #[test]
    fn not_inverts() {
        let beliefs: HashMap<&str, f64> = [("x", 0.9)].into();
        let q = QueryNode::Not(Box::new(QueryNode::term("x")));
        let v = q.eval(&beliefs, 0.4);
        assert!((v - 0.1).abs() < 1e-12);
    }

    #[test]
    fn max_takes_best_child() {
        let beliefs: HashMap<&str, f64> = [("x", 0.5), ("y", 0.8)].into();
        let q = QueryNode::Max(vec![QueryNode::term("x"), QueryNode::term("y")]);
        assert_eq!(q.eval(&beliefs, 0.4), 0.8);
    }

    #[test]
    fn wsum_respects_weights() {
        let beliefs: HashMap<&str, f64> = [("x", 1.0), ("y", 0.0)].into();
        let q = QueryNode::WSum(vec![QueryNode::weighted("x", 3.0), QueryNode::weighted("y", 1.0)]);
        assert!((q.eval(&beliefs, 0.4) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_operators_yield_alpha() {
        let beliefs: HashMap<&str, f64> = HashMap::new();
        assert_eq!(QueryNode::Sum(vec![]).eval(&beliefs, 0.4), 0.4);
        assert_eq!(QueryNode::WSum(vec![]).eval(&beliefs, 0.4), 0.4);
    }

    #[test]
    fn topk_truncates() {
        let i = idx();
        let r = Ranker::new(&i);
        let q = QueryNode::sum_of_terms(&["sunset", "forest", "mist"]);
        assert!(r.rank(&q).len() >= 3);
        assert_eq!(r.rank_topk(&q, 2).len(), 2);
    }

    #[test]
    fn terms_collects_all() {
        let q = QueryNode::And(vec![
            QueryNode::term("a"),
            QueryNode::Not(Box::new(QueryNode::term("b"))),
        ]);
        assert_eq!(q.terms(), vec!["a", "b"]);
    }
}
