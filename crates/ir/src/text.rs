//! The text pipeline: tokenisation, stopword removal, Porter stemming.
//!
//! All three stages are implemented from scratch. The stemmer follows
//! M.F. Porter, "An algorithm for suffix stripping", Program 14(3), 1980 —
//! the same algorithm InQuery used.

/// Standard English stopword list (a compact subset of the SMART list; the
/// terms that actually occur in annotation-style text).
const STOPWORDS: &[&str] = &[
    "a", "about", "above", "after", "again", "against", "all", "am", "an", "and", "any", "are",
    "as", "at", "be", "because", "been", "before", "being", "below", "between", "both", "but",
    "by", "can", "did", "do", "does", "doing", "down", "during", "each", "few", "for", "from",
    "further", "had", "has", "have", "having", "he", "her", "here", "hers", "him", "his", "how",
    "i", "if", "in", "into", "is", "it", "its", "itself", "just", "me", "more", "most", "my", "no",
    "nor", "not", "now", "of", "off", "on", "once", "only", "or", "other", "our", "ours", "out",
    "over", "own", "same", "she", "should", "so", "some", "such", "than", "that", "the", "their",
    "theirs", "them", "then", "there", "these", "they", "this", "those", "through", "to", "too",
    "under", "until", "up", "very", "was", "we", "were", "what", "when", "where", "which", "while",
    "who", "whom", "why", "will", "with", "you", "your", "yours",
];

/// True if `word` (lowercase) is a stopword.
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

/// Split text into lowercase alphanumeric tokens. Purely ASCII-oriented —
/// adequate for the synthetic corpus and annotation vocabularies.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Tokenise, drop stopwords, and Porter-stem — the full indexing pipeline.
pub fn tokenize_stemmed(text: &str) -> Vec<String> {
    tokenize(text).into_iter().filter(|t| !is_stopword(t)).map(|t| porter_stem(&t)).collect()
}

// ---------------------------------------------------------------------
// Porter stemmer
// ---------------------------------------------------------------------

fn is_consonant(b: &[u8], i: usize) -> bool {
    match b[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => {
            if i == 0 {
                true
            } else {
                !is_consonant(b, i - 1)
            }
        }
        _ => true,
    }
}

/// The *measure* m of the stem `b[..len]`: the number of VC sequences.
fn measure(b: &[u8], len: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // skip initial consonants
    while i < len && is_consonant(b, i) {
        i += 1;
    }
    loop {
        // skip vowels
        while i < len && !is_consonant(b, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
        // skip consonants
        while i < len && is_consonant(b, i) {
            i += 1;
        }
        m += 1;
        if i >= len {
            return m;
        }
    }
}

fn has_vowel(b: &[u8], len: usize) -> bool {
    (0..len).any(|i| !is_consonant(b, i))
}

fn ends_double_consonant(b: &[u8], len: usize) -> bool {
    len >= 2 && b[len - 1] == b[len - 2] && is_consonant(b, len - 1)
}

/// cvc test: stem ends consonant-vowel-consonant where the final consonant
/// is not w, x or y (controls e-restoration).
fn ends_cvc(b: &[u8], len: usize) -> bool {
    if len < 3 {
        return false;
    }
    if !is_consonant(b, len - 3) || is_consonant(b, len - 2) || !is_consonant(b, len - 1) {
        return false;
    }
    !matches!(b[len - 1], b'w' | b'x' | b'y')
}

fn ends_with(b: &[u8], len: usize, suffix: &str) -> bool {
    let s = suffix.as_bytes();
    len >= s.len() && &b[len - s.len()..len] == s
}

/// Stem an English word with Porter's algorithm. Input should already be
/// lowercase; words of length ≤ 2 are returned untouched.
pub fn porter_stem(word: &str) -> String {
    if word.len() <= 2 || !word.is_ascii() {
        return word.to_string();
    }
    let mut b = word.as_bytes().to_vec();
    let mut len = b.len();

    // ---- step 1a ----
    if ends_with(&b, len, "sses") || ends_with(&b, len, "ies") {
        len -= 2;
    } else if ends_with(&b, len, "ss") {
        // unchanged
    } else if ends_with(&b, len, "s") {
        len -= 1;
    }

    // ---- step 1b ----
    let mut extra = false;
    if ends_with(&b, len, "eed") {
        if measure(&b, len - 3) > 0 {
            len -= 1;
        }
    } else if ends_with(&b, len, "ed") && has_vowel(&b, len - 2) {
        len -= 2;
        extra = true;
    } else if ends_with(&b, len, "ing") && has_vowel(&b, len - 3) {
        len -= 3;
        extra = true;
    }
    if extra {
        if ends_with(&b, len, "at") || ends_with(&b, len, "bl") || ends_with(&b, len, "iz") {
            b.truncate(len);
            b.push(b'e');
            len += 1;
        } else if ends_double_consonant(&b, len) && !matches!(b[len - 1], b'l' | b's' | b'z') {
            len -= 1;
        } else if measure(&b, len) == 1 && ends_cvc(&b, len) {
            b.truncate(len);
            b.push(b'e');
            len += 1;
        }
    }

    // ---- step 1c ----
    if ends_with(&b, len, "y") && has_vowel(&b, len - 1) {
        b[len - 1] = b'i';
    }

    // ---- step 2 ----
    const STEP2: &[(&str, &str)] = &[
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    ];
    len = apply_rules(&mut b, len, STEP2, 0);

    // ---- step 3 ----
    const STEP3: &[(&str, &str)] = &[
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    ];
    len = apply_rules(&mut b, len, STEP3, 0);

    // ---- step 4 ----
    const STEP4: &[(&str, &str)] = &[
        ("al", ""),
        ("ance", ""),
        ("ence", ""),
        ("er", ""),
        ("ic", ""),
        ("able", ""),
        ("ible", ""),
        ("ant", ""),
        ("ement", ""),
        ("ment", ""),
        ("ent", ""),
        ("ou", ""),
        ("ism", ""),
        ("ate", ""),
        ("iti", ""),
        ("ous", ""),
        ("ive", ""),
        ("ize", ""),
    ];
    for (suf, rep) in STEP4 {
        if ends_with(&b, len, suf) {
            let stem_len = len - suf.len();
            // special case: -ion only after s or t
            let ok = if *suf == "ent" && ends_with(&b, len, "ion") {
                false
            } else {
                measure(&b, stem_len) > 1
            };
            if ok {
                len = stem_len + rep.len();
            }
            break;
        }
    }
    // -ion after s/t
    if ends_with(&b, len, "ion") {
        let stem_len = len - 3;
        if stem_len > 0 && matches!(b[stem_len - 1], b's' | b't') && measure(&b, stem_len) > 1 {
            len = stem_len;
        }
    }

    // ---- step 5a ----
    if ends_with(&b, len, "e") {
        let stem_len = len - 1;
        let m = measure(&b, stem_len);
        if m > 1 || (m == 1 && !ends_cvc(&b, stem_len)) {
            len = stem_len;
        }
    }
    // ---- step 5b ----
    if ends_with(&b, len, "ll") && measure(&b, len) > 1 {
        len -= 1;
    }

    b.truncate(len);
    String::from_utf8(b).expect("ascii input stays ascii")
}

/// Apply the first matching (suffix, replacement) rule whose stem has
/// measure > `min_m`.
fn apply_rules(b: &mut Vec<u8>, len: usize, rules: &[(&str, &str)], min_m: usize) -> usize {
    for (suf, rep) in rules {
        if ends_with(b, len, suf) {
            let stem_len = len - suf.len();
            if measure(b, stem_len) > min_m {
                b.truncate(stem_len);
                b.extend_from_slice(rep.as_bytes());
                return stem_len + rep.len();
            }
            return len;
        }
    }
    len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_lowercases_and_splits() {
        assert_eq!(tokenize("A Sunset, over THE sea!"), vec!["a", "sunset", "over", "the", "sea"]);
        assert_eq!(tokenize(""), Vec::<String>::new());
        assert_eq!(tokenize("x1 y2"), vec!["x1", "y2"]);
    }

    #[test]
    fn stopwords_are_sorted_for_binary_search() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOPWORDS, "stopword list must stay sorted");
        assert!(is_stopword("the"));
        assert!(!is_stopword("sunset"));
    }

    #[test]
    fn porter_classic_examples() {
        // examples from Porter's paper and the canonical test vocabulary
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, expected) in cases {
            assert_eq!(porter_stem(input), expected, "stem({input})");
        }
    }

    #[test]
    fn porter_leaves_short_words() {
        assert_eq!(porter_stem("is"), "is");
        assert_eq!(porter_stem("be"), "be");
    }

    #[test]
    fn full_pipeline() {
        let toks = tokenize_stemmed("The sunset was glowing over the quiet beaches");
        assert_eq!(toks, vec!["sunset", "glow", "quiet", "beach"]);
    }

    #[test]
    fn pipeline_maps_variants_to_same_stem() {
        let a = tokenize_stemmed("running runner runs");
        assert_eq!(a[0], "run");
        // "runner" stems to "runner" (er needs m>1), "runs" to "run"
        assert_eq!(a[2], "run");
    }
}
