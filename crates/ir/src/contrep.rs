//! CONTREP — the content-representation structure.
//!
//! `CONTREP<T>` is the paper's showcase of Moa's structural extensibility:
//! a domain-specific structure that stores an inference-network content
//! representation and exposes the probabilistic `getBL` (get belief list)
//! method, *"supported by new probabilistic operators at the physical
//! level"*. Concretely:
//!
//! * **flattening** — building a collection with a `CONTREP` attribute
//!   tokenises the payloads (`CONTREP<Text>` stems natural language; any
//!   other parameter keeps raw whitespace-separated tokens, which is how
//!   `CONTREP<Image>` holds AutoClass cluster names like `gabor_21`),
//!   constructs an [`InvertedIndex`], materialises it as BATs, and parks a
//!   fast handle in a shared [`ContrepStore`];
//! * **compilation** — `getBL(THIS.attr, query, stats)` compiles to the
//!   custom kernel operator `contrep.getbl`, with the enclosing domain
//!   restriction passed through so ranking composes with relational
//!   selection;
//! * **semantics** — the operator emits, per qualifying document, one
//!   belief row per matching query term (weight-normalised) plus one
//!   default-belief row covering the query terms the document misses, so
//!   that the paper's `map[sum(THIS)](map[getBL(…)](C))` computes exactly
//!   the inference network's `#wsum` belief.

use crate::belief::BeliefParams;
use crate::index::{IndexBuilder, InvertedIndex};
use crate::net::{QueryNode, Ranker};
use moa::{CallArgs, MoaError, MoaType, Structure};
use monet::{Bat, Catalog, Column, MonetError, Oid, OpRegistry, Plan, Val};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Name of the physical belief-list operator registered in the kernel.
pub const GETBL_OP: &str = "contrep.getbl";

/// Name of the fused top-k belief operator (`topk_bl`): `getBL` + grouped
/// sum + rank collapsed into one streaming operator with threshold pruning
/// ([`crate::topk`]). The name follows the kernel's fusion convention —
/// `<op>.topk` — which the Moa rewriter uses to find a fused counterpart
/// for a top-k budget ([`moa::rewrite_topk`]).
pub const TOPK_BL_OP: &str = "contrep.getbl.topk";

/// Shared store of built content representations, keyed by BAT prefix.
///
/// The BATs in the catalog are the system of record (anything could be
/// recomputed from them); the store is the hash-index the physical
/// operator uses, playing the role of Monet's accelerator structures.
#[derive(Default)]
pub struct ContrepStore {
    map: RwLock<HashMap<String, Arc<InvertedIndex>>>,
    params: RwLock<BeliefParams>,
}

impl ContrepStore {
    /// Create an empty store with InQuery-default belief parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install an index under a prefix.
    pub fn insert(&self, prefix: impl Into<String>, index: InvertedIndex) {
        self.map.write().insert(prefix.into(), Arc::new(index));
    }

    /// Fetch the index for a prefix.
    pub fn get(&self, prefix: &str) -> Option<Arc<InvertedIndex>> {
        self.map.read().get(prefix).cloned()
    }

    /// All registered prefixes, sorted.
    pub fn prefixes(&self) -> Vec<String> {
        let mut v: Vec<String> = self.map.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// The belief parameters used by `getBL`.
    pub fn params(&self) -> BeliefParams {
        *self.params.read()
    }

    /// Replace the belief parameters (affects subsequent queries).
    pub fn set_params(&self, p: BeliefParams) {
        *self.params.write() = p;
    }

    /// Rank documents of `prefix` with the full inference network — the
    /// API used by callers that bypass Moa (daemons, thesaurus).
    pub fn rank(&self, prefix: &str, query: &QueryNode) -> Option<Vec<(Oid, f64)>> {
        let idx = self.get(prefix)?;
        Some(Ranker::with_params(&idx, self.params()).rank(query))
    }
}

impl std::fmt::Debug for ContrepStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContrepStore").field("prefixes", &self.prefixes()).finish()
    }
}

/// The CONTREP structure implementation.
pub struct Contrep {
    store: Arc<ContrepStore>,
}

impl Contrep {
    /// Create a CONTREP structure over a store.
    pub fn new(store: Arc<ContrepStore>) -> Self {
        Contrep { store }
    }

    fn weighted_query(args: &CallArgs<'_>) -> Vec<(String, f64)> {
        args.query.map(<[(String, f64)]>::to_vec).unwrap_or_default()
    }
}

impl Structure for Contrep {
    fn name(&self) -> &str {
        "CONTREP"
    }

    fn check_param(&self, param: &MoaType) -> moa::Result<()> {
        match param {
            MoaType::Atomic(_) => Ok(()),
            other => Err(MoaError::Type(format!("CONTREP parameter must be atomic, got {other}"))),
        }
    }

    fn build(
        &self,
        values: &[Option<String>],
        param: &MoaType,
        catalog: &Catalog,
        ops: &OpRegistry,
        prefix: &str,
    ) -> moa::Result<()> {
        let stem = matches!(param, MoaType::Atomic(moa::AtomicType::Text));
        let mut builder = IndexBuilder::new();
        for v in values {
            match v {
                Some(text) if stem => builder.add_text(Some(text)),
                Some(text) => {
                    let toks: Vec<&str> = text.split_whitespace().collect();
                    builder.add_tokens(&toks);
                }
                None => builder.add_text(None),
            }
        }
        let index = builder.build();
        index.register_bats(catalog, prefix);
        self.store.insert(prefix, index);
        register_getbl_op(ops, Arc::clone(&self.store));
        register_topk_bl_op(ops, Arc::clone(&self.store));
        Ok(())
    }

    fn compile_call(&self, method: &str, prefix: &str, args: &CallArgs<'_>) -> moa::Result<Plan> {
        if method != "getBL" {
            return Err(MoaError::Unknown(format!("CONTREP method '{method}'")));
        }
        let mut params = vec![Val::Str(prefix.to_string())];
        for (t, w) in Self::weighted_query(args) {
            params.push(Val::Str(t));
            params.push(Val::Float(w));
        }
        let inputs = match args.domain {
            Some(d) => vec![d.clone()],
            None => Vec::new(),
        };
        Ok(Plan::Custom { op: GETBL_OP.to_string(), inputs, params })
    }

    fn method_result_elem(&self, method: &str) -> moa::Result<MoaType> {
        if method == "getBL" {
            Ok(MoaType::Atomic(moa::AtomicType::Float))
        } else {
            Err(MoaError::Unknown(format!("CONTREP method '{method}'")))
        }
    }

    /// Tuple-at-a-time `getBL`: evaluate the belief of every query term for
    /// one document with per-term postings lookups. This is the baseline
    /// execution model (used by the naive interpreter); it returns exactly
    /// the rows the set-at-a-time operator would emit for this document.
    fn eval_object(
        &self,
        prefix: &str,
        oid: Oid,
        method: &str,
        args: &CallArgs<'_>,
    ) -> moa::Result<Vec<f64>> {
        if method != "getBL" {
            return Err(MoaError::Unknown(format!("CONTREP method '{method}'")));
        }
        let index = self
            .store
            .get(prefix)
            .ok_or_else(|| MoaError::Unknown(format!("content representation '{prefix}'")))?;
        let params = self.store.params();
        let query = Self::weighted_query(args);
        let total_w: f64 = query.iter().map(|(_, w)| w).sum();
        if total_w == 0.0 {
            return Ok(Vec::new());
        }
        let mut rows = Vec::new();
        let mut matched_w = 0.0;
        let mut any = false;
        for (t, w) in &query {
            let tf = index.tf(t, oid);
            if tf > 0 {
                let b = params.belief_in(&index, t, oid);
                rows.push(w * b / total_w);
                matched_w += w;
                any = true;
            }
        }
        if any && matched_w < total_w {
            rows.push(params.alpha * (total_w - matched_w) / total_w);
        }
        Ok(rows)
    }
}

/// A resolved index plus the decoded weighted query borrowed from the
/// operator parameters.
type DecodedBlCall<'a> = (Arc<InvertedIndex>, Vec<(&'a str, f64)>);

/// Decode the `[prefix, (term, weight)*]` parameter layout shared by the
/// belief operators, resolving the index through the store.
fn decode_bl_params<'a>(
    op: &'static str,
    store: &ContrepStore,
    params: &'a [Val],
) -> monet::Result<DecodedBlCall<'a>> {
    let prefix =
        params.first().and_then(Val::as_str).ok_or_else(|| MonetError::BadOpInvocation {
            op: op.into(),
            msg: "first parameter must be the prefix".into(),
        })?;
    let index = store.get(prefix).ok_or_else(|| MonetError::BadOpInvocation {
        op: op.into(),
        msg: format!("no content representation at '{prefix}'"),
    })?;
    let mut query: Vec<(&str, f64)> = Vec::new();
    let mut it = params[1..].iter();
    while let (Some(t), Some(w)) = (it.next(), it.next()) {
        let (Some(t), Some(w)) = (t.as_str(), w.as_float()) else {
            return Err(MonetError::BadOpInvocation {
                op: op.into(),
                msg: "query parameters must alternate str/float".into(),
            });
        };
        query.push((t, w));
    }
    Ok((index, query))
}

/// Decode an optional domain restriction from the first BAT input.
fn decode_domain(inputs: &[Arc<Bat>]) -> Option<monet::fxhash::FxHashSet<Oid>> {
    inputs.first().map(|bat| (0..bat.count()).filter_map(|i| bat.head().oid_at(i).ok()).collect())
}

/// Register (or refresh) the `contrep.getbl` operator in a kernel registry.
fn register_getbl_op(ops: &OpRegistry, store: Arc<ContrepStore>) {
    ops.register(GETBL_OP, move |_ctx, inputs, params| {
        let (index, query) = decode_bl_params(GETBL_OP, &store, params)?;
        let bel = store.params();
        let domain = decode_domain(inputs);
        let total_w: f64 = query.iter().map(|(_, w)| w).sum();
        let mut docs: Vec<Oid> = Vec::new();
        let mut beliefs: Vec<f64> = Vec::new();
        if total_w > 0.0 {
            // set-at-a-time: walk each term's postings once, accumulate
            // weight-normalised beliefs per document
            let mut matched_w: monet::fxhash::FxHashMap<Oid, f64> = Default::default();
            let stats = index.stats();
            for (t, w) in &query {
                let df = index.df(t);
                let Some(posts) = index.postings(t) else { continue };
                for p in posts {
                    if let Some(dom) = &domain {
                        if !dom.contains(&p.doc) {
                            continue;
                        }
                    }
                    let b = bel.belief(p.tf, df, index.doc_len(p.doc), stats.n_docs, stats.avg_dl);
                    docs.push(p.doc);
                    beliefs.push(w * b / total_w);
                    *matched_w.entry(p.doc).or_insert(0.0) += w;
                }
            }
            // one default-belief row per document for its unmatched terms
            for (doc, mw) in matched_w {
                if mw < total_w {
                    docs.push(doc);
                    beliefs.push(bel.alpha * (total_w - mw) / total_w);
                }
            }
        }
        Bat::new(Column::Oid(docs), Column::Float(beliefs))
    });
}

/// Register (or refresh) the fused `topk_bl` operator: parameters are the
/// `getBL` layout with the budget appended (`[prefix, (term, weight)*, k]`,
/// the kernel's `<op>.topk` fusion convention), and the output is the k
/// best `[doc, belief-sum]` rows in rank order. Runs the streaming
/// evaluation of [`crate::topk`] at the executor's parallel degree and
/// reports pruning through the EXPLAIN note channel.
fn register_topk_bl_op(ops: &OpRegistry, store: Arc<ContrepStore>) {
    ops.register(TOPK_BL_OP, move |ctx, inputs, params| {
        let k = params.last().and_then(Val::as_int).filter(|k| *k >= 0).ok_or_else(|| {
            MonetError::BadOpInvocation {
                op: TOPK_BL_OP.into(),
                msg: "last parameter must be the non-negative top-k budget".into(),
            }
        })? as usize;
        let (index, query) = decode_bl_params(TOPK_BL_OP, &store, &params[..params.len() - 1])?;
        let domain = decode_domain(inputs);
        // fragment the doc-id space only when it is large enough to pay
        // for the scoped threads — the executor's threshold, like the
        // built-in operators (so `min_fragment_rows` overrides apply here)
        let degree = ctx.frag_degree(index.n_docs());
        let out =
            crate::topk::topk_beliefs(&index, store.params(), &query, domain.as_ref(), k, degree);
        ctx.set_note(format!(
            "topk ×{k} (pruned {} docs, skipped {} blocks / {} postings)",
            out.pruned, out.blocks_skipped, out.skipped_postings
        ));
        let (docs, scores): (Vec<Oid>, Vec<f64>) = out.hits.into_iter().unzip();
        Bat::new(Column::Oid(docs), Column::Float(scores))
    });
}

/// Create a store, register the CONTREP structure in `env`, and return the
/// store handle. Idempotent per environment.
pub fn register_contrep(env: &moa::Env) -> Arc<ContrepStore> {
    let store = Arc::new(ContrepStore::new());
    env.structures().register(Arc::new(Contrep::new(Arc::clone(&store))));
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use moa::{parse_define, Env, MoaEngine, MoaVal, QueryOutput};

    /// Build the paper's TraditionalImgLib with a CONTREP annotation.
    fn mirror_env() -> (Arc<Env>, Arc<ContrepStore>) {
        let mut env = Env::new();
        env.keep_raw = true;
        let store = register_contrep(&env);
        let (name, ty) = parse_define(
            "define TraditionalImgLib as
               SET< TUPLE< Atomic<URL>: source, CONTREP<Text>: annotation >>;",
        )
        .unwrap();
        let docs = [
            Some("a glowing sunset over the beach"),
            Some("dark forest with morning mist"),
            Some("sunset behind the city skyline"),
            None,
            Some("waves crashing on the beach at sunset"),
        ];
        let rows: Vec<MoaVal> = docs
            .iter()
            .enumerate()
            .map(|(i, d)| {
                MoaVal::Tuple(vec![
                    MoaVal::Str(format!("http://img/{i}.png")),
                    d.map_or(MoaVal::Null, MoaVal::from),
                ])
            })
            .collect();
        env.create_collection(name, ty, rows).unwrap();
        (Arc::new(env), store)
    }

    #[test]
    fn build_registers_bats_and_store() {
        let (env, store) = mirror_env();
        assert!(store.get("TraditionalImgLib__annotation").is_some());
        let names = env.catalog().names();
        assert!(names.contains(&"TraditionalImgLib__annotation__term".to_string()));
        assert!(names.contains(&"TraditionalImgLib__annotation__post_d".to_string()));
        assert!(env.ops().contains(GETBL_OP));
    }

    #[test]
    fn paper_query_ranks_documents() {
        let (env, _) = mirror_env();
        env.bind_query("query", vec![("sunset".into(), 1.0), ("beach".into(), 1.0)]);
        let engine = MoaEngine::new(Arc::clone(&env));
        let out = engine
            .query(
                "map[sum(THIS)](
                   map[getBL(THIS.annotation, query, stats)]( TraditionalImgLib ));",
            )
            .unwrap();
        let pairs = out.pairs().expect("pairs").to_vec();
        // every document got a score (docs without any match score 0)
        assert_eq!(pairs.len(), 5);
        let score = |oid: u32| pairs.iter().find(|(o, _)| *o == oid).unwrap().1.as_float().unwrap();
        // docs 0 and 4 match both terms; 2 matches one; 1 and 3 none
        assert!(score(0) > score(2), "{} vs {}", score(0), score(2));
        assert!(score(4) > score(2));
        assert!(score(2) > score(1));
        assert_eq!(score(1), 0.0);
        assert_eq!(score(3), 0.0);
    }

    #[test]
    fn flattened_ranking_matches_inference_network() {
        let (env, store) = mirror_env();
        let terms = vec![("sunset".to_string(), 2.0), ("mist".to_string(), 1.0)];
        env.bind_query("query", terms.clone());
        let engine = MoaEngine::new(Arc::clone(&env));
        let out = engine
            .query("map[sum(THIS)](map[getBL(THIS.annotation, query, stats)](TraditionalImgLib))")
            .unwrap();
        let pairs = out.pairs().unwrap().to_vec();
        let network =
            store.rank("TraditionalImgLib__annotation", &QueryNode::wsum_of(&terms)).unwrap();
        for (doc, expected) in network {
            let got = pairs.iter().find(|(o, _)| *o == doc).unwrap().1.as_float().unwrap();
            assert!(
                (got - expected).abs() < 1e-9,
                "doc {doc}: flattened {got} vs network {expected}"
            );
        }
    }

    #[test]
    fn naive_and_flattened_getbl_agree() {
        let (env, _) = mirror_env();
        env.bind_query("query", vec![("sunset".into(), 1.0), ("beach".into(), 1.0)]);
        let q = "map[sum(THIS)](map[getBL(THIS.annotation, query, stats)](TraditionalImgLib))";
        let flat = MoaEngine::new(Arc::clone(&env)).query(q).unwrap();
        let naive = moa::naive::NaiveEngine::new(&env).query(q).unwrap();
        // naive emits only docs it visits; compare shared docs
        let (QueryOutput::Pairs(f), QueryOutput::Pairs(n)) = (&flat, &naive) else {
            panic!("expected pairs");
        };
        for (doc, v) in n {
            let fv = f.iter().find(|(o, _)| o == doc).unwrap().1.as_float().unwrap();
            let nv = v.as_float().unwrap();
            assert!((fv - nv).abs() < 1e-9, "doc {doc}: {fv} vs {nv}");
        }
    }

    #[test]
    fn selection_pushdown_restricts_ranking() {
        let (env, _) = mirror_env();
        env.bind_query("query", vec![("sunset".into(), 1.0)]);
        let engine = MoaEngine::new(Arc::clone(&env));
        // only rank documents whose URL contains "2" (i.e. doc 2)
        let out = engine
            .query(
                "map[sum(THIS)](map[getBL(THIS.annotation, query, stats)](
                   select[contains(THIS.source, \"/2.\")](TraditionalImgLib)))",
            )
            .unwrap();
        let pairs = out.pairs().unwrap();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0, 2);
    }

    #[test]
    fn visual_contrep_keeps_raw_tokens() {
        let env = Env::new();
        let store = register_contrep(&env);
        let (name, ty) =
            parse_define("define V as SET< TUPLE< Atomic<URL>: source, CONTREP<Image>: image >>;")
                .unwrap();
        let rows = vec![
            MoaVal::Tuple(vec![MoaVal::str("u0"), MoaVal::str("gabor_21 rgb_3 gabor_21")]),
            MoaVal::Tuple(vec![MoaVal::str("u1"), MoaVal::str("rgb_3 tamura_7")]),
        ];
        env.create_collection(name, ty, rows).unwrap();
        let idx = store.get("V__image").unwrap();
        // visual terms must survive unstemmed and unsplit
        assert_eq!(idx.tf("gabor_21", 0), 2);
        assert_eq!(idx.df("rgb_3"), 2);
        assert_eq!(idx.df("gabor"), 0);
    }

    #[test]
    fn getbl_compiles_with_explain() {
        let (env, _) = mirror_env();
        env.bind_query("query", vec![("sunset".into(), 1.0)]);
        let engine = MoaEngine::new(Arc::clone(&env));
        let text = engine
            .explain("map[sum(THIS)](map[getBL(THIS.annotation, query, stats)](TraditionalImgLib))")
            .unwrap();
        assert!(text.contains("custom[contrep.getbl]"));
        assert!(text.contains("grouped_aggr[sum]"));
    }

    #[test]
    fn unknown_method_is_rejected() {
        let (env, _) = mirror_env();
        let engine = MoaEngine::new(Arc::clone(&env));
        let err = engine.query("map[getPL(THIS.annotation, query, stats)](TraditionalImgLib)");
        assert!(err.is_err());
    }

    #[test]
    fn params_bindings_never_touch_the_env() {
        let (env, _) = mirror_env();
        let engine = MoaEngine::new(Arc::clone(&env));
        let params =
            moa::QueryParams::new().bind("rq", vec![("sunset".into(), 1.0), ("beach".into(), 1.0)]);
        let out = engine
            .query_with(
                "map[sum(THIS)](map[getBL(THIS.annotation, rq, stats)](TraditionalImgLib))",
                &params,
            )
            .unwrap();
        assert_eq!(out.pairs().unwrap().len(), 5);
        assert!(env.query_binding("rq").is_none(), "request binding leaked into Env");
    }

    #[test]
    fn fused_topk_matches_materialise_then_sort() {
        let (env, _) = mirror_env();
        let engine = MoaEngine::new(Arc::clone(&env));
        let q = "map[sum(THIS)](map[getBL(THIS.annotation, rq, stats)](TraditionalImgLib))";
        let bindings =
            moa::QueryParams::new().bind("rq", vec![("sunset".into(), 1.0), ("beach".into(), 1.0)]);
        // baseline: materialise every belief, then sort + truncate
        let full = engine.query_with(q, &bindings).unwrap();
        let mut expected: Vec<(monet::Oid, f64)> = full
            .pairs()
            .unwrap()
            .iter()
            .filter_map(|(o, v)| v.as_float().map(|f| (*o, f)))
            .filter(|(_, s)| *s > 0.0)
            .collect();
        expected.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        for k in [1usize, 2, 5] {
            let fused = engine.query_with(q, &bindings.clone().with_top_k(k)).unwrap();
            let got: Vec<(monet::Oid, f64)> =
                fused.pairs().unwrap().iter().map(|(o, v)| (*o, v.as_float().unwrap())).collect();
            let mut want = expected.clone();
            want.truncate(k);
            assert_eq!(got, want, "k={k}");
        }
    }

    #[test]
    fn fused_topk_shows_in_explain_and_stats() {
        let (env, _) = mirror_env();
        let engine = MoaEngine::new(Arc::clone(&env));
        let q = "map[sum(THIS)](map[getBL(THIS.annotation, rq, stats)](TraditionalImgLib))";
        let params = moa::QueryParams::new().bind("rq", vec![("sunset".into(), 1.0)]).with_top_k(2);
        let text = engine.explain_with(q, &params).unwrap();
        assert!(text.contains("custom[contrep.getbl.topk]"), "{text}");
        assert!(!text.contains("grouped_aggr"), "fusion should collapse the grouped sum: {text}");
        let expr = moa::parse_expr(q).unwrap();
        let (_, stats) = engine.query_expr_params(&expr, &params).unwrap();
        let notes = stats.notes();
        assert!(
            notes.iter().any(|n| n.starts_with("topk ×2 (pruned")),
            "missing topk note: {notes:?}"
        );
    }

    #[test]
    fn fused_topk_respects_the_relational_domain() {
        let (env, _) = mirror_env();
        let engine = MoaEngine::new(Arc::clone(&env));
        // only rank documents whose URL contains "2" (i.e. doc 2)
        let q = "map[sum(THIS)](map[getBL(THIS.annotation, rq, stats)](
                   select[contains(THIS.source, \"/2.\")](TraditionalImgLib)))";
        let params = moa::QueryParams::new().bind("rq", vec![("sunset".into(), 1.0)]).with_top_k(5);
        let out = engine.query_with(q, &params).unwrap();
        let pairs = out.pairs().unwrap();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0, 2);
        let text = engine.explain_with(q, &params).unwrap();
        assert!(text.contains("custom[contrep.getbl.topk]"), "{text}");
    }

    #[test]
    fn empty_query_scores_nothing() {
        let (env, _) = mirror_env();
        env.bind_query("query", vec![]);
        let engine = MoaEngine::new(Arc::clone(&env));
        let out = engine
            .query("map[sum(THIS)](map[getBL(THIS.annotation, query, stats)](TraditionalImgLib))")
            .unwrap();
        // grouped sum still yields one row per doc, all zero
        let pairs = out.pairs().unwrap();
        assert!(pairs.iter().all(|(_, v)| v.as_float() == Some(0.0)));
    }
}
